// Durability bench: what the ingest WAL costs and what recovery buys
// (storage/wal.h, storage/checkpoint.h, api/server.h).
//
//  (a) WAL ingest overhead — the same append schedule is driven through a
//      Server with durability off and with the WAL on at each fsync
//      discipline (none / batch / always). The acceptance gate is the
//      ISSUE's bound: with fsync_mode=batch, logging every batch before
//      applying it must cost < 15% over the wal-off ingest path.
//  (b) Recovery time vs log length — a server appends {10, 100, 1000}
//      batches and is destroyed without a clean shutdown; we time the
//      successor's constructor replaying the whole log, and again with a
//      mid-log checkpoint so replay only covers the tail. Recovered state
//      is checked against the victim's final version each time.
//
// Emits BENCH_durability.json at the repo root after the tables.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/server.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/tpch_gen.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"

namespace gbmqo {
namespace {

using bench::Banner;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ModePoint {
  std::string mode;        // "off", "none", "batch", "always"
  double ingest_ms = 0;    // best-of-reps total AppendBatch wall time
  double overhead_pct = 0; // vs "off"
  uint64_t wal_bytes = 0;  // logged bytes after the schedule (0 for "off")
};

struct RecoveryPoint {
  int log_batches = 0;
  double full_replay_ms = 0;     // no checkpoint: replay every record
  double checkpoint_tail_ms = 0; // checkpoint at N/2: load + replay tail
  uint64_t tail_records = 0;     // records the checkpointed recovery applied
};

/// A scratch WAL directory, wiped on scope exit.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("gbmqo-bench-durability-" + std::to_string(CurrentProcessId()) +
             "-" + tag))
               .string();
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

}  // namespace
}  // namespace gbmqo

int main() {
  using namespace gbmqo;

  const size_t rows = bench::RowsFromEnv(100000);
  Banner("bench_durability: WAL ingest overhead and recovery replay",
         "this repo's durability layer (storage/wal.h, "
         "storage/checkpoint.h)");
  std::printf("rows=%zu (set GBMQO_ROWS to change)\n\n", rows);

  TablePtr base = GenerateLineitem({.rows = rows, .seed = 17});
  TablePtr donor = GenerateLineitem({.rows = 4000, .zipf_theta = 0.8,
                                     .seed = 18});

  // One fixed append schedule reused by every mode.
  const int kBatches = 40;
  const int kBatchRows = 400;
  std::vector<std::vector<std::vector<Value>>> schedule;
  {
    Rng rng(19);
    for (int b = 0; b < kBatches; ++b) {
      std::vector<std::vector<Value>> batch;
      batch.reserve(kBatchRows);
      for (int i = 0; i < kBatchRows; ++i) {
        batch.push_back(donor->Row(rng.Uniform(donor->num_rows())));
      }
      schedule.push_back(std::move(batch));
    }
  }

  // ---- (a) WAL ingest overhead by fsync discipline -------------------------
  struct ModeSpec {
    const char* name;
    bool wal_on;
    FsyncMode fsync;
  };
  const ModeSpec modes[] = {{"off", false, FsyncMode::kBatch},
                            {"none", true, FsyncMode::kNone},
                            {"batch", true, FsyncMode::kBatch},
                            {"always", true, FsyncMode::kAlways}};
  std::printf("(a) %d batches x %d rows, total AppendBatch time, best of 3\n",
              kBatches, kBatchRows);
  std::printf("    %8s %12s %12s %12s\n", "mode", "ingest (ms)", "overhead",
              "wal bytes");
  std::vector<ModePoint> points;
  for (const ModeSpec& mode : modes) {
    ModePoint p;
    p.mode = mode.name;
    p.ingest_ms = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      ScratchDir dir(std::string(mode.name) + "-" + std::to_string(rep));
      ServerOptions options;
      options.pool_size = 2;
      if (mode.wal_on) {
        options.wal_directory = dir.path;
        options.fsync_mode = mode.fsync;
        options.checkpoint_interval_bytes = 0;  // pure logging cost
      }
      Server server(base, options);
      if (!server.recovery_status().ok()) {
        std::fprintf(stderr, "durability init failed: %s\n",
                     server.recovery_status().ToString().c_str());
        return 1;
      }
      const auto t0 = Clock::now();
      for (const auto& batch : schedule) {
        if (!server.AppendBatch(batch).ok()) {
          std::fprintf(stderr, "append failed in mode %s\n", mode.name);
          return 1;
        }
      }
      p.ingest_ms = std::min(p.ingest_ms, Seconds(t0) * 1e3);
      p.wal_bytes = server.stats().wal_bytes;
    }
    points.push_back(p);
  }
  const double off_ms = points[0].ingest_ms;
  for (ModePoint& p : points) {
    p.overhead_pct = off_ms > 0 ? (p.ingest_ms - off_ms) / off_ms * 100.0 : 0;
    std::printf("    %8s %12.2f %11.1f%% %12llu\n", p.mode.c_str(),
                p.ingest_ms, p.overhead_pct,
                static_cast<unsigned long long>(p.wal_bytes));
  }
  const double batch_overhead = points[2].overhead_pct;
  const bool wal_overhead_ok = batch_overhead < 15.0;
  std::printf("    %-34s %6s (%.1f%%)\n",
              "fsync_mode=batch overhead < 15%", wal_overhead_ok ? "yes" : "NO",
              batch_overhead);

  // ---- (b) recovery time vs log length -------------------------------------
  std::printf("\n(b) recovery replay, 64-row batches, fsync_mode=batch\n");
  std::printf("    %10s %16s %18s %12s\n", "batches", "full replay (ms)",
              "ckpt + tail (ms)", "tail recs");
  std::vector<RecoveryPoint> recovery;
  bool recovered_bit_identical = true;
  for (const int log_batches : {10, 100, 1000}) {
    RecoveryPoint p;
    p.log_batches = log_batches;
    Rng rng(37);
    std::vector<std::vector<Value>> batch;
    batch.reserve(64);
    for (int i = 0; i < 64; ++i) {
      batch.push_back(donor->Row(rng.Uniform(donor->num_rows())));
    }
    for (const bool with_checkpoint : {false, true}) {
      ScratchDir dir("recover-" + std::to_string(log_batches) +
                     (with_checkpoint ? "-ckpt" : "-full"));
      ServerOptions options;
      options.pool_size = 2;
      options.wal_directory = dir.path;
      options.fsync_mode = FsyncMode::kBatch;
      options.checkpoint_interval_bytes = 0;
      uint64_t victim_version = 0;
      uint64_t victim_rows = 0;
      {
        Server victim(base, options);
        if (!victim.recovery_status().ok()) return 1;
        for (int b = 0; b < log_batches; ++b) {
          if (!victim.AppendBatch(batch).ok()) return 1;
          if (with_checkpoint && b == log_batches / 2 &&
              !victim.Checkpoint().ok()) {
            return 1;
          }
        }
        victim_version = victim.base_version();
        victim_rows = victim.current_base()->num_rows();
      }  // destroyed without a clean shutdown
      const auto t0 = Clock::now();
      Server heir(base, options);
      const double ms = Seconds(t0) * 1e3;
      if (!heir.recovery_status().ok()) {
        std::fprintf(stderr, "recovery failed: %s\n",
                     heir.recovery_status().ToString().c_str());
        return 1;
      }
      if (heir.base_version() != victim_version ||
          heir.current_base()->num_rows() != victim_rows) {
        recovered_bit_identical = false;
      }
      if (with_checkpoint) {
        p.checkpoint_tail_ms = ms;
        p.tail_records = heir.stats().recovery_records_applied;
      } else {
        p.full_replay_ms = ms;
      }
    }
    recovery.push_back(p);
    std::printf("    %10d %16.2f %18.2f %12llu\n", p.log_batches,
                p.full_replay_ms, p.checkpoint_tail_ms,
                static_cast<unsigned long long>(p.tail_records));
  }
  std::printf("    %-34s %6s\n", "recovered state matches victim",
              recovered_bit_identical ? "yes" : "NO");

#ifdef GBMQO_REPO_ROOT
  const std::string json_path =
      std::string(GBMQO_REPO_ROOT) + "/BENCH_durability.json";
#else
  const std::string json_path = "BENCH_durability.json";
#endif
  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"rows\": %zu,\n"
                "  \"batches\": %d,\n"
                "  \"batch_rows\": %d,\n"
                "  \"wal_overhead_ok\": %s,\n"
                "  \"recovered_bit_identical\": %s,\n"
                "  \"modes\": [\n",
                rows, kBatches, kBatchRows, wal_overhead_ok ? "true" : "false",
                recovered_bit_identical ? "true" : "false");
  json += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"ingest_ms\": %.2f, "
                  "\"overhead_pct\": %.2f, \"wal_bytes\": %llu}%s\n",
                  points[i].mode.c_str(), points[i].ingest_ms,
                  points[i].overhead_pct,
                  static_cast<unsigned long long>(points[i].wal_bytes),
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"recovery\": [\n";
  for (size_t i = 0; i < recovery.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"log_batches\": %d, \"full_replay_ms\": %.2f, "
                  "\"checkpoint_tail_ms\": %.2f, \"tail_records\": %llu}%s\n",
                  recovery[i].log_batches, recovery[i].full_replay_ms,
                  recovery[i].checkpoint_tail_ms,
                  static_cast<unsigned long long>(recovery[i].tail_records),
                  i + 1 < recovery.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return wal_overhead_ok && recovered_bit_identical ? 0 : 1;
}
