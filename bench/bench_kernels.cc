// Aggregation-kernel comparison: rows/sec for the dense-array, packed
// single-word and multi-word kernels (each forced through
// QueryExecutor::set_forced_kernel) on
//  (a) a small materialized intermediate — 1M rows, two 64-value int64
//      columns, 4096 groups: the shape GB-MQO plans aggregate most often
//      and the case the dense kernel exists for, and
//  (b) the 1M-row base sales table grouped by category x brand.
// Columnar scans so kernel work, not the row-store touch simulation,
// dominates. Emits one JSON object after the tables; the acceptance gate is
// dense >= 2x multi-word rows/sec on (a) at parallelism 1 and 4.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/sales_gen.h"
#include "exec/query_executor.h"

namespace gbmqo {
namespace {

using bench::Banner;

constexpr AggKernel kKernels[] = {AggKernel::kDenseArray,
                                  AggKernel::kPackedKey,
                                  AggKernel::kMultiWord};
constexpr int kThreads[] = {1, 4};
constexpr int kReps = 3;

struct Sample {
  AggKernel kernel = AggKernel::kMultiWord;
  int threads = 1;
  double seconds = 0;
  double rows_per_sec = 0;
  uint64_t groups = 0;
  WorkCounters counters;
};

/// 1M-row stand-in for a materialized intermediate: two int64 grouping
/// columns of 64 values each -> 4096 groups, well inside the dense budget.
TablePtr MakeIntermediate(size_t rows) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false}}));
  Rng rng(42);
  for (size_t i = 0; i < rows; ++i) {
    if (!b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(64))),
                      Value(static_cast<int64_t>(rng.Uniform(64)))})
             .ok()) {
      std::exit(1);
    }
  }
  return *b.Build("intermediate");
}

Sample Measure(const Table& t, const GroupByQuery& q, AggKernel kernel,
               int threads) {
  Sample s;
  s.kernel = kernel;
  s.threads = threads;
  s.seconds = 1e100;
  for (int r = 0; r < kReps; ++r) {
    ExecContext ctx;
    QueryExecutor exec(&ctx, ScanMode::kColumnar, threads);
    exec.set_forced_kernel(kernel);
    WallTimer timer;
    auto res = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
    const double secs = timer.ElapsedSeconds();
    if (!res.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   res.status().ToString().c_str());
      std::exit(1);
    }
    s.seconds = std::min(s.seconds, secs);
    s.groups = (*res)->num_rows();
    s.counters = ctx.counters();
  }
  s.rows_per_sec = static_cast<double>(t.num_rows()) / s.seconds;
  return s;
}

std::vector<Sample> RunScenario(const char* title, const Table& t,
                                const GroupByQuery& q) {
  std::vector<Sample> samples;
  std::printf("\n%s (%zu rows)\n", title, t.num_rows());
  std::printf("%-10s | %-8s | %-10s | %-14s | %s\n", "kernel", "threads",
              "seconds", "rows/sec", "groups");
  for (AggKernel kernel : kKernels) {
    for (int threads : kThreads) {
      const Sample s = Measure(t, q, kernel, threads);
      std::printf("%-10s | %-8d | %-10.4f | %-14.0f | %llu\n",
                  AggKernelName(kernel), threads, s.seconds, s.rows_per_sec,
                  static_cast<unsigned long long>(s.groups));
      samples.push_back(s);
    }
  }
  return samples;
}

void PrintJsonScenario(const char* key, const std::vector<Sample>& samples,
                       bool last) {
  std::printf("  \"%s\": [", key);
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::printf(
        "%s\n    {\"kernel\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
        "\"rows_per_sec\": %.0f, \"groups\": %llu, "
        "\"dense_rows\": %llu, \"packed_rows\": %llu, "
        "\"multiword_rows\": %llu}",
        i == 0 ? "" : ",", AggKernelName(s.kernel), s.threads, s.seconds,
        s.rows_per_sec, static_cast<unsigned long long>(s.groups),
        static_cast<unsigned long long>(s.counters.dense_kernel_rows),
        static_cast<unsigned long long>(s.counters.packed_kernel_rows),
        static_cast<unsigned long long>(s.counters.multiword_kernel_rows));
  }
  std::printf("\n  ]%s\n", last ? "" : ",");
}

double RowsPerSec(const std::vector<Sample>& samples, AggKernel kernel,
                  int threads) {
  for (const Sample& s : samples) {
    if (s.kernel == kernel && s.threads == threads) return s.rows_per_sec;
  }
  return 0;
}

void Run() {
  const size_t rows = bench::RowsFromEnv(1000000);
  Banner("Aggregation kernels — rows/sec per kernel",
         "engine study (adaptive kernel selection; not a paper figure)");

  TablePtr inter = MakeIntermediate(rows);
  GroupByQuery inter_q{ColumnSet{0, 1}, {AggregateSpec::CountStar("cnt")}};
  const std::vector<Sample> inter_samples =
      RunScenario("(a) small intermediate: 64 x 64 int64 domains", *inter,
                  inter_q);

  TablePtr sales = GenerateSales({.rows = rows});
  GroupByQuery sales_q{ColumnSet::Single(kCategory).With(kBrand),
                       {AggregateSpec::CountStar("cnt")}};
  const std::vector<Sample> sales_samples =
      RunScenario("(b) base sales table: category x brand", *sales, sales_q);

  std::printf("\n{\n");
  std::printf("  \"bench\": \"kernels\",\n");
  std::printf("  \"rows\": %zu,\n", rows);
  PrintJsonScenario("intermediate", inter_samples, /*last=*/false);
  PrintJsonScenario("base_table", sales_samples, /*last=*/false);
  std::printf("  \"dense_over_multiword\": {");
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    const double ratio =
        RowsPerSec(inter_samples, AggKernel::kDenseArray, kThreads[i]) /
        RowsPerSec(inter_samples, AggKernel::kMultiWord, kThreads[i]);
    std::printf("%s\"t%d\": %.2f", i == 0 ? "" : ", ", kThreads[i], ratio);
  }
  std::printf("}\n}\n");
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
