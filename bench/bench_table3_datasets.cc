// Table 3 (Section 6.2): speedup of GB-MQO over the naive plan on four
// datasets, for single-column (SC) and two-column (TC) workloads.
// Paper speedups range from 1.09x to 4.46x; the structure (SC gains large
// on correlated/categorical tables, TC gains moderate) should reproduce.
#include "bench/bench_util.h"
#include "data/nref_gen.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;
using bench::Speedup;

void RunCase(const char* dataset, const char* workload, const TablePtr& table,
             const std::vector<GroupByRequest>& requests) {
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*table);

  const RunOutcome naive =
      RunPlan(&catalog, table->name(), NaivePlan(requests), requests);
  OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests);
  const RunOutcome ours = RunPlan(&catalog, table->name(), opt.plan, requests);

  std::printf("%-10s %-3s | #GrBys %3zu | naive %8.3fs | GB-MQO %8.3fs | "
              "speedup %.2fx wall, %.2fx work, %.2fx scan-bound\n",
              dataset, workload, requests.size(), naive.exec_seconds,
              ours.exec_seconds, Speedup(naive.exec_seconds, ours.exec_seconds),
              Speedup(naive.work_units, ours.work_units),
              bench::ScanBoundSpeedup(naive, ours));
}

void Run() {
  const size_t rows_1g = bench::RowsFromEnv(200000);
  const size_t rows_10g = rows_1g * 5;  // paper's 10G is 10x 1G; 5x keeps
                                        // laptop runtime sane while showing
                                        // the same scale trend.
  Banner("Table 3 — speedup over naive plan on four datasets",
         "Chen & Narasayya, SIGMOD'05, Section 6.2, Table 3 "
         "(paper: speedups 1.9x-4.5x across SC and TC)");
  std::printf("rows: 1g-analog=%zu, 10g-analog=%zu, sales=%zu, nref=%zu\n\n",
              rows_1g, rows_10g, rows_1g, rows_1g);

  TablePtr tpch1 = GenerateLineitem({.rows = rows_1g});
  TablePtr tpch10 = GenerateLineitem({.rows = rows_10g, .seed = 43});
  TablePtr sales = GenerateSales({.rows = rows_1g});
  TablePtr nref = GenerateNref({.rows = rows_1g});

  const auto li_cols = LineitemAnalysisColumns();
  // TC over all 12 lineitem columns is 66 queries; the paper runs exactly
  // that. For Sales/NREF all columns are used.
  RunCase("sales", "SC", sales, SingleColumnRequests(SalesAllColumns()));
  RunCase("nref", "SC", nref, SingleColumnRequests(NrefAllColumns()));
  RunCase("tpch-10g", "SC", tpch10, SingleColumnRequests(li_cols));
  RunCase("tpch-1g", "SC", tpch1, SingleColumnRequests(li_cols));
  RunCase("sales", "TC", sales, TwoColumnRequests(SalesAllColumns()));
  RunCase("nref", "TC", nref, TwoColumnRequests(NrefAllColumns()));
  RunCase("tpch-10g", "TC", tpch10, TwoColumnRequests(li_cols));
  RunCase("tpch-1g", "TC", tpch1, TwoColumnRequests(li_cols));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
