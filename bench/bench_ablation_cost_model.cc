// Ablation (not a paper artifact): what the cardinality-aware aggregation
// CPU term in OptimizerCostModel buys. A "flat CPU" variant (constant
// per-row aggregation cost, the classic textbook model) systematically
// underprices high-cardinality intermediates; on large lineitem instances
// it materializes near-|R| date triples that the calibrated model rejects.
// Both models' plans are executed on the same engine.
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::RunOutcome;
using bench::RunPlan;
using bench::Speedup;

/// OptimizerCostModel with the aggregation CPU flattened to its floor:
/// hash aggregation costs the same per row no matter how many groups come
/// out — no cache-residency effect.
class FlatCpuCostModel : public PlanCostModel {
 public:
  explicit FlatCpuCostModel(const Table& base) : base_(base) {}

  double QueryCost(const NodeDesc& u, const NodeDesc& v) const override {
    ++calls_;
    const Index* index =
        u.is_root ? base_.FindCoveringIndex(v.columns) : nullptr;
    if (index != nullptr) {
      return u.rows * base_.AvgRowWidth(v.columns) + u.rows;
    }
    return u.rows * u.row_width + u.rows * 4.0 + v.rows * 16.0;
  }
  double MaterializeCost(const NodeDesc& v) const override {
    return v.rows * v.row_width * 2.0;
  }
  uint64_t optimizer_calls() const override { return calls_; }

 private:
  const Table& base_;
  mutable uint64_t calls_ = 0;
};

void Run() {
  const size_t rows = bench::RowsFromEnv(600000);
  Banner("Ablation — cardinality-aware vs flat aggregation CPU in the "
         "cost model",
         "calibration note in DESIGN.md (OptimizerCostModel mirrors "
         "HashAggCpuPerRow)");
  std::printf("rows=%zu; SC workload\n\n", rows);

  TablePtr table = GenerateLineitem({.rows = rows});
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());

  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);

  OptimizerCostModel calibrated(*table);
  GbMqoOptimizer opt_cal(&calibrated, &whatif);
  auto plan_cal = opt_cal.Optimize(requests);
  if (!plan_cal.ok()) std::exit(1);

  FlatCpuCostModel flat(*table);
  GbMqoOptimizer opt_flat(&flat, &whatif);
  auto plan_flat = opt_flat.Optimize(requests);
  if (!plan_flat.ok()) std::exit(1);

  const RunOutcome naive =
      RunPlan(&catalog, "lineitem", NaivePlan(requests), requests);
  const RunOutcome cal = RunPlan(&catalog, "lineitem", plan_cal->plan, requests);
  const RunOutcome fl = RunPlan(&catalog, "lineitem", plan_flat->plan, requests);

  std::printf("naive            | %8.3fs\n", naive.exec_seconds);
  std::printf("calibrated model | %8.3fs (%.2fx wall, %.2fx work vs naive)\n",
              cal.exec_seconds, Speedup(naive.exec_seconds, cal.exec_seconds),
              Speedup(naive.work_units, cal.work_units));
  std::printf("  plan: %s\n", plan_cal->plan.ToString().c_str());
  std::printf("flat-CPU model   | %8.3fs (%.2fx wall, %.2fx work vs naive)\n",
              fl.exec_seconds, Speedup(naive.exec_seconds, fl.exec_seconds),
              Speedup(naive.work_units, fl.work_units));
  std::printf("  plan: %s\n", plan_flat->plan.ToString().c_str());
  std::printf("\ncalibrated vs flat plan: %.2fx wall, %.2fx work\n",
              Speedup(fl.exec_seconds, cal.exec_seconds),
              Speedup(fl.work_units, cal.work_units));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
