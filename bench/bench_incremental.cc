// Streaming-ingestion bench: incremental maintenance vs full recompute
// (storage/ingest.h + core/delta_maintenance.h).
//
//  (a) Maintenance cost per applied batch — a set of materialized group-bys
//      over the lineitem lattice is kept warm while append batches of
//      {1, 10, 100, 1000, 10000} rows arrive. For each size we time
//      DeltaMaintainer::ApplyDelta (delta aggregation + group-wise merge +
//      cache swap) against a cold recompute of every maintained aggregate
//      over the grown base. Small batches must be >= 10x cheaper to
//      maintain than to recompute — that asymmetry is the whole point of
//      the delta path.
//  (b) Warm-hit rate under steady ingest — a Server alternates AppendBatch
//      with warm request sets: with incremental maintenance every post-
//      ingest request is still served from the (refreshed) cache; with
//      invalidate-on-ingest every batch forces a cold rebuild.
//
// Emits BENCH_incremental.json at the repo root after the tables.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/server.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/aggregate_cache.h"
#include "core/delta_maintenance.h"
#include "core/plan_executor.h"
#include "data/tpch_gen.h"
#include "exec/query_executor.h"
#include "storage/ingest.h"

namespace gbmqo {
namespace {

using bench::Banner;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The maintained lattice: three singles, two pairs, one triple — all with
/// COUNT(*) + SUM(l_quantity), the exact-in-double aggregate pair.
struct Maintained {
  ColumnSet columns;
  std::vector<AggRequest> aggs;
};

std::vector<Maintained> MaintainedSets() {
  const std::vector<AggRequest> aggs = {AggRequest{},
                                        AggRequest{AggKind::kSum, kQuantity}};
  return {
      {ColumnSet::Single(kReturnflag), aggs},
      {ColumnSet::Single(kLinestatus), aggs},
      {ColumnSet::Single(kShipmode), aggs},
      {ColumnSet{kReturnflag, kLinestatus}, aggs},
      {ColumnSet{kReturnflag, kShipmode}, aggs},
      {ColumnSet{kReturnflag, kLinestatus, kShipmode}, aggs},
  };
}

struct BatchPoint {
  size_t batch_rows = 0;
  double maintain_ms = 0;   // ApplyDelta over all maintained entries
  double recompute_ms = 0;  // cold rebuild of the same entries from base
  double speedup = 0;
  uint64_t rollup_reuses = 0;
};

struct SteadyPoint {
  int rounds = 0;
  double incremental_hit_rate = 0;
  double invalidate_hit_rate = 0;
  uint64_t refreshes = 0;
};

}  // namespace
}  // namespace gbmqo

int main() {
  using namespace gbmqo;

  const size_t rows = bench::RowsFromEnv(200000);
  Banner("bench_incremental: delta maintenance vs full recompute",
         "this repo's ingestion path (storage/ingest.h, "
         "core/delta_maintenance.h)");
  std::printf("rows=%zu (set GBMQO_ROWS to change)\n\n", rows);

  TablePtr base = GenerateLineitem({.rows = rows, .seed = 11});
  const Schema& schema = base->schema();

  // ---- (a) per-batch maintenance cost vs cold recompute --------------------
  Catalog catalog;
  if (!catalog.RegisterBase(base).ok()) return 1;
  AggregateCache cache(&catalog, 256.0 * 1024 * 1024);
  const std::vector<Maintained> sets = MaintainedSets();
  {
    ExecContext ctx;
    QueryExecutor exec(&ctx, ScanMode::kColumnar, 4);
    for (const Maintained& m : sets) {
      auto q = BuildGroupByOver(*base, true, schema, m.columns, m.aggs);
      if (!q.ok()) return 1;
      auto t = exec.ExecuteGroupBy(*base, *q, catalog.NextTempName("warm"));
      if (!t.ok() || !cache.AcceptPinned(m.columns, m.aggs, *t, false)) {
        std::fprintf(stderr, "failed to warm the cache\n");
        return 1;
      }
    }
  }

  Ingestor ingestor(&catalog);
  DeltaMaintainer maintainer(&catalog, &cache,
                             DeltaMaintenanceOptions{.parallelism = 4});
  Rng rng(23);
  TablePtr current = base;
  uint64_t version = 0;

  std::printf("(a) maintenance vs recompute, %zu maintained aggregates\n",
              sets.size());
  std::printf("    %10s %14s %14s %10s %8s\n", "batch rows", "maintain (ms)",
              "recompute (ms)", "speedup", "rollups");
  std::vector<BatchPoint> points;
  for (const size_t batch_rows : {1ul, 10ul, 100ul, 1000ul, 10000ul}) {
    BatchPoint p;
    p.batch_rows = batch_rows;
    p.maintain_ms = 1e100;
    p.recompute_ms = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<std::vector<Value>> delta_rows;
      delta_rows.reserve(batch_rows);
      for (size_t i = 0; i < batch_rows; ++i) {
        delta_rows.push_back(current->Row(rng.Uniform(current->num_rows())));
      }
      auto batch = ingestor.AppendBatch(base->name(), delta_rows);
      if (!batch.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     batch.status().ToString().c_str());
        return 1;
      }
      const auto t0 = Clock::now();
      auto report =
          maintainer.ApplyDelta(batch->delta, batch->base, schema,
                                batch->version);
      if (!report.ok() || report->entries_dropped != 0) {
        std::fprintf(stderr, "maintenance failed\n");
        return 1;
      }
      p.maintain_ms = std::min(p.maintain_ms, Seconds(t0) * 1e3);
      p.rollup_reuses = report->rollup_reuses;

      // Cold rebuild of the same aggregates over the grown base — what the
      // invalidate path would pay on the next warm request set.
      const auto t1 = Clock::now();
      ExecContext ctx;
      QueryExecutor exec(&ctx, ScanMode::kColumnar, 4);
      for (const Maintained& m : sets) {
        auto q =
            BuildGroupByOver(*batch->base, true, schema, m.columns, m.aggs);
        if (!q.ok()) return 1;
        auto t = exec.ExecuteGroupBy(*batch->base, *q, "cold");
        if (!t.ok()) return 1;
      }
      p.recompute_ms = std::min(p.recompute_ms, Seconds(t1) * 1e3);

      // Retire the old generation (no readers in this bench).
      if (version > 0) {
        (void)catalog.Drop(current->name());
      }
      current = batch->base;
      version = batch->version;
    }
    p.speedup = p.maintain_ms > 0 ? p.recompute_ms / p.maintain_ms : 0;
    points.push_back(p);
    std::printf("    %10zu %14.3f %14.3f %9.1fx %8llu\n", p.batch_rows,
                p.maintain_ms, p.recompute_ms, p.speedup,
                static_cast<unsigned long long>(p.rollup_reuses));
  }
  // The gate: small batches must be an order of magnitude cheaper to
  // maintain than to recompute.
  bool small_batch_win = true;
  for (const BatchPoint& p : points) {
    if (p.batch_rows <= 100 && p.speedup < 10.0) small_batch_win = false;
  }
  std::printf("    %-28s %10s\n", "small-batch speedup >= 10x",
              small_batch_win ? "yes" : "NO");

  // ---- (b) warm-hit rate under steady ingest -------------------------------
  const char* kSpec = "SINGLE(l_returnflag, l_linestatus, l_shipmode)";
  const int kRounds = 10;
  const int kRowsPerRound = 200;
  SteadyPoint steady;
  steady.rounds = kRounds;
  for (const bool incremental : {true, false}) {
    ServerOptions options;
    options.incremental_maintenance = incremental;
    options.refresh_stats_on_ingest = false;
    Server server(base, options);
    if (!server.Execute(kSpec).ok()) return 1;  // warm at v0
    const AggregateCacheStats warm0 = server.stats().cache;
    Rng ingest_rng(31);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::vector<Value>> batch;
      for (int i = 0; i < kRowsPerRound; ++i) {
        batch.push_back(base->Row(ingest_rng.Uniform(base->num_rows())));
      }
      if (!server.AppendBatch(batch).ok()) return 1;
      if (!server.Execute(kSpec).ok()) return 1;
    }
    const AggregateCacheStats cs = server.stats().cache;
    const uint64_t lookups = (cs.hits - warm0.hits) + (cs.misses - warm0.misses);
    const double hit_rate =
        lookups == 0 ? 0 : static_cast<double>(cs.hits - warm0.hits) / lookups;
    if (incremental) {
      steady.incremental_hit_rate = hit_rate;
      steady.refreshes = cs.refreshes;
    } else {
      steady.invalidate_hit_rate = hit_rate;
    }
  }
  std::printf("\n(b) steady ingest, %d rounds x %d rows, spec repeated\n",
              kRounds, kRowsPerRound);
  std::printf("    %-28s %9.1f%%  (%llu entry refreshes)\n",
              "hit rate, incremental", 100.0 * steady.incremental_hit_rate,
              static_cast<unsigned long long>(steady.refreshes));
  std::printf("    %-28s %9.1f%%\n", "hit rate, invalidate-on-ingest",
              100.0 * steady.invalidate_hit_rate);
  const bool warm_survives = steady.incremental_hit_rate >= 0.99;

#ifdef GBMQO_REPO_ROOT
  const std::string json_path =
      std::string(GBMQO_REPO_ROOT) + "/BENCH_incremental.json";
#else
  const std::string json_path = "BENCH_incremental.json";
#endif
  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"rows\": %zu,\n"
                "  \"maintained_aggregates\": %zu,\n"
                "  \"small_batch_speedup_ok\": %s,\n"
                "  \"batches\": [\n",
                rows, sets.size(), small_batch_win ? "true" : "false");
  json += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"batch_rows\": %zu, \"maintain_ms\": %.3f, "
                  "\"recompute_ms\": %.3f, \"speedup\": %.2f, "
                  "\"rollup_reuses\": %llu}%s\n",
                  points[i].batch_rows, points[i].maintain_ms,
                  points[i].recompute_ms, points[i].speedup,
                  static_cast<unsigned long long>(points[i].rollup_reuses),
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  ],\n"
                "  \"steady_ingest\": {\"rounds\": %d, "
                "\"incremental_hit_rate\": %.4f, "
                "\"invalidate_hit_rate\": %.4f, \"refreshes\": %llu}\n}\n",
                steady.rounds, steady.incremental_hit_rate,
                steady.invalidate_hit_rate,
                static_cast<unsigned long long>(steady.refreshes));
  json += buf;
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return small_batch_win && warm_survives ? 0 : 1;
}
