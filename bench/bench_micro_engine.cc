// Engine microbenchmarks (google-benchmark): aggregation strategies, shared
// scans, the group hash table, and optimizer scaling. Not a paper artifact —
// these characterize the substrate the experiments run on.
#include <benchmark/benchmark.h>

#include "core/gbmqo.h"
#include "data/tpch_gen.h"
#include "exec/predicate.h"

namespace gbmqo {
namespace {

const Table& SharedLineitem() {
  static TablePtr table = GenerateLineitem({.rows = 100000});
  return *table;
}

void BM_HashAggregate(benchmark::State& state) {
  const Table& t = SharedLineitem();
  GroupByQuery q{ColumnSet::Single(static_cast<int>(state.range(0))),
                 {AggregateSpec::CountStar()}};
  for (auto _ : state) {
    ExecContext ctx;
    QueryExecutor exec(&ctx);
    auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.num_rows()));
}
BENCHMARK(BM_HashAggregate)
    ->Arg(kReturnflag)   // 3 groups
    ->Arg(kShipdate)     // ~2.5k groups
    ->Arg(kComment);     // near-unique

void BM_HashAggregateSimdTier(benchmark::State& state) {
  // Arg(0) pins the scalar tier; Arg(1) runs the detected SIMD tier.
  // Results and counters are bit-identical — the delta is pure hot-loop
  // speed (key formation, tagged probe, columnar accumulate).
  const Table& t = SharedLineitem();
  GroupByQuery q{ColumnSet::Single(kShipdate), {AggregateSpec::CountStar()}};
  for (auto _ : state) {
    ExecContext ctx;
    QueryExecutor exec(&ctx);
    exec.set_force_scalar(state.range(0) == 0);
    auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.num_rows()));
}
BENCHMARK(BM_HashAggregateSimdTier)->Arg(0)->Arg(1);

void BM_ApplyFilterSimdTier(benchmark::State& state) {
  // Columnar selection across tiers: three numeric conjuncts over the
  // shared lineitem table, bitmap pipeline scalar vs detected SIMD.
  const Table& t = SharedLineitem();
  Predicate p;
  p.And({kQuantity, CompareOp::kLt, Value(10)})
      .And({kExtendedprice, CompareOp::kGe, Value(1000.0)});
  const SimdLevel level =
      state.range(0) == 0 ? SimdLevel::kScalar : DetectedSimdLevel();
  for (auto _ : state) {
    auto r = ApplyFilter(t, p, "f", nullptr, level);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.num_rows()));
}
BENCHMARK(BM_ApplyFilterSimdTier)->Arg(0)->Arg(1);

void BM_SortAggregate(benchmark::State& state) {
  const Table& t = SharedLineitem();
  GroupByQuery q{ColumnSet::Single(static_cast<int>(state.range(0))),
                 {AggregateSpec::CountStar()}};
  for (auto _ : state) {
    ExecContext ctx;
    QueryExecutor exec(&ctx);
    auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kSort);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.num_rows()));
}
BENCHMARK(BM_SortAggregate)->Arg(kReturnflag)->Arg(kShipdate);

void BM_IndexStreamAggregate(benchmark::State& state) {
  static TablePtr indexed = [] {
    TablePtr t = GenerateLineitem({.rows = 100000});
    (void)t->CreateIndex(ColumnSet::Single(kShipdate));
    return t;
  }();
  GroupByQuery q{ColumnSet::Single(kShipdate), {AggregateSpec::CountStar()}};
  for (auto _ : state) {
    ExecContext ctx;
    QueryExecutor exec(&ctx);
    auto r = exec.ExecuteGroupBy(*indexed, q, "out", AggStrategy::kIndexStream);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexStreamAggregate);

void BM_SharedScanVsSeparate(benchmark::State& state) {
  const Table& t = SharedLineitem();
  const bool shared = state.range(0) == 1;
  std::vector<GroupByQuery> queries;
  std::vector<std::string> names;
  for (int c : {kReturnflag, kLinestatus, kShipmode, kShipinstruct}) {
    queries.push_back({ColumnSet::Single(c), {AggregateSpec::CountStar()}});
    names.push_back("out" + std::to_string(c));
  }
  for (auto _ : state) {
    ExecContext ctx;
    QueryExecutor exec(&ctx);
    if (shared) {
      auto r = exec.ExecuteSharedScan(t, queries, names);
      benchmark::DoNotOptimize(r);
    } else {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = exec.ExecuteGroupBy(t, queries[i], names[i]);
        benchmark::DoNotOptimize(r);
      }
    }
  }
}
BENCHMARK(BM_SharedScanVsSeparate)->Arg(0)->Arg(1);

void BM_OptimizeSingleColumn(benchmark::State& state) {
  const Table& t = SharedLineitem();
  // Shared-sample statistics: joint-cardinality requests during the search
  // cost a cheap sample pass, so the benchmark isolates search time.
  StatisticsManager stats(t, DistinctMode::kSampled, 20000);
  WhatIfProvider whatif(&stats);
  std::vector<int> cols = LineitemAnalysisColumns();
  cols.resize(static_cast<size_t>(state.range(0)));
  auto requests = SingleColumnRequests(cols);
  for (const auto& r : requests) stats.Get(r.columns);
  for (auto _ : state) {
    OptimizerCostModel model(t);
    GbMqoOptimizer opt(&model, &whatif);
    auto r = opt.Optimize(requests);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeSingleColumn)->Arg(4)->Arg(8)->Arg(12);

void BM_DistinctEstimation(benchmark::State& state) {
  const Table& t = SharedLineitem();
  const bool sampled = state.range(0) == 1;
  for (auto _ : state) {
    uint64_t d = sampled
                     ? SampledDistinctCount(t, {kShipdate, kCommitdate}, 10000)
                     : ExactDistinctCount(t, {kShipdate, kCommitdate});
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DistinctEstimation)->Arg(0)->Arg(1);

}  // namespace
}  // namespace gbmqo

BENCHMARK_MAIN();
