// Concurrent serving bench: the cross-request aggregate cache and the
// worker-pool serving layer (api/server.h).
//
//  (a) Hit-vs-miss latency — one client repeats an identical request set
//      against a warm cache: the first (cold) execution computes and pins
//      every aggregate, every repeat is served from the pinned views. The
//      content checksum proves warm results are bit-identical to cold
//      execution, and catalog temp bytes are checked against the
//      pinned-cache baseline after every request.
//  (b) Throughput vs concurrent clients — {1, 2, 4, 8} clients each push a
//      stream of rotating request sets through one server, cache on vs
//      cache off, with the hit rate reported for the cached runs.
//
// Emits BENCH_serving.json at the repo root after the tables.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/server.h"
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;

/// FNV-1a over every cell of every result table in canonical order.
uint64_t ContentChecksum(const ExecutionResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [cols, table] : r.results) {
    mix(cols.ToString());
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (int c = 0; c < table->schema().num_columns(); ++c) {
        mix(table->column(c).ValueAt(row).ToString());
      }
    }
  }
  return h;
}

const std::vector<std::string>& ClientSpecs() {
  static const std::vector<std::string> specs = {
      "SINGLE(l_returnflag, l_linestatus, l_shipmode, l_shipinstruct)",
      "PAIRS(l_returnflag, l_linestatus, l_shipmode)",
      "SINGLE(l_quantity, l_tax, l_discount)",
      "(l_returnflag, l_shipmode), (l_linestatus, l_shipinstruct)",
  };
  return specs;
}

struct ThroughputPoint {
  int clients = 0;
  double cached_rps = 0;
  double uncached_rps = 0;
  double hit_rate = 0;  // of the cached run
};

/// `clients` threads each execute `per_client` rotating request sets.
/// Returns requests/second and, for cached servers, the final hit rate.
ThroughputPoint MeasureThroughput(const TablePtr& base, int clients,
                                  int per_client, bool cache_on) {
  ServerOptions options;
  options.pool_size = clients;
  options.enable_aggregate_cache = cache_on;
  options.coalesce_identical_requests = false;  // measure real executions
  options.session.parallelism = 2;
  Server server(base, options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const std::string& spec =
            ClientSpecs()[(c + i) % ClientSpecs().size()];
        auto r = server.Execute(spec);
        if (!r.ok()) {
          std::fprintf(stderr, "serving failed: %s\n",
                       r.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ThroughputPoint p;
  p.clients = clients;
  const double rps = clients * per_client / seconds;
  if (cache_on) {
    p.cached_rps = rps;
    const AggregateCacheStats cs = server.stats().cache;
    const uint64_t lookups = cs.hits + cs.misses;
    p.hit_rate = lookups == 0 ? 0 : static_cast<double>(cs.hits) / lookups;
  } else {
    p.uncached_rps = rps;
  }
  return p;
}

}  // namespace
}  // namespace gbmqo

int main() {
  using namespace gbmqo;

  const size_t rows = bench::RowsFromEnv(500000);
  Banner("bench_serving: concurrent serving + cross-request aggregate cache",
         "this repo's serving layer (api/server.h)");
  std::printf("rows=%zu (set GBMQO_ROWS to change)\n\n", rows);

  TablePtr lineitem = GenerateLineitem({.rows = rows, .seed = 11});

  // ---- (a) hit-vs-miss latency on an identical repeated request set -------
  const char* kRepeatSpec =
      "SINGLE(l_returnflag, l_linestatus, l_shipmode, l_shipinstruct)";
  double cold_ms = 0, warm_ms = 1e100;
  uint64_t cold_checksum = 0;
  bool identical = true, baseline_ok = true;
  uint64_t warm_hits = 0, warm_misses = 0;
  {
    Server server(lineitem);
    auto cold = server.Execute(kRepeatSpec);
    if (!cold.ok()) {
      std::fprintf(stderr, "cold run failed: %s\n",
                   cold.status().ToString().c_str());
      return 1;
    }
    cold_ms = cold->wall_seconds * 1e3;
    cold_checksum = ContentChecksum(*cold);
    baseline_ok &=
        server.catalog()->temp_bytes() == server.cache()->pinned_bytes();
    for (int rep = 0; rep < 5; ++rep) {
      auto warm = server.Execute(kRepeatSpec);
      if (!warm.ok()) {
        std::fprintf(stderr, "warm run failed: %s\n",
                     warm.status().ToString().c_str());
        return 1;
      }
      warm_ms = std::min(warm_ms, warm->wall_seconds * 1e3);
      identical &= ContentChecksum(*warm) == cold_checksum;
      baseline_ok &=
          server.catalog()->temp_bytes() == server.cache()->pinned_bytes();
      warm_hits = warm->counters.cache_hits;
      warm_misses = warm->counters.cache_misses;
    }
  }
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  std::printf("(a) identical request set, cache enabled\n");
  std::printf("    %-28s %10.3f ms\n", "cold (computes + pins)", cold_ms);
  std::printf("    %-28s %10.3f ms   (min of 5)\n", "warm (served from cache)",
              warm_ms);
  std::printf("    %-28s %9.1fx\n", "hit speedup", speedup);
  std::printf("    %-28s %10llu hits, %llu misses per warm request\n",
              "cache counters",
              static_cast<unsigned long long>(warm_hits),
              static_cast<unsigned long long>(warm_misses));
  std::printf("    %-28s %10s\n", "warm == cold content",
              identical ? "yes" : "NO");
  std::printf("    %-28s %10s\n", "temp bytes == pinned bytes",
              baseline_ok ? "yes" : "NO");

  // ---- (b) throughput vs concurrent clients, cache on/off ------------------
  const int per_client = 6;
  std::vector<ThroughputPoint> points;
  std::printf("\n(b) throughput vs concurrent clients (%d requests each)\n",
              per_client);
  std::printf("    %8s %14s %14s %10s\n", "clients", "cache on (r/s)",
              "cache off (r/s)", "hit rate");
  for (const int clients : {1, 2, 4, 8}) {
    ThroughputPoint on = MeasureThroughput(lineitem, clients, per_client, true);
    ThroughputPoint off =
        MeasureThroughput(lineitem, clients, per_client, false);
    on.uncached_rps = off.uncached_rps;
    points.push_back(on);
    std::printf("    %8d %14.2f %14.2f %9.1f%%\n", clients, on.cached_rps,
                on.uncached_rps, 100.0 * on.hit_rate);
  }

#ifdef GBMQO_REPO_ROOT
  const std::string json_path =
      std::string(GBMQO_REPO_ROOT) + "/BENCH_serving.json";
#else
  const std::string json_path = "BENCH_serving.json";
#endif
  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"rows\": %zu,\n"
                "  \"cold_ms\": %.3f,\n"
                "  \"warm_ms\": %.3f,\n"
                "  \"hit_speedup\": %.2f,\n"
                "  \"warm_bit_identical\": %s,\n"
                "  \"temp_bytes_baseline_ok\": %s,\n"
                "  \"throughput\": [\n",
                rows, cold_ms, warm_ms, speedup, identical ? "true" : "false",
                baseline_ok ? "true" : "false");
  json += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %d, \"cache_on_rps\": %.2f, "
                  "\"cache_off_rps\": %.2f, \"hit_rate\": %.4f}%s\n",
                  points[i].clients, points[i].cached_rps,
                  points[i].uncached_rps, points[i].hit_rate,
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return identical && baseline_ok && speedup >= 2.0 ? 0 : 1;
}
