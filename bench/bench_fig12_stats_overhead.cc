// Figure 12 (Section 6.7): statistics-creation overhead, defined as the
// time to create statistics as a percentage of the run-time savings of the
// GB-MQO plan over the naive plan. SC and TC on the 1g and (scaled) 10g
// lineitem analogs, no pre-existing statistics, subsumption pruning on.
// Paper: 1%-15%, shrinking as data grows.
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;

void RunCase(const char* label, const TablePtr& table,
             const std::vector<GroupByRequest>& requests) {
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  // Fresh StatisticsManager: no statistics exist at the start, exactly as in
  // the experiment. Sampled statistics (fixed-size sample, as CREATE
  // STATISTICS defaults to) are created lazily as the search first touches
  // each column set, with creation time metered — so the statistics cost
  // stays roughly flat while plan savings grow with the data.
  StatisticsManager stats(*table, DistinctMode::kSampled, 20000);
  WhatIfProvider whatif(&stats);

  OptimizerCostModel model(*table);
  OptimizerOptions opts;
  opts.subsumption_pruning = true;
  OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests, opts);

  const RunOutcome naive =
      RunPlan(&catalog, table->name(), NaivePlan(requests), requests);
  const RunOutcome ours =
      RunPlan(&catalog, table->name(), opt.plan, requests);

  // Savings are estimated from the deterministic work ratio applied to the
  // naive wall time; raw wall differences at laptop scale are noise-prone.
  const double work_ratio =
      naive.work_units > 0 ? ours.work_units / naive.work_units : 1.0;
  const double savings = naive.exec_seconds * (1.0 - work_ratio);
  const double pct =
      savings > 0 ? 100.0 * stats.creation_seconds() / savings : -1.0;
  std::printf("%-12s | stats: %3llu objects, %7.3fs | naive %7.3fs, est. "
              "savings %7.3fs | overhead %.1f%%\n",
              label,
              static_cast<unsigned long long>(stats.statistics_created()),
              stats.creation_seconds(), naive.exec_seconds, savings, pct);
}

void Run() {
  const size_t rows_1g = bench::RowsFromEnv(150000);
  const size_t rows_10g = rows_1g * 5;
  Banner("Figure 12 — statistics creation time vs running-time savings",
         "Chen & Narasayya, SIGMOD'05, Section 6.7, Figure 12 "
         "(paper: 'a small fraction', smaller for larger datasets)");
  std::printf("rows: 1g-analog=%zu, 10g-analog=%zu\n\n", rows_1g, rows_10g);

  TablePtr tpch1 = GenerateLineitem({.rows = rows_1g});
  TablePtr tpch10 = GenerateLineitem({.rows = rows_10g, .seed = 43});
  RunCase("tpch-1g SC", tpch1, SingleColumnRequests(LineitemAnalysisColumns()));
  RunCase("tpch-1g TC", tpch1, TwoColumnRequests(LineitemAnalysisColumns()));
  RunCase("tpch-10g SC", tpch10,
          SingleColumnRequests(LineitemAnalysisColumns()));
  RunCase("tpch-10g TC", tpch10, TwoColumnRequests(LineitemAnalysisColumns()));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
