// Intra-query parallel aggregation: speedup vs worker threads for the
// morsel-driven hash-aggregation engine (QueryExecutor::parallelism), on
//  (a) one 1M-row hash aggregation, and
//  (b) a shared-scan batch of four group-bys over the same scan.
// Alongside wall-clock speedup, every run's WorkCounters are compared
// bit-for-bit against the 1-thread run: the fixed shard/partition layout
// makes them identical at any thread count (see DESIGN.md). Emits a JSON
// object (speedup vs threads) after the human-readable table.
#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "data/sales_gen.h"
#include "exec/query_executor.h"

namespace gbmqo {
namespace {

using bench::Banner;

bool CountersEqual(const WorkCounters& a, const WorkCounters& b) {
  return a.rows_scanned == b.rows_scanned &&
         a.bytes_scanned == b.bytes_scanned &&
         a.rows_emitted == b.rows_emitted &&
         a.bytes_materialized == b.bytes_materialized &&
         a.hash_probes == b.hash_probes && a.rows_sorted == b.rows_sorted &&
         a.queries_executed == b.queries_executed &&
         a.agg_cpu_units == b.agg_cpu_units &&
         a.scan_touch_checksum == b.scan_touch_checksum;
}

struct Sample {
  int threads = 1;
  double seconds = 0;
  WorkCounters counters;
};

/// Runs `fn` (which charges work to a fresh ExecContext it is given)
/// `reps` times; keeps the minimum wall time and the last counters.
template <typename Fn>
Sample Measure(int threads, int reps, Fn&& fn) {
  Sample s;
  s.threads = threads;
  s.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    ExecContext ctx;
    WallTimer timer;
    fn(&ctx, threads);
    s.seconds = std::min(s.seconds, timer.ElapsedSeconds());
    s.counters = ctx.counters();
  }
  return s;
}

void PrintRows(const char* title, const std::vector<Sample>& samples) {
  std::printf("\n%s\n", title);
  std::printf("%-8s | %-12s | %-8s | %s\n", "threads", "seconds", "speedup",
              "counters == 1-thread");
  for (const Sample& s : samples) {
    std::printf("%-8d | %-12.4f | %-8.2f | %s\n", s.threads, s.seconds,
                bench::Speedup(samples.front().seconds, s.seconds),
                CountersEqual(samples.front().counters, s.counters) ? "yes"
                                                                    : "NO");
  }
}

void PrintJsonSeries(const char* key, const std::vector<Sample>& samples,
                     bool last) {
  std::printf("  \"%s\": [", key);
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::printf("%s\n    {\"threads\": %d, \"seconds\": %.6f, "
                "\"speedup\": %.3f, \"hash_probes\": %llu, "
                "\"counters_match\": %s}",
                i == 0 ? "" : ",", s.threads, s.seconds,
                bench::Speedup(samples.front().seconds, s.seconds),
                static_cast<unsigned long long>(s.counters.hash_probes),
                CountersEqual(samples.front().counters, s.counters)
                    ? "true"
                    : "false");
  }
  std::printf("\n  ]%s\n", last ? "" : ",");
}

void Run() {
  const size_t rows = bench::RowsFromEnv(1000000);
  Banner("Parallel aggregation — speedup vs worker threads",
         "engine study (morsel-driven parallelism; not a paper figure)");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("rows=%zu, hardware_concurrency=%u\n", rows, hw);
  if (hw < 4) {
    std::printf("note: <4 cores visible; multi-thread wall speedups will "
                "not materialize here (counters equality still holds)\n");
  }

  TablePtr sales = GenerateSales({.rows = rows});
  const int kThreads[] = {1, 2, 4, 8};
  const int reps = 3;

  // (a) one hash aggregation: GROUP BY (category, brand) with COUNT(*) and
  // SUM(quantity) — a moderate-cardinality group set, so the scan and the
  // per-morsel table builds dominate.
  GroupByQuery single;
  single.grouping = ColumnSet::Single(kCategory).With(kBrand);
  single.aggregates.push_back(AggregateSpec::CountStar("cnt"));
  single.aggregates.push_back(AggregateSpec::Sum(kSalesQuantity, "sum_qty"));

  std::vector<Sample> single_samples;
  for (int t : kThreads) {
    single_samples.push_back(Measure(t, reps, [&](ExecContext* ctx, int th) {
      QueryExecutor exec(ctx, ScanMode::kRowStore, th);
      auto r = exec.ExecuteGroupBy(*sales, single, "out");
      if (!r.ok()) std::exit(1);
    }));
  }
  PrintRows("(a) single hash aggregation: category x brand", single_samples);

  // (b) shared-scan batch: four group-bys over one scan of sales.
  std::vector<GroupByQuery> batch(4);
  batch[0].grouping = ColumnSet::Single(kStoreId);
  batch[1].grouping = ColumnSet::Single(kCategory).With(kSubcategory);
  batch[2].grouping = ColumnSet::Single(kState).With(kChannel);
  batch[3].grouping = ColumnSet::Single(kBrand);
  for (GroupByQuery& q : batch) {
    q.aggregates.push_back(AggregateSpec::CountStar("cnt"));
  }
  const std::vector<std::string> names = {"q0", "q1", "q2", "q3"};

  std::vector<Sample> shared_samples;
  for (int t : kThreads) {
    shared_samples.push_back(Measure(t, reps, [&](ExecContext* ctx, int th) {
      QueryExecutor exec(ctx, ScanMode::kRowStore, th);
      auto r = exec.ExecuteSharedScan(*sales, batch, names);
      if (!r.ok()) std::exit(1);
    }));
  }
  PrintRows("(b) shared-scan batch of 4 group-bys", shared_samples);

  std::printf("\n{\n");
  std::printf("  \"bench\": \"parallel_agg\",\n");
  std::printf("  \"rows\": %zu,\n", rows);
  std::printf("  \"hardware_concurrency\": %u,\n", hw);
  PrintJsonSeries("single_query", single_samples, /*last=*/false);
  PrintJsonSeries("shared_scan", shared_samples, /*last=*/true);
  std::printf("}\n");
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
