// Table 2 (Section 6.1): speedup of GB-MQO over GROUPING SETS on TPC-H
// lineitem, for two inputs:
//   SC   — the 12 single-column Group By queries (little overlap): the
//          commercial GROUPING SETS plan spools the union group-by, which is
//          nearly as large as the table; GB-MQO wins ~4.5x in the paper.
//   CONT — the containment-heavy date workload: GROUPING SETS shares sorts
//          and the two approaches are comparable (paper: 1.04x).
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;
using bench::Speedup;

void RunCase(const char* name, Catalog* catalog, const TablePtr& table,
             const std::vector<GroupByRequest>& requests) {
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);

  GroupingSetsPlanner gs_planner;
  auto gs_plan = gs_planner.Plan(requests, table->schema());
  if (!gs_plan.ok()) {
    std::fprintf(stderr, "grouping sets planning failed\n");
    std::exit(1);
  }
  const RunOutcome gs = RunPlan(catalog, table->name(), *gs_plan, requests);

  OptimizerCostModel model(*table);
  OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests);
  const RunOutcome ours = RunPlan(catalog, table->name(), opt.plan, requests);

  std::printf("%-5s | GrpSet %8.3fs (%11.0f wu) | GB-MQO %8.3fs (%11.0f wu) "
              "| speedup %.2fx wall, %.2fx work, %.2fx scan-bound\n",
              name, gs.exec_seconds, gs.work_units, ours.exec_seconds,
              ours.work_units, Speedup(gs.exec_seconds, ours.exec_seconds),
              Speedup(gs.work_units, ours.work_units),
              bench::ScanBoundSpeedup(gs, ours));
  std::printf("      GB-MQO plan: %s\n", opt.plan.ToString().c_str());
}

void Run() {
  const size_t rows = bench::RowsFromEnv(300000);
  Banner("Table 2 — speedup over GROUPING SETS (TPC-H lineitem)",
         "Chen & Narasayya, SIGMOD'05, Section 6.1, Table 2 "
         "(paper: CONT comparable ~1x, SC about 4.5x)");
  std::printf("rows=%zu (set GBMQO_ROWS to change)\n\n", rows);

  TablePtr lineitem = GenerateLineitem({.rows = rows});
  Catalog catalog;
  if (!catalog.RegisterBase(lineitem).ok()) std::exit(1);

  // CONT: the three date columns, singles and pairs.
  std::vector<GroupByRequest> cont = {
      GroupByRequest::Count({kShipdate}),
      GroupByRequest::Count({kCommitdate}),
      GroupByRequest::Count({kReceiptdate}),
      GroupByRequest::Count({kShipdate, kCommitdate}),
      GroupByRequest::Count({kShipdate, kReceiptdate}),
      GroupByRequest::Count({kCommitdate, kReceiptdate}),
  };
  RunCase("CONT", &catalog, lineitem, cont);

  // SC: all 12 single-column analysis queries.
  RunCase("SC", &catalog, lineitem,
          SingleColumnRequests(LineitemAnalysisColumns()));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
