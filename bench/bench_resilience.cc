// Resilience-layer overhead and recovery bench.
//
//  (a) Dormant-hook overhead — the fault-site markers compiled into the
//      execution path cost one relaxed atomic load and a predictable branch
//      when no injector is installed. A single binary cannot time the
//      markers against a marker-free build, so the dormant cost is bounded
//      two ways: (1) a microbenchmark of the marker itself (ns per dormant
//      check) multiplied by the number of checks one workload run performs
//      (counted exactly by an armed-at-zero injector), as a fraction of the
//      workload's wall time; (2) the measured wall-time delta between a
//      dormant run and a run with an injector installed but every site at
//      probability zero — an upper bound, since the armed run additionally
//      pays the key hash and counter increments the dormant path skips.
//  (b) Recovery cost — the same workload under task-start faults with the
//      retry ladder absorbing them: wall time, retries, and a content
//      checksum proving the recovered results match the fault-free run.
//
// Emits BENCH_resilience.json at the repo root after the tables.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault_injector.h"
#include "data/sales_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;

/// FNV-1a over every cell of every result table in canonical order.
uint64_t ContentChecksum(const ExecutionResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [cols, table] : r.results) {
    mix(cols.ToString());
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (int c = 0; c < table->schema().num_columns(); ++c) {
        mix(table->column(c).ValueAt(row).ToString());
      }
    }
  }
  return h;
}

struct Outcome {
  double seconds = 1e100;       // min over reps
  uint64_t checksum = 0;
  uint64_t retried = 0;
  uint64_t degraded = 0;
};

Outcome RunWorkload(Catalog* catalog, const LogicalPlan& plan,
                    const std::vector<GroupByRequest>& requests, int reps,
                    int retries = 0, bool fusion = true) {
  Outcome out;
  for (int rep = 0; rep < reps; ++rep) {
    PlanExecutor exec(catalog, "sales", ScanMode::kRowStore, 4);
    exec.set_fusion_enabled(fusion);
    exec.set_max_task_retries(retries);
    auto r = exec.Execute(plan, requests);
    if (!r.ok()) {
      std::fprintf(stderr, "plan execution failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    out.seconds = std::min(out.seconds, r->wall_seconds);
    out.checksum = ContentChecksum(*r);
    out.retried = r->counters.tasks_retried;
    out.degraded = r->counters.tasks_degraded;
  }
  return out;
}

/// ns per dormant GBMQO_INJECT_FAULT evaluation (no injector installed).
/// The accumulated result feeds a volatile sink so the loop cannot fold.
double DormantCheckNanos() {
  constexpr uint64_t kIters = 50'000'000;
  uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kIters; ++i) {
    fired += GBMQO_INJECT_FAULT(FaultSite::kTaskStart, i) ? 1 : 0;
  }
  const auto end = std::chrono::steady_clock::now();
  volatile uint64_t sink = fired;
  (void)sink;
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(kIters);
}

}  // namespace
}  // namespace gbmqo

int main() {
  using namespace gbmqo;

  const size_t rows = bench::RowsFromEnv(1000000);
  Banner("bench_resilience: fault-site hook overhead + retry recovery",
         "this repo's execution resilience layer (dormant cost < 1%)");
  std::printf("rows=%zu (set GBMQO_ROWS to change)\n", rows);

  TablePtr sales = GenerateSales({.rows = rows, .seed = 7});
  Catalog catalog;
  if (!catalog.RegisterBase(sales).ok()) return 1;
  LogicalPlan plan;
  std::vector<GroupByRequest> requests;
  for (const int c : {kRegion, kState, kCategory, kSubcategory, kChannel,
                      kPaymentType}) {
    PlanNode leaf;
    leaf.columns = ColumnSet{c};
    leaf.required = true;
    plan.subplans.push_back(leaf);
    requests.push_back(GroupByRequest::Count({c}));
  }
  const int kReps = 5;

  // ---- (a) dormant vs armed-at-zero ----------------------------------------
  const Outcome dormant = RunWorkload(&catalog, plan, requests, kReps);

  FaultInjector zero(1);  // installed, every site at probability 0
  uint64_t hook_checks = 0;
  Outcome armed_zero;
  {
    ScopedFaultInjection scoped(&zero);
    armed_zero = RunWorkload(&catalog, plan, requests, kReps);
    for (int s = 0; s < kNumFaultSites; ++s) {
      hook_checks += zero.hits(static_cast<FaultSite>(s));
    }
  }
  hook_checks /= kReps;  // per-run arrivals (identical each rep)

  const double check_ns = DormantCheckNanos();
  const double est_dormant_pct =
      dormant.seconds > 0
          ? (static_cast<double>(hook_checks) * check_ns * 1e-9) /
                dormant.seconds * 100.0
          : 0.0;
  const double armed_zero_pct =
      dormant.seconds > 0
          ? (armed_zero.seconds - dormant.seconds) / dormant.seconds * 100.0
          : 0.0;

  std::printf("\ndormant-hook overhead (fused fan-out, 4 workers)\n");
  std::printf("dormant run            : %10.4f s\n", dormant.seconds);
  std::printf("armed, all sites p=0   : %10.4f s (delta %+.3f%%)\n",
              armed_zero.seconds, armed_zero_pct);
  std::printf("hook checks per run    : %10llu\n",
              static_cast<unsigned long long>(hook_checks));
  std::printf("dormant check cost     : %10.2f ns/check\n", check_ns);
  std::printf("est. dormant overhead  : %10.6f %% of run (< 1%%: %s)\n",
              est_dormant_pct, est_dormant_pct < 1.0 ? "yes" : "NO");

  // ---- (b) recovery under task-start faults --------------------------------
  // Unfused so the workload is six independent tasks, each drawing its own
  // task-start fault (fused, all six collapse into one draw). The fault-free
  // reference for the wall-time ratio is the same unfused workload.
  const Outcome unfused = RunWorkload(&catalog, plan, requests, kReps,
                                      /*retries=*/0, /*fusion=*/false);
  FaultInjector faults(42);
  faults.ArmProbability(FaultSite::kTaskStart, 0.30);
  Outcome faulty;
  {
    ScopedFaultInjection scoped(&faults);
    faulty = RunWorkload(&catalog, plan, requests, kReps, /*retries=*/4,
                         /*fusion=*/false);
  }
  const bool content_ok =
      faulty.checksum == dormant.checksum && faulty.checksum == unfused.checksum;
  std::printf("\nrecovery (unfused, task_start p=0.30, 4 retries)\n");
  std::printf("fault-free run         : %10.4f s\n", unfused.seconds);
  std::printf("faulty run             : %10.4f s (%.2fx fault-free)\n",
              faulty.seconds,
              unfused.seconds > 0 ? faulty.seconds / unfused.seconds : 0.0);
  std::printf("tasks retried/degraded : %llu / %llu\n",
              static_cast<unsigned long long>(faulty.retried),
              static_cast<unsigned long long>(faulty.degraded));
  std::printf("result content         : %s\n",
              content_ok ? "identical to fault-free" : "DIFFERENT");

  // ---- JSON ----------------------------------------------------------------
#ifdef GBMQO_REPO_ROOT
  const std::string json_path =
      std::string(GBMQO_REPO_ROOT) + "/BENCH_resilience.json";
#else
  const std::string json_path = "BENCH_resilience.json";
#endif
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"rows\": %zu,\n"
      "  \"dormant_seconds\": %.6f,\n"
      "  \"armed_zero_seconds\": %.6f,\n"
      "  \"armed_zero_delta_pct\": %.4f,\n"
      "  \"hook_checks_per_run\": %llu,\n"
      "  \"dormant_check_ns\": %.3f,\n"
      "  \"estimated_dormant_overhead_pct\": %.6f,\n"
      "  \"dormant_overhead_below_1pct\": %s,\n"
      "  \"unfused_fault_free_seconds\": %.6f,\n"
      "  \"faulty_seconds\": %.6f,\n"
      "  \"faulty_tasks_retried\": %llu,\n"
      "  \"faulty_tasks_degraded\": %llu,\n"
      "  \"recovered_content_identical\": %s\n"
      "}\n",
      rows, dormant.seconds, armed_zero.seconds, armed_zero_pct,
      static_cast<unsigned long long>(hook_checks), check_ns, est_dormant_pct,
      est_dormant_pct < 1.0 ? "true" : "false", unfused.seconds,
      faulty.seconds,
      static_cast<unsigned long long>(faulty.retried),
      static_cast<unsigned long long>(faulty.degraded),
      content_ok ? "true" : "false");

  std::printf("\n%s", buf);
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(buf, f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }
  return 0;
}
