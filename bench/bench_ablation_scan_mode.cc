// Ablation (not a paper artifact): how much of GB-MQO's benefit depends on
// the storage engine being a row store. The paper ran on SQL Server, where
// every scan of R pays the full row width; this engine can also run native
// columnar scans, which read only the referenced columns and therefore
// shrink the very redundancy GB-MQO eliminates. Expectation: large wall
// speedup under kRowStore, much smaller under kColumnar — quantifying the
// DESIGN.md substitution note.
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::Speedup;

double RunWall(Catalog* catalog, const LogicalPlan& plan,
               const std::vector<GroupByRequest>& requests, ScanMode mode) {
  PlanExecutor exec(catalog, "lineitem", mode);
  auto r = exec.Execute(plan, requests);
  if (!r.ok()) std::exit(1);
  return r->wall_seconds;
}

void Run() {
  const size_t rows = bench::RowsFromEnv(300000);
  Banner("Ablation — row-store vs columnar scan cost",
         "DESIGN.md substitution note (engine substrate sensitivity)");
  std::printf("rows=%zu; SC workload\n\n", rows);

  TablePtr table = GenerateLineitem({.rows = rows});
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*table);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests);
  LogicalPlan naive = NaivePlan(requests);

  for (ScanMode mode : {ScanMode::kRowStore, ScanMode::kColumnar}) {
    const char* name = mode == ScanMode::kRowStore ? "row-store" : "columnar";
    const double tn = RunWall(&catalog, naive, requests, mode);
    const double to = RunWall(&catalog, opt.plan, requests, mode);
    std::printf("%-10s | naive %7.3fs | GB-MQO %7.3fs | wall speedup %.2fx\n",
                name, tn, to, Speedup(tn, to));
  }
  std::printf("\nGB-MQO's win comes from avoiding repeated full-width scans;"
              " a columnar\nengine already avoids them, so the gap narrows "
              "(the paper's substrate\nwas a row store).\n");
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
