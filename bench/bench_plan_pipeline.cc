// Node-level DAG pipeline bench: sibling shared-scan fusion and the
// storage-aware admission gate in PlanExecutor.
//
//  (a) Fan-out workload — six single-column Group Bys over a 1M-row,
//      15-column sales table (one parent scan, six siblings): wall-clock
//      speedup of fused (one shared scan) over unfused (one scan per
//      sibling) execution at plan parallelism 1 and 4.
//  (b) Determinism — the fused run's WorkCounters and result-content
//      checksum at 1/2/8 workers, compared bit-for-bit.
//  (c) Storage — realized vs estimated peak temp bytes on a root+pairs
//      plan over an all-int64 table: the Section 4.4 schedule estimate,
//      the admission-gated run (must stay <= estimate) and the ungated
//      fused run (exceeds it by design).
//
// Emits BENCH_plan_pipeline.json at the repo root after the tables.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/sales_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::Speedup;

struct PipelineOutcome {
  double seconds = 0;
  WorkCounters counters;
  uint64_t peak_temp_bytes = 0;
  uint64_t content_checksum = 0;
};

bool CountersEqual(const WorkCounters& a, const WorkCounters& b) {
  return a.rows_scanned == b.rows_scanned &&
         a.bytes_scanned == b.bytes_scanned &&
         a.rows_emitted == b.rows_emitted &&
         a.bytes_materialized == b.bytes_materialized &&
         a.hash_probes == b.hash_probes && a.rows_sorted == b.rows_sorted &&
         a.queries_executed == b.queries_executed &&
         a.agg_cpu_units == b.agg_cpu_units &&
         a.dense_kernel_rows == b.dense_kernel_rows &&
         a.packed_kernel_rows == b.packed_kernel_rows &&
         a.multiword_kernel_rows == b.multiword_kernel_rows &&
         a.scan_touch_checksum == b.scan_touch_checksum;
}

/// FNV-1a over every cell of every result table, in canonical (ColumnSet,
/// row, column) order — equal checksums mean bit-identical result content.
uint64_t ContentChecksum(const ExecutionResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [cols, table] : r.results) {
    mix(cols.ToString());
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (int c = 0; c < table->schema().num_columns(); ++c) {
        mix(table->column(c).ValueAt(row).ToString());
      }
    }
  }
  return h;
}

/// One full plan execution with the PR's knobs; `reps` keeps the minimum
/// wall time and the last run's counters/checksum (identical each rep).
PipelineOutcome RunPipeline(Catalog* catalog, const std::string& base,
                            const LogicalPlan& plan,
                            const std::vector<GroupByRequest>& requests,
                            int parallelism, bool fusion, int reps,
                            double budget = 0, WhatIfProvider* whatif = nullptr) {
  PipelineOutcome out;
  out.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    PlanExecutor exec(catalog, base, ScanMode::kRowStore, parallelism);
    exec.set_fusion_enabled(fusion);
    if (budget > 0 && whatif != nullptr) {
      exec.set_storage_budget(budget, whatif);
    }
    auto r = exec.Execute(plan, requests);
    if (!r.ok()) {
      std::fprintf(stderr, "plan execution failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    out.seconds = std::min(out.seconds, r->wall_seconds);
    out.counters = r->counters;
    out.peak_temp_bytes = r->peak_temp_bytes;
    out.content_checksum = ContentChecksum(*r);
  }
  return out;
}

/// Six fusable single-column siblings over the base relation.
LogicalPlan FanOutPlan(const std::vector<int>& cols) {
  LogicalPlan plan;
  for (int c : cols) {
    PlanNode leaf;
    leaf.columns = ColumnSet{c};
    leaf.required = true;
    plan.subplans.push_back(leaf);
  }
  return plan;
}

/// All-int64 base whose GROUP BY results realize the Section 4.4 estimates
/// to the byte (exact stats, 8-byte columns, COUNT(*) aggregates).
TablePtr MakeWideTable(size_t rows) {
  Schema schema({{"c0", DataType::kInt64, false},
                 {"c1", DataType::kInt64, false},
                 {"c2", DataType::kInt64, false}});
  TableBuilder b(schema);
  Rng rng(99);
  for (size_t i = 0; i < rows; ++i) {
    if (!b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(100))),
                      Value(static_cast<int64_t>(rng.Uniform(90))),
                      Value(static_cast<int64_t>(rng.Uniform(80)))})
             .ok()) {
      std::fprintf(stderr, "table build failed\n");
      std::exit(1);
    }
  }
  return *b.Build("wide");
}

/// Root {c0,c1,c2} feeding three materialized pair siblings (fusable over
/// the root), each serving one single-column leaf.
LogicalPlan WidePlan() {
  auto pair_node = [](std::initializer_list<int> cols, int leaf) {
    PlanNode n;
    n.columns = ColumnSet(cols);
    n.required = true;
    PlanNode l;
    l.columns = ColumnSet{leaf};
    l.required = true;
    n.children = {l};
    return n;
  };
  PlanNode root;
  root.columns = {0, 1, 2};
  root.required = true;
  root.children = {pair_node({0, 1}, 0), pair_node({1, 2}, 1),
                   pair_node({0, 2}, 2)};
  LogicalPlan plan;
  plan.subplans = {root};
  return plan;
}

std::vector<GroupByRequest> RequestsOf(const LogicalPlan& plan) {
  std::vector<GroupByRequest> out;
  std::vector<const PlanNode*> stack;
  for (const PlanNode& sub : plan.subplans) stack.push_back(&sub);
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (n->required) out.push_back(GroupByRequest::Count(n->columns));
    for (const PlanNode& c : n->children) stack.push_back(&c);
  }
  return out;
}

}  // namespace
}  // namespace gbmqo

int main() {
  using namespace gbmqo;

  const size_t rows = bench::RowsFromEnv(1000000);
  Banner("bench_plan_pipeline: DAG scheduling + shared-scan fusion",
         "Section 5.2 execution layer (this repo's PlanExecutor)");
  std::printf("rows=%zu (set GBMQO_ROWS to change)\n", rows);

  // ---- (a) fusion speedup on the fan-out workload --------------------------
  TablePtr sales = GenerateSales({.rows = rows, .seed = 7});
  Catalog catalog;
  if (!catalog.RegisterBase(sales).ok()) return 1;
  const std::vector<int> fan_cols = {kRegion,      kState,   kCategory,
                                     kSubcategory, kChannel, kPaymentType};
  const LogicalPlan fan_plan = FanOutPlan(fan_cols);
  const auto fan_requests = RequestsOf(fan_plan);

  std::printf("\nfan-out: %zu sibling group-bys over one %d-column scan\n",
              fan_cols.size(), sales->schema().num_columns());
  std::printf("%-8s | %-12s | %-12s | %s\n", "workers", "unfused s",
              "fused s", "fusion speedup");
  struct FusionRow {
    int workers;
    double unfused_s;
    double fused_s;
  };
  std::vector<FusionRow> fusion_rows;
  for (const int workers : {1, 4}) {
    const auto unfused = RunPipeline(&catalog, "sales", fan_plan, fan_requests,
                                     workers, /*fusion=*/false, /*reps=*/3);
    const auto fused = RunPipeline(&catalog, "sales", fan_plan, fan_requests,
                                   workers, /*fusion=*/true, /*reps=*/3);
    std::printf("%-8d | %-12.4f | %-12.4f | %.2fx\n", workers,
                unfused.seconds, fused.seconds,
                Speedup(unfused.seconds, fused.seconds));
    fusion_rows.push_back({workers, unfused.seconds, fused.seconds});
  }

  // ---- (b) fused determinism across worker counts --------------------------
  std::printf("\nfused determinism vs 1 worker\n");
  std::printf("%-8s | %-10s | %s\n", "workers", "counters", "content");
  const auto fused1 = RunPipeline(&catalog, "sales", fan_plan, fan_requests, 1,
                                  true, 1);
  bool deterministic = true;
  for (const int workers : {2, 8}) {
    const auto r = RunPipeline(&catalog, "sales", fan_plan, fan_requests,
                               workers, true, 1);
    const bool counters_ok = CountersEqual(fused1.counters, r.counters);
    const bool content_ok = fused1.content_checksum == r.content_checksum;
    deterministic = deterministic && counters_ok && content_ok;
    std::printf("%-8d | %-10s | %s\n", workers,
                counters_ok ? "identical" : "DIFFERENT",
                content_ok ? "identical" : "DIFFERENT");
  }

  // ---- (c) realized vs estimated peak storage ------------------------------
  const size_t wide_rows = std::max<size_t>(rows / 8, 10000);
  TablePtr wide = MakeWideTable(wide_rows);
  Catalog wide_catalog;
  if (!wide_catalog.RegisterBase(wide).ok()) return 1;
  StatisticsManager stats(*wide);
  WhatIfProvider whatif(&stats);
  LogicalPlan wide_plan = WidePlan();
  const auto wide_requests = RequestsOf(wide_plan);
  const double estimated = SchedulePlanStorage(&wide_plan, &whatif);

  const auto gated = RunPipeline(&wide_catalog, "wide", wide_plan,
                                 wide_requests, 4, /*fusion=*/false, 1,
                                 estimated, &whatif);
  const auto ungated = RunPipeline(&wide_catalog, "wide", wide_plan,
                                   wide_requests, 4, /*fusion=*/true, 1);
  std::printf("\nstorage (wide table, %zu rows)\n", wide_rows);
  std::printf("scheduled estimate : %12.0f bytes\n", estimated);
  std::printf("gated peak         : %12llu bytes (<= estimate: %s)\n",
              static_cast<unsigned long long>(gated.peak_temp_bytes),
              static_cast<double>(gated.peak_temp_bytes) <= estimated ? "yes"
                                                                     : "NO");
  std::printf("ungated fused peak : %12llu bytes\n",
              static_cast<unsigned long long>(ungated.peak_temp_bytes));

  // ---- JSON ----------------------------------------------------------------
#ifdef GBMQO_REPO_ROOT
  const std::string json_path =
      std::string(GBMQO_REPO_ROOT) + "/BENCH_plan_pipeline.json";
#else
  const std::string json_path = "BENCH_plan_pipeline.json";
#endif
  std::string json = "{\n  \"rows\": " + std::to_string(rows) +
                     ",\n  \"fusion\": [";
  for (size_t i = 0; i < fusion_rows.size(); ++i) {
    const FusionRow& fr = fusion_rows[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"workers\": %d, \"unfused_seconds\": %.6f, "
                  "\"fused_seconds\": %.6f, \"speedup\": %.3f}",
                  i == 0 ? "" : ",", fr.workers, fr.unfused_s, fr.fused_s,
                  Speedup(fr.unfused_s, fr.fused_s));
    json += buf;
  }
  json += "\n  ],\n  \"fused_deterministic_1_2_8\": ";
  json += deterministic ? "true" : "false";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"storage\": {\"estimated_peak_bytes\": %.0f, "
                "\"gated_peak_bytes\": %llu, \"ungated_peak_bytes\": %llu, "
                "\"gated_within_estimate\": %s}\n}\n",
                estimated,
                static_cast<unsigned long long>(gated.peak_temp_bytes),
                static_cast<unsigned long long>(ungated.peak_temp_bytes),
                static_cast<double>(gated.peak_temp_bytes) <= estimated
                    ? "true"
                    : "false");
  json += buf;

  std::printf("\n%s", json.c_str());
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }
  return 0;
}
