// Vectorized hot-loop bench: scalar tier vs the detected SIMD tier for the
// four loops dispatched through exec/simd.h —
//
//   key_formation_packed  BlockKeyFiller::FillPacked (shift-and-or packing)
//   key_formation_dense   BlockKeyFiller::FillDense (mixed-radix digits)
//   hash_probe            GroupHashTable tagged probe vs scalar linear probe
//   selection             ApplyFilter bitmap pipeline (per-conjunct compares)
//   dense_accumulate      dense-kernel aggregation incl. columnar accumulate
//
// Every comparison first asserts bit-identical outputs across tiers (the
// determinism contract), then reports rows/sec per tier and the speedup.
// Emits BENCH_simd.json at the repo root; tools/check_bench_regression.py
// compares it against bench/baselines/BENCH_simd_baseline.json and fails on
// >10% per-kernel regression. The acceptance gate requires >= 2x on at
// least two of {key formation, hash probe, selection, dense accumulate}.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "exec/agg_kernel.h"
#include "exec/group_hash_table.h"
#include "exec/predicate.h"
#include "exec/query_executor.h"

namespace gbmqo {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

constexpr int kReps = 5;

/// Minimum wall time of `fn` over kReps runs.
template <typename Fn>
double MinSeconds(Fn&& fn) {
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, Seconds(t0, Clock::now()));
  }
  return best;
}

struct KernelResult {
  const char* name;
  double scalar_rows_per_sec = 0;
  double simd_rows_per_sec = 0;
  double speedup() const {
    return scalar_rows_per_sec > 0 ? simd_rows_per_sec / scalar_rows_per_sec
                                   : 0;
  }
};

void Die(const char* what) {
  std::fprintf(stderr, "bench_simd: %s\n", what);
  std::exit(1);
}

// ---- key formation ----------------------------------------------------------

/// Four 8-bit-domain int64 columns: 32 packed bits, the shift-and-or loop
/// runs once per column per block.
TablePtr PackedKeyTable(size_t rows) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"c", DataType::kInt64, false},
                         {"d", DataType::kInt64, false}}));
  Rng rng(1);
  for (size_t i = 0; i < rows; ++i) {
    if (!b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(256))),
                      Value(static_cast<int64_t>(rng.Uniform(256))),
                      Value(static_cast<int64_t>(rng.Uniform(256))),
                      Value(static_cast<int64_t>(rng.Uniform(256)))})
             .ok()) {
      Die("packed table build failed");
    }
  }
  return *b.Build("packed");
}

KernelResult BenchKeyFormationPacked(size_t total_rows) {
  // Cache-resident table iterated over multiple passes: the loop under test
  // is the per-block shift-and-or packing, not RAM bandwidth feeding the
  // column reads (which is identical on every tier and dominates once the
  // input exceeds the last-level cache).
  const size_t table_rows = size_t{1} << 16;
  const size_t passes = (total_rows + table_rows - 1) / table_rows;
  TablePtr t = PackedKeyTable(table_rows);
  const AggKernelPlan plan =
      PlanAggKernel(*t, ColumnSet{0, 1, 2, 3}, AggKernel::kPackedKey);
  if (plan.kernel != AggKernel::kPackedKey) Die("expected packed kernel");
  std::vector<uint64_t> out_s(BlockKeyFiller::kBlockRows);
  std::vector<uint64_t> out_v(BlockKeyFiller::kBlockRows);
  uint64_t check_s = 0, check_v = 0;
  auto run = [&](SimdLevel level, std::vector<uint64_t>* out,
                 uint64_t* check) {
    BlockKeyFiller filler(plan, level);
    for (size_t pass = 0; pass < passes; ++pass) {
      for (size_t begin = 0; begin < table_rows;
           begin += BlockKeyFiller::kBlockRows) {
        const size_t count =
            std::min(BlockKeyFiller::kBlockRows, table_rows - begin);
        filler.FillPacked(begin, count, out->data());
        *check ^= (*out)[count - 1] + (*out)[0];
      }
    }
  };
  KernelResult r{"key_formation_packed"};
  r.scalar_rows_per_sec =
      static_cast<double>(passes * table_rows) /
      MinSeconds([&] { run(SimdLevel::kScalar, &out_s, &check_s); });
  r.simd_rows_per_sec =
      static_cast<double>(passes * table_rows) /
      MinSeconds([&] { run(DetectedSimdLevel(), &out_v, &check_v); });
  for (size_t i = 0; i < BlockKeyFiller::kBlockRows; ++i) {
    if (out_s[i] != out_v[i]) Die("packed keys diverge across tiers");
  }
  if (check_s != check_v) Die("packed key checksums diverge across tiers");
  return r;
}

/// Two 100-value-domain int64 grouping columns (10k dense slots, the
/// add-scaled-digits loop runs once per column per block) plus an int64 and
/// a double aggregate-argument column.
TablePtr DenseKeyTable(size_t rows) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"v", DataType::kInt64, false},
                         {"w", DataType::kDouble, false}}));
  Rng rng(2);
  for (size_t i = 0; i < rows; ++i) {
    if (!b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(100))),
                      Value(static_cast<int64_t>(rng.Uniform(100))),
                      Value(static_cast<int64_t>(rng.Uniform(1000))),
                      Value(static_cast<double>(rng.Uniform(1u << 20)) / 64.0)})
             .ok()) {
      Die("dense table build failed");
    }
  }
  return *b.Build("dense");
}

KernelResult BenchKeyFormationDense(size_t total_rows) {
  // Cache-resident like the packed bench: measures the mixed-radix
  // add-scaled-digits loop.
  const size_t table_rows = size_t{1} << 16;
  const size_t passes = (total_rows + table_rows - 1) / table_rows;
  TablePtr t = DenseKeyTable(table_rows);
  const AggKernelPlan plan =
      PlanAggKernel(*t, ColumnSet{0, 1}, AggKernel::kDenseArray);
  if (plan.kernel != AggKernel::kDenseArray) Die("expected dense kernel");
  std::vector<uint32_t> out_s(BlockKeyFiller::kBlockRows);
  std::vector<uint32_t> out_v(BlockKeyFiller::kBlockRows);
  auto run = [&](SimdLevel level, std::vector<uint32_t>* out) {
    BlockKeyFiller filler(plan, level);
    for (size_t pass = 0; pass < passes; ++pass) {
      for (size_t begin = 0; begin < table_rows;
           begin += BlockKeyFiller::kBlockRows) {
        const size_t count =
            std::min(BlockKeyFiller::kBlockRows, table_rows - begin);
        filler.FillDense(begin, count, out->data());
      }
    }
  };
  KernelResult r{"key_formation_dense"};
  r.scalar_rows_per_sec = static_cast<double>(passes * table_rows) /
                          MinSeconds([&] { run(SimdLevel::kScalar, &out_s); });
  r.simd_rows_per_sec = static_cast<double>(passes * table_rows) /
                        MinSeconds([&] { run(DetectedSimdLevel(), &out_v); });
  for (size_t i = 0; i < BlockKeyFiller::kBlockRows; ++i) {
    if (out_s[i] != out_v[i]) Die("dense slots diverge across tiers");
  }
  return r;
}

// ---- hash probe -------------------------------------------------------------

KernelResult BenchHashProbe(size_t rows) {
  // Wide (3-word) keys in a cache-resident table held at its maximum load
  // factor (5600 groups / 8192 slots = 0.68): the aggregation steady state,
  // where clustered probe chains are longest. The scalar linear probe
  // compares full multi-word keys at every visited slot; the tagged probe
  // byte-scans 16 slots at a time and only touches keys on tag matches.
  constexpr int kWidth = 3;
  constexpr size_t kGroups = 5600;
  Rng rng(3);
  std::vector<uint64_t> distinct(kGroups * kWidth);
  for (auto& w : distinct) w = rng.Next();
  std::vector<uint32_t> pick(rows);
  for (auto& p : pick) p = static_cast<uint32_t>(rng.Uniform(kGroups));
  std::vector<uint32_t> ids_s, ids_v;
  uint64_t probes_s = 0, probes_v = 0;
  auto run = [&](SimdLevel level, std::vector<uint32_t>* ids,
                 uint64_t* probes) {
    GroupHashTable table(kWidth, 64, level);
    for (size_t g = 0; g < kGroups; ++g) {
      table.FindOrInsert(&distinct[g * kWidth]);
    }
    ids->clear();
    ids->reserve(rows);
    for (const uint32_t p : pick) {
      ids->push_back(table.FindOrInsert(&distinct[p * kWidth]));
    }
    *probes = table.probes();
  };
  KernelResult r{"hash_probe"};
  r.scalar_rows_per_sec =
      static_cast<double>(rows) /
      MinSeconds([&] { run(SimdLevel::kScalar, &ids_s, &probes_s); });
  r.simd_rows_per_sec =
      static_cast<double>(rows) /
      MinSeconds([&] { run(DetectedSimdLevel(), &ids_v, &probes_v); });
  if (ids_s != ids_v) Die("group ids diverge across probe tiers");
  if (probes_s != probes_v) Die("probe counters diverge across probe tiers");
  return r;
}

// ---- selection --------------------------------------------------------------

KernelResult BenchSelection(const Table& t, size_t rows,
                            double* row_at_a_time_rows_per_sec) {
  // Three numeric conjuncts at low selectivity: per-conjunct vector
  // compares dominate (almost nothing survives to be copied), which is the
  // loop this bench isolates. Output parity is checked via row counts and
  // the shared materializer.
  Predicate p;
  p.And({0, CompareOp::kLt, Value(5)})
      .And({1, CompareOp::kGe, Value(2)})
      .And({2, CompareOp::kLt, Value(100)});
  if (!p.Validate(t.schema()).ok()) Die("bad selection predicate");
  size_t kept_s = 0, kept_v = 0;
  auto run = [&](SimdLevel level, size_t* kept) {
    auto r = ApplyFilter(t, p, "f", nullptr, level);
    if (!r.ok()) Die("ApplyFilter failed");
    *kept = (*r)->num_rows();
  };
  KernelResult r{"selection"};
  r.scalar_rows_per_sec = static_cast<double>(rows) /
                          MinSeconds([&] { run(SimdLevel::kScalar, &kept_s); });
  r.simd_rows_per_sec = static_cast<double>(rows) /
                        MinSeconds([&] { run(DetectedSimdLevel(), &kept_v); });
  if (kept_s != kept_v) Die("selection keeps diverge across tiers");

  // Context series: the pre-bitmap engine evaluated Matches row at a time.
  size_t kept_ref = 0;
  const double ref_seconds = MinSeconds([&] {
    kept_ref = 0;
    for (size_t row = 0; row < rows; ++row) {
      if (p.Matches(t, row)) ++kept_ref;
    }
  });
  if (kept_ref != kept_s) Die("row-at-a-time reference disagrees");
  *row_at_a_time_rows_per_sec = static_cast<double>(rows) / ref_seconds;
  return r;
}

// ---- dense accumulate -------------------------------------------------------

KernelResult BenchDenseAccumulate(const Table& t, size_t rows) {
  // Whole dense-kernel aggregation with force_scalar on/off: covers the
  // columnar accumulate plus the vectorized key formation feeding it. The
  // analytics-shaped query — a 100-group rollup with COUNT + six
  // SUM/MIN/MAX over two columns — keeps the accumulators L1-resident and
  // makes the accumulate loop the dominant cost, as it is in the paper's
  // multi-aggregate workloads. Results must match bit for bit.
  GroupByQuery q{ColumnSet{0},
                 {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(2, "sv"),
                  AggregateSpec::Min(2, "mnv"), AggregateSpec::Max(2, "mxv"),
                  AggregateSpec::Sum(3, "sw"), AggregateSpec::Min(3, "mnw"),
                  AggregateSpec::Max(3, "mxw"), AggregateSpec::Sum(2, "sv2"),
                  AggregateSpec::Sum(3, "sw2")}};
  auto checksum = [](const Table& out) {
    uint64_t h = 1469598103934665603ull;
    for (size_t row = 0; row < out.num_rows(); ++row) {
      for (int c = 0; c < out.schema().num_columns(); ++c) {
        const std::string s = out.column(c).ValueAt(row).ToString();
        for (const char ch : s) {
          h ^= static_cast<unsigned char>(ch);
          h *= 1099511628211ull;
        }
      }
    }
    return h;
  };
  uint64_t check_s = 0, check_v = 0;
  auto run = [&](bool force_scalar, uint64_t* check) {
    ExecContext ctx;
    QueryExecutor exec(&ctx, ScanMode::kColumnar, 1);
    exec.set_forced_kernel(AggKernel::kDenseArray);
    exec.set_force_scalar(force_scalar);
    auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
    if (!r.ok()) Die("dense aggregation failed");
    if (ctx.counters().dense_kernel_rows == 0) Die("dense kernel not used");
    *check = checksum(**r);
  };
  KernelResult r{"dense_accumulate"};
  r.scalar_rows_per_sec =
      static_cast<double>(rows) / MinSeconds([&] { run(true, &check_s); });
  r.simd_rows_per_sec =
      static_cast<double>(rows) / MinSeconds([&] { run(false, &check_v); });
  if (check_s != check_v) Die("dense aggregation results diverge across tiers");
  return r;
}

}  // namespace
}  // namespace gbmqo

int main() {
  using namespace gbmqo;
  const size_t rows = bench::RowsFromEnv(1u << 21);  // 2M rows default
  const SimdLevel level = DetectedSimdLevel();
  std::printf("bench_simd: %zu rows, detected tier %s\n", rows,
              SimdLevelName(level));
  if (level == SimdLevel::kScalar) {
    std::printf("no vector tier on this host (or GBMQO_DISABLE_SIMD set); "
                "nothing to compare\n");
    return 0;
  }

  TablePtr dense_table = DenseKeyTable(rows);
  double row_at_a_time = 0;
  std::vector<KernelResult> results;
  results.push_back(BenchKeyFormationPacked(rows));
  results.push_back(BenchKeyFormationDense(rows));
  results.push_back(BenchHashProbe(rows));
  results.push_back(BenchSelection(*dense_table, rows, &row_at_a_time));
  results.push_back(BenchDenseAccumulate(*dense_table, rows));

  std::printf("\n%-22s %15s %15s %9s\n", "kernel", "scalar rows/s",
              "simd rows/s", "speedup");
  for (const KernelResult& r : results) {
    std::printf("%-22s %15.3e %15.3e %8.2fx\n", r.name, r.scalar_rows_per_sec,
                r.simd_rows_per_sec, r.speedup());
  }
  std::printf("%-22s %15s %15.3e   (seed row-at-a-time Matches loop)\n",
              "selection_reference", "-", row_at_a_time);

  // Acceptance gate: >= 2x on at least two of the four hot loops
  // (key formation counts once, via its packed variant).
  const double kRequired = 2.0;
  int at_or_above = 0;
  for (const KernelResult& r : results) {
    if (std::string(r.name) == "key_formation_dense") continue;
    if (r.speedup() >= kRequired) ++at_or_above;
  }
  const bool pass = at_or_above >= 2;
  std::printf("\ngate: %d/4 loops at >= %.1fx (need 2) -> %s\n", at_or_above,
              kRequired, pass ? "PASS" : "FAIL");

#ifdef GBMQO_REPO_ROOT
  const std::string json_path = std::string(GBMQO_REPO_ROOT) + "/BENCH_simd.json";
#else
  const std::string json_path = "BENCH_simd.json";
#endif
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"rows\": %zu,\n  \"simd_level\": \"%s\",\n",
                 rows, SimdLevelName(level));
    std::fprintf(f, "  \"kernels\": {\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const KernelResult& r = results[i];
      std::fprintf(f,
                   "    \"%s\": {\"scalar_rows_per_sec\": %.1f, "
                   "\"simd_rows_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                   r.name, r.scalar_rows_per_sec, r.simd_rows_per_sec,
                   r.speedup(), i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"selection_row_at_a_time_rows_per_sec\": %.1f,\n",
                 row_at_a_time);
    std::fprintf(f,
                 "  \"gate\": {\"required_speedup\": %.1f, \"min_kernels\": 2, "
                 "\"kernels_at_or_above\": %d, \"pass\": %s}\n}\n",
                 kRequired, at_or_above, pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }
  return pass ? 0 : 1;
}
