// Figure 11 (Section 6.6): effect of the pruning techniques. For SC and TC
// workloads on tpch-1g and Sales, compare optimizer calls and the plan's
// run-time reduction (vs naive) with pruning None / M (monotonicity) /
// S (subsumption) / S+M. Paper: S+M cuts optimizer calls by up to 80% in
// the TC cases while the plan still reduces naive run time by >65%.
#include "bench/bench_util.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;

struct Config {
  const char* name;
  bool subsumption;
  bool monotonicity;
};

void RunCase(const char* label, const TablePtr& table,
             const std::vector<GroupByRequest>& requests) {
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);

  const RunOutcome naive =
      RunPlan(&catalog, table->name(), NaivePlan(requests), requests);

  const Config configs[] = {{"None", false, false},
                            {"M", false, true},
                            {"S", true, false},
                            {"S+M", true, true}};
  std::printf("%s (#GrBys=%zu):\n", label, requests.size());
  for (const Config& cfg : configs) {
    OptimizerCostModel model(*table);
    OptimizerOptions opts;
    opts.subsumption_pruning = cfg.subsumption;
    opts.monotonicity_pruning = cfg.monotonicity;
    OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests, opts);
    const RunOutcome run =
        RunPlan(&catalog, table->name(), opt.plan, requests);
    const double reduction =
        naive.work_units > 0
            ? 100.0 * (naive.work_units - run.work_units) / naive.work_units
            : 0.0;
    std::printf("  %-5s | optimizer calls %6llu | candidates %6llu | "
                "run-time reduction vs naive %.1f%% work (%.3fs wall)\n",
                cfg.name,
                static_cast<unsigned long long>(opt.stats.optimizer_calls),
                static_cast<unsigned long long>(opt.stats.candidates_costed),
                reduction, run.exec_seconds);
  }
}

void Run() {
  const size_t rows = bench::RowsFromEnv(120000);
  Banner("Figure 11 — impact of the pruning techniques",
         "Chen & Narasayya, SIGMOD'05, Section 6.6, Figure 11(a,b)");
  std::printf("rows=%zu\n\n", rows);

  TablePtr tpch = GenerateLineitem({.rows = rows});
  TablePtr sales = GenerateSales({.rows = rows});
  RunCase("tpch-1g SC", tpch, SingleColumnRequests(LineitemAnalysisColumns()));
  RunCase("tpch-1g TC", tpch, TwoColumnRequests(LineitemAnalysisColumns()));
  RunCase("sales SC", sales, SingleColumnRequests(SalesAllColumns()));
  RunCase("sales TC", sales, TwoColumnRequests(SalesAllColumns()));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
