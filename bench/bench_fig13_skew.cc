// Figure 13 (Section 6.8): speedup vs data skew. Lineitem is regenerated
// with Zipfian value distributions (theta = 0, 0.5, ..., 3) and the SC
// workload is optimized and executed. Paper: speedup grows with skew —
// skewed columns become sparser (fewer realized distinct values), which
// makes merging sub-plans more attractive.
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;
using bench::Speedup;

void Run() {
  const size_t rows = bench::RowsFromEnv(150000);
  Banner("Figure 13 — speedup vs varying data skew (Zipfian)",
         "Chen & Narasayya, SIGMOD'05, Section 6.8, Figure 13 "
         "(paper: speedup increases with the Zipf constant)");
  std::printf("rows=%zu; SC workload\n\n", rows);

  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  std::printf("%-6s | %-10s | %-10s | %-26s\n", "zipf", "naive (s)",
              "GB-MQO (s)", "speedup wall/work/scan-bound");
  for (double theta : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    TablePtr table = GenerateLineitem({.rows = rows, .zipf_theta = theta});
    Catalog catalog;
    if (!catalog.RegisterBase(table).ok()) std::exit(1);
    StatisticsManager stats(*table);
    WhatIfProvider whatif(&stats);
    OptimizerCostModel model(*table);
    OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests);
    const RunOutcome naive =
        RunPlan(&catalog, "lineitem", NaivePlan(requests), requests);
    const RunOutcome ours = RunPlan(&catalog, "lineitem", opt.plan, requests);
    std::printf("%-6.1f | %-10.3f | %-10.3f | %.2fx / %.2fx / %.2fx\n", theta,
                naive.exec_seconds, ours.exec_seconds,
                Speedup(naive.exec_seconds, ours.exec_seconds),
                Speedup(naive.work_units, ours.work_units),
                bench::ScanBoundSpeedup(naive, ours));
  }
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
