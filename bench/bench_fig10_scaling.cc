// Figure 10 (Section 6.4): scalability with the number of columns. The
// lineitem analysis projection (12 columns) is widened by repeating its
// columns; all single-column Group By queries are optimized. Reported:
//  (a) optimizer calls (cost-model cache misses),
//  (b) optimization time,
//  (c) plan run time vs the naive plan.
// Paper: quadratic optimizer-call growth, 48 columns optimized < 100s,
// run-time advantage persists as the table widens.
#include "bench/bench_util.h"
#include "data/tpch_gen.h"
#include "data/widen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;

void Run() {
  const size_t rows = bench::RowsFromEnv(100000);
  Banner("Figure 10 — scaling with number of columns (widened lineitem)",
         "Chen & Narasayya, SIGMOD'05, Section 6.4, Figure 10(a,b,c)");
  std::printf("rows=%zu; widening 12 -> 24 -> 36 -> 48 columns\n\n", rows);

  TablePtr lineitem = GenerateLineitem({.rows = rows});

  std::printf("%-8s | %-14s | %-12s | %-10s | %-10s | %s\n", "#columns",
              "optimizer calls", "opt time (s)", "naive (s)", "GB-MQO (s)",
              "work speedup");
  for (int times = 1; times <= 4; ++times) {
    auto wide = WidenTable(*lineitem, LineitemAnalysisColumns(), times,
                           "wide" + std::to_string(times));
    if (!wide.ok()) std::exit(1);
    const TablePtr table = *wide;
    Catalog catalog;
    if (!catalog.RegisterBase(table).ok()) std::exit(1);
    // Sampled statistics (one shared 20k-row sample): joint-cardinality
    // requests during the search cost a cheap sample pass instead of a full
    // scan, so "optimization time" measures the search itself — the paper
    // likewise "put aside the time of creating statistics".
    StatisticsManager stats(*table, DistinctMode::kSampled, 20000);
    WhatIfProvider whatif(&stats);
    for (int c = 0; c < table->schema().num_columns(); ++c) {
      stats.Get(ColumnSet::Single(c));
    }

    std::vector<int> all_cols;
    for (int c = 0; c < table->schema().num_columns(); ++c) {
      all_cols.push_back(c);
    }
    auto requests = SingleColumnRequests(all_cols);

    OptimizerCostModel model(*table);
    OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests);

    const RunOutcome naive =
        RunPlan(&catalog, table->name(), NaivePlan(requests), requests);
    const RunOutcome ours =
        RunPlan(&catalog, table->name(), opt.plan, requests);

    std::printf("%-8d | %-14llu | %-12.3f | %-10.3f | %-10.3f | %.2fx\n",
                table->schema().num_columns(),
                static_cast<unsigned long long>(opt.stats.optimizer_calls),
                opt.stats.optimization_seconds, naive.exec_seconds,
                ours.exec_seconds,
                bench::Speedup(naive.work_units, ours.work_units));
  }
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
