// Shared harness for the experiment benches (one binary per paper table /
// figure). Each bench prints the paper's rows: both wall-clock seconds
// (machine-dependent) and deterministic engine work units (reproducible on
// any machine) are reported; speedups are shown for both.
#ifndef GBMQO_BENCH_BENCH_UTIL_H_
#define GBMQO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/gbmqo.h"
#include "storage/catalog.h"

namespace gbmqo {
namespace bench {

/// Row-count knob: every bench scales with GBMQO_ROWS (default per bench).
inline size_t RowsFromEnv(size_t default_rows) {
  const char* env = std::getenv("GBMQO_ROWS");
  if (env == nullptr) return default_rows;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<size_t>(v) : default_rows;
}

/// Result of executing one plan end to end.
struct RunOutcome {
  double exec_seconds = 0;
  double work_units = 0;
  WorkCounters counters;
  uint64_t peak_temp_bytes = 0;
};

/// Executes `plan` against `base_table` in `catalog`. `parallelism` is the
/// executor's total thread budget (sub-plan + intra-query); work counters
/// are identical for any value.
inline RunOutcome RunPlan(Catalog* catalog, const std::string& base_table,
                          const LogicalPlan& plan,
                          const std::vector<GroupByRequest>& requests,
                          int parallelism = 1) {
  PlanExecutor exec(catalog, base_table, ScanMode::kRowStore, parallelism);
  auto r = exec.Execute(plan, requests);
  if (!r.ok()) {
    std::fprintf(stderr, "plan execution failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  RunOutcome out;
  out.exec_seconds = r->wall_seconds;
  out.work_units = r->counters.WorkUnits();
  out.counters = r->counters;
  out.peak_temp_bytes = r->peak_temp_bytes;
  return out;
}

/// Optimizes with GB-MQO (default options unless given) and returns the
/// result, exiting on failure.
inline OptimizerResult OptimizeOrDie(PlanCostModel* model,
                                     WhatIfProvider* whatif,
                                     const std::vector<GroupByRequest>& requests,
                                     OptimizerOptions options = {}) {
  GbMqoOptimizer opt(model, whatif, options);
  auto r = opt.Optimize(requests);
  if (!r.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

/// Header/footer helpers so every bench output reads the same way.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("=============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("=============================================================\n");
}

inline double Speedup(double base, double ours) {
  return ours > 0 ? base / ours : 0.0;
}

/// Speedup in *scanned bytes* only — the projection of the plans onto a
/// fully I/O-bound system, which is the regime the paper's experiments ran
/// in (1 GB table, 1 GB RAM). Our engine is memory-resident, so measured
/// wall speedups are smaller; this ratio shows what the same plans deliver
/// when full-width scans dominate.
inline double ScanBoundSpeedup(const RunOutcome& base, const RunOutcome& ours) {
  return ours.counters.bytes_scanned > 0
             ? static_cast<double>(base.counters.bytes_scanned) /
                   static_cast<double>(ours.counters.bytes_scanned)
             : 0.0;
}

}  // namespace bench
}  // namespace gbmqo

#endif  // GBMQO_BENCH_BENCH_UTIL_H_
