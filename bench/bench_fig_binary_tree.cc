// Section 6.5: impact of restricting the plan space to binary trees
// (SubPlanMerge shape (b) only). Paper: ~30% fewer optimizer calls, < 10%
// execution-time difference, on TPC-H and Sales single-column workloads.
#include "bench/bench_util.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;

void RunCase(const char* dataset, const TablePtr& table,
             const std::vector<GroupByRequest>& requests) {
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);
  for (const GroupByRequest& r : requests) stats.Get(r.columns);

  OptimizerCostModel full_model(*table);
  OptimizerResult full = OptimizeOrDie(&full_model, &whatif, requests);
  const RunOutcome full_run =
      RunPlan(&catalog, table->name(), full.plan, requests);

  OptimizerCostModel bin_model(*table);
  OptimizerOptions binary;
  binary.only_type_b = true;
  OptimizerResult bin = OptimizeOrDie(&bin_model, &whatif, requests, binary);
  const RunOutcome bin_run =
      RunPlan(&catalog, table->name(), bin.plan, requests);

  const double call_reduction =
      full.stats.candidates_costed > 0
          ? 100.0 *
                (static_cast<double>(full.stats.candidates_costed) -
                 static_cast<double>(bin.stats.candidates_costed)) /
                static_cast<double>(full.stats.candidates_costed)
          : 0.0;
  const double time_delta =
      full_run.work_units > 0
          ? 100.0 * (bin_run.work_units - full_run.work_units) /
                full_run.work_units
          : 0.0;
  std::printf("%-8s | all-4 shapes: %5llu candidates, %8.3fs exec | "
              "(b)-only: %5llu candidates, %8.3fs exec | "
              "candidates -%.0f%%, exec delta %+.1f%% work\n",
              dataset,
              static_cast<unsigned long long>(full.stats.candidates_costed),
              full_run.exec_seconds,
              static_cast<unsigned long long>(bin.stats.candidates_costed),
              bin_run.exec_seconds, call_reduction, time_delta);
}

void Run() {
  const size_t rows = bench::RowsFromEnv(150000);
  Banner("Section 6.5 — impact of the binary-tree plan-space restriction",
         "Chen & Narasayya, SIGMOD'05, Section 6.5 "
         "(paper: ~30% fewer optimizer calls, <10% run-time difference)");
  std::printf("rows=%zu; all single-column Group By queries\n\n", rows);

  RunCase("tpch-1g", GenerateLineitem({.rows = rows}),
          SingleColumnRequests(LineitemAnalysisColumns()));
  RunCase("sales", GenerateSales({.rows = rows}),
          SingleColumnRequests(SalesAllColumns()));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
