// Figure 14 (Section 6.9): impact of physical design. Starting with no
// secondary indexes, non-clustered indexes are added one per step (in the
// paper's order) and the SC workload is re-optimized and executed after each
// step. Paper: run time falls as indexes are added — especially once the
// dense l_comment column gets one — and the plans *adapt*: a column with a
// covering index stays a singleton instead of merging.
#include "bench/bench_util.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;

void Run() {
  const size_t rows = bench::RowsFromEnv(150000);
  Banner("Figure 14 — variation with physical design (adding NC indexes)",
         "Chen & Narasayya, SIGMOD'05, Section 6.9, Figure 14");
  std::printf("rows=%zu; SC workload re-optimized after each index\n\n", rows);

  TablePtr table = GenerateLineitem({.rows = rows});
  Catalog catalog;
  if (!catalog.RegisterBase(table).ok()) std::exit(1);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());

  // The paper's index-build order.
  const std::vector<std::pair<const char*, int>> steps = {
      {"(none)", -1},           {"l_receiptdate", kReceiptdate},
      {"l_shipdate", kShipdate}, {"l_commitdate", kCommitdate},
      {"l_partkey", kPartkey},   {"l_suppkey", kSuppkey},
      {"l_returnflag", kReturnflag}, {"l_linestatus", kLinestatus},
      {"l_shipinstruct", kShipinstruct}, {"l_shipmode", kShipmode},
      {"l_comment", kComment}};

  std::printf("%-16s | %-10s | %-12s | plan shape\n", "added index",
              "exec (s)", "work units");
  for (const auto& [name, column] : steps) {
    if (column >= 0) {
      if (!table->CreateIndex(ColumnSet::Single(column)).ok()) std::exit(1);
    }
    // Fresh statistics/model per step so the optimizer sees the new index.
    StatisticsManager stats(*table);
    WhatIfProvider whatif(&stats);
    OptimizerCostModel model(*table);
    OptimizerResult opt = OptimizeOrDie(&model, &whatif, requests);
    const RunOutcome run = RunPlan(&catalog, "lineitem", opt.plan, requests);
    std::printf("%-16s | %-10.3f | %-12.0f | %s\n", name, run.exec_seconds,
                run.work_units, opt.plan.ToString().c_str());
  }
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
