// Figure 9 (Section 6.3): quality of GB-MQO plans vs. the optimal plan.
// Ten random queries Q0..Q9, each grouping 7 columns drawn from the 12
// analysis columns of lineitem; for each, the run-time reduction ratio
// against the naive plan is reported for the greedy GB-MQO plan and the
// exhaustive-optimal plan. Paper: GB-MQO is close to optimal on most Qi.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

using bench::Banner;
using bench::OptimizeOrDie;
using bench::RunOutcome;
using bench::RunPlan;

void Run() {
  const size_t rows = bench::RowsFromEnv(150000);
  Banner("Figure 9 — run-time reduction of GB-MQO vs optimal plans",
         "Chen & Narasayya, SIGMOD'05, Section 6.3, Figure 9");
  std::printf("rows=%zu; 10 random 7-column SC queries\n\n", rows);

  TablePtr lineitem = GenerateLineitem({.rows = rows});
  Catalog catalog;
  if (!catalog.RegisterBase(lineitem).ok()) std::exit(1);
  StatisticsManager stats(*lineitem);
  WhatIfProvider whatif(&stats);

  Rng rng(2005);
  const std::vector<int> pool = LineitemAnalysisColumns();
  std::printf("%-4s | %-22s | %-22s\n", "Qi",
              "GB-MQO reduction (wall/work)", "optimal reduction (wall/work)");
  for (int q = 0; q < 10; ++q) {
    std::vector<int> cols = pool;
    for (size_t i = cols.size(); i > 1; --i) {
      std::swap(cols[i - 1], cols[rng.Uniform(i)]);
    }
    cols.resize(7);
    auto requests = SingleColumnRequests(cols);

    const RunOutcome naive =
        RunPlan(&catalog, "lineitem", NaivePlan(requests), requests);

    OptimizerCostModel greedy_model(*lineitem);
    OptimizerResult greedy = OptimizeOrDie(&greedy_model, &whatif, requests);
    const RunOutcome g = RunPlan(&catalog, "lineitem", greedy.plan, requests);

    OptimizerCostModel ex_model(*lineitem);
    ExhaustiveOptimizer exhaustive(&ex_model, &whatif);
    auto er = exhaustive.Optimize(requests);
    if (!er.ok()) std::exit(1);
    const RunOutcome e = RunPlan(&catalog, "lineitem", er->plan, requests);

    auto reduction = [](double base, double v) {
      return base > 0 ? 100.0 * (base - v) / base : 0.0;
    };
    std::printf("Q%-3d | %6.1f%% / %6.1f%%       | %6.1f%% / %6.1f%%\n", q,
                reduction(naive.exec_seconds, g.exec_seconds),
                reduction(naive.work_units, g.work_units),
                reduction(naive.exec_seconds, e.exec_seconds),
                reduction(naive.work_units, e.work_units));
  }
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
