// Out-of-core aggregation bench: in-memory vs radix-partitioned spill
// throughput as the group count grows, and the hash-vs-sort kernel
// crossover sweep.
//
// For each group-domain point the same single-key aggregation runs four
// ways — {in-memory, forced spill} x {grace-hash (packed-key), sort-runs} —
// at parallelism 1, reporting rows/sec (min wall over kReps). Every spilled
// run is first checked bit-identical to its same-kernel in-memory run (the
// determinism contract from DESIGN.md "Out-of-core aggregation"); the bench
// dies on any mismatch. Emits BENCH_spill.json at the repo root;
// tools/check_bench_regression.py compares it against
// bench/baselines/BENCH_spill_baseline.json and fails when a sweep point or
// metric present in the baseline is missing, or when the acceptance gate —
// the sort kernel beating grace-hash on at least one high-group-count or
// spilled configuration — no longer holds.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "exec/agg_kernel.h"
#include "exec/query_executor.h"

namespace gbmqo {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReps = 3;

/// Groups past this count as "high-group-count" for the acceptance gate:
/// one decade under the planner's own crossover so the gate can be won on
/// either side of it.
constexpr uint64_t kHighGroupFloor = 1ull << 18;

void Die(const std::string& what) {
  std::fprintf(stderr, "bench_spill: %s\n", what.c_str());
  std::exit(1);
}

/// One int64 grouping key uniform over `domain` plus a double aggregate
/// argument. Row count stays above the 64K single-morsel threshold so the
/// multi-shard build — the only path that can spill — is always taken.
TablePtr SweepTable(size_t rows, uint64_t domain) {
  TableBuilder b(Schema({{"g", DataType::kInt64, false},
                         {"v", DataType::kDouble, false}}));
  Rng rng(domain * 2654435761ull + 17);
  for (size_t i = 0; i < rows; ++i) {
    if (!b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(domain))),
                      Value(0.5 * static_cast<double>(rng.Uniform(2000)) -
                            173.25)})
             .ok()) {
      Die("AppendRow failed");
    }
  }
  auto t = b.Build("sweep");
  if (!t.ok()) Die(t.status().ToString());
  return *t;
}

struct RunResult {
  TablePtr table;
  double rows_per_sec = 0;
  uint64_t spill_bytes_written = 0;
};

/// Min-wall-clock run of the aggregation with one forced kernel, optionally
/// through the forced-spill path. A fresh context per rep keeps counters
/// per-run.
RunResult RunConfig(const Table& t, const GroupByQuery& q, AggKernel kernel,
                    bool spilled) {
  RunResult out;
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    ExecContext ctx;
    QueryExecutor exec(&ctx, ScanMode::kColumnar, /*parallelism=*/1);
    exec.set_forced_kernel(kernel);
    if (spilled) {
      SpillOptions spill;
      spill.force = true;
      exec.set_spill(spill);
    }
    const auto t0 = Clock::now();
    auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!r.ok()) Die(r.status().ToString());
    if (sec < best) {
      best = sec;
      out.table = *r;
    }
    if (spilled && ctx.counters().queries_spilled != 1) {
      Die("forced-spill run did not spill");
    }
    out.spill_bytes_written = ctx.counters().spill_bytes_written;
  }
  out.rows_per_sec = static_cast<double>(t.num_rows()) / best;
  return out;
}

/// Raw-bit table equality (doubles on bit patterns, no tolerance).
bool BitIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema().num_columns() != b.schema().num_columns()) return false;
  for (int c = 0; c < a.schema().num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.column(c).IsNull(r) != b.column(c).IsNull(r)) return false;
      if (a.column(c).IsNull(r)) continue;
      if (a.schema().column(c).type == DataType::kDouble) {
        uint64_t ba, bb;
        const double da = a.column(c).DoubleAt(r);
        const double db = b.column(c).DoubleAt(r);
        std::memcpy(&ba, &da, sizeof(ba));
        std::memcpy(&bb, &db, sizeof(bb));
        if (ba != bb) return false;
      } else if (!(a.column(c).ValueAt(r) == b.column(c).ValueAt(r))) {
        return false;
      }
    }
  }
  return true;
}

struct SweepPoint {
  uint64_t group_domain = 0;
  std::string auto_kernel;
  double in_memory_hash_rows_per_sec = 0;
  double in_memory_sort_rows_per_sec = 0;
  double spill_hash_rows_per_sec = 0;
  double spill_sort_rows_per_sec = 0;
  uint64_t spill_bytes_written = 0;
  bool bit_identical = false;
};

int Main() {
  const size_t rows = RowsFromEnv(1200000);
  Banner("bench_spill: out-of-core aggregation + hash-vs-sort crossover",
         "out-of-core extension (not in the paper)");
  std::printf("%zu rows, parallelism 1, %d reps (min wall)\n\n", rows, kReps);

  const std::vector<uint64_t> domains = {1ull << 12, 1ull << 16, 1ull << 18,
                                         1ull << 20, 1ull << 21};
  const GroupByQuery query{
      ColumnSet{0},
      {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(1, "s")}};

  std::vector<SweepPoint> sweep;
  bool bit_identical_all = true;
  int sort_wins = 0;
  std::printf("%10s %8s | %12s %12s | %12s %12s | %s\n", "groups", "auto",
              "mem hash r/s", "mem sort r/s", "sp hash r/s", "sp sort r/s",
              "winner(sp)");
  for (uint64_t domain : domains) {
    TablePtr t = SweepTable(rows, domain);
    SweepPoint p;
    p.group_domain = domain;
    p.auto_kernel = AggKernelName(PlanAggKernel(*t, ColumnSet{0}).kernel);

    const RunResult mem_hash =
        RunConfig(*t, query, AggKernel::kPackedKey, /*spilled=*/false);
    const RunResult mem_sort =
        RunConfig(*t, query, AggKernel::kSortRuns, /*spilled=*/false);
    const RunResult sp_hash =
        RunConfig(*t, query, AggKernel::kPackedKey, /*spilled=*/true);
    const RunResult sp_sort =
        RunConfig(*t, query, AggKernel::kSortRuns, /*spilled=*/true);
    p.in_memory_hash_rows_per_sec = mem_hash.rows_per_sec;
    p.in_memory_sort_rows_per_sec = mem_sort.rows_per_sec;
    p.spill_hash_rows_per_sec = sp_hash.rows_per_sec;
    p.spill_sort_rows_per_sec = sp_sort.rows_per_sec;
    p.spill_bytes_written = sp_hash.spill_bytes_written;
    p.bit_identical = BitIdentical(*mem_hash.table, *sp_hash.table) &&
                      BitIdentical(*mem_sort.table, *sp_sort.table);
    if (!p.bit_identical) {
      bit_identical_all = false;
      std::fprintf(stderr,
                   "bench_spill: spilled result NOT bit-identical at %llu "
                   "groups\n",
                   static_cast<unsigned long long>(domain));
    }
    const bool high_groups = domain >= kHighGroupFloor;
    const bool sort_win =
        p.spill_sort_rows_per_sec > p.spill_hash_rows_per_sec ||
        (high_groups &&
         p.in_memory_sort_rows_per_sec > p.in_memory_hash_rows_per_sec);
    if (sort_win) ++sort_wins;
    std::printf("%10llu %8s | %12.3e %12.3e | %12.3e %12.3e | %s\n",
                static_cast<unsigned long long>(domain),
                p.auto_kernel.c_str(), p.in_memory_hash_rows_per_sec,
                p.in_memory_sort_rows_per_sec, p.spill_hash_rows_per_sec,
                p.spill_sort_rows_per_sec,
                p.spill_sort_rows_per_sec > p.spill_hash_rows_per_sec
                    ? "sort"
                    : "hash");
    sweep.push_back(std::move(p));
  }

  const bool gate_pass = sort_wins >= 1 && bit_identical_all;
  std::printf(
      "\ngate: sort kernel wins %d high-group-count/spilled configs "
      "(need >= 1), bit-identical %s -> %s\n",
      sort_wins, bit_identical_all ? "yes" : "NO",
      gate_pass ? "PASS" : "FAIL");

#ifdef GBMQO_REPO_ROOT
  const std::string json_path =
      std::string(GBMQO_REPO_ROOT) + "/BENCH_spill.json";
#else
  const std::string json_path = "BENCH_spill.json";
#endif
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"rows\": %zu,\n  \"parallelism\": 1,\n", rows);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      std::fprintf(
          f,
          "    {\"group_domain\": %llu, \"auto_kernel\": \"%s\", "
          "\"in_memory_hash_rows_per_sec\": %.1f, "
          "\"in_memory_sort_rows_per_sec\": %.1f, "
          "\"spill_hash_rows_per_sec\": %.1f, "
          "\"spill_sort_rows_per_sec\": %.1f, "
          "\"spill_bytes_written\": %llu, \"bit_identical\": %s}%s\n",
          static_cast<unsigned long long>(p.group_domain),
          p.auto_kernel.c_str(), p.in_memory_hash_rows_per_sec,
          p.in_memory_sort_rows_per_sec, p.spill_hash_rows_per_sec,
          p.spill_sort_rows_per_sec,
          static_cast<unsigned long long>(p.spill_bytes_written),
          p.bit_identical ? "true" : "false",
          i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"gate\": {\"sort_wins\": %d, \"min_wins\": 1, "
                 "\"bit_identical_all\": %s, \"pass\": %s}\n}\n",
                 sort_wins, bit_identical_all ? "true" : "false",
                 gate_pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gbmqo

int main() { return gbmqo::bench::Main(); }
