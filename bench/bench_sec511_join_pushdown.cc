// Section 5.1.1 / Figure 8: GROUPING SETS over a join, with Group By
// pushdown below the join and the Grp-Tag union. Compares:
//   join-first        — materialize Join(R,S), then each Group By over it
//   pushdown (naive)  — Figure 8, pushed Group Bys computed independently
//   pushdown (GB-MQO) — Figure 8 plus GB-MQO sharing among the pushed sets
// The paper presents the transform without measurements; expectation: the
// pushdown shrinks the join input from |R| to the pushed-group counts, and
// GB-MQO stacks on top.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/join_pushdown.h"

namespace gbmqo {
namespace {

using bench::Banner;

/// Fact table R(a=join key, plus analysis columns) and a dimension S(a,
/// attr) with 2 rows per key. `join_keys` controls the key cardinality —
/// the parameter that decides whether pushdown pays.
void MakeTables(size_t rows, int64_t join_keys, Catalog* catalog) {
  TableBuilder rb(Schema({{"a", DataType::kInt64, false},
                          {"b", DataType::kInt64, false},
                          {"c", DataType::kInt64, false},
                          {"d", DataType::kInt64, false},
                          {"x", DataType::kInt64, false}}));
  Rng rng(71);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t b = static_cast<int64_t>(rng.Uniform(40));
    (void)rb.AppendRow(
        {Value(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(join_keys)))),
         Value(b), Value(b / 4 + static_cast<int64_t>(rng.Uniform(2))),
         Value(static_cast<int64_t>(rng.Uniform(25))),
         Value(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  (void)catalog->RegisterBase(*rb.Build("r"));

  TableBuilder sb(Schema({{"a", DataType::kInt64, false},
                          {"attr", DataType::kInt64, false}}));
  for (int64_t a = 0; a < join_keys; ++a) {
    // 4 dimension rows per key: the join multiplies R's rows, which is what
    // makes aggregating *before* the join attractive.
    for (int64_t k = 0; k < 4; ++k) {
      (void)sb.AppendRow({Value(a), Value(a * 10 + k)});
    }
  }
  (void)catalog->RegisterBase(*sb.Build("s"));
}

void RunScenario(const char* label, size_t rows, int64_t join_keys) {
  Catalog catalog;
  MakeTables(rows, join_keys, &catalog);
  JoinGroupingSetsQuery q;
  q.left_table = "r";
  q.right_table = "s";
  q.left_join_col = 0;
  q.right_join_col = 0;
  // (b), (c) and (b,c): nested sets whose pushed versions GB-MQO can serve
  // from one shared (a,b,c) intermediate.
  q.requests = {GroupByRequest::Count({1}), GroupByRequest::Count({2}),
                GroupByRequest::Count({1, 2})};

  JoinGroupingSetsExecutor exec(&catalog);
  auto base = exec.ExecuteJoinFirst(q);
  if (!base.ok()) std::exit(1);
  auto push_naive = exec.ExecutePushdown(q, PushdownMode::kNaive);
  if (!push_naive.ok()) std::exit(1);
  auto push_gbmqo = exec.ExecutePushdown(q, PushdownMode::kGbMqo);
  if (!push_gbmqo.ok()) std::exit(1);

  std::printf("%s (|R|=%zu, join keys=%lld):\n", label, rows,
              static_cast<long long>(join_keys));
  auto report = [&](const char* name, const JoinExecutionResult& r) {
    std::printf("  %-17s | %8.3fs | %12.0f wu | rows through ops %10llu\n",
                name, r.wall_seconds, r.counters.WorkUnits(),
                static_cast<unsigned long long>(r.counters.rows_emitted));
  };
  report("join-first", *base);
  report("pushdown naive", *push_naive);
  report("pushdown GB-MQO", *push_gbmqo);
  std::printf("  pushdown+GB-MQO vs join-first: %.2fx wall, %.2fx work\n\n",
              base->wall_seconds / push_gbmqo->wall_seconds,
              base->counters.WorkUnits() / push_gbmqo->counters.WorkUnits());
}

void Run() {
  const size_t rows = bench::RowsFromEnv(400000);
  Banner("Section 5.1.1 — GROUPING SETS over Join(R,S) with pushdown",
         "Chen & Narasayya, SIGMOD'05, Section 5.1.1, Figure 8");
  std::printf("requests (b),(c),(b,c); grouping columns are in R\n\n");

  // Low-cardinality key: pushed sets s_i ∪ {a} are far smaller than R, so
  // aggregating before the join pays (the regime Figure 8 targets).
  RunScenario("low-cardinality join key", rows, 100);
  // High-cardinality key: s_i ∪ {a} is nearly as large as R — pushdown
  // inflates work, which is exactly why the transform must be cost-based.
  RunScenario("high-cardinality join key", rows, static_cast<int64_t>(rows / 4));
}

}  // namespace
}  // namespace gbmqo

int main() {
  gbmqo::Run();
  return 0;
}
