// gbmqo — command-line multi-Group-By analyzer (the "client data analysis
// tool" of Section 5.2). Loads a CSV (or generates a synthetic dataset),
// optimizes a GROUPING SETS workload with GB-MQO and either executes it,
// explains the plan, or emits the SQL script for a real DBMS.
//
//   gbmqo_cli --csv data.csv --spec "SINGLE(state, zip, country)" explain
//   gbmqo_cli --csv data.csv --spec "(a), (b), (a, b)" run
//   gbmqo_cli --gen tpch --rows 100000 --spec "PAIRS(l_returnflag, l_linestatus, l_shipmode)" sql
//   gbmqo_cli --csv data.csv --spec "SINGLE(a, b)" run --out results_dir
#include <cstdio>
#include <cstring>
#include <string>

#include "api/session.h"
#include "data/csv.h"
#include "data/nref_gen.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--csv FILE | --gen tpch|sales|nref) [--rows N]\n"
      "          --spec 'GROUPING SETS spec' (run|explain|sql|profile)\n"
      "          [--out DIR]  write result tables as CSV into DIR\n"
      "          [--naive]    also execute the naive plan and compare\n"
      "          [--retries N]  re-attempts per failed execution task\n"
      "                         (degradation ladder; pairs with GBMQO_FAULTS)\n"
      "\n"
      "spec examples:  \"(a), (b), (a, c)\"   \"SINGLE(a, b, c)\"   "
      "\"PAIRS(a, b, c)\"\n",
      argv0);
  return 2;
}

struct Args {
  std::string csv;
  std::string gen;
  size_t rows = 100000;
  std::string spec;
  std::string command;
  std::string out_dir;
  bool compare_naive = false;
  int retries = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return false;
      args->csv = v;
    } else if (arg == "--gen") {
      const char* v = next();
      if (v == nullptr) return false;
      args->gen = v;
    } else if (arg == "--rows") {
      const char* v = next();
      if (v == nullptr) return false;
      args->rows = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return false;
      args->spec = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_dir = v;
    } else if (arg == "--naive") {
      args->compare_naive = true;
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return false;
      args->retries = std::atoi(v);
    } else if (arg[0] != '-') {
      args->command = arg;
    } else {
      return false;
    }
  }
  return !args->command.empty() &&
         (args->csv.empty() != args->gen.empty());
}

Result<TablePtr> LoadTable(const Args& args) {
  if (!args.csv.empty()) return ReadCsvFile(args.csv, "data");
  if (args.gen == "tpch") return GenerateLineitem({.rows = args.rows});
  if (args.gen == "sales") return GenerateSales({.rows = args.rows});
  if (args.gen == "nref") return GenerateNref({.rows = args.rows});
  return Status::InvalidArgument("unknown generator '" + args.gen + "'");
}

/// Default profile spec: every column of the table.
std::string ProfileSpec(const Schema& schema) {
  std::string spec = "SINGLE(";
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) spec += ", ";
    spec += schema.column(c).name;
  }
  spec += ")";
  return spec;
}

int RunCli(const Args& args) {
  Result<TablePtr> table = LoadTable(args);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("-- loaded '%s': %zu rows, %d columns\n",
              (*table)->name().c_str(), (*table)->num_rows(),
              (*table)->schema().num_columns());
  SessionOptions options;
  options.max_task_retries = args.retries;
  Session session(*table, options);

  std::string spec = args.spec;
  if (args.command == "profile" && spec.empty()) {
    spec = ProfileSpec((*table)->schema());
  }
  if (spec.empty()) {
    std::fprintf(stderr, "--spec is required for '%s'\n", args.command.c_str());
    return 2;
  }

  if (args.command == "explain") {
    auto out = session.Explain(spec);
    if (!out.ok()) {
      std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
      return 1;
    }
    std::fputs(out->c_str(), stdout);
    return 0;
  }
  if (args.command == "sql") {
    auto stmts = session.GenerateSql(spec);
    if (!stmts.ok()) {
      std::fprintf(stderr, "%s\n", stmts.status().ToString().c_str());
      return 1;
    }
    for (const SqlStatement& s : *stmts) std::printf("%s\n", s.text.c_str());
    return 0;
  }
  if (args.command != "run" && args.command != "profile") {
    std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
    return 2;
  }

  auto requests = session.Parse(spec);
  if (!requests.ok()) {
    std::fprintf(stderr, "%s\n", requests.status().ToString().c_str());
    return 1;
  }
  auto opt = session.Optimize(*requests);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 1;
  }
  std::printf("-- plan: %s\n", opt->plan.ToString().c_str());
  std::printf("-- estimated cost %.4g vs naive %.4g (%.2fx), optimized in "
              "%.3fs (%llu optimizer calls)\n",
              opt->cost, opt->naive_cost, opt->naive_cost / opt->cost,
              opt->stats.optimization_seconds,
              static_cast<unsigned long long>(opt->stats.optimizer_calls));

  auto exec = session.ExecutePlan(opt->plan, *requests);
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }
  std::printf("-- executed in %.3fs (%.0f work units, peak temp %.2f MB)\n",
              exec->wall_seconds, exec->counters.WorkUnits(),
              static_cast<double>(exec->peak_temp_bytes) / 1e6);
  if (args.compare_naive) {
    auto naive = session.ExecutePlan(NaivePlan(*requests), *requests);
    if (naive.ok()) {
      std::printf("-- naive plan: %.3fs (%.0f work units) -> speedup %.2fx "
                  "wall, %.2fx work\n",
                  naive->wall_seconds, naive->counters.WorkUnits(),
                  naive->wall_seconds / exec->wall_seconds,
                  naive->counters.WorkUnits() / exec->counters.WorkUnits());
    }
  }

  for (const auto& [cols, result] : exec->results) {
    const auto names = (*table)->schema().ColumnNames(cols);
    std::string label;
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) label += "_";
      label += names[i];
    }
    std::printf("-- (%s): %zu groups\n", label.c_str(), result->num_rows());
    if (!args.out_dir.empty()) {
      const std::string path = args.out_dir + "/" + label + ".csv";
      Status s = WriteCsvFile(*result, path);
      if (!s.ok()) {
        std::fprintf(stderr, "write %s: %s\n", path.c_str(),
                     s.ToString().c_str());
        return 1;
      }
      std::printf("   wrote %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace gbmqo

int main(int argc, char** argv) {
  gbmqo::Args args;
  if (!gbmqo::ParseArgs(argc, argv, &args)) return gbmqo::Usage(argv[0]);
  return gbmqo::RunCli(args);
}
