#!/usr/bin/env python3
"""Multi-bench regression gate.

Compares freshly produced bench JSON files against their checked-in
baselines (bench/baselines/) and fails when a benchmark moved backwards in a
way throughput noise cannot explain:

  * a series entry (kernel, sweep point, worker count, batch size) present
    in the baseline is MISSING from the new results — a silently dropped
    kernel or sweep point must fail even if every surviving number is fine;
  * a metric field present in a baseline entry is missing from the matching
    new entry;
  * a gated throughput metric regressed by more than the tolerance
    (default 10%) — only metrics listed as `floors`, because wall-clock
    numbers move with the machine while rows/sec floors against a same-host
    baseline are meaningful;
  * a boolean acceptance gate that was true in the baseline is no longer
    true (e.g. the SIMD >= 2x speedup gate, spill bit-identity, the
    sort-beats-hash crossover gate).

Benches covered (see MANIFEST): simd, plan_pipeline, incremental, spill,
durability.

Usage:
  check_bench_regression.py [--bench all|simd|plan_pipeline|incremental|
                             spill|durability]
                            [--current FILE] [--baseline FILE]
                            [--tolerance 0.10]
  check_bench_regression.py --self-test

--current/--baseline override the manifest paths and require a single
--bench. Exit status: 0 = all checks passed, 1 = regression/failure.
Only the Python standard library is used.
"""

import argparse
import json
import os
import sys

# Per-bench comparison spec.
#   series: (json_key, id_field) — the keyed collection whose baseline
#     entries must all be present in the new results. id_field None means
#     the collection is a dict keyed by name; otherwise it is a list of
#     objects keyed by the id_field's value.
#   floors: (json_key, id_field, metric) — higher-is-better metrics gated
#     at baseline * (1 - tolerance).
#   gates: dotted paths of booleans that must be true in the new results
#     whenever they are true in the baseline.
MANIFEST = {
    "simd": {
        "current": "BENCH_simd.json",
        "baseline": "bench/baselines/BENCH_simd_baseline.json",
        "series": [("kernels", None)],
        "floors": [("kernels", None, "simd_rows_per_sec")],
        "gates": ["gate.pass"],
    },
    "plan_pipeline": {
        "current": "BENCH_plan_pipeline.json",
        "baseline": "bench/baselines/BENCH_plan_pipeline_baseline.json",
        "series": [("fusion", "workers")],
        "floors": [],
        "gates": ["fused_deterministic_1_2_8", "storage.gated_within_estimate"],
    },
    "incremental": {
        "current": "BENCH_incremental.json",
        "baseline": "bench/baselines/BENCH_incremental_baseline.json",
        "series": [("batches", "batch_rows")],
        "floors": [],
        "gates": ["small_batch_speedup_ok"],
    },
    "spill": {
        "current": "BENCH_spill.json",
        "baseline": "bench/baselines/BENCH_spill_baseline.json",
        "series": [("sweep", "group_domain")],
        "floors": [],
        "gates": ["gate.pass", "gate.bit_identical_all"],
    },
    "durability": {
        "current": "BENCH_durability.json",
        "baseline": "bench/baselines/BENCH_durability_baseline.json",
        "series": [("modes", "mode"), ("recovery", "log_batches")],
        "floors": [],
        "gates": ["wal_overhead_ok", "recovered_bit_identical"],
    },
}


def index_series(doc, key, id_field):
    """Returns {entry_id: entry_dict} for one series, or None if absent."""
    coll = doc.get(key)
    if coll is None:
        return None
    if id_field is None:
        return dict(coll)
    return {e.get(id_field): e for e in coll}


def get_path(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare(name, current, baseline, spec, tolerance):
    """Returns (ok, list-of-report-lines) for one bench."""
    lines = []
    ok = True

    def fail(msg):
        nonlocal ok
        ok = False
        lines.append("FAIL [%s] %s" % (name, msg))

    for key, id_field in spec["series"]:
        base_idx = index_series(baseline, key, id_field)
        cur_idx = index_series(current, key, id_field)
        if base_idx is None:
            continue
        if cur_idx is None:
            fail("series %r missing from current results" % key)
            continue
        for entry_id, base_entry in sorted(base_idx.items(), key=lambda kv: str(kv[0])):
            cur_entry = cur_idx.get(entry_id)
            if cur_entry is None:
                fail("%s[%s] present in baseline, missing from current"
                     % (key, entry_id))
                continue
            for field in base_entry:
                if field not in cur_entry:
                    fail("%s[%s].%s present in baseline, missing from current"
                         % (key, entry_id, field))

    for key, id_field, metric in spec["floors"]:
        base_idx = index_series(baseline, key, id_field) or {}
        cur_idx = index_series(current, key, id_field) or {}
        for entry_id, base_entry in sorted(base_idx.items(), key=lambda kv: str(kv[0])):
            cur_entry = cur_idx.get(entry_id)
            if cur_entry is None or metric not in base_entry:
                continue  # absence already reported by the series check
            if metric not in cur_entry:
                continue
            base_v = float(base_entry[metric])
            cur_v = float(cur_entry[metric])
            floor = base_v * (1.0 - tolerance)
            ratio = cur_v / base_v if base_v > 0 else float("inf")
            if cur_v < floor:
                fail("%s[%s].%s %.3e vs baseline %.3e (%.2fx, floor %.2fx)"
                     % (key, entry_id, metric, cur_v, base_v, ratio,
                        1.0 - tolerance))
            else:
                lines.append(
                    "ok   [%s] %s[%s].%s %.3e vs baseline %.3e (%.2fx)"
                    % (name, key, entry_id, metric, cur_v, base_v, ratio))

    for gate in spec["gates"]:
        if get_path(baseline, gate) is not True:
            continue  # gate not established in the baseline: nothing to hold
        if get_path(current, gate) is not True:
            fail("gate %s was true in baseline, now %r"
                 % (gate, get_path(current, gate)))
        else:
            lines.append("ok   [%s] gate %s holds" % (name, gate))

    return ok, lines


def check_bench(name, spec, repo_root, tolerance, current_path=None,
                baseline_path=None):
    current_path = current_path or os.path.join(repo_root, spec["current"])
    baseline_path = baseline_path or os.path.join(repo_root, spec["baseline"])
    try:
        with open(current_path) as f:
            current = json.load(f)
    except OSError as e:
        return False, ["FAIL [%s] cannot read current results (run the bench "
                       "first): %s" % (name, e)]
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        return False, ["FAIL [%s] cannot read baseline: %s" % (name, e)]
    return compare(name, current, baseline, spec, tolerance)


def self_test():
    """Synthetic pass/fail cases exercising every comparison branch."""
    spec = {
        "series": [("kernels", None), ("sweep", "groups")],
        "floors": [("kernels", None, "rows_per_sec")],
        "gates": ["gate.pass", "flat_flag"],
    }
    base = {
        "kernels": {"a": {"rows_per_sec": 1000.0}, "b": {"rows_per_sec": 500.0}},
        "sweep": [{"groups": 64, "r": 1.0}, {"groups": 4096, "r": 2.0}],
        "gate": {"pass": True},
        "flat_flag": True,
    }

    def fresh():
        return json.loads(json.dumps(base))

    # Identical run -> pass.
    ok, _ = compare("t", fresh(), base, spec, 0.10)
    assert ok, "identical run must pass"

    # Within tolerance (5% down) -> pass.
    cur = fresh()
    cur["kernels"]["a"]["rows_per_sec"] = 950.0
    ok, _ = compare("t", cur, base, spec, 0.10)
    assert ok, "within-tolerance run must pass"

    # 20% regression on a floored metric -> fail.
    cur = fresh()
    cur["kernels"]["a"]["rows_per_sec"] = 800.0
    ok, lines = compare("t", cur, base, spec, 0.10)
    assert not ok, "20%% regression must fail"
    assert any("kernels[a].rows_per_sec" in l for l in lines if l.startswith("FAIL"))

    # Tolerance is configurable: the same 20% drop passes at 25%.
    ok, _ = compare("t", cur, base, spec, 0.25)
    assert ok, "20%% drop within 25%% tolerance must pass"

    # Kernel present in baseline missing from current -> fail.
    cur = fresh()
    del cur["kernels"]["b"]
    ok, lines = compare("t", cur, base, spec, 0.10)
    assert not ok, "missing kernel must fail"
    assert any("kernels[b] present in baseline" in l for l in lines)

    # List-series entry (sweep point) missing -> fail.
    cur = fresh()
    cur["sweep"] = [e for e in cur["sweep"] if e["groups"] != 4096]
    ok, lines = compare("t", cur, base, spec, 0.10)
    assert not ok, "missing sweep point must fail"
    assert any("sweep[4096] present in baseline" in l for l in lines)

    # Metric field dropped from a surviving entry -> fail.
    cur = fresh()
    del cur["sweep"][0]["r"]
    ok, lines = compare("t", cur, base, spec, 0.10)
    assert not ok, "dropped metric field must fail"
    assert any("sweep[64].r present in baseline" in l for l in lines)

    # Whole series dropped -> fail.
    cur = fresh()
    del cur["sweep"]
    ok, lines = compare("t", cur, base, spec, 0.10)
    assert not ok, "dropped series must fail"

    # Nested boolean gate flipped -> fail; top-level gate flipped -> fail.
    cur = fresh()
    cur["gate"]["pass"] = False
    ok, lines = compare("t", cur, base, spec, 0.10)
    assert not ok, "flipped nested gate must fail"
    assert any("gate gate.pass" in l for l in lines)
    cur = fresh()
    del cur["flat_flag"]
    ok, _ = compare("t", cur, base, spec, 0.10)
    assert not ok, "missing top-level gate must fail"

    # Gate false in the BASELINE is not enforced (never established).
    weak_base = fresh()
    weak_base["gate"]["pass"] = False
    cur = fresh()
    cur["gate"]["pass"] = False
    ok, _ = compare("t", cur, weak_base, spec, 0.10)
    assert ok, "gate never established in baseline must not be enforced"

    # Extra entries in current never fail (baselines only ratchet).
    cur = fresh()
    cur["kernels"]["c"] = {"rows_per_sec": 1.0}
    cur["sweep"].append({"groups": 1 << 20, "r": 9.0})
    ok, _ = compare("t", cur, base, spec, 0.10)
    assert ok, "extra current entries must pass"

    # Durability-shaped fixture: a string-keyed list series ("mode") plus
    # top-level gates, as BENCH_durability.json emits them.
    dur_spec = {
        "series": [("modes", "mode"), ("recovery", "log_batches")],
        "floors": [],
        "gates": ["wal_overhead_ok", "recovered_bit_identical"],
    }
    dur_base = {
        "modes": [{"mode": "off", "ingest_ms": 100.0},
                  {"mode": "batch", "ingest_ms": 105.0}],
        "recovery": [{"log_batches": 10, "full_replay_ms": 50.0}],
        "wal_overhead_ok": True,
        "recovered_bit_identical": True,
    }
    cur = json.loads(json.dumps(dur_base))
    ok, _ = compare("durability", cur, dur_base, dur_spec, 0.10)
    assert ok, "identical durability run must pass"
    cur = json.loads(json.dumps(dur_base))
    cur["modes"] = [e for e in cur["modes"] if e["mode"] != "batch"]
    ok, lines = compare("durability", cur, dur_base, dur_spec, 0.10)
    assert not ok, "dropped fsync mode must fail"
    assert any("modes[batch] present in baseline" in l for l in lines)
    cur = json.loads(json.dumps(dur_base))
    cur["wal_overhead_ok"] = False
    ok, lines = compare("durability", cur, dur_base, dur_spec, 0.10)
    assert not ok, "flipped WAL-overhead gate must fail"
    assert any("wal_overhead_ok" in l for l in lines)

    # The real manifest stays self-consistent: every bench names files and
    # well-formed series/floors/gates.
    for name, spec2 in MANIFEST.items():
        assert spec2["current"] and spec2["baseline"], name
        for s in spec2["series"]:
            assert len(s) == 2, name
        for f in spec2["floors"]:
            assert len(f) == 3, name

    print("self-test: all cases passed")
    return 0


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="all",
                        choices=["all"] + sorted(MANIFEST))
    parser.add_argument("--current", default=None,
                        help="override the current-results path (single bench)")
    parser.add_argument("--baseline", default=None,
                        help="override the baseline path (single bench)")
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if (args.current or args.baseline) and args.bench == "all":
        print("--current/--baseline require a single --bench")
        return 1

    names = sorted(MANIFEST) if args.bench == "all" else [args.bench]
    all_ok = True
    for name in names:
        ok, lines = check_bench(name, MANIFEST[name], repo_root,
                                args.tolerance, args.current, args.baseline)
        for line in lines:
            print(line)
        print("[%s] %s" % (name, "PASS" if ok else "FAIL"))
        all_ok = all_ok and ok
    print("bench regression check: %s" % ("PASS" if all_ok else "FAIL"))
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
