#!/usr/bin/env python3
"""SIMD bench regression gate.

Compares the per-kernel rows/sec in a freshly produced BENCH_simd.json
(written by bench/bench_simd) against the checked-in baseline and fails when
any kernel's SIMD-tier throughput regressed by more than the tolerance
(default 10%). Also re-checks the bench's own acceptance gate (>= 2x speedup
on at least two hot loops) so a silently weakened vector tier fails CI even
if absolute throughput is still within tolerance.

Scalar-tier numbers are reported but not gated: the scalar baseline moves
with compiler/auto-vectorization changes that are not this engine's code.

Usage:
  check_bench_regression.py [--current BENCH_simd.json]
                            [--baseline bench/baselines/BENCH_simd_baseline.json]
                            [--tolerance 0.10]
  check_bench_regression.py --self-test

Exit status: 0 = within tolerance and gate passed, 1 = regression/failure.
Only the Python standard library is used.
"""

import argparse
import json
import os
import sys


def compare(current, baseline, tolerance):
    """Returns (ok, list-of-report-lines)."""
    lines = []
    ok = True

    cur_kernels = current.get("kernels", {})
    base_kernels = baseline.get("kernels", {})
    for name, base in sorted(base_kernels.items()):
        cur = cur_kernels.get(name)
        if cur is None:
            ok = False
            lines.append("FAIL %-22s missing from current results" % name)
            continue
        base_rps = float(base["simd_rows_per_sec"])
        cur_rps = float(cur["simd_rows_per_sec"])
        floor = base_rps * (1.0 - tolerance)
        ratio = cur_rps / base_rps if base_rps > 0 else float("inf")
        status = "ok  " if cur_rps >= floor else "FAIL"
        if cur_rps < floor:
            ok = False
        lines.append(
            "%s %-22s simd %.3e rows/s vs baseline %.3e (%.2fx, floor %.2fx)"
            % (status, name, cur_rps, base_rps, ratio, 1.0 - tolerance)
        )

    gate = current.get("gate", {})
    if not gate.get("pass", False):
        ok = False
        lines.append(
            "FAIL speedup gate: %s of %s kernels at >= %sx (need %s)"
            % (
                gate.get("kernels_at_or_above", "?"),
                len(cur_kernels),
                gate.get("required_speedup", "?"),
                gate.get("min_kernels", "?"),
            )
        )
    else:
        lines.append(
            "ok   speedup gate: %d kernels at >= %.1fx"
            % (gate["kernels_at_or_above"], gate["required_speedup"])
        )
    return ok, lines


def self_test():
    """Synthetic pass/fail cases exercising every comparison branch."""
    base = {
        "kernels": {
            "a": {"simd_rows_per_sec": 1000.0},
            "b": {"simd_rows_per_sec": 500.0},
        }
    }
    good_gate = {
        "required_speedup": 2.0,
        "min_kernels": 2,
        "kernels_at_or_above": 2,
        "pass": True,
    }

    # Within tolerance (one kernel 5% down, one up) -> pass.
    cur = {
        "kernels": {
            "a": {"simd_rows_per_sec": 950.0},
            "b": {"simd_rows_per_sec": 600.0},
        },
        "gate": dict(good_gate),
    }
    ok, _ = compare(cur, base, 0.10)
    assert ok, "within-tolerance run must pass"

    # 20% regression on one kernel -> fail.
    cur["kernels"]["a"]["simd_rows_per_sec"] = 800.0
    ok, lines = compare(cur, base, 0.10)
    assert not ok, "20%% regression must fail"
    assert any(l.startswith("FAIL a") for l in lines)

    # Missing kernel -> fail.
    cur["kernels"] = {"a": {"simd_rows_per_sec": 1000.0}}
    ok, lines = compare(cur, base, 0.10)
    assert not ok, "missing kernel must fail"

    # Healthy throughput but failed speedup gate -> fail.
    cur["kernels"] = {
        "a": {"simd_rows_per_sec": 1000.0},
        "b": {"simd_rows_per_sec": 500.0},
    }
    cur["gate"] = dict(good_gate, kernels_at_or_above=1, **{"pass": False})
    ok, lines = compare(cur, base, 0.10)
    assert not ok, "failed speedup gate must fail"
    assert any("speedup gate" in l for l in lines)

    # Tolerance is configurable: the same 20% drop passes at 25%.
    cur["kernels"]["a"]["simd_rows_per_sec"] = 800.0
    cur["gate"] = dict(good_gate)
    ok, _ = compare(cur, base, 0.25)
    assert ok, "20%% drop within 25%% tolerance must pass"

    print("self-test: all cases passed")
    return 0


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--current", default=os.path.join(repo_root, "BENCH_simd.json")
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            repo_root, "bench", "baselines", "BENCH_simd_baseline.json"
        ),
    )
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    try:
        with open(args.current) as f:
            current = json.load(f)
    except OSError as e:
        print("cannot read current results (run bench/bench_simd first): %s" % e)
        return 1
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        print("cannot read baseline: %s" % e)
        return 1

    ok, lines = compare(current, baseline, args.tolerance)
    for line in lines:
        print(line)
    print("bench regression check: %s" % ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
