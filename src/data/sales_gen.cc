#include "data/sales_gen.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace gbmqo {

TablePtr GenerateSales(const SalesGenOptions& options) {
  Schema schema({
      {"store_id", DataType::kInt64, false},
      {"region", DataType::kString, false},
      {"state", DataType::kString, false},
      {"product_id", DataType::kInt64, false},
      {"category", DataType::kString, false},
      {"subcategory", DataType::kString, false},
      {"brand", DataType::kString, false},
      {"customer_id", DataType::kInt64, false},
      {"promo_id", DataType::kInt64, true},
      {"channel", DataType::kString, false},
      {"order_date", DataType::kInt64, false},
      {"ship_date", DataType::kInt64, false},
      {"sales_quantity", DataType::kInt64, false},
      {"unit_price", DataType::kDouble, false},
      {"payment_type", DataType::kString, false},
  });
  TableBuilder b(schema);
  for (int c = 0; c < kNumSalesColumns; ++c) b.column(c)->Reserve(options.rows);

  Rng rng(options.seed);
  const size_t n = options.rows;
  const uint64_t num_stores = 500;
  const uint64_t num_products = std::max<uint64_t>(1, std::min<uint64_t>(20000, n / 10));
  const uint64_t num_customers = std::max<uint64_t>(1, n / 5);
  const uint64_t num_days = 1096;  // three years

  const char* kRegions[] = {"North", "South", "East", "West", "Central",
                            "NorthEast", "NorthWest", "SouthEast",
                            "SouthWest", "International"};
  const char* kChannels[] = {"store", "web", "phone", "partner"};
  const char* kPayments[] = {"cash", "credit", "debit", "gift", "invoice"};

  for (size_t i = 0; i < n; ++i) {
    const uint64_t store = rng.Uniform(num_stores);
    // Geography derives from the store: each store belongs to one state and
    // each state to one region — correlated, compressible dimensions.
    const uint64_t state = store % 50;
    const uint64_t region = state % 10;

    const uint64_t product = rng.Uniform(num_products);
    // Product hierarchy derives from the product id.
    const uint64_t subcategory = product % 120;
    const uint64_t category = subcategory % 25;
    const uint64_t brand = product % 300;

    const int64_t order_date = static_cast<int64_t>(rng.Uniform(num_days));
    const int64_t ship_date = order_date + rng.UniformRange(0, 7);

    b.column(kStoreId)->AppendInt64(static_cast<int64_t>(store));
    b.column(kRegion)->AppendString(kRegions[region]);
    b.column(kState)->AppendString(StrFormat("ST%02llu",
                                             static_cast<unsigned long long>(state)));
    b.column(kProductId)->AppendInt64(static_cast<int64_t>(product));
    b.column(kCategory)->AppendString(StrFormat("cat%02llu",
                                                static_cast<unsigned long long>(category)));
    b.column(kSubcategory)
        ->AppendString(StrFormat("sub%03llu",
                                 static_cast<unsigned long long>(subcategory)));
    b.column(kBrand)->AppendString(StrFormat("brand%03llu",
                                             static_cast<unsigned long long>(brand)));
    b.column(kCustomerId)->AppendInt64(static_cast<int64_t>(rng.Uniform(num_customers)));
    // ~20% of sales have no promotion.
    if (rng.Bernoulli(0.2)) {
      b.column(kPromoId)->AppendNull();
    } else {
      b.column(kPromoId)->AppendInt64(static_cast<int64_t>(rng.Uniform(200)));
    }
    b.column(kChannel)->AppendString(kChannels[rng.Uniform(4)]);
    b.column(kOrderDate)->AppendInt64(order_date);
    b.column(kShipDate)->AppendInt64(ship_date);
    b.column(kSalesQuantity)->AppendInt64(static_cast<int64_t>(rng.Uniform(20)) + 1);
    b.column(kUnitPrice)
        ->AppendDouble(1.0 + static_cast<double>(rng.Uniform(50000)) / 100.0);
    b.column(kPaymentType)->AppendString(kPayments[rng.Uniform(5)]);
  }
  return std::move(b.Build("sales")).ValueOrDie();
}

std::vector<int> SalesAllColumns() {
  std::vector<int> out;
  for (int c = 0; c < kNumSalesColumns; ++c) out.push_back(c);
  return out;
}

}  // namespace gbmqo
