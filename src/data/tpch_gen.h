// Synthetic TPC-H lineitem generator.
//
// The paper's headline experiments run on the TPC-H 1G/10G lineitem table
// (6M/60M rows, 16 columns). dbgen and multi-GB datasets are out of scope
// for a laptop-scale reproduction, so this generator produces a lineitem
// with the *distinct-count structure* that drives the algorithm:
//
//  * three correlated date columns clustered around ~2.5k calendar days
//    (ship/commit/receipt — commit and receipt derive from ship), so the
//    pair (receiptdate, commitdate) is far smaller than the row count;
//  * a low-cardinality categorical cluster (tax, discount, quantity,
//    returnflag, linestatus) whose joint cardinality is tens of thousands;
//  * near-unique columns (orderkey, comment) that cannot be merged;
//  * mid-cardinality keys (partkey, suppkey).
//
// Row counts scale freely; domain sizes follow the TPC-H spec shapes. A
// Zipf-theta parameter skews every categorical draw (Experiment 6.8).
#ifndef GBMQO_DATA_TPCH_GEN_H_
#define GBMQO_DATA_TPCH_GEN_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace gbmqo {

/// Lineitem column ordinals (all 16 TPC-H columns).
enum LineitemColumn : int {
  kOrderkey = 0,
  kPartkey,
  kSuppkey,
  kLinenumber,
  kQuantity,
  kExtendedprice,
  kDiscount,
  kTax,
  kReturnflag,
  kLinestatus,
  kShipdate,
  kCommitdate,
  kReceiptdate,
  kShipinstruct,
  kShipmode,
  kComment,
  kNumLineitemColumns,
};

struct TpchGenOptions {
  size_t rows = 100000;
  /// Zipf skew applied to categorical/date draws; 0 = uniform (paper's
  /// default datasets), >0 reproduces Figure 13's skewed variants.
  double zipf_theta = 0.0;
  uint64_t seed = 42;
  /// Distinct calendar days in the shipdate domain. TPC-H spans ~2526 days
  /// at 6M rows — about 2400 rows per day. 0 (default) auto-scales the
  /// domain to preserve that rows-per-day density at reduced row counts, so
  /// the *relative* compressibility of the date columns (which drives the
  /// paper's plans) is preserved; pass 2526 for the literal TPC-H domain.
  int date_domain = 0;
};

/// Generates a lineitem table named "lineitem".
TablePtr GenerateLineitem(const TpchGenOptions& options);

/// The 12 "character or categorical" columns the paper's SC workload groups
/// by (floating-point price columns excluded — Section 6.1).
std::vector<int> LineitemAnalysisColumns();

}  // namespace gbmqo

#endif  // GBMQO_DATA_TPCH_GEN_H_
