// Table widening for the column-scaling experiment (Section 6.4 /
// Figure 10): the paper widens lineitem by repeating its 12 analysis
// columns. Repeated columns share the original column storage (shared_ptr),
// so widening is O(columns), not O(data).
#ifndef GBMQO_DATA_WIDEN_H_
#define GBMQO_DATA_WIDEN_H_

#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace gbmqo {

/// Builds a new table repeating `source_columns` of `table` `times` times.
/// Repetition k >= 1 appends columns named "<name>__r<k>". The result shares
/// column storage with the input.
Result<TablePtr> WidenTable(const Table& table,
                            const std::vector<int>& source_columns, int times,
                            const std::string& name);

}  // namespace gbmqo

#endif  // GBMQO_DATA_WIDEN_H_
