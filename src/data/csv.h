// CSV import/export: lets users profile their own data and persist result
// tables. Deliberately small: comma-separated, double-quote escaping, one
// header row, type inference (INT64 -> DOUBLE -> STRING) with explicit
// override.
#ifndef GBMQO_DATA_CSV_H_
#define GBMQO_DATA_CSV_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace gbmqo {

struct CsvReadOptions {
  /// Column types; empty = infer per column from the data (INT64 if every
  /// non-empty cell parses as an integer, else DOUBLE if numeric, else
  /// STRING). Empty cells load as NULL.
  std::vector<DataType> types;
  /// Maximum rows to load (0 = all).
  size_t max_rows = 0;
};

/// Parses CSV text (header row required) into a table named `name`.
Result<TablePtr> ReadCsv(std::istream& in, const std::string& name,
                         const CsvReadOptions& options = {});

/// Convenience: reads a file from disk.
Result<TablePtr> ReadCsvFile(const std::string& path, const std::string& name,
                             const CsvReadOptions& options = {});

/// Writes a table as CSV (header + rows; NULL as empty cell; strings quoted
/// when they contain separators/quotes/newlines).
Status WriteCsv(const Table& table, std::ostream& out);
Status WriteCsvFile(const Table& table, const std::string& path);

/// Splits one CSV record into fields, honouring double-quote escaping.
/// Exposed for testing.
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace gbmqo

#endif  // GBMQO_DATA_CSV_H_
