#include "data/tpch_gen.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/zipf.h"

namespace gbmqo {

namespace {

/// Draws domain indices uniformly or Zipf-skewed depending on theta.
class DomainSampler {
 public:
  DomainSampler(uint64_t domain, double theta)
      : domain_(domain),
        zipf_(theta > 0 ? std::make_unique<ZipfGenerator>(domain, theta)
                        : nullptr) {}

  uint64_t Sample(Rng* rng) const {
    if (zipf_ != nullptr) return zipf_->Sample(rng);
    return rng->Uniform(domain_);
  }

 private:
  uint64_t domain_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

const char* kReturnFlags[] = {"N", "R", "A"};
const char* kLineStatus[] = {"O", "F"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kShipModes[] = {"TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "FOB",
                            "REG AIR"};

}  // namespace

TablePtr GenerateLineitem(const TpchGenOptions& options) {
  Schema schema({
      {"l_orderkey", DataType::kInt64, false},
      {"l_partkey", DataType::kInt64, false},
      {"l_suppkey", DataType::kInt64, false},
      {"l_linenumber", DataType::kInt64, false},
      {"l_quantity", DataType::kInt64, false},
      {"l_extendedprice", DataType::kDouble, false},
      {"l_discount", DataType::kDouble, false},
      {"l_tax", DataType::kDouble, false},
      {"l_returnflag", DataType::kString, false},
      {"l_linestatus", DataType::kString, false},
      {"l_shipdate", DataType::kInt64, false},
      {"l_commitdate", DataType::kInt64, false},
      {"l_receiptdate", DataType::kInt64, false},
      {"l_shipinstruct", DataType::kString, false},
      {"l_shipmode", DataType::kString, false},
      {"l_comment", DataType::kString, false},
  });
  TableBuilder b(schema);
  for (int c = 0; c < kNumLineitemColumns; ++c) b.column(c)->Reserve(options.rows);

  Rng rng(options.seed);
  const double theta = options.zipf_theta;
  const size_t n = options.rows;

  // Domain sizes follow TPC-H shapes relative to the row count.
  const uint64_t num_orders = std::max<uint64_t>(1, n / 4);
  const uint64_t num_parts = std::max<uint64_t>(1, n / 30);
  const uint64_t num_supps = std::max<uint64_t>(1, n / 600);
  uint64_t dates = static_cast<uint64_t>(options.date_domain);
  if (dates == 0) {
    // Auto: preserve TPC-H's ~2400 rows-per-day density, capped at the
    // spec's ~2526-day span and floored to keep a real domain on tiny
    // tables.
    dates = std::clamp<uint64_t>(n / 2400, 64, 2526);
  }
  // Comments: near-unique but with some repeats (TPC-H comments are random
  // text; a small shared pool keeps dictionary memory bounded while staying
  // "dense" for the optimizer: ~70% of rows carry a distinct comment).
  const uint64_t num_comments = std::max<uint64_t>(1, (n * 7) / 10);

  DomainSampler order_s(num_orders, theta), part_s(num_parts, theta),
      supp_s(num_supps, theta), line_s(7, theta), qty_s(50, theta),
      disc_s(11, theta), tax_s(9, theta), rflag_s(3, theta), lstat_s(2, theta),
      ship_s(dates, theta), instr_s(4, theta), mode_s(7, theta),
      comment_s(num_comments, theta);

  for (size_t i = 0; i < n; ++i) {
    const int64_t orderkey = static_cast<int64_t>(order_s.Sample(&rng)) + 1;
    const int64_t shipdate = static_cast<int64_t>(ship_s.Sample(&rng));
    // Commit/receipt dates derive from shipdate (TPC-H: commitdate within
    // +/-30 days of ship; receipt 1..30 days after ship) — this correlation
    // is exactly what makes materializing (receiptdate, commitdate) pay off.
    const int64_t commitdate = shipdate + rng.UniformRange(-30, 30);
    const int64_t receiptdate = shipdate + rng.UniformRange(1, 30);
    const int64_t quantity = static_cast<int64_t>(qty_s.Sample(&rng)) + 1;
    const double discount = static_cast<double>(disc_s.Sample(&rng)) / 100.0;
    const double tax = static_cast<double>(tax_s.Sample(&rng)) / 100.0;

    b.column(kOrderkey)->AppendInt64(orderkey);
    b.column(kPartkey)->AppendInt64(static_cast<int64_t>(part_s.Sample(&rng)) + 1);
    b.column(kSuppkey)->AppendInt64(static_cast<int64_t>(supp_s.Sample(&rng)) + 1);
    b.column(kLinenumber)->AppendInt64(static_cast<int64_t>(line_s.Sample(&rng)) + 1);
    b.column(kQuantity)->AppendInt64(quantity);
    b.column(kExtendedprice)
        ->AppendDouble(static_cast<double>(quantity) *
                       (900.0 + static_cast<double>(rng.Uniform(100000)) / 100.0));
    b.column(kDiscount)->AppendDouble(discount);
    b.column(kTax)->AppendDouble(tax);
    b.column(kReturnflag)->AppendString(kReturnFlags[rflag_s.Sample(&rng)]);
    b.column(kLinestatus)->AppendString(kLineStatus[lstat_s.Sample(&rng)]);
    b.column(kShipdate)->AppendInt64(shipdate);
    b.column(kCommitdate)->AppendInt64(commitdate);
    b.column(kReceiptdate)->AppendInt64(receiptdate);
    b.column(kShipinstruct)->AppendString(kShipInstruct[instr_s.Sample(&rng)]);
    b.column(kShipmode)->AppendString(kShipModes[mode_s.Sample(&rng)]);
    b.column(kComment)
        ->AppendString(StrFormat("comment text %llu",
                                 static_cast<unsigned long long>(
                                     comment_s.Sample(&rng))));
  }
  return std::move(b.Build("lineitem")).ValueOrDie();
}

std::vector<int> LineitemAnalysisColumns() {
  return {kLinenumber,  kQuantity,   kDiscount,     kTax,
          kReturnflag,  kLinestatus, kShipdate,     kCommitdate,
          kReceiptdate, kShipinstruct, kShipmode,   kComment};
}

}  // namespace gbmqo
