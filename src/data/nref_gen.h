// Synthetic PIR-NREF neighboring_seq generator.
//
// The paper's NREF dataset is the largest relation (neighboring_seq, 78M
// rows, 10 columns) of the public PIR-NREF protein database. The relation
// lists sequence-neighborhood hits; its profile — two high-cardinality
// sequence identifiers, a mid-cardinality organism dimension, a few small
// categorical columns and several bucketed alignment statistics — is what
// this generator reproduces at configurable scale.
#ifndef GBMQO_DATA_NREF_GEN_H_
#define GBMQO_DATA_NREF_GEN_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace gbmqo {

/// neighboring_seq column ordinals (10 columns).
enum NrefColumn : int {
  kSeqId = 0,
  kNeighborId,
  kOrganism,
  kDbSource,
  kScore,
  kEValueBucket,
  kAlignLen,
  kIdentityPct,
  kStartPos,
  kEndPos,
  kNumNrefColumns,
};

struct NrefGenOptions {
  size_t rows = 100000;
  uint64_t seed = 11;
};

/// Generates a neighboring_seq table named "neighboring_seq".
TablePtr GenerateNref(const NrefGenOptions& options);

/// All 10 column ordinals.
std::vector<int> NrefAllColumns();

}  // namespace gbmqo

#endif  // GBMQO_DATA_NREF_GEN_H_
