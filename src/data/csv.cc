#include "data/csv.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace gbmqo {

namespace {

bool ParseInt(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  // std::strtod instead of std::stod: no exceptions on malformed or
  // out-of-range cells, just a parse-failure return. `text` is
  // NUL-terminated (std::string), so end-pointer comparison detects
  // trailing garbage exactly as the stod `consumed` check did.
  const char* begin = text.c_str();
  char* parse_end = nullptr;
  errno = 0;
  const double v = std::strtod(begin, &parse_end);
  if (parse_end != begin + text.size()) return false;
  // strtod sets ERANGE for overflow *and* underflow, but on underflow it
  // still returns the correctly rounded subnormal (or zero) — a valid cell
  // value (e.g. "1e-320"). Only overflow, which clamps to ±HUGE_VAL, is a
  // parse failure.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
  *out = v;
  return true;
}

/// Infers the narrowest type that fits every non-empty cell of a column.
DataType InferType(const std::vector<std::vector<std::string>>& rows,
                   size_t column) {
  bool all_int = true, all_double = true, any_value = false;
  for (const auto& row : rows) {
    const std::string& cell = row[column];
    if (cell.empty()) continue;
    any_value = true;
    int64_t i;
    double d;
    if (!ParseInt(cell, &i)) all_int = false;
    if (!ParseDouble(cell, &d)) all_double = false;
    if (!all_double) break;  // already forced to STRING
  }
  if (!any_value) return DataType::kString;
  if (all_int) return DataType::kInt64;
  if (all_double) return DataType::kDouble;
  return DataType::kString;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<TablePtr> ReadCsv(std::istream& in, const std::string& name,
                         const CsvReadOptions& options) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input (no header)");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    return Status::InvalidArgument("CSV header has no columns");
  }

  // Buffer the records (needed for type inference anyway).
  std::vector<std::vector<std::string>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(rows.size() + 2) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    rows.push_back(std::move(fields));
    if (options.max_rows > 0 && rows.size() >= options.max_rows) break;
  }

  std::vector<DataType> types = options.types;
  if (types.empty()) {
    for (size_t c = 0; c < header.size(); ++c) {
      types.push_back(InferType(rows, c));
    }
  } else if (types.size() != header.size()) {
    return Status::InvalidArgument("explicit types do not match column count");
  }

  std::vector<ColumnDef> defs;
  for (size_t c = 0; c < header.size(); ++c) {
    defs.push_back(ColumnDef{header[c], types[c], /*nullable=*/true});
  }
  TableBuilder builder{Schema(std::move(defs))};
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      Column* col = builder.column(static_cast<int>(c));
      if (cell.empty() && types[c] != DataType::kString) {
        col->AppendNull();
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v;
          if (!ParseInt(cell, &v)) {
            return Status::InvalidArgument("cell '" + cell +
                                           "' is not an integer");
          }
          col->AppendInt64(v);
          break;
        }
        case DataType::kDouble: {
          double v;
          if (!ParseDouble(cell, &v)) {
            return Status::InvalidArgument("cell '" + cell +
                                           "' is not a number");
          }
          col->AppendDouble(v);
          break;
        }
        case DataType::kString:
          col->AppendString(cell);
          break;
      }
    }
  }
  return builder.Build(name);
}

Result<TablePtr> ReadCsvFile(const std::string& path, const std::string& name,
                             const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return ReadCsv(in, name, options);
}

Status WriteCsv(const Table& table, std::ostream& out) {
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) out << ',';
    const std::string& name = table.schema().column(c).name;
    out << (NeedsQuoting(name) ? QuoteField(name) : name);
  }
  out << '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) out << ',';
      const Column& col = table.column(c);
      if (col.IsNull(row)) continue;  // NULL -> empty cell
      switch (col.type()) {
        case DataType::kInt64:
          out << col.Int64At(row);
          break;
        case DataType::kDouble:
          out << col.DoubleAt(row);
          break;
        case DataType::kString: {
          const std::string& s = col.StringAt(row);
          out << (NeedsQuoting(s) ? QuoteField(s) : s);
          break;
        }
      }
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot create '" + path + "'");
  }
  return WriteCsv(table, out);
}

}  // namespace gbmqo
