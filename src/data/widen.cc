#include "data/widen.h"

namespace gbmqo {

Result<TablePtr> WidenTable(const Table& table,
                            const std::vector<int>& source_columns, int times,
                            const std::string& name) {
  if (times < 1) return Status::InvalidArgument("times must be >= 1");
  const int total =
      static_cast<int>(source_columns.size()) * times;
  if (total > ColumnSet::kMaxColumns) {
    return Status::InvalidArgument(
        "widened table would exceed " +
        std::to_string(ColumnSet::kMaxColumns) + " columns");
  }
  std::vector<ColumnDef> defs;
  std::vector<ColumnPtr> cols;
  for (int rep = 0; rep < times; ++rep) {
    for (int src : source_columns) {
      if (src < 0 || src >= table.schema().num_columns()) {
        return Status::InvalidArgument("source column out of range");
      }
      ColumnDef def = table.schema().column(src);
      if (rep > 0) def.name += "__r" + std::to_string(rep);
      defs.push_back(std::move(def));
      cols.push_back(table.column_ptr(src));
    }
  }
  return std::make_shared<Table>(name, Schema(std::move(defs)),
                                 std::move(cols), table.num_rows());
}

}  // namespace gbmqo
