#include "data/nref_gen.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace gbmqo {

TablePtr GenerateNref(const NrefGenOptions& options) {
  Schema schema({
      {"seq_id", DataType::kInt64, false},
      {"neighbor_id", DataType::kInt64, false},
      {"organism", DataType::kInt64, false},
      {"db_source", DataType::kString, false},
      {"score", DataType::kInt64, false},
      {"e_value_bucket", DataType::kInt64, false},
      {"align_len", DataType::kInt64, false},
      {"identity_pct", DataType::kInt64, false},
      {"start_pos", DataType::kInt64, false},
      {"end_pos", DataType::kInt64, false},
  });
  TableBuilder b(schema);
  for (int c = 0; c < kNumNrefColumns; ++c) b.column(c)->Reserve(options.rows);

  Rng rng(options.seed);
  const size_t n = options.rows;
  const uint64_t num_seqs = std::max<uint64_t>(1, n / 10);
  const uint64_t num_organisms = std::min<uint64_t>(5000, num_seqs);
  const char* kSources[] = {"PIR1", "PIR2", "PIR3", "PIR4", "SP", "TrEMBL",
                            "GenPept"};

  for (size_t i = 0; i < n; ++i) {
    const uint64_t seq = rng.Uniform(num_seqs);
    const uint64_t neighbor = rng.Uniform(num_seqs);
    // Score and identity correlate: neighbors with high identity have high
    // scores (both bucketed).
    const int64_t identity = static_cast<int64_t>(rng.Uniform(101));
    const int64_t score = identity * 10 + rng.UniformRange(0, 9);
    const int64_t align_len = static_cast<int64_t>(rng.Uniform(2000)) + 1;
    const int64_t start = static_cast<int64_t>(rng.Uniform(5000));

    b.column(kSeqId)->AppendInt64(static_cast<int64_t>(seq));
    b.column(kNeighborId)->AppendInt64(static_cast<int64_t>(neighbor));
    // Organism derives from the sequence id.
    b.column(kOrganism)->AppendInt64(static_cast<int64_t>(seq % num_organisms));
    b.column(kDbSource)->AppendString(kSources[rng.Uniform(7)]);
    b.column(kScore)->AppendInt64(score);
    b.column(kEValueBucket)->AppendInt64(static_cast<int64_t>(rng.Uniform(20)));
    b.column(kAlignLen)->AppendInt64(align_len);
    b.column(kIdentityPct)->AppendInt64(identity);
    b.column(kStartPos)->AppendInt64(start);
    b.column(kEndPos)->AppendInt64(start + align_len);
  }
  return std::move(b.Build("neighboring_seq")).ValueOrDie();
}

std::vector<int> NrefAllColumns() {
  std::vector<int> out;
  for (int c = 0; c < kNumNrefColumns; ++c) out.push_back(c);
  return out;
}

}  // namespace gbmqo
