// Synthetic SALES warehouse generator.
//
// The paper's SALES dataset is a proprietary 24M-row, 15-column sales fact
// table. This generator produces a star-schema fact table with the column-
// cardinality profile typical of retail sales data: a handful of geographic
// and channel dimensions, correlated product hierarchy columns
// (category -> subcategory -> brand), correlated date columns, and
// high-cardinality customer/transaction keys. The relative compressibility
// of column groups — which is all the experiments depend on — matches.
#ifndef GBMQO_DATA_SALES_GEN_H_
#define GBMQO_DATA_SALES_GEN_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace gbmqo {

/// Sales column ordinals (15 columns, matching the paper's "15 columns
/// used").
enum SalesColumn : int {
  kStoreId = 0,
  kRegion,
  kState,
  kProductId,
  kCategory,
  kSubcategory,
  kBrand,
  kCustomerId,
  kPromoId,
  kChannel,
  kOrderDate,
  kShipDate,
  kSalesQuantity,
  kUnitPrice,
  kPaymentType,
  kNumSalesColumns,
};

struct SalesGenOptions {
  size_t rows = 100000;
  uint64_t seed = 7;
};

/// Generates a sales fact table named "sales".
TablePtr GenerateSales(const SalesGenOptions& options);

/// All 15 column ordinals (the paper groups by every column of this set).
std::vector<int> SalesAllColumns();

}  // namespace gbmqo

#endif  // GBMQO_DATA_SALES_GEN_H_
