// Deterministic pseudo-random number generation for data generators and
// sampling. All generators in this project are seeded so that every
// experiment is exactly reproducible.
#ifndef GBMQO_COMMON_RNG_H_
#define GBMQO_COMMON_RNG_H_

#include <cstdint>

namespace gbmqo {

/// xorshift128+ generator: fast, high-quality enough for workload synthesis
/// and reservoir sampling. Not for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding avoids the all-zero state and decorrelates nearby
    // seeds.
    state_[0] = SplitMix64(&seed);
    state_[1] = SplitMix64(&seed);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 random mantissa bits.
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace gbmqo

#endif  // GBMQO_COMMON_RNG_H_
