// Status and Result<T>: error propagation without exceptions across module
// boundaries, in the style of RocksDB/Arrow.
#ifndef GBMQO_COMMON_STATUS_H_
#define GBMQO_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gbmqo {

/// Outcome of a fallible operation. Cheap to copy when OK (empty message).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kResourceExhausted,
    kInternal,
    kNotSupported,
    kCancelled,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }

 private:
  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kResourceExhausted: return "ResourceExhausted";
      case Code::kInternal: return "Internal";
      case Code::kNotSupported: return "NotSupported";
      case Code::kCancelled: return "Cancelled";
      case Code::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error. `ValueOrDie()` asserts OK; use `ok()` first on paths
/// where failure is expected.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) { // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gbmqo

/// Early-return on non-OK status, RocksDB style.
#define GBMQO_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::gbmqo::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // GBMQO_COMMON_STATUS_H_
