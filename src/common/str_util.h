// Small string helpers shared by the SQL generator, parsers and harnesses.
#ifndef GBMQO_COMMON_STR_UTIL_H_
#define GBMQO_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace gbmqo {

/// Joins `parts` with `sep`, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on `sep`, trimming ASCII whitespace from each piece; empty pieces
/// are dropped.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII in place and returns the result.
std::string ToLower(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace gbmqo

#endif  // GBMQO_COMMON_STR_UTIL_H_
