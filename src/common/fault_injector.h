// FaultInjector: deterministic fault-injection harness for the execution
// resilience layer. Production code marks *fault sites* — places where a
// real deployment could fail (allocation pressure while growing a group
// table, temp-table registration, a shared-scan batch read, task start) —
// with GBMQO_INJECT_FAULT(site, key). When no injector is installed the
// marker is a single relaxed atomic load and a predictable branch; when one
// is installed, whether the site fires is a *pure function* of
// (seed, site, key), so a trial is exactly reproducible for any thread
// count or scheduling: the caller derives `key` from stable identifiers
// (task id, attempt number, shard index), never from arrival order.
//
// Sites can additionally be armed by hit count (`one_shot_hit`): the N-th
// arrival at the site fires, which is deterministic whenever the caller
// runs that site single-threaded (the targeted regression tests do).
//
// The GBMQO_FAULTS environment variable installs a process-wide injector
// (see InstallFromEnv), e.g.:
//
//   GBMQO_FAULTS="seed=42;task_start=0.01;alloc=0.005;shared_scan@3"
//
// `site=p` arms a seeded probability, `site@N` a one-shot at the N-th hit.
// Site names: task_start, alloc, temp_register, shared_scan, spill_write,
// spill_read, spill_merge, spill_corrupt, disk_short_write,
// disk_torn_write, disk_bit_flip, disk_enospc, disk_fsync.
//
// Compiling with -DGBMQO_DISABLE_FAULT_INJECTION turns every site marker
// into a constant-false branch with no atomic load at all.
#ifndef GBMQO_COMMON_FAULT_INJECTOR_H_
#define GBMQO_COMMON_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace gbmqo {

/// Named classes of injectable failure. Keep FaultSiteName in sync.
enum class FaultSite : int {
  kTaskStart = 0,     ///< DAG executor: start of one task attempt
  kAllocPressure,     ///< group-table allocation in hash-agg build/merge
  kTempRegister,      ///< temp-table registration in the Catalog
  kSharedScanBatch,   ///< per-shard batch read of a shared scan
  kSpillWrite,        ///< flushing a radix partition buffer to a spill file
  kSpillRead,         ///< reading a spill partition file back for replay
  kSpillMerge,        ///< merging one spilled partition's segment results
  kSpillCorrupt,      ///< bit-flips a spill record on read (CRC must catch)
  // Disk fault sites shared by the durability layer (WAL, checkpoint) and
  // the spill files: each models one concrete way a real disk write fails.
  kDiskShortWrite,    ///< write() persists fewer bytes than asked
  kDiskTornWrite,     ///< crash mid-record: only a prefix reaches the disk
  kDiskBitFlip,       ///< stored bytes read back with one bit flipped
  kDiskEnospc,        ///< out of disk space (ENOSPC) on write
  kDiskFsync,         ///< fsync/fflush reports failure after a write
};
inline constexpr int kNumFaultSites = 13;

const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  /// Arms `site` with a per-hit firing probability in [0, 1]. The decision
  /// for a given `key` is a pure function of (seed, site, key).
  void ArmProbability(FaultSite site, double probability) {
    sites_[Idx(site)].probability = probability;
  }

  /// Arms `site` to fire exactly once, on its `hit`-th arrival (0-based,
  /// counted across all threads). Deterministic when the site is reached
  /// single-threaded; use ArmProbability for multi-threaded determinism.
  void ArmOneShot(FaultSite site, uint64_t hit) {
    sites_[Idx(site)].one_shot_hit = static_cast<int64_t>(hit);
  }

  /// Returns whether this arrival at `site` should fail, and records the
  /// hit (and the fire, if any) in the site's counters.
  bool ShouldFail(FaultSite site, uint64_t key);

  uint64_t hits(FaultSite site) const {
    return sites_[Idx(site)].hits.load(std::memory_order_relaxed);
  }
  uint64_t fires(FaultSite site) const {
    return sites_[Idx(site)].fires.load(std::memory_order_relaxed);
  }
  uint64_t seed() const { return seed_; }

  // ---- process-wide installation -------------------------------------------

  /// The active injector, or nullptr when fault injection is dormant.
  static FaultInjector* Active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Installs `injector` (not owned) as the process-wide active injector;
  /// nullptr uninstalls. Callers serialize installation themselves (tests
  /// use ScopedFaultInjection).
  static void Install(FaultInjector* injector) {
    active_.store(injector, std::memory_order_release);
  }

  /// Parses GBMQO_FAULTS (see file comment) and installs a process-wide
  /// injector on first call; no-op when the variable is unset or an
  /// injector is already active. Safe to call repeatedly.
  static void InstallFromEnv();

 private:
  struct Site {
    double probability = 0;
    int64_t one_shot_hit = -1;  // -1 = not armed
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
  };

  static size_t Idx(FaultSite site) { return static_cast<size_t>(site); }

  static std::atomic<FaultInjector*> active_;

  uint64_t seed_;
  std::array<Site, kNumFaultSites> sites_;
};

/// RAII installation of an injector for one scope (one test trial).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector) {
    FaultInjector::Install(injector);
  }
  ~ScopedFaultInjection() { FaultInjector::Install(nullptr); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Mixes stable identifiers into a fault-site key. Chain for composite
/// keys: FaultKey(task_id, FaultKey(attempt)).
inline uint64_t FaultKey(uint64_t a, uint64_t b = 0) {
  uint64_t z = a * 0x9E3779B97F4A7C15ULL + b + 0xD1B54A32D192ED03ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace gbmqo

// Fault-site marker. Evaluates to true when the active injector decides
// this arrival fails. Dormant cost is one relaxed load + branch; compiled
// to constant false under GBMQO_DISABLE_FAULT_INJECTION.
#if defined(GBMQO_DISABLE_FAULT_INJECTION)
#define GBMQO_INJECT_FAULT(site, key) false
#else
#define GBMQO_INJECT_FAULT(site, key)                       \
  (::gbmqo::FaultInjector::Active() != nullptr &&           \
   ::gbmqo::FaultInjector::Active()->ShouldFail((site), (key)))
#endif

#endif  // GBMQO_COMMON_FAULT_INJECTOR_H_
