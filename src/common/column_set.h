// ColumnSet: a set of column ordinals of one relation, the universe of the
// paper's Search DAG (Section 3.1). Nodes of logical plans, grouping lists,
// statistics keys and pruning tables are all keyed by ColumnSet.
#ifndef GBMQO_COMMON_COLUMN_SET_H_
#define GBMQO_COMMON_COLUMN_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gbmqo {

/// Immutable-style value type over a 64-bit mask. The 64-column cap is a
/// deliberate engineering limit: the paper's widest experiment uses 48
/// columns (Figure 10), and a single-word mask makes the set union at the
/// heart of SubPlanMerge a single OR.
class ColumnSet {
 public:
  static constexpr int kMaxColumns = 64;

  constexpr ColumnSet() : mask_(0) {}
  constexpr explicit ColumnSet(uint64_t mask) : mask_(mask) {}
  ColumnSet(std::initializer_list<int> columns) : mask_(0) {
    for (int c : columns) mask_ |= Bit(c);
  }

  /// Singleton set {column}.
  static ColumnSet Single(int column) { return ColumnSet(Bit(column)); }

  /// The set {0, 1, ..., n-1}.
  static ColumnSet FirstN(int n) {
    return ColumnSet(n >= kMaxColumns ? ~0ULL : (1ULL << n) - 1);
  }

  uint64_t mask() const { return mask_; }
  bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  bool Contains(int column) const { return (mask_ & Bit(column)) != 0; }
  /// True iff every column of `other` is in this set (this ⊇ other).
  bool ContainsAll(ColumnSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  /// True iff this is a strict superset of `other`.
  bool StrictSuperset(ColumnSet other) const {
    return ContainsAll(other) && mask_ != other.mask_;
  }
  bool Intersects(ColumnSet other) const { return (mask_ & other.mask_) != 0; }

  ColumnSet Union(ColumnSet other) const {
    return ColumnSet(mask_ | other.mask_);
  }
  ColumnSet Intersect(ColumnSet other) const {
    return ColumnSet(mask_ & other.mask_);
  }
  ColumnSet Minus(ColumnSet other) const {
    return ColumnSet(mask_ & ~other.mask_);
  }
  ColumnSet With(int column) const { return ColumnSet(mask_ | Bit(column)); }
  ColumnSet Without(int column) const {
    return ColumnSet(mask_ & ~Bit(column));
  }

  /// Column ordinals in ascending order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(size()));
    uint64_t m = mask_;
    while (m != 0) {
      out.push_back(std::countr_zero(m));
      m &= m - 1;
    }
    return out;
  }

  /// Debug rendering, e.g. "{0,3,7}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int c : ToVector()) {
      if (!first) out += ",";
      out += std::to_string(c);
      first = false;
    }
    out += "}";
    return out;
  }

  friend bool operator==(ColumnSet a, ColumnSet b) {
    return a.mask_ == b.mask_;
  }
  friend bool operator!=(ColumnSet a, ColumnSet b) {
    return a.mask_ != b.mask_;
  }
  /// Arbitrary total order (by mask) so ColumnSet can key ordered containers.
  friend bool operator<(ColumnSet a, ColumnSet b) { return a.mask_ < b.mask_; }

 private:
  static constexpr uint64_t Bit(int column) { return 1ULL << column; }

  uint64_t mask_;
};

/// Hash functor for unordered containers keyed by ColumnSet.
struct ColumnSetHash {
  size_t operator()(ColumnSet s) const {
    // Fibonacci hashing spreads dense low-bit masks.
    return static_cast<size_t>(s.mask() * 0x9E3779B97F4A7C15ULL);
  }
};

}  // namespace gbmqo

#endif  // GBMQO_COMMON_COLUMN_SET_H_
