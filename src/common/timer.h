// Wall-clock timing for experiment harnesses.
#ifndef GBMQO_COMMON_TIMER_H_
#define GBMQO_COMMON_TIMER_H_

#include <chrono>

namespace gbmqo {

/// Monotonic stopwatch. Started on construction; `Restart()` resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gbmqo

#endif  // GBMQO_COMMON_TIMER_H_
