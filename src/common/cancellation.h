// CancellationToken: cooperative cancellation and deadlines for plan
// execution. The executor checks the token at task starts and morsel/block
// boundaries; a fired token surfaces as Status::Cancelled or
// Status::DeadlineExceeded through PlanExecutor::Execute — no exceptions,
// no partially-registered temp tables (the executor's cleanup paths run as
// for any other task failure).
//
// Thread-safety: Cancel() and Check() may race freely (all state is
// atomic); arming a deadline is done by the execution owner before workers
// start. Once fired, a token stays fired (the reason latches) until
// Reset().
#ifndef GBMQO_COMMON_CANCELLATION_H_
#define GBMQO_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "common/status.h"

namespace gbmqo {

class CancellationToken {
 public:
  /// Requests cancellation; execution unwinds with Status::Cancelled at the
  /// next cooperative check. Safe from any thread.
  void Cancel() { LatchReason(kCancelled); }

  /// Arms a deadline `ms` milliseconds from now (monotonic clock); 0 fires
  /// at the next check. Overwrites any previous deadline.
  void SetDeadlineAfterMs(uint64_t ms) {
    const auto when =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    deadline_ns_.store(when.time_since_epoch().count(),
                       std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// Disarms the deadline and clears a latched reason. Call only while no
  /// execution is using the token.
  void Reset() {
    armed_.store(false, std::memory_order_relaxed);
    reason_.store(kNone, std::memory_order_release);
  }

  /// Cheap probe: has the token fired? Reads the clock only while a
  /// deadline is armed and not yet latched.
  bool Fired() const {
    if (reason_.load(std::memory_order_acquire) != kNone) return true;
    if (armed_.load(std::memory_order_acquire) && DeadlinePassed()) {
      LatchReason(kDeadline);
      return true;
    }
    return false;
  }

  /// Milliseconds until the armed deadline fires (0 once passed), or
  /// nullopt when no deadline is armed. Lets waiters (e.g. retry backoff)
  /// bound a sleep by the time actually remaining instead of oversleeping
  /// a deadline.
  std::optional<double> RemainingMs() const {
    if (!armed_.load(std::memory_order_acquire)) return std::nullopt;
    const int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    const int64_t left = deadline_ns_.load(std::memory_order_relaxed) - now;
    if (left <= 0) return 0.0;
    using Tick = std::chrono::steady_clock::duration;
    return std::chrono::duration<double, std::milli>(Tick(left)).count();
  }

  /// OK while live; Status::Cancelled / DeadlineExceeded once fired.
  Status Check() const {
    if (!Fired()) return Status::OK();
    return reason_.load(std::memory_order_acquire) == kDeadline
               ? Status::DeadlineExceeded("execution deadline exceeded")
               : Status::Cancelled("execution cancelled");
  }

 private:
  enum Reason : int { kNone = 0, kCancelled, kDeadline };

  bool DeadlinePassed() const {
    const int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    return now >= deadline_ns_.load(std::memory_order_relaxed);
  }

  /// First latch wins, so the reported reason is stable under races.
  void LatchReason(int reason) const {
    int expected = kNone;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_acq_rel);
  }

  mutable std::atomic<int> reason_{kNone};
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace gbmqo

#endif  // GBMQO_COMMON_CANCELLATION_H_
