#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gbmqo {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (double& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against accumulated FP error
}

uint64_t ZipfGenerator::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace gbmqo
