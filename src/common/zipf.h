// Zipfian sampling over [0, n) used by Experiment 6.8 (varying data skew).
#ifndef GBMQO_COMMON_ZIPF_H_
#define GBMQO_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace gbmqo {

/// Draws values in [0, n) with probability proportional to 1/(i+1)^theta.
/// theta == 0 degenerates to the uniform distribution, matching the paper's
/// "Zipf constant 0" data point in Figure 13.
///
/// Implementation: precomputed cumulative distribution + binary search.
/// O(n) memory, O(log n) per draw — fine for the domain sizes in this repo
/// (the largest skewed column domain is ~200k values).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Next sample in [0, n()).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i); cdf_.back() == 1.0
};

}  // namespace gbmqo

#endif  // GBMQO_COMMON_ZIPF_H_
