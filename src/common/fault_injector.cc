#include "common/fault_injector.h"

#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

namespace gbmqo {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kTaskStart:
      return "task_start";
    case FaultSite::kAllocPressure:
      return "alloc";
    case FaultSite::kTempRegister:
      return "temp_register";
    case FaultSite::kSharedScanBatch:
      return "shared_scan";
    case FaultSite::kSpillWrite:
      return "spill_write";
    case FaultSite::kSpillRead:
      return "spill_read";
    case FaultSite::kSpillMerge:
      return "spill_merge";
    case FaultSite::kSpillCorrupt:
      return "spill_corrupt";
    case FaultSite::kDiskShortWrite:
      return "disk_short_write";
    case FaultSite::kDiskTornWrite:
      return "disk_torn_write";
    case FaultSite::kDiskBitFlip:
      return "disk_bit_flip";
    case FaultSite::kDiskEnospc:
      return "disk_enospc";
    case FaultSite::kDiskFsync:
      return "disk_fsync";
  }
  return "?";
}

bool FaultInjector::ShouldFail(FaultSite site, uint64_t key) {
  Site& s = sites_[Idx(site)];
  const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  if (s.one_shot_hit >= 0 && hit == static_cast<uint64_t>(s.one_shot_hit)) {
    fire = true;
  }
  if (!fire && s.probability > 0) {
    // Pure function of (seed, site, key): 53 uniform mantissa bits of the
    // mixed key against the threshold, independent of arrival order.
    const uint64_t mixed =
        FaultKey(seed_ ^ (static_cast<uint64_t>(Idx(site)) << 56), key);
    const double u =
        static_cast<double>(mixed >> 11) * (1.0 / 9007199254740992.0);
    fire = u < s.probability;
  }
  if (fire) s.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

namespace {

/// Leaked on purpose: the env-installed injector lives for the process.
FaultInjector* ParseEnvSpec(const char* spec) {
  uint64_t seed = 0;
  struct Arm {
    FaultSite site;
    double probability = -1;
    int64_t one_shot = -1;
  };
  std::vector<Arm> arms;
  std::string text(spec);
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    const size_t at = item.find('@');
    std::string name;
    if (eq != std::string::npos) {
      name = item.substr(0, eq);
    } else if (at != std::string::npos) {
      name = item.substr(0, at);
    } else {
      continue;  // malformed item: ignore rather than fail the process
    }
    if (name == "seed" && eq != std::string::npos) {
      seed = std::strtoull(item.c_str() + eq + 1, nullptr, 10);
      continue;
    }
    bool known = false;
    FaultSite site = FaultSite::kTaskStart;
    for (int i = 0; i < kNumFaultSites; ++i) {
      if (name == FaultSiteName(static_cast<FaultSite>(i))) {
        site = static_cast<FaultSite>(i);
        known = true;
        break;
      }
    }
    if (!known) continue;
    Arm arm{site};
    if (at != std::string::npos) {
      arm.one_shot =
          static_cast<int64_t>(std::strtoull(item.c_str() + at + 1, nullptr, 10));
    } else {
      arm.probability = std::strtod(item.c_str() + eq + 1, nullptr);
    }
    arms.push_back(arm);
  }
  if (arms.empty()) return nullptr;
  auto* injector = new FaultInjector(seed);
  for (const Arm& arm : arms) {
    if (arm.one_shot >= 0) {
      injector->ArmOneShot(arm.site, static_cast<uint64_t>(arm.one_shot));
    } else if (arm.probability > 0) {
      injector->ArmProbability(arm.site, arm.probability);
    }
  }
  return injector;
}

}  // namespace

void FaultInjector::InstallFromEnv() {
  static std::once_flag once;
  std::call_once(once, []() {
    const char* spec = std::getenv("GBMQO_FAULTS");
    if (spec == nullptr || Active() != nullptr) return;
    FaultInjector* injector = ParseEnvSpec(spec);
    if (injector != nullptr) Install(injector);
  });
}

}  // namespace gbmqo
