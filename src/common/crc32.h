// CRC32 (IEEE 802.3 polynomial, reflected): the integrity checksum shared
// by every on-disk record format in the engine — WAL records
// (storage/wal.h), checkpoint images (storage/checkpoint.h) and spill-file
// frames (exec/spill_partitioner.h). One implementation so a checksum
// computed by a writer in one subsystem is verifiable by any reader, and so
// tests can corrupt bytes and predict the mismatch.
//
// Table-driven, one byte per step — ~1 GB/s, far faster than the disk I/O
// it guards. Chainable: pass the previous return value as `seed` to extend
// a checksum across non-contiguous buffers.
#ifndef GBMQO_COMMON_CRC32_H_
#define GBMQO_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace gbmqo {

namespace crc32_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

/// CRC32 of `bytes` bytes at `data`, chained onto `seed` (0 for a fresh
/// checksum). Crc32(b, n, Crc32(a, m)) == Crc32(concat(a, b), m + n).
inline uint32_t Crc32(const void* data, size_t bytes, uint32_t seed = 0) {
  const auto& table = crc32_internal::Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gbmqo

#endif  // GBMQO_COMMON_CRC32_H_
