#include "api/session.h"

#include "common/fault_injector.h"
#include "sql/grouping_sets_parser.h"

namespace gbmqo {

Session::Session(TablePtr base, SessionOptions options)
    : base_(std::move(base)), options_(options) {
  // Honors the GBMQO_FAULTS environment toggle (no-op when unset or when
  // fault injection is compiled out); idempotent across sessions.
  FaultInjector::InstallFromEnv();
  // The base table name is reserved in the catalog; failure is impossible
  // on a fresh catalog.
  (void)catalog_.RegisterBase(base_);
  stats_ = std::make_unique<StatisticsManager>(*base_, options_.stats_mode,
                                               options_.sample_size);
  whatif_ = std::make_unique<WhatIfProvider>(stats_.get());
  model_ = std::make_unique<OptimizerCostModel>(*base_);
}

Result<std::vector<GroupByRequest>> Session::Parse(
    const std::string& spec) const {
  return ParseGroupingSets(spec, base_->schema());
}

Result<OptimizerResult> Session::Optimize(
    const std::vector<GroupByRequest>& requests) {
  GbMqoOptimizer optimizer(model_.get(), whatif_.get(), options_.optimizer);
  return optimizer.Optimize(requests);
}

Result<OptimizerResult> Session::Optimize(const std::string& spec) {
  Result<std::vector<GroupByRequest>> requests = Parse(spec);
  if (!requests.ok()) return requests.status();
  return Optimize(*requests);
}

Result<std::string> Session::Explain(const std::string& spec) {
  Result<OptimizerResult> opt = Optimize(spec);
  if (!opt.ok()) return opt.status();
  return ExplainPlan(opt->plan, base_->schema(), model_.get(), whatif_.get());
}

Result<std::vector<SqlStatement>> Session::GenerateSql(
    const std::string& spec) {
  Result<OptimizerResult> opt = Optimize(spec);
  if (!opt.ok()) return opt.status();
  SqlGenerator gen(base_->name(), base_->schema());
  return gen.Generate(opt->plan);
}

Result<ExecutionResult> Session::Execute(
    const std::vector<GroupByRequest>& requests) {
  Result<OptimizerResult> opt = Optimize(requests);
  if (!opt.ok()) return opt.status();
  return ExecutePlan(opt->plan, requests);
}

Result<ExecutionResult> Session::Execute(const std::string& spec) {
  Result<std::vector<GroupByRequest>> requests = Parse(spec);
  if (!requests.ok()) return requests.status();
  return Execute(*requests);
}

Result<ExecutionResult> Session::ExecutePlan(
    const LogicalPlan& plan, const std::vector<GroupByRequest>& requests) {
  PlanExecutor executor(&catalog_, base_->name(), options_.scan_mode,
                        options_.parallelism);
  executor.set_fusion_enabled(options_.shared_scan_fusion);
  executor.set_node_parallel(options_.node_parallelism);
  executor.set_force_scalar(options_.force_scalar);
  if (options_.max_exec_storage_bytes > 0) {
    executor.set_storage_budget(options_.max_exec_storage_bytes, whatif_.get());
  }
  if (options_.max_spill_bytes > 0 || options_.force_spill) {
    SpillOptions spill;
    spill.memory_budget_bytes =
        static_cast<uint64_t>(options_.max_exec_storage_bytes);
    spill.directory = options_.spill_directory;
    spill.max_spill_bytes = options_.max_spill_bytes;
    spill.force = options_.force_spill;
    executor.set_spill(spill);
  }
  executor.set_max_task_retries(options_.max_task_retries);
  executor.set_retry_backoff_ms(options_.retry_backoff_ms);
  if (options_.exec_deadline_ms > 0) {
    // Per-call deadline: a previous call's expiry must not poison this one,
    // but an explicit Cancel() persists until the caller resets the token.
    if (!cancel_.Check().IsCancelled()) cancel_.Reset();
    cancel_.SetDeadlineAfterMs(options_.exec_deadline_ms);
  }
  executor.set_cancellation(&cancel_);
  return executor.Execute(plan, requests);
}

}  // namespace gbmqo
