// Server: the concurrent serving layer over one base relation — N clients
// submit GB-MQO request sets against a shared immutable catalog and a pool
// of worker sessions executes them, arbitrated by a global storage governor
// and accelerated by a cross-request aggregate cache:
//
//   Server server(GenerateLineitem({.rows = 100000}));
//   auto t1 = server.Submit("SINGLE(l_returnflag, l_shipmode)");
//   auto t2 = server.Submit("PAIRS(l_returnflag, l_linestatus)");
//   auto r1 = t1->Get();   // blocks until the worker pool finishes it
//
// Every request runs the full pipeline (optimize, execute) but shares the
// heavy immutable state — base table, statistics, cost-model memo — and the
// mutable cross-request state: the AggregateCache pins materialized
// aggregates past the plan that built them, the optimizer costs each new
// request against the pinned views (OptimizerOptions::cached_views) and
// routes covered requests to them as zero-base-scan serve edges, and the
// StorageGovernor charges concurrent plans' intermediates and the cache's
// pinned bytes against one global budget. Results are bit-identical to
// serial cold execution: a cache hit returns the same rows the plan would
// have computed, and a superset hit re-aggregates with the executor's own
// canonical fold.
#ifndef GBMQO_API_SERVER_H_
#define GBMQO_API_SERVER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.h"
#include "core/aggregate_cache.h"
#include "core/delta_maintenance.h"
#include "storage/ingest.h"
#include "storage/storage_governor.h"
#include "storage/wal.h"

namespace gbmqo {

struct ServerOptions {
  /// Per-worker execution configuration (scan mode, parallelism, retries,
  /// deadline, optimizer switches). `session.optimizer.cached_views` is
  /// overwritten per request with the cache snapshot.
  SessionOptions session;
  /// Worker threads serving the request queue (>= 1). Each in-flight
  /// request gets one worker; the worker's PlanExecutor fans out further
  /// per `session.parallelism`.
  int pool_size = 4;
  /// Global byte budget shared by every concurrent plan's intermediates
  /// and the aggregate cache's pinned entries (the Section 4.4 storage
  /// gates, arbitrated across requests). 0 disables the governor.
  double global_storage_budget_bytes = 0;
  /// Cross-request aggregate cache (core/aggregate_cache.h).
  bool enable_aggregate_cache = true;
  /// Byte budget for pinned cache entries (LRU-evicted beyond it). Also
  /// charged against the global governor when one is configured.
  double cache_budget_bytes = 256.0 * 1024 * 1024;
  /// Submissions identical to an in-flight request set share its future
  /// instead of queueing a duplicate execution.
  bool coalesce_identical_requests = true;
  /// AppendBatch behaviour for pinned cache entries: true = propagate the
  /// delta through every entry (core/delta_maintenance.h) so warm hits
  /// survive ingestion; false = invalidate the whole cache on every batch
  /// (the pre-ingestion behaviour, kept for A/B comparison).
  bool incremental_maintenance = true;
  /// Rebuild the statistics snapshot (and what-if provider) from the new
  /// base after each AppendBatch. True keeps optimizer estimates exact;
  /// false reuses the previous statistics — much cheaper per batch, at the
  /// cost of estimate drift until the next full build. Either way requests
  /// see a consistent (base, stats) snapshot, never a mix.
  bool refresh_stats_on_ingest = true;

  // ---- durability (storage/wal.h, storage/checkpoint.h) ------------------

  /// Directory for the ingest WAL and checkpoints; "" (the default)
  /// disables durability entirely. With it set, every AppendBatch is logged
  /// before it is applied, and a Server restarted on the same directory
  /// rebuilds bit-identical serving state (same base_version, same query
  /// results, same warm-cache hits) from the newest valid checkpoint plus
  /// the WAL tail. The directory is created if absent; stale temp files of
  /// dead processes are reaped on startup.
  std::string wal_directory;
  /// When appended WAL records are forced to stable storage (see
  /// storage/wal.h for the durability each mode buys). kBatch survives an
  /// engine crash losing nothing; kAlways additionally survives power loss.
  FsyncMode fsync_mode = FsyncMode::kBatch;
  /// A checkpoint is taken automatically once the live WAL segment reaches
  /// this many bytes, bounding replay time after a crash. 0 = only explicit
  /// Checkpoint() calls ever write one.
  uint64_t checkpoint_interval_bytes = 64ull * 1024 * 1024;
  /// Replay checkpoint + WAL from `wal_directory` on construction. False
  /// discards any surviving logs and checkpoints there and starts a fresh
  /// log from the constructor's base table — the testing/bulk-load escape
  /// hatch (old versions must not mix with the new numbering).
  bool recover_on_start = true;
};

/// Monotonic serving counters (plus a live cache snapshot).
struct ServerStats {
  uint64_t requests_served = 0;     ///< jobs completed successfully
  uint64_t requests_failed = 0;     ///< jobs completed with an error
  uint64_t requests_coalesced = 0;  ///< submissions joined to an in-flight job
  uint64_t batches_ingested = 0;    ///< AppendBatch calls applied
  uint64_t rows_ingested = 0;       ///< rows appended across all batches
  uint64_t base_version = 0;        ///< current base generation (0 as loaded)
  AggregateCacheStats cache;        ///< zeros when the cache is disabled
  double governor_reserved_bytes = 0;  ///< 0 when the governor is disabled
  // Durability (all zero when ServerOptions::wal_directory is "").
  uint64_t wal_appends = 0;         ///< records logged by this process
  uint64_t wal_bytes = 0;           ///< complete-record bytes in the live segment
  uint64_t checkpoints_written = 0; ///< checkpoints written by this process
  uint64_t last_checkpoint_version = 0;  ///< version the newest checkpoint covers
  bool recovered = false;           ///< startup replayed a checkpoint or WAL tail
  uint64_t recovery_checkpoint_version = 0;  ///< checkpoint recovery loaded
  uint64_t recovery_records_applied = 0;     ///< WAL records replayed at startup
  bool recovery_tail_truncated = false;      ///< a torn trailing record was dropped
  uint64_t recovery_checkpoints_skipped = 0; ///< corrupt checkpoints fallen past
};

/// Thread-safe multi-client entry point. Submissions may come from any
/// thread; results are delivered through shared futures.
class Server {
 public:
  /// A handle to one submitted request set. Copyable; every copy observes
  /// the same result (coalesced submissions share one underlying job).
  class Ticket {
   public:
    Ticket() = default;
    /// Blocks until the request completes and returns its result.
    Result<ExecutionResult> Get() const { return future_.get(); }
    bool valid() const { return future_.valid(); }

   private:
    friend class Server;
    std::shared_future<Result<ExecutionResult>> future_;
  };

  /// Takes shared ownership of the base relation and starts the worker
  /// pool.
  explicit Server(TablePtr base, ServerOptions options = {});
  /// Stops accepting work, drains the queue (queued jobs still execute),
  /// and joins the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parses a GROUPING SETS spec against the base schema.
  Result<std::vector<GroupByRequest>> Parse(const std::string& spec) const;

  /// Enqueues a request set and returns immediately.
  Ticket Submit(std::vector<GroupByRequest> requests);
  Result<Ticket> Submit(const std::string& spec);

  /// Submit + Get: blocks the calling thread until the result is ready.
  Result<ExecutionResult> Execute(const std::vector<GroupByRequest>& requests);
  Result<ExecutionResult> Execute(const std::string& spec);

  // ---- streaming ingestion -------------------------------------------------

  /// What one applied append batch did.
  struct IngestResult {
    uint64_t version = 0;            ///< base generation after this batch
    uint64_t rows_appended = 0;
    uint64_t entries_refreshed = 0;  ///< cache entries delta-merged in place
    uint64_t entries_recomputed = 0; ///< rebuilt from base (escape hatch)
    uint64_t entries_dropped = 0;    ///< evicted during maintenance
    uint64_t rollup_reuses = 0;      ///< delta aggs rolled up from finer ones
    double wall_seconds = 0;
  };

  /// Appends `rows` to the base relation and advances the serving snapshot
  /// to the next generation. Runs exclusively against in-flight requests:
  /// every request is admitted against exactly one (base, statistics,
  /// cache-generation) snapshot — fully-old or fully-new, never torn. With
  /// `incremental_maintenance` every pinned cache entry is refreshed from
  /// (old table + delta) under the governor budget; otherwise the cache is
  /// invalidated. Blocks until maintenance completes; callers from multiple
  /// threads serialize.
  Result<IngestResult> AppendBatch(const std::vector<std::vector<Value>>& rows);

  /// Current base generation: 0 as loaded, +1 per applied batch.
  uint64_t base_version() const;
  /// The current generation's base table (grows across AppendBatch calls).
  TablePtr current_base() const;

  // ---- durability ----------------------------------------------------------

  /// Durably snapshots the current serving state (base relation + pinned
  /// cache entries) into `wal_directory`, rotates the WAL onto a fresh
  /// segment, and garbage-collects the segments and checkpoints the new one
  /// supersedes. Runs exclusively against in-flight requests like
  /// AppendBatch. InvalidArgument when durability is disabled.
  Status Checkpoint();

  /// OK when startup recovery succeeded (or durability is off / recovery
  /// was skipped); otherwise why the surviving logs could not be replayed.
  /// A non-OK status means the server is running on the constructor's base
  /// table with the WAL disabled — it serves queries but will not log.
  Status recovery_status() const;

  // ---- component access ----------------------------------------------------

  /// The as-loaded (generation-0) base relation. Unchanged by ingestion —
  /// use current_base() for the live generation.
  const Table& base() const { return *base_; }
  Catalog* catalog() { return &catalog_; }
  /// nullptr when disabled by options.
  AggregateCache* cache() { return cache_.get(); }
  StorageGovernor* governor() { return governor_.get(); }

  ServerStats stats() const;

 private:
  struct Job {
    std::vector<GroupByRequest> requests;
    std::shared_ptr<std::promise<Result<ExecutionResult>>> promise;
    std::string signature;  // empty when coalescing is off
  };

  /// One consistent generation of the immutable per-request state. Requests
  /// capture the snapshot pointer once (under the shared ingest lock) and
  /// use only it for the whole pipeline; AppendBatch swaps in a new
  /// snapshot under the exclusive lock, so a request can never mix the old
  /// base with the new statistics or vice versa. Retired snapshots stay
  /// alive until their last in-flight reader drops them.
  struct BaseSnapshot {
    uint64_t version = 0;
    TablePtr base;
    std::shared_ptr<StatisticsManager> stats;
    std::shared_ptr<WhatIfProvider> whatif;
    std::shared_ptr<OptimizerCostModel> model;
  };

  void WorkerLoop();
  /// The full optimize-and-execute pipeline for one request set; runs on a
  /// worker thread. Safe to run concurrently with itself.
  Result<ExecutionResult> HandleRequest(
      const std::vector<GroupByRequest>& requests);
  /// Answers one optimizer serve edge from the pinned view (directly on an
  /// exact match, by re-aggregation on a superset; falls back to the base
  /// relation if the entry was evicted between costing and serving).
  Status ServeCacheEdge(const BaseSnapshot& snap, const GroupByRequest& req,
                        const CachedViewDesc& view, ExecutionResult* out);
  /// Builds a snapshot for `version`/`base` — statistics rebuilt from the
  /// new base or carried over from `prev` per refresh_stats_on_ingest.
  std::shared_ptr<const BaseSnapshot> MakeSnapshot(
      uint64_t version, TablePtr base, const BaseSnapshot* prev) const;
  /// Drops catalog entries of retired base generations nobody reads
  /// anymore. Caller holds ingest_mu_ exclusively.
  void SweepRetiredLocked();
  /// Applies one validated batch: copy-on-append ingest, cache maintenance,
  /// snapshot swap. Shared by AppendBatch (after the WAL append) and
  /// recovery replay, so a replayed batch takes exactly the live code path.
  /// Caller holds ingest_mu_ exclusively (or is the single-threaded ctor).
  Status ApplyBatchLocked(const std::vector<std::vector<Value>>& rows,
                          IngestResult* out);
  /// Constructor-time durability bring-up: directory creation, stale-file
  /// reaping, checkpoint + WAL replay (per recover_on_start), and opening
  /// the live segment for appending.
  Status InitDurability();
  /// Body of Checkpoint(); caller holds ingest_mu_ exclusively.
  Status CheckpointLocked();
  /// Deletes WAL segments and checkpoint files superseded by
  /// checkpoint_version_, returning their bytes to the governor's disk
  /// ledger. Caller holds ingest_mu_ exclusively.
  void GcDurabilityFilesLocked();
  /// Order-insensitive canonical signature of a request set (coalescing
  /// key).
  static std::string Signature(const std::vector<GroupByRequest>& requests);

  TablePtr base_;
  ServerOptions options_;
  Catalog catalog_;
  std::unique_ptr<StorageGovernor> governor_;
  std::unique_ptr<AggregateCache> cache_;
  std::unique_ptr<Ingestor> ingestor_;

  /// Readers (HandleRequest) hold this shared for their whole pipeline;
  /// AppendBatch holds it exclusive across append + maintenance + snapshot
  /// swap. This is what makes a response's content match the generation it
  /// was admitted against: cache refreshes can never interleave with an
  /// in-flight request's lookups.
  mutable std::shared_mutex ingest_mu_;
  std::shared_ptr<const BaseSnapshot> snapshot_;  // guarded by ingest_mu_
  std::vector<std::shared_ptr<const BaseSnapshot>> retired_;
  uint64_t batches_ingested_ = 0;  // guarded by ingest_mu_
  uint64_t rows_ingested_ = 0;     // guarded by ingest_mu_

  // Durability state, all guarded by ingest_mu_ (the ctor touches it before
  // any worker starts). wal_ is nullptr when durability is off or recovery
  // failed; the server then serves but never logs.
  std::unique_ptr<WalWriter> wal_;
  uint64_t checkpoint_version_ = 0;  ///< version of the newest durable checkpoint
  /// Disk-ledger bytes charged per live checkpoint file this process wrote
  /// or adopted (version -> file size), released when the file is GC'd.
  std::unordered_map<uint64_t, uint64_t> checkpoint_bytes_;
  uint64_t wal_appends_ = 0;
  uint64_t checkpoints_written_ = 0;
  Status recovery_status_;
  bool recovered_ = false;
  uint64_t recovery_checkpoint_version_ = 0;
  uint64_t recovery_records_applied_ = 0;
  bool recovery_tail_truncated_ = false;
  uint64_t recovery_checkpoints_skipped_ = 0;

  mutable std::mutex mu_;  // guards queue_, in_flight_, counters, stopping_
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::unordered_map<std::string, std::shared_future<Result<ExecutionResult>>>
      in_flight_;
  bool stopping_ = false;
  uint64_t requests_served_ = 0;
  uint64_t requests_failed_ = 0;
  uint64_t requests_coalesced_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace gbmqo

#endif  // GBMQO_API_SERVER_H_
