#include "api/server.h"

#include <algorithm>
#include <utility>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "sql/grouping_sets_parser.h"

namespace gbmqo {

namespace {

std::vector<AggRequest> CanonicalAggs(const std::vector<AggRequest>& aggs) {
  std::vector<AggRequest> out = aggs;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Matches PlanExecutor's leaf naming so cache-served and plan-computed
/// result tables are indistinguishable to the client.
std::string ResultNameFor(ColumnSet cols) {
  return "result" + cols.ToString();
}

}  // namespace

Server::Server(TablePtr base, ServerOptions options)
    : base_(std::move(base)), options_(options) {
  FaultInjector::InstallFromEnv();
  (void)catalog_.RegisterBase(base_);
  if (options_.global_storage_budget_bytes > 0) {
    governor_ =
        std::make_unique<StorageGovernor>(options_.global_storage_budget_bytes);
  }
  if (options_.enable_aggregate_cache && options_.cache_budget_bytes > 0) {
    cache_ = std::make_unique<AggregateCache>(
        &catalog_, options_.cache_budget_bytes, governor_.get());
  }
  ingestor_ = std::make_unique<Ingestor>(&catalog_);
  snapshot_ = MakeSnapshot(0, base_, nullptr);
  const int pool = options_.pool_size < 1 ? 1 : options_.pool_size;
  workers_.reserve(static_cast<size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // The cache must release its catalog pins before the catalog dies.
  cache_.reset();
}

std::shared_ptr<const Server::BaseSnapshot> Server::MakeSnapshot(
    uint64_t version, TablePtr base, const BaseSnapshot* prev) const {
  auto snap = std::make_shared<BaseSnapshot>();
  snap->version = version;
  snap->base = std::move(base);
  if (prev == nullptr || options_.refresh_stats_on_ingest) {
    snap->stats = std::make_shared<StatisticsManager>(
        *snap->base, options_.session.stats_mode, options_.session.sample_size);
    snap->whatif = std::make_shared<WhatIfProvider>(snap->stats.get());
  } else {
    // Carry the previous generation's statistics: estimates drift as the
    // relation grows, but every request still sees one consistent pair —
    // the snapshot holds both pointers together.
    snap->stats = prev->stats;
    snap->whatif = prev->whatif;
  }
  // The cost model reads only the table's size/width metadata — cheap
  // enough to rebuild every generation.
  snap->model = std::make_shared<OptimizerCostModel>(*snap->base);
  return snap;
}

Result<std::vector<GroupByRequest>> Server::Parse(
    const std::string& spec) const {
  return ParseGroupingSets(spec, base_->schema());
}

std::string Server::Signature(const std::vector<GroupByRequest>& requests) {
  std::vector<std::string> parts;
  parts.reserve(requests.size());
  for (const GroupByRequest& req : requests) {
    std::string p = req.columns.ToString();
    for (const AggRequest& a : CanonicalAggs(req.aggs)) {
      p += "|" + std::to_string(static_cast<int>(a.kind)) + ":" +
           std::to_string(a.column);
    }
    parts.push_back(std::move(p));
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) {
    sig += p;
    sig += ";";
  }
  return sig;
}

Server::Ticket Server::Submit(std::vector<GroupByRequest> requests) {
  auto promise =
      std::make_shared<std::promise<Result<ExecutionResult>>>();
  Ticket ticket;
  ticket.future_ = promise->get_future().share();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      promise->set_value(Status::Cancelled("server is shutting down"));
      return ticket;
    }
    std::string sig;
    if (options_.coalesce_identical_requests) {
      sig = Signature(requests);
      auto it = in_flight_.find(sig);
      if (it != in_flight_.end()) {
        ++requests_coalesced_;
        ticket.future_ = it->second;
        return ticket;
      }
      in_flight_.emplace(sig, ticket.future_);
    }
    queue_.push_back(Job{std::move(requests), std::move(promise),
                         std::move(sig)});
  }
  cv_.notify_one();
  return ticket;
}

Result<Server::Ticket> Server::Submit(const std::string& spec) {
  Result<std::vector<GroupByRequest>> requests = Parse(spec);
  if (!requests.ok()) return requests.status();
  return Submit(*std::move(requests));
}

Result<ExecutionResult> Server::Execute(
    const std::vector<GroupByRequest>& requests) {
  return Submit(requests).Get();
}

Result<ExecutionResult> Server::Execute(const std::string& spec) {
  Result<Ticket> ticket = Submit(spec);
  if (!ticket.ok()) return ticket.status();
  return ticket->Get();
}

Result<Server::IngestResult> Server::AppendBatch(
    const std::vector<std::vector<Value>>& rows) {
  WallTimer timer;
  // Exclusive against every in-flight HandleRequest: readers drain before
  // the append applies, and none admit until the new snapshot (base +
  // statistics + refreshed cache generation) is fully in place.
  std::unique_lock<std::shared_mutex> lock(ingest_mu_);
  std::shared_ptr<const BaseSnapshot> old = snapshot_;

  Result<IngestBatch> batch = ingestor_->AppendBatch(base_->name(), rows);
  if (!batch.ok()) return batch.status();

  IngestResult out;
  out.version = batch->version;
  out.rows_appended = rows.size();

  if (cache_ != nullptr) {
    if (options_.incremental_maintenance) {
      DeltaMaintenanceOptions mopts;
      mopts.parallelism = options_.session.parallelism;
      DeltaMaintainer maintainer(&catalog_, cache_.get(), mopts);
      Result<DeltaMaintenanceReport> report = maintainer.ApplyDelta(
          batch->delta, batch->base, base_->schema(), batch->version);
      if (report.ok()) {
        out.entries_refreshed = report->entries_refreshed;
        out.entries_recomputed = report->entries_recomputed;
        out.entries_dropped = report->entries_dropped;
        out.rollup_reuses = report->rollup_reuses;
      } else {
        // Fail safe: a maintenance error must never leave stale entries
        // serving at the new version.
        cache_->Invalidate();
        cache_->SetSourceVersion(batch->version);
      }
    } else {
      cache_->Invalidate();
      cache_->SetSourceVersion(batch->version);
    }
  }

  retired_.push_back(old);
  snapshot_ = MakeSnapshot(batch->version, batch->base, old.get());
  SweepRetiredLocked();
  ++batches_ingested_;
  rows_ingested_ += rows.size();

  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

void Server::SweepRetiredLocked() {
  // A retired snapshot whose only owner is this vector has no in-flight
  // reader left; its base generation can leave the catalog. The generation-0
  // table stays registered: base_ and external callers may still resolve it
  // by its original name.
  auto it = retired_.begin();
  while (it != retired_.end()) {
    if (it->use_count() == 1 && (*it)->version > 0) {
      (void)catalog_.Drop((*it)->base->name());
      it = retired_.erase(it);
    } else if (it->use_count() == 1) {
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t Server::base_version() const {
  std::shared_lock<std::shared_mutex> lock(ingest_mu_);
  return snapshot_->version;
}

TablePtr Server::current_base() const {
  std::shared_lock<std::shared_mutex> lock(ingest_mu_);
  return snapshot_->base;
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Result<ExecutionResult> result = HandleRequest(job.requests);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Retire the coalescing slot before publishing: a submission racing
      // with set_value either joins this job's future (and sees the value)
      // or starts a fresh one — never observes a half-fulfilled slot.
      if (!job.signature.empty()) in_flight_.erase(job.signature);
      if (result.ok()) {
        ++requests_served_;
      } else {
        ++requests_failed_;
      }
    }
    job.promise->set_value(std::move(result));
  }
}

Result<ExecutionResult> Server::HandleRequest(
    const std::vector<GroupByRequest>& requests) {
  WallTimer timer;

  // Admit against one generation: the shared lock spans the whole pipeline,
  // so AppendBatch (exclusive) can never swap the base or refresh cache
  // entries while this request is optimizing or reading them.
  std::shared_lock<std::shared_mutex> ingest_lock(ingest_mu_);
  const std::shared_ptr<const BaseSnapshot> snap = snapshot_;

  // Optimize against a snapshot of the pinned views: requests fully covered
  // by a view leave the plan as serve edges (OptimizerResult::cache_edges).
  OptimizerOptions opt_options = options_.session.optimizer;
  if (cache_ != nullptr) opt_options.cached_views = cache_->SnapshotViews();
  GbMqoOptimizer optimizer(snap->model.get(), snap->whatif.get(), opt_options);
  Result<OptimizerResult> opt = optimizer.Optimize(requests);
  if (!opt.ok()) return opt.status();

  std::vector<GroupByRequest> open;
  open.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (opt->cache_edges.count(i) == 0) open.push_back(requests[i]);
  }

  ExecutionResult out;
  CancellationToken token;
  if (!open.empty()) {
    PlanExecutor executor(&catalog_, snap->base->name(),
                          options_.session.scan_mode,
                          options_.session.parallelism);
    executor.set_fusion_enabled(options_.session.shared_scan_fusion);
    executor.set_node_parallel(options_.session.node_parallelism);
    const bool per_plan_gate = options_.session.max_exec_storage_bytes > 0;
    if (per_plan_gate || governor_ != nullptr) {
      executor.set_storage_budget(
          per_plan_gate ? options_.session.max_exec_storage_bytes
                        : std::numeric_limits<double>::infinity(),
          snap->whatif.get());
    }
    executor.set_max_task_retries(options_.session.max_task_retries);
    executor.set_retry_backoff_ms(options_.session.retry_backoff_ms);
    if (options_.session.exec_deadline_ms > 0) {
      token.SetDeadlineAfterMs(options_.session.exec_deadline_ms);
      executor.set_cancellation(&token);
    }
    executor.set_aggregate_cache(cache_.get());
    executor.set_storage_governor(governor_.get());
    if (options_.session.max_spill_bytes > 0 || options_.session.force_spill) {
      SpillOptions spill;
      spill.memory_budget_bytes = static_cast<uint64_t>(
          options_.session.max_exec_storage_bytes);
      spill.directory = options_.session.spill_directory;
      spill.max_spill_bytes = options_.session.max_spill_bytes;
      spill.force = options_.session.force_spill;
      // spill.governor stays null: PlanExecutor defaults it to the server's
      // shared governor, so concurrent requests meter disk bytes globally.
      executor.set_spill(spill);
    }
    Result<ExecutionResult> run = executor.Execute(opt->plan, open);
    if (!run.ok()) return run.status();
    out = *std::move(run);
  }

  for (const auto& edge : opt->cache_edges) {
    GBMQO_RETURN_NOT_OK(ServeCacheEdge(*snap, requests[edge.first],
                                       opt_options.cached_views[edge.second],
                                       &out));
  }

  out.base_version = snap->version;
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

Status Server::ServeCacheEdge(const BaseSnapshot& snap,
                              const GroupByRequest& req,
                              const CachedViewDesc& view,
                              ExecutionResult* out) {
  // No extra catalog reference: the returned TablePtr keeps the data alive
  // for this request even if the entry is evicted underneath.
  TablePtr pinned =
      cache_ != nullptr ? cache_->Lookup(view.columns, view.aggs, 0) : nullptr;
  if (pinned == nullptr) {
    // Evicted between costing and serving: recompute from the base
    // relation (correct, just no longer free).
    out->counters.cache_misses += 1;
    ExecContext ctx;
    QueryExecutor exec(&ctx, options_.session.scan_mode,
                       options_.session.parallelism);
    Result<GroupByQuery> query =
        BuildGroupByOver(*snap.base, /*input_is_base=*/true, base_->schema(),
                         req.columns, req.aggs);
    if (!query.ok()) return query.status();
    Result<TablePtr> table = exec.ExecuteGroupBy(
        *snap.base, *query, ResultNameFor(req.columns), AggStrategy::kAuto);
    if (!table.ok()) return table.status();
    if (cache_ != nullptr) {
      cache_->AcceptPinned(req.columns, req.aggs, *table, /*registered=*/false);
    }
    out->counters += ctx.counters();
    out->results[req.columns] = *table;
    return Status::OK();
  }

  out->counters.cache_hits += 1;
  if (view.columns == req.columns &&
      CanonicalAggs(view.aggs) == CanonicalAggs(req.aggs)) {
    // Exact match: the pinned table IS the answer.
    out->results[req.columns] = pinned;
    return Status::OK();
  }

  // Superset view: one pass over the (small) pinned aggregate with the
  // executor's canonical re-aggregation rewrite (COUNT(*) -> SUM(cnt),
  // SUM -> SUM(sum_x), MIN/MAX re-applied).
  ExecContext ctx;
  QueryExecutor exec(&ctx, options_.session.scan_mode,
                     options_.session.parallelism);
  Result<GroupByQuery> query = BuildGroupByOver(
      *pinned, /*input_is_base=*/false, base_->schema(), req.columns, req.aggs);
  if (!query.ok()) return query.status();
  Result<TablePtr> table = exec.ExecuteGroupBy(
      *pinned, *query, ResultNameFor(req.columns), AggStrategy::kAuto);
  if (!table.ok()) return table.status();
  cache_->AcceptPinned(req.columns, req.aggs, *table, /*registered=*/false);
  out->counters += ctx.counters();
  out->results[req.columns] = *table;
  return Status::OK();
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.requests_served = requests_served_;
    s.requests_failed = requests_failed_;
    s.requests_coalesced = requests_coalesced_;
  }
  {
    std::shared_lock<std::shared_mutex> lock(ingest_mu_);
    s.batches_ingested = batches_ingested_;
    s.rows_ingested = rows_ingested_;
    s.base_version = snapshot_->version;
  }
  if (cache_ != nullptr) s.cache = cache_->stats();
  if (governor_ != nullptr) s.governor_reserved_bytes = governor_->reserved();
  return s;
}

}  // namespace gbmqo
