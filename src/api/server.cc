#include "api/server.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "exec/spill_partitioner.h"
#include "sql/grouping_sets_parser.h"
#include "storage/checkpoint.h"

namespace gbmqo {

namespace {

namespace fs = std::filesystem;

std::vector<AggRequest> CanonicalAggs(const std::vector<AggRequest>& aggs) {
  std::vector<AggRequest> out = aggs;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Matches PlanExecutor's leaf naming so cache-served and plan-computed
/// result tables are indistinguishable to the client.
std::string ResultNameFor(ColumnSet cols) {
  return "result" + cols.ToString();
}

/// "wal-<start>.log": the segment holding records start+1, start+2, ... —
/// `start` is the version that was already durable (checkpointed, or 0)
/// when the segment was opened.
std::string WalSegmentName(uint64_t start) {
  return "wal-" + std::to_string(start) + ".log";
}

struct WalSegmentRef {
  uint64_t start = 0;
  std::string path;
};

/// WAL segments in `directory`, ascending by start version.
std::vector<WalSegmentRef> ListWalSegments(const std::string& directory) {
  std::vector<WalSegmentRef> out;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return out;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.compare(0, 4, "wal-") != 0) continue;
    if (name.size() < 9 || name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(WalSegmentRef{std::strtoull(digits.c_str(), nullptr, 10),
                                entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const WalSegmentRef& a, const WalSegmentRef& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace

Server::Server(TablePtr base, ServerOptions options)
    : base_(std::move(base)), options_(options) {
  FaultInjector::InstallFromEnv();
  (void)catalog_.RegisterBase(base_);
  if (options_.global_storage_budget_bytes > 0) {
    governor_ =
        std::make_unique<StorageGovernor>(options_.global_storage_budget_bytes);
  }
  if (options_.enable_aggregate_cache && options_.cache_budget_bytes > 0) {
    cache_ = std::make_unique<AggregateCache>(
        &catalog_, options_.cache_budget_bytes, governor_.get());
  }
  ingestor_ = std::make_unique<Ingestor>(&catalog_);
  snapshot_ = MakeSnapshot(0, base_, nullptr);
  if (!options_.wal_directory.empty()) {
    // No worker exists yet, so durability bring-up (which may replay the
    // WAL through ApplyBatchLocked) runs single-threaded without the lock.
    recovery_status_ = InitDurability();
    if (!recovery_status_.ok()) wal_.reset();  // serve, but never log
  }
  const int pool = options_.pool_size < 1 ? 1 : options_.pool_size;
  workers_.reserve(static_cast<size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // The cache must release its catalog pins before the catalog dies.
  cache_.reset();
}

std::shared_ptr<const Server::BaseSnapshot> Server::MakeSnapshot(
    uint64_t version, TablePtr base, const BaseSnapshot* prev) const {
  auto snap = std::make_shared<BaseSnapshot>();
  snap->version = version;
  snap->base = std::move(base);
  if (prev == nullptr || options_.refresh_stats_on_ingest) {
    snap->stats = std::make_shared<StatisticsManager>(
        *snap->base, options_.session.stats_mode, options_.session.sample_size);
    snap->whatif = std::make_shared<WhatIfProvider>(snap->stats.get());
  } else {
    // Carry the previous generation's statistics: estimates drift as the
    // relation grows, but every request still sees one consistent pair —
    // the snapshot holds both pointers together.
    snap->stats = prev->stats;
    snap->whatif = prev->whatif;
  }
  // The cost model reads only the table's size/width metadata — cheap
  // enough to rebuild every generation.
  snap->model = std::make_shared<OptimizerCostModel>(*snap->base);
  return snap;
}

Result<std::vector<GroupByRequest>> Server::Parse(
    const std::string& spec) const {
  return ParseGroupingSets(spec, base_->schema());
}

std::string Server::Signature(const std::vector<GroupByRequest>& requests) {
  std::vector<std::string> parts;
  parts.reserve(requests.size());
  for (const GroupByRequest& req : requests) {
    std::string p = req.columns.ToString();
    for (const AggRequest& a : CanonicalAggs(req.aggs)) {
      p += "|" + std::to_string(static_cast<int>(a.kind)) + ":" +
           std::to_string(a.column);
    }
    parts.push_back(std::move(p));
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) {
    sig += p;
    sig += ";";
  }
  return sig;
}

Server::Ticket Server::Submit(std::vector<GroupByRequest> requests) {
  auto promise =
      std::make_shared<std::promise<Result<ExecutionResult>>>();
  Ticket ticket;
  ticket.future_ = promise->get_future().share();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      promise->set_value(Status::Cancelled("server is shutting down"));
      return ticket;
    }
    std::string sig;
    if (options_.coalesce_identical_requests) {
      sig = Signature(requests);
      auto it = in_flight_.find(sig);
      if (it != in_flight_.end()) {
        ++requests_coalesced_;
        ticket.future_ = it->second;
        return ticket;
      }
      in_flight_.emplace(sig, ticket.future_);
    }
    queue_.push_back(Job{std::move(requests), std::move(promise),
                         std::move(sig)});
  }
  cv_.notify_one();
  return ticket;
}

Result<Server::Ticket> Server::Submit(const std::string& spec) {
  Result<std::vector<GroupByRequest>> requests = Parse(spec);
  if (!requests.ok()) return requests.status();
  return Submit(*std::move(requests));
}

Result<ExecutionResult> Server::Execute(
    const std::vector<GroupByRequest>& requests) {
  return Submit(requests).Get();
}

Result<ExecutionResult> Server::Execute(const std::string& spec) {
  Result<Ticket> ticket = Submit(spec);
  if (!ticket.ok()) return ticket.status();
  return ticket->Get();
}

Result<Server::IngestResult> Server::AppendBatch(
    const std::vector<std::vector<Value>>& rows) {
  WallTimer timer;
  // Exclusive against every in-flight HandleRequest: readers drain before
  // the append applies, and none admit until the new snapshot (base +
  // statistics + refreshed cache generation) is fully in place.
  std::unique_lock<std::shared_mutex> lock(ingest_mu_);

  // Log before apply: the batch is in the WAL (under the configured fsync
  // discipline) before any in-memory state moves, so a crash after this
  // point replays it and a failure here leaves the server serving the old
  // version with a clean log tail.
  if (wal_ != nullptr) {
    GBMQO_RETURN_NOT_OK(wal_->Append(snapshot_->version + 1, rows));
    ++wal_appends_;
  }

  IngestResult out;
  GBMQO_RETURN_NOT_OK(ApplyBatchLocked(rows, &out));

  if (wal_ != nullptr && options_.checkpoint_interval_bytes > 0 &&
      wal_->bytes() >= options_.checkpoint_interval_bytes) {
    // A failed auto-checkpoint is not an ingest failure: the batch is
    // already durable in the WAL, and the next interval crossing retries.
    (void)CheckpointLocked();
  }

  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

Status Server::ApplyBatchLocked(const std::vector<std::vector<Value>>& rows,
                                IngestResult* out) {
  std::shared_ptr<const BaseSnapshot> old = snapshot_;

  Result<IngestBatch> batch = ingestor_->AppendBatch(base_->name(), rows);
  if (!batch.ok()) return batch.status();

  out->version = batch->version;
  out->rows_appended = rows.size();

  if (cache_ != nullptr) {
    if (options_.incremental_maintenance) {
      DeltaMaintenanceOptions mopts;
      mopts.parallelism = options_.session.parallelism;
      DeltaMaintainer maintainer(&catalog_, cache_.get(), mopts);
      Result<DeltaMaintenanceReport> report = maintainer.ApplyDelta(
          batch->delta, batch->base, base_->schema(), batch->version);
      if (report.ok()) {
        out->entries_refreshed = report->entries_refreshed;
        out->entries_recomputed = report->entries_recomputed;
        out->entries_dropped = report->entries_dropped;
        out->rollup_reuses = report->rollup_reuses;
      } else {
        // Fail safe: a maintenance error must never leave stale entries
        // serving at the new version.
        cache_->Invalidate();
        cache_->SetSourceVersion(batch->version);
      }
    } else {
      cache_->Invalidate();
      cache_->SetSourceVersion(batch->version);
    }
  }

  retired_.push_back(old);
  snapshot_ = MakeSnapshot(batch->version, batch->base, old.get());
  SweepRetiredLocked();
  ++batches_ingested_;
  rows_ingested_ += rows.size();
  return Status::OK();
}

void Server::SweepRetiredLocked() {
  // A retired snapshot whose only owner is this vector has no in-flight
  // reader left; its base generation can leave the catalog. The generation-0
  // table stays registered: base_ and external callers may still resolve it
  // by its original name.
  auto it = retired_.begin();
  while (it != retired_.end()) {
    if (it->use_count() == 1 && (*it)->version > 0) {
      (void)catalog_.Drop((*it)->base->name());
      it = retired_.erase(it);
    } else if (it->use_count() == 1) {
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

Status Server::InitDurability() {
  const std::string& dir = options_.wal_directory;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("durability: cannot create wal directory " + dir +
                            ": " + ec.message());
  }
  // Reap leftovers of dead processes before they can be mistaken for live
  // state: orphaned checkpoint temp files here, spill directories wherever
  // this server's sessions spill.
  (void)ReapStaleCheckpointTmps(dir);
  (void)SpillFileSet::ReapStale(options_.session.spill_directory);

  if (!options_.recover_on_start) {
    // Fresh-start escape hatch: surviving logs must not mix with the new
    // world's version numbering, so they are discarded wholesale.
    for (const WalSegmentRef& seg : ListWalSegments(dir)) {
      (void)fs::remove(seg.path, ec);
    }
    Result<std::vector<CheckpointRef>> cps = ListCheckpoints(dir);
    if (cps.ok()) {
      for (const CheckpointRef& cp : *cps) (void)fs::remove(cp.path, ec);
    }
  } else {
    // Newest valid checkpoint wins; damaged ones are fallen past (counted),
    // never admitted.
    Result<std::vector<CheckpointRef>> cps = ListCheckpoints(dir);
    if (!cps.ok()) return cps.status();
    bool checkpoint_loaded = false;
    for (auto it = cps->rbegin(); it != cps->rend(); ++it) {
      Result<CheckpointImage> image = ReadCheckpoint(it->path);
      if (!image.ok()) {
        ++recovery_checkpoints_skipped_;
        continue;
      }
      if (image->base_version > 0) {
        // Mirror what the original Ingestor::AppendBatch sequence did:
        // the recovered base lives under its versioned name and the family
        // counter resumes from it.
        GBMQO_RETURN_NOT_OK(catalog_.RegisterBase(image->base));
        GBMQO_RETURN_NOT_OK(ingestor_->SeedFamily(
            base_->name(), image->base_version, image->base->name()));
        snapshot_ = MakeSnapshot(image->base_version, image->base, nullptr);
      }
      if (cache_ != nullptr) {
        // Entries are stored MRU-first; re-admitting in reverse rebuilds
        // the exact eviction order the checkpointed cache had.
        for (auto e = image->entries.rbegin(); e != image->entries.rend();
             ++e) {
          std::vector<AggRequest> aggs;
          aggs.reserve(e->aggs.size());
          for (const CheckpointAggRef& a : e->aggs) {
            aggs.push_back(
                AggRequest{static_cast<AggKind>(a.kind), a.column});
          }
          (void)cache_->RestorePinned(ColumnSet(e->columns_mask), aggs,
                                      e->table, e->source_version,
                                      e->needs_recompute);
        }
        cache_->SetSourceVersion(image->base_version);
      }
      checkpoint_version_ = image->base_version;
      recovery_checkpoint_version_ = image->base_version;
      recovered_ = true;
      // Adopt the surviving file into the disk ledger: the invariant is
      // ledger == live durable bytes, whichever process wrote them.
      const uint64_t size = fs::file_size(it->path, ec);
      if (!ec) {
        if (governor_ != nullptr) {
          governor_->ForceReserveDisk(static_cast<double>(size));
        }
        checkpoint_bytes_[image->base_version] = size;
      }
      checkpoint_loaded = true;
      break;
    }
    if (!checkpoint_loaded && !cps->empty()) {
      // Checkpoints exist but every one is unreadable. Starting at version
      // 0 here would present data loss as a clean boot; refuse instead and
      // leave the files intact for inspection (or a recover_on_start=false
      // restart that discards them deliberately).
      return Status::Internal(
          "durability: all " + std::to_string(cps->size()) +
          " checkpoints in " + dir +
          " are unreadable; refusing to recover past them");
    }

    // Replay every segment in start order; apply_after skips records the
    // checkpoint already covers. Each applied record takes the live ingest
    // path (ApplyBatchLocked), so the cache maintenance trajectory — and
    // therefore every warm hit — is reproduced bit-identically.
    for (const WalSegmentRef& seg : ListWalSegments(dir)) {
      WalReplayReport report;
      const Status replayed = ReplayWal(
          seg.path, snapshot_->version,
          [this](uint64_t version, std::vector<std::vector<Value>>&& rows) {
            if (version != snapshot_->version + 1) {
              return Status::Internal(
                  "durability: wal record version " + std::to_string(version) +
                  " does not follow recovered version " +
                  std::to_string(snapshot_->version));
            }
            IngestResult applied;
            return ApplyBatchLocked(rows, &applied);
          },
          &report);
      recovery_records_applied_ += report.records_applied;
      recovery_tail_truncated_ =
          recovery_tail_truncated_ || report.tail_truncated;
      GBMQO_RETURN_NOT_OK(replayed);
    }
    recovered_ = recovered_ || recovery_records_applied_ > 0;
  }

  // Open the live segment for appending: the newest surviving one (replay
  // truncated any torn tail, so appends extend a clean log), or a fresh
  // segment anchored at the current version.
  const std::vector<WalSegmentRef> segments = ListWalSegments(dir);
  const std::string live =
      segments.empty() ? dir + "/" + WalSegmentName(snapshot_->version)
                       : segments.back().path;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(live, options_.fsync_mode, governor_.get());
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  GcDurabilityFilesLocked();
  return Status::OK();
}

Status Server::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(ingest_mu_);
  if (options_.wal_directory.empty()) {
    return Status::InvalidArgument(
        "Checkpoint(): durability is disabled "
        "(ServerOptions::wal_directory is empty)");
  }
  if (wal_ == nullptr) {
    return Status::Internal("Checkpoint(): the WAL is offline (recovery "
                            "failed: " +
                            recovery_status_.message() + ")");
  }
  return CheckpointLocked();
}

Status Server::CheckpointLocked() {
  CheckpointImage image;
  image.base_version = snapshot_->version;
  image.base = snapshot_->base;
  if (cache_ != nullptr) {
    for (const RefreshableEntry& e : cache_->SnapshotEntriesLru()) {
      CheckpointCacheEntry ce;
      ce.columns_mask = e.columns.mask();
      ce.aggs.reserve(e.aggs.size());
      for (const AggRequest& a : e.aggs) {
        ce.aggs.push_back(CheckpointAggRef{static_cast<int>(a.kind), a.column});
      }
      ce.source_version = e.source_version;
      ce.needs_recompute = e.needs_recompute;
      ce.table = e.table;
      image.entries.push_back(std::move(ce));
    }
  }
  uint64_t bytes = 0;
  GBMQO_RETURN_NOT_OK(WriteCheckpoint(options_.wal_directory, image,
                                      governor_.get(), &bytes));
  // Re-checkpointing an unchanged version renamed over the old file; drop
  // its stale ledger charge before recording the new one.
  auto prior = checkpoint_bytes_.find(image.base_version);
  if (prior != checkpoint_bytes_.end()) {
    if (governor_ != nullptr) {
      governor_->ReleaseDisk(static_cast<double>(prior->second));
    }
    checkpoint_bytes_.erase(prior);
  }
  checkpoint_bytes_[image.base_version] = bytes;
  const bool rotate =
      wal_ == nullptr || checkpoint_version_ != image.base_version;
  checkpoint_version_ = image.base_version;
  ++checkpoints_written_;
  if (rotate) {
    // Rotation: the checkpoint is durable, so the log restarts at it. The
    // old writer's destruction returns its segment's bytes to the ledger;
    // the superseded file itself goes in the GC below. A crash between any
    // of these steps is harmless — replay filters records the checkpoint
    // covers.
    wal_.reset();
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
        options_.wal_directory + "/" + WalSegmentName(checkpoint_version_),
        options_.fsync_mode, governor_.get());
    if (!writer.ok()) return writer.status();
    wal_ = std::move(*writer);
  }
  GcDurabilityFilesLocked();
  return Status::OK();
}

void Server::GcDurabilityFilesLocked() {
  const std::string& dir = options_.wal_directory;
  std::error_code ec;
  Result<std::vector<CheckpointRef>> cps = ListCheckpoints(dir);
  if (!cps.ok()) return;
  // The two newest checkpoints are kept — bit rot in the newest must leave
  // recovery a fallback — so the retention floor is the second-newest
  // version (the newest, when only one exists).
  uint64_t keep_floor = checkpoint_version_;
  if (cps->size() >= 2) keep_floor = (*cps)[cps->size() - 2].version;
  for (const CheckpointRef& cp : *cps) {
    if (cp.version >= keep_floor) continue;
    if (fs::remove(cp.path, ec) && !ec) {
      auto held = checkpoint_bytes_.find(cp.version);
      if (held != checkpoint_bytes_.end()) {
        if (governor_ != nullptr) {
          governor_->ReleaseDisk(static_cast<double>(held->second));
        }
        checkpoint_bytes_.erase(held);
      }
    }
  }
  // A segment is superseded when a later segment starts at or before every
  // kept checkpoint: all records it holds are then covered even by the
  // fallback. The live (last) segment is never eligible. Segment bytes are
  // ledgered by their WalWriter, so deleting a writerless file releases
  // nothing here.
  const std::vector<WalSegmentRef> segments = ListWalSegments(dir);
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].start > keep_floor) continue;
    if (wal_ != nullptr && segments[i].path == wal_->path()) continue;
    (void)fs::remove(segments[i].path, ec);
  }
}

Status Server::recovery_status() const {
  std::shared_lock<std::shared_mutex> lock(ingest_mu_);
  return recovery_status_;
}

uint64_t Server::base_version() const {
  std::shared_lock<std::shared_mutex> lock(ingest_mu_);
  return snapshot_->version;
}

TablePtr Server::current_base() const {
  std::shared_lock<std::shared_mutex> lock(ingest_mu_);
  return snapshot_->base;
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Result<ExecutionResult> result = HandleRequest(job.requests);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Retire the coalescing slot before publishing: a submission racing
      // with set_value either joins this job's future (and sees the value)
      // or starts a fresh one — never observes a half-fulfilled slot.
      if (!job.signature.empty()) in_flight_.erase(job.signature);
      if (result.ok()) {
        ++requests_served_;
      } else {
        ++requests_failed_;
      }
    }
    job.promise->set_value(std::move(result));
  }
}

Result<ExecutionResult> Server::HandleRequest(
    const std::vector<GroupByRequest>& requests) {
  WallTimer timer;

  // Admit against one generation: the shared lock spans the whole pipeline,
  // so AppendBatch (exclusive) can never swap the base or refresh cache
  // entries while this request is optimizing or reading them.
  std::shared_lock<std::shared_mutex> ingest_lock(ingest_mu_);
  const std::shared_ptr<const BaseSnapshot> snap = snapshot_;

  // Optimize against a snapshot of the pinned views: requests fully covered
  // by a view leave the plan as serve edges (OptimizerResult::cache_edges).
  OptimizerOptions opt_options = options_.session.optimizer;
  if (cache_ != nullptr) opt_options.cached_views = cache_->SnapshotViews();
  GbMqoOptimizer optimizer(snap->model.get(), snap->whatif.get(), opt_options);
  Result<OptimizerResult> opt = optimizer.Optimize(requests);
  if (!opt.ok()) return opt.status();

  std::vector<GroupByRequest> open;
  open.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (opt->cache_edges.count(i) == 0) open.push_back(requests[i]);
  }

  ExecutionResult out;
  CancellationToken token;
  if (!open.empty()) {
    PlanExecutor executor(&catalog_, snap->base->name(),
                          options_.session.scan_mode,
                          options_.session.parallelism);
    executor.set_fusion_enabled(options_.session.shared_scan_fusion);
    executor.set_node_parallel(options_.session.node_parallelism);
    const bool per_plan_gate = options_.session.max_exec_storage_bytes > 0;
    if (per_plan_gate || governor_ != nullptr) {
      executor.set_storage_budget(
          per_plan_gate ? options_.session.max_exec_storage_bytes
                        : std::numeric_limits<double>::infinity(),
          snap->whatif.get());
    }
    executor.set_max_task_retries(options_.session.max_task_retries);
    executor.set_retry_backoff_ms(options_.session.retry_backoff_ms);
    if (options_.session.exec_deadline_ms > 0) {
      token.SetDeadlineAfterMs(options_.session.exec_deadline_ms);
      executor.set_cancellation(&token);
    }
    executor.set_aggregate_cache(cache_.get());
    executor.set_storage_governor(governor_.get());
    if (options_.session.max_spill_bytes > 0 || options_.session.force_spill) {
      SpillOptions spill;
      spill.memory_budget_bytes = static_cast<uint64_t>(
          options_.session.max_exec_storage_bytes);
      spill.directory = options_.session.spill_directory;
      spill.max_spill_bytes = options_.session.max_spill_bytes;
      spill.force = options_.session.force_spill;
      // spill.governor stays null: PlanExecutor defaults it to the server's
      // shared governor, so concurrent requests meter disk bytes globally.
      executor.set_spill(spill);
    }
    Result<ExecutionResult> run = executor.Execute(opt->plan, open);
    if (!run.ok()) return run.status();
    out = *std::move(run);
  }

  for (const auto& edge : opt->cache_edges) {
    GBMQO_RETURN_NOT_OK(ServeCacheEdge(*snap, requests[edge.first],
                                       opt_options.cached_views[edge.second],
                                       &out));
  }

  out.base_version = snap->version;
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

Status Server::ServeCacheEdge(const BaseSnapshot& snap,
                              const GroupByRequest& req,
                              const CachedViewDesc& view,
                              ExecutionResult* out) {
  // No extra catalog reference: the returned TablePtr keeps the data alive
  // for this request even if the entry is evicted underneath.
  TablePtr pinned =
      cache_ != nullptr ? cache_->Lookup(view.columns, view.aggs, 0) : nullptr;
  if (pinned == nullptr) {
    // Evicted between costing and serving: recompute from the base
    // relation (correct, just no longer free).
    out->counters.cache_misses += 1;
    ExecContext ctx;
    QueryExecutor exec(&ctx, options_.session.scan_mode,
                       options_.session.parallelism);
    Result<GroupByQuery> query =
        BuildGroupByOver(*snap.base, /*input_is_base=*/true, base_->schema(),
                         req.columns, req.aggs);
    if (!query.ok()) return query.status();
    Result<TablePtr> table = exec.ExecuteGroupBy(
        *snap.base, *query, ResultNameFor(req.columns), AggStrategy::kAuto);
    if (!table.ok()) return table.status();
    if (cache_ != nullptr) {
      cache_->AcceptPinned(req.columns, req.aggs, *table, /*registered=*/false);
    }
    out->counters += ctx.counters();
    out->results[req.columns] = *table;
    return Status::OK();
  }

  out->counters.cache_hits += 1;
  if (view.columns == req.columns &&
      CanonicalAggs(view.aggs) == CanonicalAggs(req.aggs)) {
    // Exact match: the pinned table IS the answer.
    out->results[req.columns] = pinned;
    return Status::OK();
  }

  // Superset view: one pass over the (small) pinned aggregate with the
  // executor's canonical re-aggregation rewrite (COUNT(*) -> SUM(cnt),
  // SUM -> SUM(sum_x), MIN/MAX re-applied).
  ExecContext ctx;
  QueryExecutor exec(&ctx, options_.session.scan_mode,
                     options_.session.parallelism);
  Result<GroupByQuery> query = BuildGroupByOver(
      *pinned, /*input_is_base=*/false, base_->schema(), req.columns, req.aggs);
  if (!query.ok()) return query.status();
  Result<TablePtr> table = exec.ExecuteGroupBy(
      *pinned, *query, ResultNameFor(req.columns), AggStrategy::kAuto);
  if (!table.ok()) return table.status();
  cache_->AcceptPinned(req.columns, req.aggs, *table, /*registered=*/false);
  out->counters += ctx.counters();
  out->results[req.columns] = *table;
  return Status::OK();
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.requests_served = requests_served_;
    s.requests_failed = requests_failed_;
    s.requests_coalesced = requests_coalesced_;
  }
  {
    std::shared_lock<std::shared_mutex> lock(ingest_mu_);
    s.batches_ingested = batches_ingested_;
    s.rows_ingested = rows_ingested_;
    s.base_version = snapshot_->version;
    s.wal_appends = wal_appends_;
    s.wal_bytes = wal_ != nullptr ? wal_->bytes() : 0;
    s.checkpoints_written = checkpoints_written_;
    s.last_checkpoint_version = checkpoint_version_;
    s.recovered = recovered_;
    s.recovery_checkpoint_version = recovery_checkpoint_version_;
    s.recovery_records_applied = recovery_records_applied_;
    s.recovery_tail_truncated = recovery_tail_truncated_;
    s.recovery_checkpoints_skipped = recovery_checkpoints_skipped_;
  }
  if (cache_ != nullptr) s.cache = cache_->stats();
  if (governor_ != nullptr) s.governor_reserved_bytes = governor_->reserved();
  return s;
}

}  // namespace gbmqo
