#include "api/server.h"

#include <algorithm>
#include <utility>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "sql/grouping_sets_parser.h"

namespace gbmqo {

namespace {

std::vector<AggRequest> CanonicalAggs(const std::vector<AggRequest>& aggs) {
  std::vector<AggRequest> out = aggs;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Matches PlanExecutor's leaf naming so cache-served and plan-computed
/// result tables are indistinguishable to the client.
std::string ResultNameFor(ColumnSet cols) {
  return "result" + cols.ToString();
}

}  // namespace

Server::Server(TablePtr base, ServerOptions options)
    : base_(std::move(base)), options_(options) {
  FaultInjector::InstallFromEnv();
  (void)catalog_.RegisterBase(base_);
  stats_ = std::make_unique<StatisticsManager>(
      *base_, options_.session.stats_mode, options_.session.sample_size);
  whatif_ = std::make_unique<WhatIfProvider>(stats_.get());
  model_ = std::make_unique<OptimizerCostModel>(*base_);
  if (options_.global_storage_budget_bytes > 0) {
    governor_ =
        std::make_unique<StorageGovernor>(options_.global_storage_budget_bytes);
  }
  if (options_.enable_aggregate_cache && options_.cache_budget_bytes > 0) {
    cache_ = std::make_unique<AggregateCache>(
        &catalog_, options_.cache_budget_bytes, governor_.get());
  }
  const int pool = options_.pool_size < 1 ? 1 : options_.pool_size;
  workers_.reserve(static_cast<size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // The cache must release its catalog pins before the catalog dies.
  cache_.reset();
}

Result<std::vector<GroupByRequest>> Server::Parse(
    const std::string& spec) const {
  return ParseGroupingSets(spec, base_->schema());
}

std::string Server::Signature(const std::vector<GroupByRequest>& requests) {
  std::vector<std::string> parts;
  parts.reserve(requests.size());
  for (const GroupByRequest& req : requests) {
    std::string p = req.columns.ToString();
    for (const AggRequest& a : CanonicalAggs(req.aggs)) {
      p += "|" + std::to_string(static_cast<int>(a.kind)) + ":" +
           std::to_string(a.column);
    }
    parts.push_back(std::move(p));
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) {
    sig += p;
    sig += ";";
  }
  return sig;
}

Server::Ticket Server::Submit(std::vector<GroupByRequest> requests) {
  auto promise =
      std::make_shared<std::promise<Result<ExecutionResult>>>();
  Ticket ticket;
  ticket.future_ = promise->get_future().share();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      promise->set_value(Status::Cancelled("server is shutting down"));
      return ticket;
    }
    std::string sig;
    if (options_.coalesce_identical_requests) {
      sig = Signature(requests);
      auto it = in_flight_.find(sig);
      if (it != in_flight_.end()) {
        ++requests_coalesced_;
        ticket.future_ = it->second;
        return ticket;
      }
      in_flight_.emplace(sig, ticket.future_);
    }
    queue_.push_back(Job{std::move(requests), std::move(promise),
                         std::move(sig)});
  }
  cv_.notify_one();
  return ticket;
}

Result<Server::Ticket> Server::Submit(const std::string& spec) {
  Result<std::vector<GroupByRequest>> requests = Parse(spec);
  if (!requests.ok()) return requests.status();
  return Submit(*std::move(requests));
}

Result<ExecutionResult> Server::Execute(
    const std::vector<GroupByRequest>& requests) {
  return Submit(requests).Get();
}

Result<ExecutionResult> Server::Execute(const std::string& spec) {
  Result<Ticket> ticket = Submit(spec);
  if (!ticket.ok()) return ticket.status();
  return ticket->Get();
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Result<ExecutionResult> result = HandleRequest(job.requests);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Retire the coalescing slot before publishing: a submission racing
      // with set_value either joins this job's future (and sees the value)
      // or starts a fresh one — never observes a half-fulfilled slot.
      if (!job.signature.empty()) in_flight_.erase(job.signature);
      if (result.ok()) {
        ++requests_served_;
      } else {
        ++requests_failed_;
      }
    }
    job.promise->set_value(std::move(result));
  }
}

Result<ExecutionResult> Server::HandleRequest(
    const std::vector<GroupByRequest>& requests) {
  WallTimer timer;

  // Optimize against a snapshot of the pinned views: requests fully covered
  // by a view leave the plan as serve edges (OptimizerResult::cache_edges).
  OptimizerOptions opt_options = options_.session.optimizer;
  if (cache_ != nullptr) opt_options.cached_views = cache_->SnapshotViews();
  GbMqoOptimizer optimizer(model_.get(), whatif_.get(), opt_options);
  Result<OptimizerResult> opt = optimizer.Optimize(requests);
  if (!opt.ok()) return opt.status();

  std::vector<GroupByRequest> open;
  open.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (opt->cache_edges.count(i) == 0) open.push_back(requests[i]);
  }

  ExecutionResult out;
  CancellationToken token;
  if (!open.empty()) {
    PlanExecutor executor(&catalog_, base_->name(), options_.session.scan_mode,
                          options_.session.parallelism);
    executor.set_fusion_enabled(options_.session.shared_scan_fusion);
    executor.set_node_parallel(options_.session.node_parallelism);
    const bool per_plan_gate = options_.session.max_exec_storage_bytes > 0;
    if (per_plan_gate || governor_ != nullptr) {
      executor.set_storage_budget(
          per_plan_gate ? options_.session.max_exec_storage_bytes
                        : std::numeric_limits<double>::infinity(),
          whatif_.get());
    }
    executor.set_max_task_retries(options_.session.max_task_retries);
    executor.set_retry_backoff_ms(options_.session.retry_backoff_ms);
    if (options_.session.exec_deadline_ms > 0) {
      token.SetDeadlineAfterMs(options_.session.exec_deadline_ms);
      executor.set_cancellation(&token);
    }
    executor.set_aggregate_cache(cache_.get());
    executor.set_storage_governor(governor_.get());
    Result<ExecutionResult> run = executor.Execute(opt->plan, open);
    if (!run.ok()) return run.status();
    out = *std::move(run);
  }

  for (const auto& edge : opt->cache_edges) {
    GBMQO_RETURN_NOT_OK(ServeCacheEdge(
        requests[edge.first], opt_options.cached_views[edge.second], &out));
  }

  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

Status Server::ServeCacheEdge(const GroupByRequest& req,
                              const CachedViewDesc& view,
                              ExecutionResult* out) {
  // No extra catalog reference: the returned TablePtr keeps the data alive
  // for this request even if the entry is evicted underneath.
  TablePtr pinned =
      cache_ != nullptr ? cache_->Lookup(view.columns, view.aggs, 0) : nullptr;
  if (pinned == nullptr) {
    // Evicted between costing and serving: recompute from the base
    // relation (correct, just no longer free).
    out->counters.cache_misses += 1;
    ExecContext ctx;
    QueryExecutor exec(&ctx, options_.session.scan_mode,
                       options_.session.parallelism);
    Result<GroupByQuery> query = BuildGroupByOver(
        *base_, /*input_is_base=*/true, base_->schema(), req.columns, req.aggs);
    if (!query.ok()) return query.status();
    Result<TablePtr> table = exec.ExecuteGroupBy(
        *base_, *query, ResultNameFor(req.columns), AggStrategy::kAuto);
    if (!table.ok()) return table.status();
    if (cache_ != nullptr) {
      cache_->AcceptPinned(req.columns, req.aggs, *table, /*registered=*/false);
    }
    out->counters += ctx.counters();
    out->results[req.columns] = *table;
    return Status::OK();
  }

  out->counters.cache_hits += 1;
  if (view.columns == req.columns &&
      CanonicalAggs(view.aggs) == CanonicalAggs(req.aggs)) {
    // Exact match: the pinned table IS the answer.
    out->results[req.columns] = pinned;
    return Status::OK();
  }

  // Superset view: one pass over the (small) pinned aggregate with the
  // executor's canonical re-aggregation rewrite (COUNT(*) -> SUM(cnt),
  // SUM -> SUM(sum_x), MIN/MAX re-applied).
  ExecContext ctx;
  QueryExecutor exec(&ctx, options_.session.scan_mode,
                     options_.session.parallelism);
  Result<GroupByQuery> query = BuildGroupByOver(
      *pinned, /*input_is_base=*/false, base_->schema(), req.columns, req.aggs);
  if (!query.ok()) return query.status();
  Result<TablePtr> table = exec.ExecuteGroupBy(
      *pinned, *query, ResultNameFor(req.columns), AggStrategy::kAuto);
  if (!table.ok()) return table.status();
  cache_->AcceptPinned(req.columns, req.aggs, *table, /*registered=*/false);
  out->counters += ctx.counters();
  out->results[req.columns] = *table;
  return Status::OK();
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.requests_served = requests_served_;
    s.requests_failed = requests_failed_;
    s.requests_coalesced = requests_coalesced_;
  }
  if (cache_ != nullptr) s.cache = cache_->stats();
  if (governor_ != nullptr) s.governor_reserved_bytes = governor_->reserved();
  return s;
}

}  // namespace gbmqo
