// Session: the one-object entry point to the library — the client-side
// realization of Section 5 as an application would embed it. Bundles the
// catalog, statistics, cost model, optimizer, executor and the GROUPING
// SETS parser behind a handful of calls:
//
//   Session session(GenerateLineitem({.rows = 100000}));
//   auto result = session.Execute("SINGLE(l_returnflag, l_shipmode)");
//   std::cout << session.Explain("SINGLE(l_returnflag, l_shipmode)");
#ifndef GBMQO_API_SESSION_H_
#define GBMQO_API_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "core/gbmqo.h"
#include "stats/statistics_manager.h"

namespace gbmqo {

struct SessionOptions {
  /// Statistics: exact (fullscan) or sampled (shared sample + hybrid
  /// GEE/Chao estimation).
  DistinctMode stats_mode = DistinctMode::kExact;
  uint64_t sample_size = 100000;
  /// Search configuration (pruning, merge shapes, CUBE/ROLLUP, storage cap).
  OptimizerOptions optimizer;
  /// Row-store scan simulation vs native columnar execution.
  ScanMode scan_mode = ScanMode::kRowStore;
  /// Total execution thread budget, split between independent sub-plans and
  /// intra-query morsel parallelism (see PlanExecutor). Results and work
  /// counters are bit-identical for any value.
  int parallelism = 1;
  /// Fuse eligible sibling Group By nodes into one shared-scan pass (see
  /// PlanExecutor::set_fusion_enabled). Off by default so scan counters
  /// reflect one scan per plan edge; results are identical either way.
  bool shared_scan_fusion = false;
  /// Run independent plan-DAG tasks concurrently (see
  /// PlanExecutor::set_node_parallel). On by default; only changes wall
  /// clock, never results or counters.
  bool node_parallelism = true;
  /// Storage-aware admission gate: when > 0, a plan node is not scheduled
  /// while the estimated live temp-table bytes would exceed this budget
  /// (see PlanExecutor::set_storage_budget). 0 disables the gate.
  double max_exec_storage_bytes = 0;
  /// Out-of-core aggregation (see QueryExecutor::SpillOptions and
  /// PlanExecutor::set_spill). When max_spill_bytes > 0 or force_spill is
  /// set, max_exec_storage_bytes becomes a hard cap instead of a refusal: a
  /// hash aggregation whose realized group-table bytes would exceed it
  /// radix-partitions its input into spill files and completes partition-
  /// wise, with results bit-identical to the in-memory path. Directory ""
  /// = the system temp directory; files live in a per-aggregation
  /// subdirectory removed when the aggregation ends, however it ends.
  std::string spill_directory;
  /// Cap on one aggregation's total spill-file bytes; exceeding it fails
  /// the query with ResourceExhausted. 0 together with force_spill unset
  /// keeps out-of-core execution disabled (the refuse-over-budget seed
  /// behaviour).
  uint64_t max_spill_bytes = 0;
  /// Routes every eligible hash aggregation through the spill path even
  /// when under budget (differential-testing and bench knob).
  bool force_spill = false;
  /// Resilience: extra attempts allowed per failed DAG task (default 0 =
  /// fail fast). Re-attempts walk the degradation ladder — fused tasks
  /// split into per-query passes, temp-table readers recompute from the
  /// base relation, memory-pressure failures retry serialized on the
  /// low-footprint kernel (see PlanExecutor::set_max_task_retries).
  int max_task_retries = 0;
  /// Sleep before the k-th re-attempt of a task: k * retry_backoff_ms.
  double retry_backoff_ms = 0;
  /// Wall-clock deadline for each ExecutePlan call, in milliseconds; when
  /// > 0 the session arms its cancellation token at call entry and the
  /// executor returns Status::DeadlineExceeded once it fires. 0 disables.
  uint64_t exec_deadline_ms = 0;
  /// Pins execution to the scalar SIMD tier regardless of the host CPU
  /// (see QueryExecutor::set_force_scalar and exec/simd.h). Results and
  /// work counters are bit-identical either way; this is a differential-
  /// testing and bench-baseline knob. The GBMQO_DISABLE_SIMD environment
  /// variable forces the same thing process-wide.
  bool force_scalar = false;
};

/// Owns everything needed to optimize and execute multi-Group-By workloads
/// over one base relation. Not thread-safe (one session per thread).
class Session {
 public:
  /// Takes shared ownership of the base relation.
  explicit Session(TablePtr base, SessionOptions options = {});

  // ---- workload specification --------------------------------------------

  /// Parses a GROUPING SETS spec ("(a), (b), (a, c)" or "SINGLE(...)" /
  /// "PAIRS(...)") against the base schema.
  Result<std::vector<GroupByRequest>> Parse(const std::string& spec) const;

  // ---- planning / inspection ---------------------------------------------

  /// Runs GB-MQO and returns the plan with costs and search stats.
  Result<OptimizerResult> Optimize(const std::vector<GroupByRequest>& requests);
  Result<OptimizerResult> Optimize(const std::string& spec);

  /// EXPLAIN rendering of the GB-MQO plan for the workload.
  Result<std::string> Explain(const std::string& spec);

  /// The Section 5.2 SQL script for the GB-MQO plan.
  Result<std::vector<SqlStatement>> GenerateSql(const std::string& spec);

  // ---- execution -----------------------------------------------------------

  /// Optimizes and executes; one result table per request.
  Result<ExecutionResult> Execute(const std::vector<GroupByRequest>& requests);
  Result<ExecutionResult> Execute(const std::string& spec);

  /// Executes a specific plan (e.g. the naive plan, or a baseline).
  Result<ExecutionResult> ExecutePlan(const LogicalPlan& plan,
                                      const std::vector<GroupByRequest>& requests);

  // ---- component access ----------------------------------------------------

  const Table& base() const { return *base_; }
  Catalog* catalog() { return &catalog_; }
  StatisticsManager* stats() { return stats_.get(); }
  PlanCostModel* cost_model() { return model_.get(); }

  /// The session's cancellation token, shared by every ExecutePlan call.
  /// Cancel() (from any thread) makes the running — and any subsequent —
  /// execution return Status::Cancelled; ExecutePlan re-arms the deadline
  /// (and clears a previous deadline expiry, but not an explicit Cancel)
  /// at each call when exec_deadline_ms > 0.
  CancellationToken* cancellation() { return &cancel_; }

 private:
  TablePtr base_;
  SessionOptions options_;
  Catalog catalog_;
  std::unique_ptr<StatisticsManager> stats_;
  std::unique_ptr<WhatIfProvider> whatif_;
  std::unique_ptr<OptimizerCostModel> model_;
  CancellationToken cancel_;
};

}  // namespace gbmqo

#endif  // GBMQO_API_SESSION_H_
