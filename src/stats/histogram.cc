#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace gbmqo {

Result<Histogram> Histogram::Build(const Table& table, int ordinal,
                                   int max_buckets) {
  if (ordinal < 0 || ordinal >= table.schema().num_columns()) {
    return Status::InvalidArgument("histogram column out of range");
  }
  if (max_buckets < 1) {
    return Status::InvalidArgument("max_buckets must be >= 1");
  }
  const Column& col = table.column(ordinal);
  Histogram h;
  h.total_rows_ = table.num_rows();

  // Collect the numeric view of non-null rows. STRING columns use their
  // dictionary codes (a rank over insertion order).
  std::vector<double> values;
  values.reserve(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (col.IsNull(row)) {
      ++h.null_count_;
      continue;
    }
    if (col.type() == DataType::kString) {
      values.push_back(static_cast<double>(col.CodeAt(row)));
    } else {
      values.push_back(col.NumericAt(row));
    }
  }
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());

  const size_t n = values.size();
  const size_t depth =
      (n + static_cast<size_t>(max_buckets) - 1) / static_cast<size_t>(max_buckets);
  size_t i = 0;
  while (i < n) {
    HistogramBucket bucket;
    bucket.lo = values[i];
    size_t end = std::min(n, i + depth);
    // Never split equal values across buckets: extend to the end of the run.
    while (end < n && values[end] == values[end - 1]) ++end;
    bucket.hi = values[end - 1];
    bucket.row_count = end - i;
    bucket.distinct = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (values[j] != values[j - 1]) ++bucket.distinct;
    }
    h.buckets_.push_back(bucket);
    i = end;
  }
  return h;
}

double Histogram::EstimateRangeSelectivity(double lo, double hi) const {
  if (buckets_.empty() || hi < lo) return 0.0;
  const double non_null =
      static_cast<double>(total_rows_ - null_count_);
  if (non_null <= 0) return 0.0;
  double rows = 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (b.hi < lo || b.lo > hi) continue;
    if (b.lo >= lo && b.hi <= hi) {
      rows += static_cast<double>(b.row_count);
      continue;
    }
    // Partial overlap: uniform interpolation.
    const double width = b.hi - b.lo;
    if (width <= 0) {
      rows += static_cast<double>(b.row_count);
      continue;
    }
    const double olo = std::max(lo, b.lo);
    const double ohi = std::min(hi, b.hi);
    rows += static_cast<double>(b.row_count) * (ohi - olo) / width;
  }
  return rows / non_null;
}

std::string Histogram::ToString() const {
  std::string out = StrFormat("histogram(%zu buckets, %llu nulls)\n",
                              buckets_.size(),
                              static_cast<unsigned long long>(null_count_));
  for (const HistogramBucket& b : buckets_) {
    out += StrFormat("  [%g, %g] rows=%llu distinct=%llu\n", b.lo, b.hi,
                     static_cast<unsigned long long>(b.row_count),
                     static_cast<unsigned long long>(b.distinct));
  }
  return out;
}

}  // namespace gbmqo
