#include "stats/statistics_manager.h"

namespace gbmqo {

StatisticsManager::StatisticsManager(const Table& table, DistinctMode mode,
                                     uint64_t sample_size)
    : table_(table), mode_(mode), sample_size_(sample_size) {}

const ColumnSetStats& StatisticsManager::Get(ColumnSet columns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(columns);
  if (it != cache_.end()) return it->second;

  WallTimer timer;
  ColumnSetStats stats;
  if (columns.empty()) {
    stats.distinct_count = table_.num_rows() > 0 ? 1 : 0;
    stats.row_width = 0;
  } else if (mode_ == DistinctMode::kExact ||
             sample_size_ >= table_.num_rows()) {
    stats.distinct_count =
        static_cast<double>(ExactDistinctCount(table_, columns));
    stats.row_width = table_.AvgRowWidth(columns);
  } else {
    if (sample_ == nullptr) {
      Result<TablePtr> sample = BuildRowSample(table_, sample_size_);
      if (sample.ok()) sample_ = *sample;
    }
    stats.distinct_count = static_cast<double>(
        sample_ != nullptr
            ? GeeEstimateFromSample(*sample_, columns, table_.num_rows())
            : ExactDistinctCount(table_, columns));
    stats.row_width = table_.AvgRowWidth(columns);
  }
  creation_seconds_ += timer.ElapsedSeconds();
  ++statistics_created_;
  return cache_.emplace(columns, stats).first->second;
}

}  // namespace gbmqo
