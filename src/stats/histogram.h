// Equi-depth histograms over single columns. Part of the statistics a
// commercial optimizer creates alongside distinct counts; used here by the
// data-profiling example and exposed through StatisticsManager.
#ifndef GBMQO_STATS_HISTOGRAM_H_
#define GBMQO_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace gbmqo {

/// One histogram bucket over the column's numeric domain (string columns
/// histogram their dictionary codes — rank structure, not lexicographic).
struct HistogramBucket {
  double lo = 0;          ///< inclusive lower bound
  double hi = 0;          ///< inclusive upper bound
  uint64_t row_count = 0; ///< rows in [lo, hi]
  uint64_t distinct = 0;  ///< distinct values in [lo, hi]
};

/// Equi-depth histogram: buckets hold (approximately) equal row counts.
class Histogram {
 public:
  /// Builds a histogram with at most `max_buckets` buckets over column
  /// `ordinal` of `table`. NULL rows are excluded and reported separately.
  static Result<Histogram> Build(const Table& table, int ordinal,
                                 int max_buckets = 32);

  const std::vector<HistogramBucket>& buckets() const { return buckets_; }
  uint64_t null_count() const { return null_count_; }
  uint64_t total_rows() const { return total_rows_; }

  /// Estimated selectivity of `lo <= x <= hi` (fraction of non-null rows),
  /// using uniform interpolation within buckets.
  double EstimateRangeSelectivity(double lo, double hi) const;

  std::string ToString() const;

 private:
  std::vector<HistogramBucket> buckets_;
  uint64_t null_count_ = 0;
  uint64_t total_rows_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_STATS_HISTOGRAM_H_
