// Distinct-value estimation for column sets — the cardinality oracle behind
// both cost models (Section 3.2 of the paper assumes "known techniques for
// estimating number of distinct values such as [13] (Haas et al.)").
//
// Two modes:
//  * exact      — hash all rows' group keys (what a DBMS does when asked to
//                 CREATE STATISTICS ... WITH FULLSCAN);
//  * sampled    — scan a row sample and scale up with the GEE estimator
//                 (Charikar et al., in the Haas et al. family), the cheap
//                 path a commercial optimizer uses by default.
#ifndef GBMQO_STATS_DISTINCT_ESTIMATOR_H_
#define GBMQO_STATS_DISTINCT_ESTIMATOR_H_

#include <cstdint>

#include "common/column_set.h"
#include "common/status.h"
#include "storage/table.h"

namespace gbmqo {

/// How distinct counts are obtained.
enum class DistinctMode {
  kExact,    ///< full scan, exact
  kSampled,  ///< uniform row sample + GEE scale-up
};

/// Exact number of distinct rows of `table` projected to `columns`
/// (NULL == NULL for grouping, matching the executor's semantics).
uint64_t ExactDistinctCount(const Table& table, ColumnSet columns);

/// GEE estimate of the distinct count from a uniform sample of
/// `sample_size` rows (deterministic given `seed`).
///
///   d_hat = sqrt(N/n) * f1 + (d_sample - f1)
///
/// where f1 is the number of values seen exactly once in the sample. For
/// sample_size >= num_rows this degenerates to the exact count.
uint64_t SampledDistinctCount(const Table& table, ColumnSet columns,
                              uint64_t sample_size, uint64_t seed = 0x5EED);

/// Materializes a uniform row sample of `table` (with replacement,
/// deterministic given `seed`) as a compact table. A commercial optimizer
/// creates many statistics from ONE sample (the amortization Section 3.2.2
/// relies on); StatisticsManager does the same via this function.
Result<TablePtr> BuildRowSample(const Table& table, uint64_t sample_size,
                                uint64_t seed = 0x5EED);

/// GEE estimate over a pre-built sample (see BuildRowSample). `total_rows`
/// is the sampled table's full row count.
uint64_t GeeEstimateFromSample(const Table& sample, ColumnSet columns,
                               uint64_t total_rows);

}  // namespace gbmqo

#endif  // GBMQO_STATS_DISTINCT_ESTIMATOR_H_
