// StatisticsManager: the what-if statistics facility of Section 3.2.2.
//
// The optimizer cost model must price queries over *hypothetical* tables —
// group-by results that have not been materialized. A hypothetical node is
// fully described by (cardinality, row width), both derived from statistics
// over the base relation:
//
//   |GroupBy(R, v)| = distinct count of v over R, and since every node u in
//   a logical plan satisfies u ⊇ v for its descendants v, the distinct count
//   of v over u equals the distinct count of v over R — one set of base-
//   relation statistics prices every edge in the search.
//
// Statistics are created lazily per column set, and the creation time is
// metered: Experiment 6.7 reports statistics-creation overhead as a fraction
// of plan savings.
#ifndef GBMQO_STATS_STATISTICS_MANAGER_H_
#define GBMQO_STATS_STATISTICS_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/column_set.h"
#include "common/timer.h"
#include "stats/distinct_estimator.h"
#include "storage/table.h"

namespace gbmqo {

/// Cached statistics for one column set of the base relation.
struct ColumnSetStats {
  double distinct_count = 0;  ///< estimated |GROUP BY columns| over R
  double row_width = 0;       ///< bytes per row of the grouping columns
};

/// Lazily computes and caches per-column-set statistics over one table.
class StatisticsManager {
 public:
  /// `mode` selects exact or sampled distinct estimation; `sample_size`
  /// applies to sampled mode only.
  explicit StatisticsManager(const Table& table,
                             DistinctMode mode = DistinctMode::kExact,
                             uint64_t sample_size = 100000);

  /// Statistics for `columns`, creating them on first request. Thread-safe:
  /// concurrent serving sessions share one manager. The returned reference
  /// stays valid for the manager's lifetime (unordered_map element
  /// references survive rehashing).
  const ColumnSetStats& Get(ColumnSet columns);

  /// True if statistics on `columns` already exist (no side effects).
  bool Has(ColumnSet columns) const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.count(columns) > 0;
  }

  /// Number of statistics objects created so far.
  uint64_t statistics_created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return statistics_created_;
  }
  /// Total wall-clock seconds spent creating statistics (Experiment 6.7).
  double creation_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return creation_seconds_;
  }

  const Table& table() const { return table_; }

 private:
  mutable std::mutex mu_;  ///< guards cache_, sample_ and the counters
  const Table& table_;
  DistinctMode mode_;
  uint64_t sample_size_;
  std::unordered_map<ColumnSet, ColumnSetStats, ColumnSetHash> cache_;
  /// Sampled mode builds ONE row sample and derives every statistic from it
  /// — the amortization the paper points out ("the optimizer can create
  /// multiple statistics from one sample"). Built lazily; its build time is
  /// included in creation_seconds_.
  TablePtr sample_;
  uint64_t statistics_created_ = 0;
  double creation_seconds_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_STATS_STATISTICS_MANAGER_H_
