#include "stats/distinct_estimator.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "exec/group_hash_table.h"

namespace gbmqo {

namespace {

/// Fills the group key for `row` over `cols` into `key` (width =
/// cols.size() + 1; last word is the null mask). Mirrors the executor's key
/// semantics so counts agree exactly.
void FillKey(const Table& table, const std::vector<int>& cols, size_t row,
             uint64_t* key) {
  uint64_t null_mask = 0;
  for (size_t c = 0; c < cols.size(); ++c) {
    const Column& col = table.column(cols[c]);
    if (col.IsNull(row)) {
      null_mask |= 1ULL << c;
      key[c] = 0;
    } else {
      key[c] = col.CodeAt(row);
    }
  }
  key[cols.size()] = null_mask;
}

}  // namespace

uint64_t ExactDistinctCount(const Table& table, ColumnSet columns) {
  if (columns.empty()) return table.num_rows() > 0 ? 1 : 0;
  const std::vector<int> cols = columns.ToVector();
  const int kw = static_cast<int>(cols.size()) + 1;
  GroupHashTable groups(kw, table.num_rows() / 8 + 16);
  std::vector<uint64_t> key(static_cast<size_t>(kw));
  for (size_t row = 0; row < table.num_rows(); ++row) {
    FillKey(table, cols, row, key.data());
    groups.FindOrInsert(key.data());
  }
  return groups.size();
}

uint64_t GeeEstimateFromSample(const Table& sample, ColumnSet columns,
                               uint64_t total_rows) {
  const uint64_t sample_size = sample.num_rows();
  if (sample_size == 0) return 0;
  if (columns.empty()) return total_rows > 0 ? 1 : 0;
  const std::vector<int> cols = columns.ToVector();
  const int kw = static_cast<int>(cols.size()) + 1;
  GroupHashTable groups(kw, sample_size / 4 + 16);
  std::vector<uint64_t> occurrences;  // per group id, sample frequency
  std::vector<uint64_t> key(static_cast<size_t>(kw));
  for (size_t row = 0; row < sample_size; ++row) {
    FillKey(sample, cols, row, key.data());
    const uint32_t id = groups.FindOrInsert(key.data());
    if (id == occurrences.size()) occurrences.push_back(0);
    occurrences[id] += 1;
  }
  uint64_t f1 = 0, f2 = 0;
  for (uint64_t occ : occurrences) {
    if (occ == 1) ++f1;
    if (occ == 2) ++f2;
  }
  const double d_sample = static_cast<double>(groups.size());
  // GEE (Charikar et al.): sqrt-scale-up of the singletons. Worst-case
  // optimal, but it systematically *underestimates* near-unique columns —
  // which would trick the optimizer into materializing near-|R|
  // intermediates. Chao's estimator (d + f1^2 / 2 f2) is accurate exactly in
  // that low-skew, high-distinct regime, so we take the max of the two
  // (a simple member of the Haas et al. hybrid family the paper cites).
  const double scale = std::sqrt(static_cast<double>(total_rows) /
                                 static_cast<double>(sample_size));
  const double gee =
      scale * static_cast<double>(f1) + (d_sample - static_cast<double>(f1));
  double chao = d_sample;
  if (f2 > 0) {
    chao = d_sample + static_cast<double>(f1) * static_cast<double>(f1) /
                          (2.0 * static_cast<double>(f2));
  } else if (f1 + 0 == groups.size() && f1 > 0) {
    // Every sampled value unique and none repeated: the domain is at least
    // on the order of the relation; scale up linearly.
    chao = static_cast<double>(total_rows);
  }
  double estimate = std::max(gee, chao);
  // Clamp to the feasible range [d_sample, total_rows].
  if (estimate < d_sample) estimate = d_sample;
  if (estimate > static_cast<double>(total_rows)) {
    estimate = static_cast<double>(total_rows);
  }
  return static_cast<uint64_t>(estimate);
}

Result<TablePtr> BuildRowSample(const Table& table, uint64_t sample_size,
                                uint64_t seed) {
  TableBuilder builder(table.schema());
  const uint64_t n_rows = table.num_rows();
  if (n_rows > 0) {
    Rng rng(seed);
    for (uint64_t i = 0; i < sample_size; ++i) {
      const size_t row = rng.Uniform(n_rows);
      for (int c = 0; c < table.schema().num_columns(); ++c) {
        builder.column(c)->AppendFrom(table.column(c), row);
      }
    }
  }
  return builder.Build(table.name() + "_sample");
}

uint64_t SampledDistinctCount(const Table& table, ColumnSet columns,
                              uint64_t sample_size, uint64_t seed) {
  const uint64_t n_rows = table.num_rows();
  if (sample_size >= n_rows || columns.empty()) {
    return ExactDistinctCount(table, columns);
  }
  Result<TablePtr> sample = BuildRowSample(table, sample_size, seed);
  if (!sample.ok()) return ExactDistinctCount(table, columns);
  return GeeEstimateFromSample(**sample, columns, n_rows);
}

}  // namespace gbmqo
