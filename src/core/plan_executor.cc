#include "core/plan_executor.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/storage_scheduler.h"
#include "exec/task_runner.h"

namespace gbmqo {

namespace {

// ---- shared per-Execute environment ---------------------------------------

/// Immutable state shared by every task of one Execute call: the base
/// relation (for name mapping — temp tables keep R's column names) and the
/// execution knobs forwarded to each task's QueryExecutor.
struct ExecEnv {
  Catalog* catalog;
  TablePtr base;
  Schema base_schema;
  ScanMode scan_mode;
  std::optional<AggKernel> forced_kernel;

  /// Resolves base-relation grouping columns to ordinals of `input`.
  Result<ColumnSet> ResolveGrouping(const Table& input,
                                    ColumnSet base_cols) const {
    ColumnSet out;
    for (int c : base_cols.ToVector()) {
      const int ord = input.schema().FindColumn(base_schema.column(c).name);
      if (ord < 0) {
        return Status::Internal("column '" + base_schema.column(c).name +
                                "' missing from " + input.name());
      }
      out = out.With(ord);
    }
    return out;
  }

  /// Translates an AggRequest into an executor AggregateSpec against
  /// `input`. From the base relation the aggregate applies to the raw
  /// column; from an intermediate it re-aggregates the carried column
  /// (COUNT(*) -> SUM(cnt), SUM -> SUM(sum_x), MIN -> MIN(min_x), ...).
  Result<AggregateSpec> ResolveAgg(const Table& input, bool input_is_base,
                                   const AggRequest& agg) const {
    const std::string out_name = AggOutputName(agg, base_schema);
    if (input_is_base) {
      switch (agg.kind) {
        case AggKind::kCountStar:
          return AggregateSpec::CountStar(out_name);
        case AggKind::kSum:
          return AggregateSpec::Sum(agg.column, out_name);
        case AggKind::kMin:
          return AggregateSpec::Min(agg.column, out_name);
        case AggKind::kMax:
          return AggregateSpec::Max(agg.column, out_name);
      }
      return Status::Internal("unknown aggregate kind");
    }
    const int ord = input.schema().FindColumn(out_name);
    if (ord < 0) {
      return Status::Internal("intermediate " + input.name() +
                              " does not carry aggregate column '" + out_name +
                              "'");
    }
    switch (agg.kind) {
      case AggKind::kCountStar:
      case AggKind::kSum:
        return AggregateSpec::Sum(ord, out_name);
      case AggKind::kMin:
        return AggregateSpec::Min(ord, out_name);
      case AggKind::kMax:
        return AggregateSpec::Max(ord, out_name);
    }
    return Status::Internal("unknown aggregate kind");
  }

  /// Builds the executor-level query `SELECT cols, aggs GROUP BY cols`
  /// against `input` (base or intermediate).
  Result<GroupByQuery> BuildQuery(const Table& input, ColumnSet base_cols,
                                  const std::vector<AggRequest>& aggs) const {
    const bool input_is_base = (&input == base.get());
    Result<ColumnSet> grouping = ResolveGrouping(input, base_cols);
    if (!grouping.ok()) return grouping.status();
    GroupByQuery query;
    query.grouping = *grouping;
    for (const AggRequest& agg : aggs) {
      Result<AggregateSpec> spec = ResolveAgg(input, input_is_base, agg);
      if (!spec.ok()) return spec.status();
      query.aggregates.push_back(std::move(spec).ValueOrDie());
    }
    return query;
  }

  std::string TempNameFor(ColumnSet base_cols) const {
    std::string name = "tmp";
    for (int c : base_cols.ToVector()) {
      name += "_" + base_schema.column(c).name;
    }
    return catalog->NextTempName(name);
  }

  static std::string LeafNameFor(ColumnSet cols) {
    return "result" + cols.ToString();
  }
};

// ---- composite subtrees (CUBE / ROLLUP / multi-copy) ----------------------

/// Sequential fallback executor for one composite subtree: CUBE/ROLLUP
/// expansion and multi-copy nodes manage their own materializations, so the
/// DAG runs the whole subtree as one task. Intermediates are
/// reference-counted and dropped as soon as their last consumer has read
/// them (plain nested Group By nodes keep the recursive BF/DF sequencing).
class SubtreeRunner {
 public:
  SubtreeRunner(const ExecEnv& env, ExecContext* ctx, int parallelism)
      : env_(env), ctx_(ctx), exec_(ctx, env.scan_mode, parallelism) {
    exec_.set_forced_kernel(env.forced_kernel);
  }

  Status RunSubPlan(const PlanNode& node, const TablePtr& parent) {
    if (node.kind == NodeKind::kCube) return RunCube(node, parent);
    if (node.kind == NodeKind::kRollup) return RunRollup(node, parent);
    if (!node.agg_copies.empty()) return RunMultiCopy(node, parent);
    Result<TablePtr> table = Materialize(node, *parent);
    if (!table.ok()) return table.status();
    return Descend(node, *table);
  }

  std::map<ColumnSet, TablePtr>& results() { return results_; }

 private:
  Result<TablePtr> RunQuery(const Table& input, ColumnSet base_cols,
                            const std::vector<AggRequest>& aggs,
                            const std::string& output, AggStrategy strategy) {
    Result<GroupByQuery> query = env_.BuildQuery(input, base_cols, aggs);
    if (!query.ok()) return query.status();
    return exec_.ExecuteGroupBy(input, *query, output, strategy);
  }

  /// Registers an intermediate with `refs` pending consumers (Release drops
  /// it after the last one). An intermediate nobody consumes is registered
  /// and dropped right away — it still counts toward the measured peak
  /// while momentarily live, since it really was materialized.
  Status RegisterCounted(const TablePtr& table, int refs) {
    ctx_->counters().bytes_materialized += table->ByteSize();
    if (refs > 0) return env_.catalog->RegisterTempWithRefs(table, refs);
    GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTemp(table));
    return env_.catalog->Drop(table->name());
  }

  Status Release(const TablePtr& table) {
    Result<bool> dropped = env_.catalog->ReleaseTempRef(table->name());
    if (!dropped.ok()) return dropped.status();
    return Status::OK();
  }

  /// Computes one plain plan node from its parent table: registers it as a
  /// temp table if it is materialized, and records it as a result if
  /// required.
  Result<TablePtr> Materialize(const PlanNode& node, const Table& parent) {
    if (node.kind != NodeKind::kGroupBy || !node.agg_copies.empty()) {
      return Status::Internal(
          "Materialize called on CUBE/ROLLUP/multi-copy node");
    }
    const std::string name = node.materialized()
                                 ? env_.TempNameFor(node.columns)
                                 : ExecEnv::LeafNameFor(node.columns);
    Result<TablePtr> table =
        RunQuery(parent, node.columns, node.aggs, name, node.strategy_hint);
    if (!table.ok()) return table.status();
    if (node.materialized()) {
      ctx_->counters().bytes_materialized += (*table)->ByteSize();
      GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTemp(*table));
    }
    if (node.required) results_[node.columns] = *table;
    return table;
  }

  Status DropIfTemp(const PlanNode& node, const TablePtr& table) {
    if (node.materialized()) return env_.catalog->Drop(table->name());
    return Status::OK();
  }

  /// Section 7.2: one temp table per aggregate copy; each copy serves the
  /// children that read it and is dropped the moment the last of them has
  /// been computed (not at node end).
  Status RunMultiCopy(const PlanNode& node, const TablePtr& parent) {
    std::vector<int> copy_of(node.children.size(), -1);
    std::vector<int> serves(node.agg_copies.size(), 0);
    for (size_t i = 0; i < node.children.size(); ++i) {
      const int copy = node.CopyFor(node.children[i].aggs);
      if (copy < 0) {
        return Status::Internal("no copy serves child " +
                                node.children[i].columns.ToString());
      }
      copy_of[i] = copy;
      ++serves[static_cast<size_t>(copy)];
    }
    std::vector<TablePtr> copies;
    for (size_t c = 0; c < node.agg_copies.size(); ++c) {
      Result<TablePtr> t =
          RunQuery(*parent, node.columns, node.agg_copies[c],
                   env_.TempNameFor(node.columns), node.strategy_hint);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(RegisterCounted(*t, serves[c]));
      copies.push_back(*t);
    }
    for (size_t i = 0; i < node.children.size(); ++i) {
      const size_t copy = static_cast<size_t>(copy_of[i]);
      GBMQO_RETURN_NOT_OK(RunSubPlan(node.children[i], copies[copy]));
      GBMQO_RETURN_NOT_OK(Release(copies[copy]));
    }
    return Status::OK();
  }

  /// Processes `node`'s children per its BF/DF mark, then drops `node`'s
  /// temp table (Section 4.4.1 sequencing).
  Status Descend(const PlanNode& node, const TablePtr& table) {
    if (node.children.empty()) return Status::OK();
    if (node.mark == TraversalMark::kDepthFirst) {
      for (const PlanNode& child : node.children) {
        GBMQO_RETURN_NOT_OK(RunSubPlan(child, table));
      }
      return DropIfTemp(node, table);
    }
    // Breadth-first: compute every child, drop this node, then descend.
    std::vector<TablePtr> child_tables;
    for (const PlanNode& child : node.children) {
      if (child.kind != NodeKind::kGroupBy || !child.agg_copies.empty()) {
        // Mixed BF over CUBE/ROLLUP/multi-copy children degenerates to DF
        // for that child (it manages its own materializations).
        child_tables.push_back(nullptr);
        continue;
      }
      Result<TablePtr> t = Materialize(child, *table);
      if (!t.ok()) return t.status();
      child_tables.push_back(*t);
    }
    GBMQO_RETURN_NOT_OK(DropIfTemp(node, table));
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& child = node.children[i];
      if (child_tables[i] == nullptr) {
        GBMQO_RETURN_NOT_OK(RunSubPlan(child, table));
      } else {
        GBMQO_RETURN_NOT_OK(Descend(child, child_tables[i]));
      }
    }
    return Status::OK();
  }

  // ---- CUBE / ROLLUP expansion (Section 7.1) ------------------------------

  Status RunCube(const PlanNode& node, const TablePtr& parent) {
    // Bottom-up over the lattice: subsets in decreasing size; each proper
    // subset computed from (subset + lowest missing column), which was
    // produced earlier. Matches CostCube's spanning tree exactly. Every
    // lattice table is dropped once its last consumer subset has been
    // computed, so the live set tracks the spanning-tree frontier instead
    // of holding the whole lattice to the end.
    const uint64_t full = node.columns.mask();
    std::vector<uint64_t> subsets;
    uint64_t sub = full;
    while (true) {
      subsets.push_back(sub);
      if (sub == 0) break;
      sub = (sub - 1) & full;
    }
    std::sort(subsets.begin(), subsets.end(), [](uint64_t a, uint64_t b) {
      const int pa = std::popcount(a), pb = std::popcount(b);
      if (pa != pb) return pa > pb;
      return a < b;
    });

    std::map<uint64_t, int> consumers;
    for (uint64_t mask : subsets) {
      if (mask == full) continue;
      const ColumnSet s(mask);
      const ColumnSet sp = s.With(node.columns.Minus(s).ToVector().front());
      ++consumers[sp.mask()];
    }

    std::map<uint64_t, TablePtr> produced;
    for (uint64_t mask : subsets) {
      const ColumnSet s(mask);
      TablePtr source;
      if (mask == full) {
        source = parent;
      } else {
        const ColumnSet sp = s.With(node.columns.Minus(s).ToVector().front());
        source = produced.at(sp.mask());
      }
      Result<TablePtr> t = RunQuery(*source, s, node.aggs, env_.TempNameFor(s),
                                    AggStrategy::kAuto);
      if (!t.ok()) return t.status();
      const auto it = consumers.find(mask);
      GBMQO_RETURN_NOT_OK(
          RegisterCounted(*t, it == consumers.end() ? 0 : it->second));
      produced[mask] = *t;
      if (mask != full) GBMQO_RETURN_NOT_OK(Release(source));
    }
    for (const PlanNode& child : node.children) {
      if (child.required) {
        results_[child.columns] = produced.at(child.columns.mask());
      }
    }
    if (node.required) results_[node.columns] = produced.at(full);
    return Status::OK();
  }

  Status RunRollup(const PlanNode& node, const TablePtr& parent) {
    // Prefix chain: full set from the parent, then each level from the
    // previous one; the previous level is dropped as soon as the next has
    // been computed, so at most two adjacent levels are ever live — the
    // peak the scheduler's ExpandedBytes estimate accounts for.
    std::map<uint64_t, TablePtr> produced;
    const int levels = static_cast<int>(node.rollup_order.size());
    ColumnSet level = node.columns;
    Result<TablePtr> top = RunQuery(*parent, level, node.aggs,
                                    env_.TempNameFor(level), AggStrategy::kSort);
    if (!top.ok()) return top.status();
    GBMQO_RETURN_NOT_OK(RegisterCounted(*top, levels > 0 ? 1 : 0));
    produced[level.mask()] = *top;
    TablePtr prev = *top;
    for (int i = levels - 1; i >= 0; --i) {
      level = level.Without(node.rollup_order[static_cast<size_t>(i)]);
      Result<TablePtr> t = RunQuery(*prev, level, node.aggs,
                                    env_.TempNameFor(level), AggStrategy::kAuto);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(RegisterCounted(*t, i > 0 ? 1 : 0));
      produced[level.mask()] = *t;
      GBMQO_RETURN_NOT_OK(Release(prev));
      prev = *t;
    }
    if (node.required) {
      results_[node.columns] = produced.at(node.columns.mask());
    }
    for (const PlanNode& child : node.children) {
      auto it = produced.find(child.columns.mask());
      if (it == produced.end()) {
        return Status::Internal("rollup did not produce required prefix " +
                                child.columns.ToString());
      }
      if (child.required) results_[child.columns] = it->second;
    }
    return Status::OK();
  }

  const ExecEnv& env_;
  ExecContext* ctx_;
  QueryExecutor exec_;
  std::map<ColumnSet, TablePtr> results_;
};

// ---- DAG construction -----------------------------------------------------

/// One schedulable unit of the plan DAG.
struct TaskSpec {
  enum class Kind {
    kQuery,      ///< one plain node computed from its parent table
    kFused,      ///< >= 2 sibling nodes via one shared scan of the parent
    kComposite,  ///< a CUBE/ROLLUP/multi-copy subtree (runs sequentially)
  };
  Kind kind = Kind::kQuery;
  const PlanNode* node = nullptr;       // kQuery / kComposite
  std::vector<const PlanNode*> fused;   // kFused members, in sibling order
  const PlanNode* input = nullptr;      // producing node; nullptr = base R
  /// Whether this task holds a consumer reference on its input table (BF
  /// composite children read the parent after its drop, as the recursion
  /// did, so they hold none).
  bool holds_input_ref = false;
  /// Estimated bytes this task's live output adds (admission reservation).
  double est_bytes = 0;
};

struct TaskGraph {
  std::vector<TaskSpec> tasks;
  std::vector<std::vector<int>> deps;  ///< predecessor ids per task
  /// Consumer-task count per materialized node — the temp-table refcount.
  std::unordered_map<const PlanNode*, int> consumers;
};

/// Flattens a LogicalPlan into a TaskGraph. The emission order is the
/// canonical schedule: it replicates the recursive executor's BF/DF
/// traversal (sub-plans in order, then children per their parent's mark),
/// every dependency points at a lower index, and RunTaskGraph dispatches
/// lowest-index-first — so one worker reproduces the recursive order
/// exactly and the BF/DF marks act as scheduling priorities under
/// parallelism.
class GraphBuilder {
 public:
  GraphBuilder(bool fusion, const Table* base,
               const std::unordered_map<const PlanNode*, double>* node_bytes)
      : fusion_(fusion), base_(base), node_bytes_(node_bytes) {}

  TaskGraph Build(const LogicalPlan& plan) {
    EmitLevel(nullptr, -1, TraversalMark::kDepthFirst, plan.subplans);
    return std::move(graph_);
  }

 private:
  static bool Composite(const PlanNode& n) {
    return n.kind != NodeKind::kGroupBy || !n.agg_copies.empty();
  }

  double EstOf(const PlanNode& n) const {
    if (node_bytes_ == nullptr) return 0;
    const auto it = node_bytes_->find(&n);
    return it == node_bytes_->end() ? 0 : it->second;
  }

  /// A child may join its siblings' shared scan iff it is a plain
  /// single-copy Group By that would hash-aggregate over the parent anyway:
  /// kSort hints (the GROUPING SETS baseline's shared-sort chains) and
  /// kAuto edges served by a covering base index keep their own pass, so
  /// fusion never changes what a query computes or which kernel runs it.
  bool Eligible(const PlanNode& child, bool parent_is_base) const {
    if (Composite(child)) return false;
    if (child.strategy_hint != AggStrategy::kAuto &&
        child.strategy_hint != AggStrategy::kHash) {
      return false;
    }
    if (parent_is_base && child.strategy_hint == AggStrategy::kAuto &&
        base_->FindCoveringIndex(child.columns) != nullptr) {
      return false;
    }
    return true;
  }

  int Emit(TaskSpec spec, int dep) {
    const int id = static_cast<int>(graph_.tasks.size());
    graph_.tasks.push_back(std::move(spec));
    graph_.deps.emplace_back();
    if (dep >= 0) graph_.deps.back().push_back(dep);
    return id;
  }

  /// Emits the tasks computing `children` from their common parent
  /// (`parent == nullptr` means the base relation, whose "children" are the
  /// sub-plan roots; `parent_task` is the task producing the parent table).
  void EmitLevel(const PlanNode* parent, int parent_task, TraversalMark mark,
                 const std::vector<PlanNode>& children) {
    if (children.empty()) return;
    std::vector<const PlanNode*> group;
    if (fusion_) {
      for (const PlanNode& c : children) {
        if (Eligible(c, parent == nullptr)) group.push_back(&c);
      }
      if (group.size() < 2) group.clear();  // one member shares nothing
    }
    int fused_task = -1;
    auto materialization = [&](const PlanNode& c, bool holds_ref) -> int {
      if (std::find(group.begin(), group.end(), &c) != group.end()) {
        if (fused_task < 0) {
          TaskSpec spec;
          spec.kind = TaskSpec::Kind::kFused;
          spec.fused = group;
          spec.input = parent;
          spec.holds_input_ref = holds_ref && parent != nullptr;
          for (const PlanNode* m : group) spec.est_bytes += EstOf(*m);
          fused_task = Emit(std::move(spec), parent_task);
        }
        return fused_task;
      }
      TaskSpec spec;
      spec.kind =
          Composite(c) ? TaskSpec::Kind::kComposite : TaskSpec::Kind::kQuery;
      spec.node = &c;
      spec.input = parent;
      spec.holds_input_ref = holds_ref && parent != nullptr;
      spec.est_bytes = EstOf(c);
      return Emit(std::move(spec), parent_task);
    };

    std::vector<int> mat(children.size(), -1);
    std::set<int> holders;
    if (mark == TraversalMark::kBreadthFirst) {
      // BF: every plain child materializes before anything descends; those
      // tasks are the parent's only consumers, so the parent drops exactly
      // where the recursion dropped it (composite children then read the
      // parent's data through the produced-table map, past the drop).
      for (size_t i = 0; i < children.size(); ++i) {
        if (!Composite(children[i])) {
          mat[i] = materialization(children[i], /*holds_ref=*/true);
          holders.insert(mat[i]);
        }
      }
      for (size_t i = 0; i < children.size(); ++i) {
        const PlanNode& c = children[i];
        if (Composite(c)) {
          mat[i] = materialization(c, /*holds_ref=*/false);
        } else {
          EmitLevel(&c, mat[i], c.mark, c.children);
        }
      }
    } else {
      // DF: one child chain at a time; every child task (composite ones
      // included) holds the parent until it finishes, as the recursion did.
      for (size_t i = 0; i < children.size(); ++i) {
        const PlanNode& c = children[i];
        mat[i] = materialization(c, /*holds_ref=*/true);
        holders.insert(mat[i]);
        if (!Composite(c)) EmitLevel(&c, mat[i], c.mark, c.children);
      }
    }
    if (parent != nullptr) {
      graph_.consumers[parent] = static_cast<int>(holders.size());
    }
  }

  bool fusion_;
  const Table* base_;
  const std::unordered_map<const PlanNode*, double>* node_bytes_;
  TaskGraph graph_;
};

// ---- DAG execution --------------------------------------------------------

/// Per-task mutable state. Counters live per task and are folded in task
/// order afterwards, so totals are bit-identical across worker counts.
struct TaskState {
  ExecContext ctx;
  Status status;
  std::map<ColumnSet, TablePtr> results;
};

class DagRunner {
 public:
  DagRunner(const ExecEnv& env, const TaskGraph& graph,
            const std::unordered_map<const PlanNode*, double>* node_bytes,
            int total_parallelism, double budget, bool gated)
      : env_(env),
        graph_(graph),
        node_bytes_(node_bytes),
        total_parallelism_(total_parallelism),
        budget_(budget),
        gated_(gated),
        states_(graph.tasks.size()) {}

  Status Run(int workers) {
    std::function<bool(int, bool)> admit;
    if (gated_) {
      admit = [this](int id, bool forced) { return Admit(id, forced); };
    }
    RunTaskGraph(static_cast<int>(graph_.tasks.size()), graph_.deps, workers,
                 admit, [this](int id, int active) { RunTask(id, active); });
    for (const TaskState& st : states_) {
      if (!st.status.ok()) {
        Cleanup();
        return st.status;
      }
    }
    return Status::OK();
  }

  /// Canonical fold: results and counters merged in task-index order — the
  /// same order for any worker count — keeping totals (including the
  /// double-valued agg_cpu_units, where addition order matters)
  /// bit-identical no matter which worker ran which task.
  void FoldInto(ExecutionResult* out) {
    for (TaskState& st : states_) {
      for (auto& [cols, table] : st.results) {
        out->results.emplace(cols, std::move(table));
      }
      out->counters += st.ctx.counters();
    }
  }

 private:
  double EstOf(const PlanNode& n) const {
    if (node_bytes_ == nullptr) return 0;
    const auto it = node_bytes_->find(&n);
    return it == node_bytes_->end() ? 0 : it->second;
  }

  /// Admission gate, called under the scheduler lock: refuse a task while
  /// its reservation on top of the estimated live bytes would exceed the
  /// budget; admitting commits the reservation. Forced admissions (nothing
  /// running, everything refused) reserve too, so the books stay balanced.
  bool Admit(int id, bool forced) {
    const double est = graph_.tasks[static_cast<size_t>(id)].est_bytes;
    std::lock_guard<std::mutex> lock(mu_);
    if (!forced && est > 0 && est_live_ + est > budget_) return false;
    est_live_ += est;
    return true;
  }

  void RunTask(int id, int active) {
    const TaskSpec& t = graph_.tasks[static_cast<size_t>(id)];
    TaskState& st = states_[static_cast<size_t>(id)];
    // Reservation bytes handed over to live temp tables (released when the
    // tables drop); the rest returns to the gate when the task ends.
    double retained = 0;
    if (!aborted_.load(std::memory_order_relaxed)) {
      // Intra-query parallelism takes the share of the budget not used by
      // concurrently running tasks; a lone task gets the whole budget.
      const int intra =
          std::max(1, total_parallelism_ / std::max(1, active));
      Status s;
      try {
        switch (t.kind) {
          case TaskSpec::Kind::kQuery:
            s = RunQueryTask(t, &st, intra, &retained);
            break;
          case TaskSpec::Kind::kFused:
            s = RunFusedTask(t, &st, intra, &retained);
            break;
          case TaskSpec::Kind::kComposite:
            s = RunCompositeTask(t, &st, intra);
            break;
        }
      } catch (const std::exception& e) {
        s = Status::Internal(std::string("plan task threw: ") + e.what());
      }
      if (!s.ok()) {
        st.status = s;
        aborted_.store(true, std::memory_order_relaxed);
      }
    }
    if (gated_ && t.est_bytes > retained) {
      std::lock_guard<std::mutex> lock(mu_);
      est_live_ -= t.est_bytes - retained;
    }
  }

  TablePtr InputTable(const TaskSpec& t) {
    if (t.input == nullptr) return env_.base;
    // The producer completed (dependency edge) before this task started,
    // and produced_ entries survive the catalog drop, so BF composite
    // children still see the data.
    std::lock_guard<std::mutex> lock(mu_);
    return produced_.at(t.input).table;
  }

  Status ReleaseInput(const TaskSpec& t) {
    if (!t.holds_input_ref || t.input == nullptr) return Status::OK();
    std::string name;
    double est = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const ProducedTable& p = produced_.at(t.input);
      name = p.table->name();
      est = p.est_bytes;
    }
    Result<bool> dropped = env_.catalog->ReleaseTempRef(name);
    if (!dropped.ok()) return dropped.status();
    if (*dropped && gated_ && est > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      est_live_ -= est;
    }
    return Status::OK();
  }

  /// Registers a materialized node's output, hands the admission
  /// reservation over to the live table, and records it for consumer
  /// tasks. A node with no consumer tasks (every child a BF composite) is
  /// registered and dropped immediately, as the recursion did. Returns the
  /// reservation bytes now owned by the live table.
  Result<double> RegisterOutput(const PlanNode* node, const TablePtr& table,
                                ExecContext* ctx) {
    ctx->counters().bytes_materialized += table->ByteSize();
    const double est = gated_ ? EstOf(*node) : 0;
    const auto it = graph_.consumers.find(node);
    const int refs = it == graph_.consumers.end() ? 0 : it->second;
    {
      std::lock_guard<std::mutex> lock(mu_);
      produced_[node] = ProducedTable{table, est};
    }
    if (refs > 0) {
      GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTempWithRefs(table, refs));
      return est;
    }
    GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTemp(table));
    GBMQO_RETURN_NOT_OK(env_.catalog->Drop(table->name()));
    return 0.0;
  }

  Status RunQueryTask(const TaskSpec& t, TaskState* st, int intra,
                      double* retained) {
    const PlanNode& node = *t.node;
    const TablePtr input = InputTable(t);
    QueryExecutor exec(&st->ctx, env_.scan_mode, intra);
    exec.set_forced_kernel(env_.forced_kernel);
    const std::string name = node.materialized()
                                 ? env_.TempNameFor(node.columns)
                                 : ExecEnv::LeafNameFor(node.columns);
    Result<GroupByQuery> query =
        env_.BuildQuery(*input, node.columns, node.aggs);
    if (!query.ok()) return query.status();
    Result<TablePtr> table =
        exec.ExecuteGroupBy(*input, *query, name, node.strategy_hint);
    if (!table.ok()) return table.status();
    if (node.materialized()) {
      Result<double> kept = RegisterOutput(&node, *table, &st->ctx);
      if (!kept.ok()) return kept.status();
      *retained = *kept;
    }
    if (node.required) st->results[node.columns] = *table;
    return ReleaseInput(t);
  }

  Status RunFusedTask(const TaskSpec& t, TaskState* st, int intra,
                      double* retained) {
    const TablePtr input = InputTable(t);
    QueryExecutor exec(&st->ctx, env_.scan_mode, intra);
    exec.set_forced_kernel(env_.forced_kernel);
    std::vector<GroupByQuery> queries;
    std::vector<std::string> names;
    queries.reserve(t.fused.size());
    names.reserve(t.fused.size());
    for (const PlanNode* m : t.fused) {
      Result<GroupByQuery> q = env_.BuildQuery(*input, m->columns, m->aggs);
      if (!q.ok()) return q.status();
      queries.push_back(std::move(q).ValueOrDie());
      names.push_back(m->materialized() ? env_.TempNameFor(m->columns)
                                        : ExecEnv::LeafNameFor(m->columns));
    }
    Result<std::vector<TablePtr>> tables =
        exec.ExecuteSharedScan(*input, queries, names);
    if (!tables.ok()) return tables.status();
    for (size_t i = 0; i < t.fused.size(); ++i) {
      const PlanNode& m = *t.fused[i];
      const TablePtr& table = (*tables)[i];
      if (m.materialized()) {
        Result<double> kept = RegisterOutput(&m, table, &st->ctx);
        if (!kept.ok()) return kept.status();
        *retained += *kept;
      }
      if (m.required) st->results[m.columns] = table;
    }
    return ReleaseInput(t);
  }

  Status RunCompositeTask(const TaskSpec& t, TaskState* st, int intra) {
    const TablePtr input = InputTable(t);
    SubtreeRunner runner(env_, &st->ctx, intra);
    GBMQO_RETURN_NOT_OK(runner.RunSubPlan(*t.node, input));
    st->results = std::move(runner.results());
    return ReleaseInput(t);
  }

  /// Failure path: drop produced temps whose consumers never ran.
  void Cleanup() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [node, p] : produced_) {
      if (p.table != nullptr && env_.catalog->Exists(p.table->name())) {
        const Status dropped = env_.catalog->Drop(p.table->name());
        (void)dropped;
      }
    }
  }

  struct ProducedTable {
    TablePtr table;
    double est_bytes = 0;
  };

  const ExecEnv& env_;
  const TaskGraph& graph_;
  const std::unordered_map<const PlanNode*, double>* node_bytes_;
  const int total_parallelism_;
  const double budget_;
  const bool gated_;
  std::vector<TaskState> states_;
  std::atomic<bool> aborted_{false};
  std::mutex mu_;  // guards produced_ and est_live_
  std::unordered_map<const PlanNode*, ProducedTable> produced_;
  double est_live_ = 0;
};

}  // namespace

Result<ExecutionResult> PlanExecutor::Execute(
    const LogicalPlan& plan, const std::vector<GroupByRequest>& requests) {
  Result<TablePtr> base = catalog_->Get(base_table_);
  if (!base.ok()) return base.status();
  GBMQO_RETURN_NOT_OK(ValidateRequests(requests, (*base)->schema()));
  GBMQO_RETURN_NOT_OK(plan.Validate(requests));

  catalog_->ResetPeakTempBytes();
  WallTimer timer;

  const bool gated = whatif_ != nullptr &&
                     storage_budget_ < std::numeric_limits<double>::infinity();
  std::unordered_map<const PlanNode*, double> node_bytes;
  if (gated) node_bytes = PlanNodeStorage(plan, whatif_);

  ExecEnv env{catalog_, *base, (*base)->schema(), scan_mode_, forced_kernel_};
  GraphBuilder builder(fusion_enabled_, base->get(),
                       gated ? &node_bytes : nullptr);
  const TaskGraph graph = builder.Build(plan);

  DagRunner runner(env, graph, gated ? &node_bytes : nullptr, parallelism_,
                   storage_budget_, gated);
  const int workers =
      node_parallel_
          ? std::max(1, std::min(parallelism_,
                                 static_cast<int>(graph.tasks.size())))
          : 1;
  GBMQO_RETURN_NOT_OK(runner.Run(workers));

  ExecutionResult out;
  runner.FoldInto(&out);
  out.wall_seconds = timer.ElapsedSeconds();
  out.peak_temp_bytes = catalog_->peak_temp_bytes();
  return out;
}

}  // namespace gbmqo
