#include "core/plan_executor.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "common/timer.h"

namespace gbmqo {

namespace {

/// Per-execution state: the base schema (for name mapping), the executor,
/// and accumulated results.
class Runner {
 public:
  Runner(Catalog* catalog, TablePtr base, ExecContext* ctx, ScanMode scan_mode,
         int exec_parallelism, std::optional<AggKernel> forced_kernel)
      : catalog_(catalog),
        base_(std::move(base)),
        exec_(ctx, scan_mode, exec_parallelism),
        base_schema_(base_->schema()) {
    exec_.set_forced_kernel(forced_kernel);
  }

  /// Entry point for one sub-plan (PlanExecutor runs one Runner per
  /// sub-plan; sub-plans share only the immutable base relation).
  Status RunOne(const PlanNode& sub) { return RunSubPlan(sub, base_); }

  std::map<ColumnSet, TablePtr>& results() { return results_; }

 private:
  // ---- name mapping -------------------------------------------------------

  /// Resolves base-relation grouping columns to ordinals of `input` (temp
  /// tables keep R's column names).
  Result<ColumnSet> ResolveGrouping(const Table& input, ColumnSet base_cols) {
    ColumnSet out;
    for (int c : base_cols.ToVector()) {
      const int ord = input.schema().FindColumn(base_schema_.column(c).name);
      if (ord < 0) {
        return Status::Internal("column '" + base_schema_.column(c).name +
                                "' missing from " + input.name());
      }
      out = out.With(ord);
    }
    return out;
  }

  /// Translates an AggRequest into an executor AggregateSpec against
  /// `input`. From the base relation the aggregate applies to the raw
  /// column; from an intermediate it re-aggregates the carried column
  /// (COUNT(*) -> SUM(cnt), SUM -> SUM(sum_x), MIN -> MIN(min_x), ...).
  Result<AggregateSpec> ResolveAgg(const Table& input, bool input_is_base,
                                   const AggRequest& agg) {
    const std::string out_name = AggOutputName(agg, base_schema_);
    if (input_is_base) {
      switch (agg.kind) {
        case AggKind::kCountStar:
          return AggregateSpec::CountStar(out_name);
        case AggKind::kSum:
          return AggregateSpec::Sum(agg.column, out_name);
        case AggKind::kMin:
          return AggregateSpec::Min(agg.column, out_name);
        case AggKind::kMax:
          return AggregateSpec::Max(agg.column, out_name);
      }
      return Status::Internal("unknown aggregate kind");
    }
    const int ord = input.schema().FindColumn(out_name);
    if (ord < 0) {
      return Status::Internal("intermediate " + input.name() +
                              " does not carry aggregate column '" + out_name +
                              "'");
    }
    switch (agg.kind) {
      case AggKind::kCountStar:
      case AggKind::kSum:
        return AggregateSpec::Sum(ord, out_name);
      case AggKind::kMin:
        return AggregateSpec::Min(ord, out_name);
      case AggKind::kMax:
        return AggregateSpec::Max(ord, out_name);
    }
    return Status::Internal("unknown aggregate kind");
  }

  // ---- query execution ----------------------------------------------------

  std::string TempNameFor(ColumnSet base_cols) {
    std::string name = "tmp";
    for (int c : base_cols.ToVector()) {
      name += "_" + base_schema_.column(c).name;
    }
    return catalog_->NextTempName(name);
  }

  /// Runs `SELECT cols, aggs FROM input GROUP BY cols` and returns the
  /// result table named `output`.
  Result<TablePtr> RunQuery(const Table& input, ColumnSet base_cols,
                            const std::vector<AggRequest>& aggs,
                            const std::string& output, AggStrategy strategy) {
    const bool input_is_base = (&input == base_.get());
    Result<ColumnSet> grouping = ResolveGrouping(input, base_cols);
    if (!grouping.ok()) return grouping.status();
    GroupByQuery query;
    query.grouping = *grouping;
    for (const AggRequest& agg : aggs) {
      Result<AggregateSpec> spec = ResolveAgg(input, input_is_base, agg);
      if (!spec.ok()) return spec.status();
      query.aggregates.push_back(std::move(spec).ValueOrDie());
    }
    return exec_.ExecuteGroupBy(input, query, output, strategy);
  }

  /// Computes one plan node from its parent table: registers it as a temp
  /// table if it is materialized, and records it as a result if required.
  Result<TablePtr> Materialize(const PlanNode& node, const Table& parent) {
    if (node.kind != NodeKind::kGroupBy || !node.agg_copies.empty()) {
      return Status::Internal(
          "Materialize called on CUBE/ROLLUP/multi-copy node");
    }
    const std::string name = node.materialized()
                                 ? TempNameFor(node.columns)
                                 : "result" + node.columns.ToString();
    Result<TablePtr> table =
        RunQuery(parent, node.columns, node.aggs, name, node.strategy_hint);
    if (!table.ok()) return table.status();
    if (node.materialized()) {
      GBMQO_RETURN_NOT_OK(catalog_->RegisterTemp(*table));
    }
    if (node.required) results_[node.columns] = *table;
    return table;
  }

  Status DropIfTemp(const PlanNode& node, const TablePtr& table) {
    if (node.materialized()) return catalog_->Drop(table->name());
    return Status::OK();
  }

  Status RunSubPlan(const PlanNode& node, const TablePtr& parent) {
    if (node.kind == NodeKind::kCube) return RunCube(node, parent);
    if (node.kind == NodeKind::kRollup) return RunRollup(node, parent);
    if (!node.agg_copies.empty()) return RunMultiCopy(node, parent);
    Result<TablePtr> table = Materialize(node, *parent);
    if (!table.ok()) return table.status();
    return Descend(node, *table);
  }

  /// Section 7.2: materializes one temp table per aggregate copy, serves
  /// each child from the copy that carries its aggregates, then drops all
  /// copies.
  Status RunMultiCopy(const PlanNode& node, const TablePtr& parent) {
    std::vector<TablePtr> copies;
    for (const auto& copy_aggs : node.agg_copies) {
      Result<TablePtr> t = RunQuery(*parent, node.columns, copy_aggs,
                                    TempNameFor(node.columns),
                                    node.strategy_hint);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(catalog_->RegisterTemp(*t));
      copies.push_back(*t);
    }
    for (const PlanNode& child : node.children) {
      const int copy = node.CopyFor(child.aggs);
      if (copy < 0) {
        return Status::Internal("no copy serves child " +
                                child.columns.ToString());
      }
      GBMQO_RETURN_NOT_OK(
          RunSubPlan(child, copies[static_cast<size_t>(copy)]));
    }
    for (const TablePtr& t : copies) {
      GBMQO_RETURN_NOT_OK(catalog_->Drop(t->name()));
    }
    return Status::OK();
  }

  /// Processes `node`'s children per its BF/DF mark, then drops `node`'s
  /// temp table (Section 4.4.1 sequencing).
  Status Descend(const PlanNode& node, const TablePtr& table) {
    if (node.children.empty()) return Status::OK();
    if (node.mark == TraversalMark::kDepthFirst) {
      for (const PlanNode& child : node.children) {
        GBMQO_RETURN_NOT_OK(RunSubPlan(child, table));
      }
      return DropIfTemp(node, table);
    }
    // Breadth-first: compute every child, drop this node, then descend.
    std::vector<TablePtr> child_tables;
    for (const PlanNode& child : node.children) {
      if (child.kind != NodeKind::kGroupBy || !child.agg_copies.empty()) {
        // Mixed BF over CUBE/ROLLUP/multi-copy children degenerates to DF
        // for that child (it manages its own materializations).
        child_tables.push_back(nullptr);
        continue;
      }
      Result<TablePtr> t = Materialize(child, *table);
      if (!t.ok()) return t.status();
      child_tables.push_back(*t);
    }
    GBMQO_RETURN_NOT_OK(DropIfTemp(node, table));
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& child = node.children[i];
      if (child_tables[i] == nullptr) {
        GBMQO_RETURN_NOT_OK(RunSubPlan(child, table));
      } else {
        GBMQO_RETURN_NOT_OK(Descend(child, child_tables[i]));
      }
    }
    return Status::OK();
  }

  // ---- CUBE / ROLLUP expansion (Section 7.1) ------------------------------

  Status RunCube(const PlanNode& node, const TablePtr& parent) {
    // Bottom-up over the lattice: subsets in decreasing size; each proper
    // subset computed from (subset + lowest missing column), which was
    // produced earlier. Matches CostCube's spanning tree exactly.
    const uint64_t full = node.columns.mask();
    std::vector<uint64_t> subsets;
    uint64_t sub = full;
    while (true) {
      subsets.push_back(sub);
      if (sub == 0) break;
      sub = (sub - 1) & full;
    }
    std::sort(subsets.begin(), subsets.end(), [](uint64_t a, uint64_t b) {
      const int pa = std::popcount(a), pb = std::popcount(b);
      if (pa != pb) return pa > pb;
      return a < b;
    });

    std::map<uint64_t, TablePtr> produced;
    for (uint64_t mask : subsets) {
      const ColumnSet s(mask);
      TablePtr source;
      if (mask == full) {
        source = parent;
      } else {
        ColumnSet sp = s.With(node.columns.Minus(s).ToVector().front());
        source = produced.at(sp.mask());
      }
      Result<TablePtr> t = RunQuery(*source, s, node.aggs, TempNameFor(s),
                                    AggStrategy::kAuto);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(catalog_->RegisterTemp(*t));
      produced[mask] = *t;
    }
    for (const PlanNode& child : node.children) {
      if (child.required) results_[child.columns] = produced.at(child.columns.mask());
    }
    if (node.required) results_[node.columns] = produced.at(full);
    for (auto& [mask, table] : produced) {
      GBMQO_RETURN_NOT_OK(catalog_->Drop(table->name()));
    }
    return Status::OK();
  }

  Status RunRollup(const PlanNode& node, const TablePtr& parent) {
    // Prefix chain: full set from the parent, then each level from the
    // previous one.
    std::map<uint64_t, TablePtr> produced;
    ColumnSet level = node.columns;
    Result<TablePtr> top = RunQuery(*parent, level, node.aggs,
                                    TempNameFor(level), AggStrategy::kSort);
    if (!top.ok()) return top.status();
    GBMQO_RETURN_NOT_OK(catalog_->RegisterTemp(*top));
    produced[level.mask()] = *top;
    TablePtr prev = *top;
    for (int i = static_cast<int>(node.rollup_order.size()) - 1; i >= 0; --i) {
      level = level.Without(node.rollup_order[static_cast<size_t>(i)]);
      Result<TablePtr> t = RunQuery(*prev, level, node.aggs, TempNameFor(level),
                                    AggStrategy::kAuto);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(catalog_->RegisterTemp(*t));
      produced[level.mask()] = *t;
      prev = *t;
    }
    if (node.required) results_[node.columns] = produced.at(node.columns.mask());
    for (const PlanNode& child : node.children) {
      auto it = produced.find(child.columns.mask());
      if (it == produced.end()) {
        return Status::Internal("rollup did not produce required prefix " +
                                child.columns.ToString());
      }
      if (child.required) results_[child.columns] = it->second;
    }
    for (auto& [mask, table] : produced) {
      GBMQO_RETURN_NOT_OK(catalog_->Drop(table->name()));
    }
    return Status::OK();
  }

  Catalog* catalog_;
  TablePtr base_;
  QueryExecutor exec_;
  Schema base_schema_;
  std::map<ColumnSet, TablePtr> results_;
};

}  // namespace

Result<ExecutionResult> PlanExecutor::Execute(
    const LogicalPlan& plan, const std::vector<GroupByRequest>& requests) {
  Result<TablePtr> base = catalog_->Get(base_table_);
  if (!base.ok()) return base.status();
  GBMQO_RETURN_NOT_OK(ValidateRequests(requests, (*base)->schema()));
  GBMQO_RETURN_NOT_OK(plan.Validate(requests));

  catalog_->ResetPeakTempBytes();
  WallTimer timer;

  ExecutionResult out;
  // Workers pull sub-plans off a shared index (sub-plans share nothing but
  // the base relation; the catalog serializes registration). The thread
  // budget is split between the two levels: W sub-plan workers each run
  // their queries at parallelism_/W intra-query morsel parallelism, so
  // W * intra never exceeds parallelism_; a single-sub-plan plan gives the
  // whole budget to the morsel engine.
  //
  // State is per *sub-plan*, not per worker: each sub-plan's counters are
  // deterministic, and folding them in sub-plan order keeps the totals
  // (including double-valued agg_cpu_units, where addition order matters)
  // bit-identical no matter how many workers run or which worker happened
  // to claim which sub-plan.
  const size_t n = plan.subplans.size();
  const int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(parallelism_ < 1 ? 1 : parallelism_),
      n < 1 ? 1 : n));
  const int intra = std::max(1, parallelism_ / workers);
  std::vector<ExecContext> contexts(n);
  std::vector<std::unique_ptr<Runner>> runners(n);
  std::vector<Status> statuses(n);
  for (size_t i = 0; i < n; ++i) {
    runners[i] = std::make_unique<Runner>(catalog_, *base, &contexts[i],
                                          scan_mode_, intra, forced_kernel_);
  }
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      GBMQO_RETURN_NOT_OK(runners[i]->RunOne(plan.subplans[i]));
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&]() {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= n) break;
          // A throwing sub-plan (e.g. bad_alloc) must not terminate the
          // process from a worker thread; surface it as a Status instead.
          try {
            statuses[i] = runners[i]->RunOne(plan.subplans[i]);
          } catch (const std::exception& e) {
            statuses[i] = Status::Internal(std::string("sub-plan threw: ") +
                                           e.what());
          }
          if (!statuses[i].ok()) break;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& s : statuses) {
      GBMQO_RETURN_NOT_OK(s);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (auto& [cols, table] : runners[i]->results()) {
      out.results.emplace(cols, std::move(table));
    }
    out.counters += contexts[i].counters();
  }
  out.wall_seconds = timer.ElapsedSeconds();
  out.peak_temp_bytes = catalog_->peak_temp_bytes();
  return out;
}

}  // namespace gbmqo
