#include "core/plan_executor.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "core/aggregate_cache.h"
#include "core/storage_scheduler.h"
#include "exec/task_runner.h"
#include "storage/storage_governor.h"

namespace gbmqo {

namespace {

/// Resolves base-relation grouping columns to ordinals of `input` (temp
/// tables keep R's column names, so resolution is by name).
Result<ColumnSet> ResolveGroupingOver(const Table& input,
                                      const Schema& base_schema,
                                      ColumnSet base_cols) {
  ColumnSet out;
  for (int c : base_cols.ToVector()) {
    const int ord = input.schema().FindColumn(base_schema.column(c).name);
    if (ord < 0) {
      return Status::Internal("column '" + base_schema.column(c).name +
                              "' missing from " + input.name());
    }
    out = out.With(ord);
  }
  return out;
}

/// Translates an AggRequest into an executor AggregateSpec against
/// `input`. From the base relation the aggregate applies to the raw
/// column; from an intermediate it re-aggregates the carried column
/// (COUNT(*) -> SUM(cnt), SUM -> SUM(sum_x), MIN -> MIN(min_x), ...).
Result<AggregateSpec> ResolveAggOver(const Table& input, bool input_is_base,
                                     const Schema& base_schema,
                                     const AggRequest& agg) {
  const std::string out_name = AggOutputName(agg, base_schema);
  if (input_is_base) {
    switch (agg.kind) {
      case AggKind::kCountStar:
        return AggregateSpec::CountStar(out_name);
      case AggKind::kSum:
        return AggregateSpec::Sum(agg.column, out_name);
      case AggKind::kMin:
        return AggregateSpec::Min(agg.column, out_name);
      case AggKind::kMax:
        return AggregateSpec::Max(agg.column, out_name);
    }
    return Status::Internal("unknown aggregate kind");
  }
  const int ord = input.schema().FindColumn(out_name);
  if (ord < 0) {
    return Status::Internal("intermediate " + input.name() +
                            " does not carry aggregate column '" + out_name +
                            "'");
  }
  switch (agg.kind) {
    case AggKind::kCountStar:
    case AggKind::kSum:
      return AggregateSpec::Sum(ord, out_name);
    case AggKind::kMin:
      return AggregateSpec::Min(ord, out_name);
    case AggKind::kMax:
      return AggregateSpec::Max(ord, out_name);
  }
  return Status::Internal("unknown aggregate kind");
}

}  // namespace

Result<GroupByQuery> BuildGroupByOver(const Table& input, bool input_is_base,
                                      const Schema& base_schema,
                                      ColumnSet base_cols,
                                      const std::vector<AggRequest>& aggs) {
  Result<ColumnSet> grouping =
      ResolveGroupingOver(input, base_schema, base_cols);
  if (!grouping.ok()) return grouping.status();
  GroupByQuery query;
  query.grouping = *grouping;
  for (const AggRequest& agg : aggs) {
    Result<AggregateSpec> spec =
        ResolveAggOver(input, input_is_base, base_schema, agg);
    if (!spec.ok()) return spec.status();
    query.aggregates.push_back(std::move(spec).ValueOrDie());
  }
  return query;
}

namespace {

// ---- shared per-Execute environment ---------------------------------------

/// Immutable state shared by every task of one Execute call: the base
/// relation (for name mapping — temp tables keep R's column names) and the
/// execution knobs forwarded to each task's QueryExecutor.
struct ExecEnv {
  Catalog* catalog;
  TablePtr base;
  Schema base_schema;
  ScanMode scan_mode;
  std::optional<AggKernel> forced_kernel;
  bool force_scalar = false;
  /// Out-of-core aggregation knobs (governor already defaulted by Execute).
  SpillOptions spill;

  /// Builds the executor-level query `SELECT cols, aggs GROUP BY cols`
  /// against `input` (base or intermediate) — see BuildGroupByOver.
  Result<GroupByQuery> BuildQuery(const Table& input, ColumnSet base_cols,
                                  const std::vector<AggRequest>& aggs) const {
    return BuildGroupByOver(input, /*input_is_base=*/&input == base.get(),
                            base_schema, base_cols, aggs);
  }

  std::string TempNameFor(ColumnSet base_cols) const {
    std::string name = "tmp";
    for (int c : base_cols.ToVector()) {
      name += "_" + base_schema.column(c).name;
    }
    return catalog->NextTempName(name);
  }

  static std::string LeafNameFor(ColumnSet cols) {
    return "result" + cols.ToString();
  }
};

// ---- composite subtrees (CUBE / ROLLUP / multi-copy) ----------------------

/// Sequential fallback executor for one composite subtree: CUBE/ROLLUP
/// expansion and multi-copy nodes manage their own materializations, so the
/// DAG runs the whole subtree as one task. Intermediates are
/// reference-counted and dropped as soon as their last consumer has read
/// them (plain nested Group By nodes keep the recursive BF/DF sequencing).
class SubtreeRunner {
 public:
  SubtreeRunner(const ExecEnv& env, ExecContext* ctx, int parallelism,
                std::optional<AggKernel> forced_kernel,
                const SpillOptions& spill)
      : env_(env), ctx_(ctx), exec_(ctx, env.scan_mode, parallelism) {
    exec_.set_forced_kernel(forced_kernel);
    exec_.set_force_scalar(env.force_scalar);
    exec_.set_spill(spill);
  }

  Status RunSubPlan(const PlanNode& node, const TablePtr& parent) {
    GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
    if (node.kind == NodeKind::kCube) return RunCube(node, parent);
    if (node.kind == NodeKind::kRollup) return RunRollup(node, parent);
    if (!node.agg_copies.empty()) return RunMultiCopy(node, parent);
    Result<TablePtr> table = Materialize(node, *parent);
    if (!table.ok()) return table.status();
    return Descend(node, *table);
  }

  std::map<ColumnSet, TablePtr>& results() { return results_; }

  /// Failure path: drops every temp this subtree registered and has not
  /// yet released, so an error (or exception) mid-subtree cannot strand
  /// intermediates in the Catalog. A completed subtree has already dropped
  /// all of them, making this a no-op on success.
  void DropRemainingTemps() {
    for (const std::string& name : registered_) {
      if (env_.catalog->Exists(name)) {
        const Status dropped = env_.catalog->Drop(name);
        (void)dropped;
      }
    }
  }

  /// RAII cleanup for one subtree run: calls DropRemainingTemps unless
  /// dismissed, covering both Status returns and exceptions thrown from
  /// inside a task (e.g. std::bad_alloc while growing a group table).
  class TempGuard {
   public:
    explicit TempGuard(SubtreeRunner* runner) : runner_(runner) {}
    ~TempGuard() {
      if (runner_ != nullptr) runner_->DropRemainingTemps();
    }
    void Dismiss() { runner_ = nullptr; }

    TempGuard(const TempGuard&) = delete;
    TempGuard& operator=(const TempGuard&) = delete;

   private:
    SubtreeRunner* runner_;
  };

 private:
  /// Fault site: temp-table registration. Keyed by the task's stable fault
  /// salt and the (sequential) registration ordinal, so injected decisions
  /// do not depend on scheduling.
  Status InjectRegisterFault() {
    if (GBMQO_INJECT_FAULT(
            FaultSite::kTempRegister,
            FaultKey(ctx_->fault_salt(), registered_.size()))) {
      return Status::ResourceExhausted(
          "injected temp-table registration failure");
    }
    return Status::OK();
  }
  Result<TablePtr> RunQuery(const Table& input, ColumnSet base_cols,
                            const std::vector<AggRequest>& aggs,
                            const std::string& output, AggStrategy strategy) {
    Result<GroupByQuery> query = env_.BuildQuery(input, base_cols, aggs);
    if (!query.ok()) return query.status();
    return exec_.ExecuteGroupBy(input, *query, output, strategy);
  }

  /// Registers an intermediate with `refs` pending consumers (Release drops
  /// it after the last one). An intermediate nobody consumes is registered
  /// and dropped right away — it still counts toward the measured peak
  /// while momentarily live, since it really was materialized.
  Status RegisterCounted(const TablePtr& table, int refs) {
    GBMQO_RETURN_NOT_OK(InjectRegisterFault());
    ctx_->counters().bytes_materialized += table->ByteSize();
    if (refs > 0) {
      registered_.push_back(table->name());
      return env_.catalog->RegisterTempWithRefs(table, refs);
    }
    GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTemp(table));
    return env_.catalog->Drop(table->name());
  }

  Status Release(const TablePtr& table) {
    Result<bool> dropped = env_.catalog->ReleaseTempRef(table->name());
    if (!dropped.ok()) return dropped.status();
    return Status::OK();
  }

  /// Computes one plain plan node from its parent table: registers it as a
  /// temp table if it is materialized, and records it as a result if
  /// required.
  Result<TablePtr> Materialize(const PlanNode& node, const Table& parent) {
    if (node.kind != NodeKind::kGroupBy || !node.agg_copies.empty()) {
      return Status::Internal(
          "Materialize called on CUBE/ROLLUP/multi-copy node");
    }
    const std::string name = node.materialized()
                                 ? env_.TempNameFor(node.columns)
                                 : ExecEnv::LeafNameFor(node.columns);
    Result<TablePtr> table =
        RunQuery(parent, node.columns, node.aggs, name, node.strategy_hint);
    if (!table.ok()) return table.status();
    if (node.materialized()) {
      GBMQO_RETURN_NOT_OK(InjectRegisterFault());
      ctx_->counters().bytes_materialized += (*table)->ByteSize();
      registered_.push_back((*table)->name());
      GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTemp(*table));
    }
    if (node.required) results_[node.columns] = *table;
    return table;
  }

  Status DropIfTemp(const PlanNode& node, const TablePtr& table) {
    if (node.materialized()) return env_.catalog->Drop(table->name());
    return Status::OK();
  }

  /// Section 7.2: one temp table per aggregate copy; each copy serves the
  /// children that read it and is dropped the moment the last of them has
  /// been computed (not at node end).
  Status RunMultiCopy(const PlanNode& node, const TablePtr& parent) {
    std::vector<int> copy_of(node.children.size(), -1);
    std::vector<int> serves(node.agg_copies.size(), 0);
    for (size_t i = 0; i < node.children.size(); ++i) {
      const int copy = node.CopyFor(node.children[i].aggs);
      if (copy < 0) {
        return Status::Internal("no copy serves child " +
                                node.children[i].columns.ToString());
      }
      copy_of[i] = copy;
      ++serves[static_cast<size_t>(copy)];
    }
    std::vector<TablePtr> copies;
    for (size_t c = 0; c < node.agg_copies.size(); ++c) {
      Result<TablePtr> t =
          RunQuery(*parent, node.columns, node.agg_copies[c],
                   env_.TempNameFor(node.columns), node.strategy_hint);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(RegisterCounted(*t, serves[c]));
      copies.push_back(*t);
    }
    for (size_t i = 0; i < node.children.size(); ++i) {
      const size_t copy = static_cast<size_t>(copy_of[i]);
      GBMQO_RETURN_NOT_OK(RunSubPlan(node.children[i], copies[copy]));
      GBMQO_RETURN_NOT_OK(Release(copies[copy]));
    }
    return Status::OK();
  }

  /// Processes `node`'s children per its BF/DF mark, then drops `node`'s
  /// temp table (Section 4.4.1 sequencing).
  Status Descend(const PlanNode& node, const TablePtr& table) {
    if (node.children.empty()) return Status::OK();
    if (node.mark == TraversalMark::kDepthFirst) {
      for (const PlanNode& child : node.children) {
        GBMQO_RETURN_NOT_OK(RunSubPlan(child, table));
      }
      return DropIfTemp(node, table);
    }
    // Breadth-first: compute every child, drop this node, then descend.
    std::vector<TablePtr> child_tables;
    for (const PlanNode& child : node.children) {
      if (child.kind != NodeKind::kGroupBy || !child.agg_copies.empty()) {
        // Mixed BF over CUBE/ROLLUP/multi-copy children degenerates to DF
        // for that child (it manages its own materializations).
        child_tables.push_back(nullptr);
        continue;
      }
      Result<TablePtr> t = Materialize(child, *table);
      if (!t.ok()) return t.status();
      child_tables.push_back(*t);
    }
    GBMQO_RETURN_NOT_OK(DropIfTemp(node, table));
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& child = node.children[i];
      if (child_tables[i] == nullptr) {
        GBMQO_RETURN_NOT_OK(RunSubPlan(child, table));
      } else {
        GBMQO_RETURN_NOT_OK(Descend(child, child_tables[i]));
      }
    }
    return Status::OK();
  }

  // ---- CUBE / ROLLUP expansion (Section 7.1) ------------------------------

  Status RunCube(const PlanNode& node, const TablePtr& parent) {
    // Bottom-up over the lattice: subsets in decreasing size; each proper
    // subset computed from (subset + lowest missing column), which was
    // produced earlier. Matches CostCube's spanning tree exactly. Every
    // lattice table is dropped once its last consumer subset has been
    // computed, so the live set tracks the spanning-tree frontier instead
    // of holding the whole lattice to the end.
    const uint64_t full = node.columns.mask();
    std::vector<uint64_t> subsets;
    uint64_t sub = full;
    while (true) {
      subsets.push_back(sub);
      if (sub == 0) break;
      sub = (sub - 1) & full;
    }
    std::sort(subsets.begin(), subsets.end(), [](uint64_t a, uint64_t b) {
      const int pa = std::popcount(a), pb = std::popcount(b);
      if (pa != pb) return pa > pb;
      return a < b;
    });

    std::map<uint64_t, int> consumers;
    for (uint64_t mask : subsets) {
      if (mask == full) continue;
      const ColumnSet s(mask);
      const ColumnSet sp = s.With(node.columns.Minus(s).ToVector().front());
      ++consumers[sp.mask()];
    }

    std::map<uint64_t, TablePtr> produced;
    for (uint64_t mask : subsets) {
      const ColumnSet s(mask);
      TablePtr source;
      if (mask == full) {
        source = parent;
      } else {
        const ColumnSet sp = s.With(node.columns.Minus(s).ToVector().front());
        source = produced.at(sp.mask());
      }
      Result<TablePtr> t = RunQuery(*source, s, node.aggs, env_.TempNameFor(s),
                                    AggStrategy::kAuto);
      if (!t.ok()) return t.status();
      const auto it = consumers.find(mask);
      GBMQO_RETURN_NOT_OK(
          RegisterCounted(*t, it == consumers.end() ? 0 : it->second));
      produced[mask] = *t;
      if (mask != full) GBMQO_RETURN_NOT_OK(Release(source));
    }
    for (const PlanNode& child : node.children) {
      if (child.required) {
        results_[child.columns] = produced.at(child.columns.mask());
      }
    }
    if (node.required) results_[node.columns] = produced.at(full);
    return Status::OK();
  }

  Status RunRollup(const PlanNode& node, const TablePtr& parent) {
    // Prefix chain: full set from the parent, then each level from the
    // previous one; the previous level is dropped as soon as the next has
    // been computed, so at most two adjacent levels are ever live — the
    // peak the scheduler's ExpandedBytes estimate accounts for.
    std::map<uint64_t, TablePtr> produced;
    const int levels = static_cast<int>(node.rollup_order.size());
    ColumnSet level = node.columns;
    Result<TablePtr> top = RunQuery(*parent, level, node.aggs,
                                    env_.TempNameFor(level), AggStrategy::kSort);
    if (!top.ok()) return top.status();
    GBMQO_RETURN_NOT_OK(RegisterCounted(*top, levels > 0 ? 1 : 0));
    produced[level.mask()] = *top;
    TablePtr prev = *top;
    for (int i = levels - 1; i >= 0; --i) {
      level = level.Without(node.rollup_order[static_cast<size_t>(i)]);
      Result<TablePtr> t = RunQuery(*prev, level, node.aggs,
                                    env_.TempNameFor(level), AggStrategy::kAuto);
      if (!t.ok()) return t.status();
      GBMQO_RETURN_NOT_OK(RegisterCounted(*t, i > 0 ? 1 : 0));
      produced[level.mask()] = *t;
      GBMQO_RETURN_NOT_OK(Release(prev));
      prev = *t;
    }
    if (node.required) {
      results_[node.columns] = produced.at(node.columns.mask());
    }
    for (const PlanNode& child : node.children) {
      auto it = produced.find(child.columns.mask());
      if (it == produced.end()) {
        return Status::Internal("rollup did not produce required prefix " +
                                child.columns.ToString());
      }
      if (child.required) results_[child.columns] = it->second;
    }
    return Status::OK();
  }

  const ExecEnv& env_;
  ExecContext* ctx_;
  QueryExecutor exec_;
  std::map<ColumnSet, TablePtr> results_;
  /// Names of every temp registered by this subtree, in registration order
  /// (the cleanup set for DropRemainingTemps; most are long dropped by the
  /// refcounted release path before the subtree completes).
  std::vector<std::string> registered_;
};

// ---- DAG construction -----------------------------------------------------

/// One schedulable unit of the plan DAG.
struct TaskSpec {
  enum class Kind {
    kQuery,      ///< one plain node computed from its parent table
    kFused,      ///< >= 2 sibling nodes via one shared scan of the parent
    kComposite,  ///< a CUBE/ROLLUP/multi-copy subtree (runs sequentially)
  };
  Kind kind = Kind::kQuery;
  const PlanNode* node = nullptr;       // kQuery / kComposite
  std::vector<const PlanNode*> fused;   // kFused members, in sibling order
  const PlanNode* input = nullptr;      // producing node; nullptr = base R
  /// Whether this task holds a consumer reference on its input table (BF
  /// composite children read the parent after its drop, as the recursion
  /// did, so they hold none).
  bool holds_input_ref = false;
  /// Estimated bytes this task's live output adds (admission reservation).
  double est_bytes = 0;
};

struct TaskGraph {
  std::vector<TaskSpec> tasks;
  std::vector<std::vector<int>> deps;  ///< predecessor ids per task
  /// Consumer-task count per materialized node — the temp-table refcount.
  std::unordered_map<const PlanNode*, int> consumers;
};

/// Flattens a LogicalPlan into a TaskGraph. The emission order is the
/// canonical schedule: it replicates the recursive executor's BF/DF
/// traversal (sub-plans in order, then children per their parent's mark),
/// every dependency points at a lower index, and RunTaskGraph dispatches
/// lowest-index-first — so one worker reproduces the recursive order
/// exactly and the BF/DF marks act as scheduling priorities under
/// parallelism.
class GraphBuilder {
 public:
  GraphBuilder(bool fusion, const Table* base,
               const std::unordered_map<const PlanNode*, double>* node_bytes)
      : fusion_(fusion), base_(base), node_bytes_(node_bytes) {}

  TaskGraph Build(const LogicalPlan& plan) {
    EmitLevel(nullptr, -1, TraversalMark::kDepthFirst, plan.subplans);
    return std::move(graph_);
  }

 private:
  static bool Composite(const PlanNode& n) {
    return n.kind != NodeKind::kGroupBy || !n.agg_copies.empty();
  }

  double EstOf(const PlanNode& n) const {
    if (node_bytes_ == nullptr) return 0;
    const auto it = node_bytes_->find(&n);
    return it == node_bytes_->end() ? 0 : it->second;
  }

  /// A child may join its siblings' shared scan iff it is a plain
  /// single-copy Group By that would hash-aggregate over the parent anyway:
  /// kSort hints (the GROUPING SETS baseline's shared-sort chains) and
  /// kAuto edges served by a covering base index keep their own pass, so
  /// fusion never changes what a query computes or which kernel runs it.
  bool Eligible(const PlanNode& child, bool parent_is_base) const {
    if (Composite(child)) return false;
    if (child.strategy_hint != AggStrategy::kAuto &&
        child.strategy_hint != AggStrategy::kHash) {
      return false;
    }
    if (parent_is_base && child.strategy_hint == AggStrategy::kAuto &&
        base_->FindCoveringIndex(child.columns) != nullptr) {
      return false;
    }
    return true;
  }

  int Emit(TaskSpec spec, int dep) {
    const int id = static_cast<int>(graph_.tasks.size());
    graph_.tasks.push_back(std::move(spec));
    graph_.deps.emplace_back();
    if (dep >= 0) graph_.deps.back().push_back(dep);
    return id;
  }

  /// Emits the tasks computing `children` from their common parent
  /// (`parent == nullptr` means the base relation, whose "children" are the
  /// sub-plan roots; `parent_task` is the task producing the parent table).
  void EmitLevel(const PlanNode* parent, int parent_task, TraversalMark mark,
                 const std::vector<PlanNode>& children) {
    if (children.empty()) return;
    std::vector<const PlanNode*> group;
    if (fusion_) {
      for (const PlanNode& c : children) {
        if (Eligible(c, parent == nullptr)) group.push_back(&c);
      }
      if (group.size() < 2) group.clear();  // one member shares nothing
    }
    int fused_task = -1;
    auto materialization = [&](const PlanNode& c, bool holds_ref) -> int {
      if (std::find(group.begin(), group.end(), &c) != group.end()) {
        if (fused_task < 0) {
          TaskSpec spec;
          spec.kind = TaskSpec::Kind::kFused;
          spec.fused = group;
          spec.input = parent;
          spec.holds_input_ref = holds_ref && parent != nullptr;
          for (const PlanNode* m : group) spec.est_bytes += EstOf(*m);
          fused_task = Emit(std::move(spec), parent_task);
        }
        return fused_task;
      }
      TaskSpec spec;
      spec.kind =
          Composite(c) ? TaskSpec::Kind::kComposite : TaskSpec::Kind::kQuery;
      spec.node = &c;
      spec.input = parent;
      spec.holds_input_ref = holds_ref && parent != nullptr;
      spec.est_bytes = EstOf(c);
      return Emit(std::move(spec), parent_task);
    };

    std::vector<int> mat(children.size(), -1);
    std::set<int> holders;
    if (mark == TraversalMark::kBreadthFirst) {
      // BF: every plain child materializes before anything descends; those
      // tasks are the parent's only consumers, so the parent drops exactly
      // where the recursion dropped it (composite children then read the
      // parent's data through the produced-table map, past the drop).
      for (size_t i = 0; i < children.size(); ++i) {
        if (!Composite(children[i])) {
          mat[i] = materialization(children[i], /*holds_ref=*/true);
          holders.insert(mat[i]);
        }
      }
      for (size_t i = 0; i < children.size(); ++i) {
        const PlanNode& c = children[i];
        if (Composite(c)) {
          mat[i] = materialization(c, /*holds_ref=*/false);
        } else {
          EmitLevel(&c, mat[i], c.mark, c.children);
        }
      }
    } else {
      // DF: one child chain at a time; every child task (composite ones
      // included) holds the parent until it finishes, as the recursion did.
      for (size_t i = 0; i < children.size(); ++i) {
        const PlanNode& c = children[i];
        mat[i] = materialization(c, /*holds_ref=*/true);
        holders.insert(mat[i]);
        if (!Composite(c)) EmitLevel(&c, mat[i], c.mark, c.children);
      }
    }
    if (parent != nullptr) {
      graph_.consumers[parent] = static_cast<int>(holders.size());
    }
  }

  bool fusion_;
  const Table* base_;
  const std::unordered_map<const PlanNode*, double>* node_bytes_;
  TaskGraph graph_;
};

// ---- DAG execution --------------------------------------------------------

/// Per-task committed state. Counters live per task and are folded in task
/// order afterwards, so totals are bit-identical across worker counts. Only
/// the *successful* attempt's context is committed here; failed attempts are
/// rolled back and discarded wholesale, so recovered runs keep clean
/// counters (plus the explicit tasks_retried / tasks_degraded attribution).
struct TaskState {
  ExecContext ctx;
  Status status;
  std::map<ColumnSet, TablePtr> results;
};

class DagRunner {
 public:
  DagRunner(const ExecEnv& env, const TaskGraph& graph,
            const std::unordered_map<const PlanNode*, double>* node_bytes,
            int total_parallelism, double budget, bool gated, int max_retries,
            double backoff_ms, const CancellationToken* cancel,
            AggregateCache* cache, StorageGovernor* governor)
      : env_(env),
        graph_(graph),
        node_bytes_(node_bytes),
        total_parallelism_(total_parallelism),
        budget_(budget),
        gated_(gated),
        max_retries_(max_retries),
        backoff_ms_(backoff_ms),
        cancel_(cancel),
        cache_(cache),
        governor_(governor),
        states_(graph.tasks.size()) {}

  Status Run(int workers) {
    std::function<bool(int, bool)> admit;
    if (gated_) {
      admit = [this](int id, bool forced) { return Admit(id, forced); };
    }
    try {
      RunTaskGraph(static_cast<int>(graph_.tasks.size()), graph_.deps, workers,
                   admit, [this](int id, int active) { RunTask(id, active); });
    } catch (const std::exception& e) {
      // Defensive: task bodies convert their own exceptions to Statuses, so
      // only scheduler-level failures (e.g. thread creation) land here.
      Cleanup();
      FlushGovernor();
      return Status::Internal(std::string("plan execution threw: ") + e.what());
    }
    for (const TaskState& st : states_) {
      if (!st.status.ok()) {
        Cleanup();
        FlushGovernor();
        return st.status;
      }
    }
    FlushGovernor();
    return Status::OK();
  }

  /// Canonical fold: results and counters merged in task-index order — the
  /// same order for any worker count — keeping totals (including the
  /// double-valued agg_cpu_units, where addition order matters)
  /// bit-identical no matter which worker ran which task.
  void FoldInto(ExecutionResult* out) {
    for (TaskState& st : states_) {
      for (auto& [cols, table] : st.results) {
        out->results.emplace(cols, std::move(table));
      }
      out->counters += st.ctx.counters();
    }
  }

 private:
  double EstOf(const PlanNode& n) const {
    if (node_bytes_ == nullptr) return 0;
    const auto it = node_bytes_->find(&n);
    return it == node_bytes_->end() ? 0 : it->second;
  }

  /// Admission gate, called under the scheduler lock: refuse a task while
  /// its reservation on top of the estimated live bytes would exceed the
  /// per-plan budget — or while the global governor (shared with concurrent
  /// plans and the aggregate cache) refuses the same reservation. Admitting
  /// commits the reservation to both books. Forced admissions (nothing
  /// running, everything refused) reserve too — unconditionally on the
  /// governor, so one starved plan cannot deadlock while the books stay
  /// balanced.
  bool Admit(int id, bool forced) {
    const double est = graph_.tasks[static_cast<size_t>(id)].est_bytes;
    std::lock_guard<std::mutex> lock(mu_);
    if (!forced && est > 0) {
      if (est_live_ + est > budget_) return false;
      if (governor_ != nullptr && !governor_->TryReserve(est)) return false;
    } else if (governor_ != nullptr && est > 0) {
      governor_->ForceReserve(est);
    }
    est_live_ += est;
    gov_outstanding_ += est;
    return true;
  }

  /// Mirrors an est_live_ decrement to the governor. Caller holds mu_.
  void GovReleaseLocked(double bytes) {
    if (governor_ == nullptr || bytes <= 0) return;
    const double r = std::min(bytes, gov_outstanding_);
    if (r > 0) {
      gov_outstanding_ -= r;
      governor_->Release(r);
    }
  }

  /// Returns whatever this Execute still holds on the governor — called on
  /// every Run exit so reservations are strictly per-plan-scoped (cache
  /// pins are charged by the cache itself and survive).
  void FlushGovernor() {
    std::lock_guard<std::mutex> lock(mu_);
    if (governor_ != nullptr && gov_outstanding_ > 0) {
      governor_->Release(gov_outstanding_);
    }
    gov_outstanding_ = 0;
  }

  /// One in-flight attempt at a task: a fresh ExecContext (salted for
  /// deterministic fault keys), the attempt's results, the nodes whose
  /// outputs it registered (the rollback set), and the reservation bytes
  /// handed to live temp tables. A failed attempt is rolled back and the
  /// whole object discarded; only a successful attempt is committed into
  /// the task's TaskState.
  /// A node answered from the aggregate cache during this attempt, with the
  /// consumer references the lookup took on the pinned table (rolled back
  /// if the attempt fails).
  struct ServedNode {
    const PlanNode* node = nullptr;
    TablePtr table;
    int refs = 0;
  };

  struct Attempt {
    ExecContext ctx;
    std::map<ColumnSet, TablePtr> results;
    std::vector<const PlanNode*> registered;
    std::vector<ServedNode> served;
    /// Tables not registered in the Catalog (required leaves, consumer-less
    /// materializations) offered to the cache at commit.
    std::vector<std::pair<const PlanNode*, TablePtr>> offers;
    double retained = 0;
  };

  void RunTask(int id, int active) {
    const TaskSpec& t = graph_.tasks[static_cast<size_t>(id)];
    TaskState& st = states_[static_cast<size_t>(id)];
    // Reservation bytes handed over to live temp tables (released when the
    // tables drop); the rest returns to the gate when the task ends.
    double retained = 0;
    if (!aborted_.load(std::memory_order_relaxed)) {
      // Intra-query parallelism takes the share of the budget not used by
      // concurrently running tasks; a lone task gets the whole budget.
      const int intra =
          std::max(1, total_parallelism_ / std::max(1, active));
      const Status s = RunWithRetries(id, t, &st, intra, &retained);
      if (!s.ok()) {
        st.status = s;
        aborted_.store(true, std::memory_order_relaxed);
      }
    }
    if (gated_ && t.est_bytes > retained) {
      std::lock_guard<std::mutex> lock(mu_);
      est_live_ -= t.est_bytes - retained;
      GovReleaseLocked(t.est_bytes - retained);
    }
  }

  /// The retry loop with the degradation ladder. Attempt 0 runs the planned
  /// shape; each re-attempt (up to max_retries_) first degrades the plan
  /// along GB-MQO equivalences before replaying:
  ///   - a failed fused task re-runs its members as independent per-query
  ///     passes over the same input (no shared scan);
  ///   - a failed task whose input is a temp table recomputes directly from
  ///     the base relation R (every node is derivable from R);
  ///   - a ResourceExhausted failure first retries with out-of-core
  ///     aggregation forced (when spill is configured) — results are
  ///     bit-identical, only RAM drops — and only if that still exhausts
  ///     resources serializes the task's intra-parallelism and forces the
  ///     low-footprint multi-word kernel.
  /// Cancellation / deadline failures are terminal: no retry, immediate
  /// unwind. Fault salts are FaultKey(task id, attempt), so injected
  /// decisions — and therefore tasks_retried / tasks_degraded — are pure
  /// functions of (plan, seed) independent of the worker count.
  Status RunWithRetries(int id, const TaskSpec& t, TaskState* st, int intra,
                        double* retained) {
    bool split_fused = false;
    bool from_base = false;
    bool memory_pressure = false;
    // Admission downgrade: a task whose own reservation exceeds the whole
    // storage budget could never be admitted un-forced; with spill
    // configured it runs out-of-core from the first attempt instead of
    // relying on the forced-admission overshoot.
    bool use_spill =
        gated_ && env_.spill.enabled() && t.est_bytes > budget_;
    Status last;
    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
      if (attempt > 0 && backoff_ms_ > 0) {
        GBMQO_RETURN_NOT_OK(BackoffSleep(attempt));
      }
      Attempt a;
      a.ctx.set_cancellation(cancel_);
      a.ctx.set_fault_salt(FaultKey(static_cast<uint64_t>(id),
                                    static_cast<uint64_t>(attempt)));
      const int eff_intra = memory_pressure ? 1 : intra;
      const std::optional<AggKernel> kernel =
          memory_pressure ? std::optional<AggKernel>(AggKernel::kMultiWord)
                          : env_.forced_kernel;
      const Status s = RunAttempt(t, &a, eff_intra, split_fused, from_base,
                                  kernel, use_spill);
      if (s.ok()) {
        const bool degraded =
            split_fused || from_base || memory_pressure || use_spill;
        a.ctx.counters().tasks_retried += static_cast<uint64_t>(attempt);
        if (degraded) a.ctx.counters().tasks_degraded += 1;
        CommitAttempt(&a);
        st->ctx = std::move(a.ctx);
        st->results = std::move(a.results);
        *retained = a.retained;
        return ReleaseInput(t);
      }
      RollbackAttempt(&a);
      last = s;
      if (s.IsCancelled() || s.IsDeadlineExceeded()) return s;
      if (aborted_.load(std::memory_order_relaxed)) return s;
      // A corrupt spill record (surfaced when SpillOptions::recover_corrupt
      // is off) indicts the disk, not the plan shape: the next attempt gets
      // fresh spill files under a fresh fault salt, so replay the same
      // shape instead of walking a degradation rung.
      const bool corrupt_spill =
          s.IsInternal() &&
          s.message().find("spill: corrupt record") != std::string::npos;
      // Walk one rung down the ladder for the next attempt.
      if (!corrupt_spill) {
        if (t.kind == TaskSpec::Kind::kFused && !split_fused) {
          split_fused = true;
        } else if (t.input != nullptr && !from_base) {
          from_base = true;
        }
      }
      if (s.IsResourceExhausted()) {
        if (env_.spill.enabled() && !use_spill) {
          use_spill = true;
        } else {
          memory_pressure = true;
        }
      }
    }
    return last;
  }

  /// Sleeps attempt * backoff_ms_ before a re-attempt, staying responsive
  /// to cancellation: a full linear-backoff sleep used to run to completion
  /// even after the token fired, making Cancel() latency grow with the
  /// backoff knob. The wait is bounded by the remaining deadline (no point
  /// sleeping past it) and sliced so Cancel() from another thread unwinds
  /// within one slice.
  Status BackoffSleep(int attempt) const {
    GBMQO_RETURN_NOT_OK(cancel_ != nullptr ? cancel_->Check() : Status::OK());
    double wait_ms = attempt * backoff_ms_;
    if (cancel_ != nullptr) {
      if (const auto left = cancel_->RemainingMs(); left.has_value()) {
        wait_ms = std::min(wait_ms, *left);
      }
    }
    constexpr double kSliceMs = 5.0;
    while (wait_ms > 0) {
      const double slice = std::min(wait_ms, kSliceMs);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      wait_ms -= slice;
      if (cancel_ != nullptr) GBMQO_RETURN_NOT_OK(cancel_->Check());
    }
    return Status::OK();
  }

  /// Runs one attempt body, converting every exception to a Status
  /// (std::bad_alloc — real or injected — maps to ResourceExhausted so the
  /// ladder engages its memory-pressure rung).
  Status RunAttempt(const TaskSpec& t, Attempt* a, int intra, bool split_fused,
                    bool from_base, std::optional<AggKernel> kernel,
                    bool use_spill) {
    GBMQO_RETURN_NOT_OK(a->ctx.CheckCancelled());
    if (GBMQO_INJECT_FAULT(FaultSite::kTaskStart, a->ctx.fault_salt())) {
      return Status::Internal("injected task-start failure");
    }
    try {
      switch (t.kind) {
        case TaskSpec::Kind::kQuery:
          return RunQueryTask(t, a, intra, from_base, kernel, use_spill);
        case TaskSpec::Kind::kFused:
          if (split_fused) {
            return RunFusedAsQueries(t, a, intra, from_base, kernel, use_spill);
          }
          return RunFusedTask(t, a, intra, from_base, kernel, use_spill);
        case TaskSpec::Kind::kComposite:
          return RunCompositeTask(t, a, intra, from_base, kernel, use_spill);
      }
    } catch (const std::bad_alloc&) {
      return Status::ResourceExhausted("allocation failure in plan task");
    } catch (const std::exception& e) {
      return Status::Internal(std::string("plan task threw: ") + e.what());
    }
    return Status::Internal("unknown task kind");
  }

  /// The attempt's effective spill configuration: the executor-level knobs
  /// with force OR-ed in when this attempt sits on the spill rung.
  SpillOptions EffectiveSpill(bool use_spill) const {
    SpillOptions s = env_.spill;
    s.force = s.force || use_spill;
    return s;
  }

  /// Commits a successful attempt's cache interactions, before the task is
  /// marked complete (so consumer tasks cannot start earlier): publishes
  /// cache-served materialized nodes into produced_ for their consumers,
  /// then offers everything this attempt materialized for admission.
  /// Admission failure is never a task failure — the offer is simply
  /// declined and life continues.
  void CommitAttempt(Attempt* a) {
    for (const ServedNode& s : a->served) {
      if (s.node->materialized()) {
        std::lock_guard<std::mutex> lock(mu_);
        produced_[s.node] = ProducedTable{s.table, 0, s.refs};
      }
    }
    if (cache_ == nullptr) return;
    for (const PlanNode* node : a->registered) {
      TablePtr table;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = produced_.find(node);
        if (it == produced_.end()) continue;
        table = it->second.table;
      }
      // Consumer-less materializations skipped Catalog registration and sit
      // in a->offers instead; only Catalog-registered tables go here.
      if (table == nullptr || !env_.catalog->Exists(table->name())) continue;
      cache_->AcceptPinned(node->columns, node->aggs, table,
                           /*registered=*/true);
    }
    for (const auto& [node, table] : a->offers) {
      cache_->AcceptPinned(node->columns, node->aggs, table,
                           /*registered=*/false);
    }
  }

  /// Undoes a failed attempt: drops every temp table the attempt registered,
  /// returns the consumer references its cache hits took, and forgets its
  /// produced_ entries, so the next attempt (or the DAG Cleanup) sees a
  /// clean slate. The admission-gate reservation stays with the task —
  /// RunTask returns it when the task finally ends.
  void RollbackAttempt(Attempt* a) {
    for (const PlanNode* node : a->registered) {
      TablePtr table;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = produced_.find(node);
        if (it != produced_.end()) {
          table = it->second.table;
          produced_.erase(it);
        }
      }
      if (table != nullptr && env_.catalog->Exists(table->name())) {
        const Status dropped = env_.catalog->Drop(table->name());
        (void)dropped;
      }
    }
    for (const ServedNode& s : a->served) {
      for (int i = 0; i < s.refs; ++i) {
        const Result<bool> released =
            env_.catalog->ReleaseTempRef(s.table->name());
        if (!released.ok()) break;
      }
    }
    a->registered.clear();
    a->served.clear();
    a->offers.clear();
    a->results.clear();
    a->retained = 0;
  }

  TablePtr InputTable(const TaskSpec& t) {
    if (t.input == nullptr) return env_.base;
    // The producer completed (dependency edge) before this task started,
    // and produced_ entries survive the catalog drop, so BF composite
    // children still see the data.
    std::lock_guard<std::mutex> lock(mu_);
    return produced_.at(t.input).table;
  }

  Status ReleaseInput(const TaskSpec& t) {
    if (!t.holds_input_ref || t.input == nullptr) return Status::OK();
    std::string name;
    double est = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ProducedTable& p = produced_.at(t.input);
      name = p.table->name();
      est = p.est_bytes;
      if (p.outstanding > 0) --p.outstanding;
    }
    Result<bool> dropped = env_.catalog->ReleaseTempRef(name);
    if (!dropped.ok()) return dropped.status();
    if (*dropped && gated_ && est > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      est_live_ -= est;
      GovReleaseLocked(est);
    }
    return Status::OK();
  }

  /// Registers a materialized node's output, hands the admission
  /// reservation over to the live table, and records it for consumer
  /// tasks and for attempt rollback. A node with no consumer tasks (every
  /// child a BF composite) is registered and dropped immediately, as the
  /// recursion did. Fault site: temp-table registration, keyed by the
  /// attempt's salt and the registration ordinal within the attempt.
  Status RegisterOutput(const PlanNode* node, const TablePtr& table,
                        Attempt* a) {
    if (GBMQO_INJECT_FAULT(
            FaultSite::kTempRegister,
            FaultKey(a->ctx.fault_salt(), a->registered.size()))) {
      return Status::ResourceExhausted(
          "injected temp-table registration failure");
    }
    a->ctx.counters().bytes_materialized += table->ByteSize();
    const double est = gated_ ? EstOf(*node) : 0;
    const auto it = graph_.consumers.find(node);
    const int refs = it == graph_.consumers.end() ? 0 : it->second;
    {
      std::lock_guard<std::mutex> lock(mu_);
      produced_[node] = ProducedTable{table, est, refs};
    }
    a->registered.push_back(node);
    if (refs > 0) {
      GBMQO_RETURN_NOT_OK(env_.catalog->RegisterTempWithRefs(table, refs));
      a->retained += est;
      return Status::OK();
    }
    if (cache_ != nullptr) {
      // Consumer-less output (every child a BF composite): instead of the
      // register-and-drop flicker, defer to commit and let the cache decide
      // whether to register-and-pin it.
      a->offers.emplace_back(node, table);
      return Status::OK();
    }
    // Register-and-drop so the momentarily-live bytes count toward the
    // measured peak. Under concurrent serving another plan may hold the
    // same deterministic leaf name; the accounting flicker is then skipped
    // rather than failing the task.
    const Status registered = env_.catalog->RegisterTemp(table);
    if (registered.IsAlreadyExists()) return Status::OK();
    GBMQO_RETURN_NOT_OK(registered);
    return env_.catalog->Drop(table->name());
  }

  /// Attempts to answer a plain node from the aggregate cache. On a hit the
  /// pinned table stands in for the node's output — consumer references are
  /// taken atomically with the lookup and the node is published to
  /// produced_ at commit — and the node's queries never run. Counts a miss
  /// only when a cache is attached.
  bool TryServeFromCache(const PlanNode& node, Attempt* a) {
    if (cache_ == nullptr) return false;
    int refs = 0;
    if (node.materialized()) {
      const auto it = graph_.consumers.find(&node);
      refs = it == graph_.consumers.end() ? 0 : it->second;
    }
    TablePtr table = cache_->Lookup(node.columns, node.aggs, refs);
    if (table == nullptr) {
      a->ctx.counters().cache_misses += 1;
      return false;
    }
    a->ctx.counters().cache_hits += 1;
    a->served.push_back(ServedNode{&node, table, refs});
    if (node.required) a->results[node.columns] = table;
    return true;
  }

  /// Computes one plain node from `input` (the planned parent table, or the
  /// base relation on the from-base rung — BuildQuery re-resolves the
  /// aggregates to their raw forms automatically in that case).
  Status RunNodeQuery(const PlanNode& node, const TablePtr& input, Attempt* a,
                      int intra, std::optional<AggKernel> kernel,
                      bool use_spill) {
    QueryExecutor exec(&a->ctx, env_.scan_mode, intra);
    exec.set_forced_kernel(kernel);
    exec.set_force_scalar(env_.force_scalar);
    exec.set_spill(EffectiveSpill(use_spill));
    const std::string name = node.materialized()
                                 ? env_.TempNameFor(node.columns)
                                 : ExecEnv::LeafNameFor(node.columns);
    Result<GroupByQuery> query =
        env_.BuildQuery(*input, node.columns, node.aggs);
    if (!query.ok()) return query.status();
    Result<TablePtr> table =
        exec.ExecuteGroupBy(*input, *query, name, node.strategy_hint);
    if (!table.ok()) return table.status();
    if (node.materialized()) {
      GBMQO_RETURN_NOT_OK(RegisterOutput(&node, *table, a));
    } else if (node.required && cache_ != nullptr) {
      a->offers.emplace_back(&node, *table);
    }
    if (node.required) a->results[node.columns] = *table;
    return Status::OK();
  }

  Status RunQueryTask(const TaskSpec& t, Attempt* a, int intra, bool from_base,
                      std::optional<AggKernel> kernel, bool use_spill) {
    if (TryServeFromCache(*t.node, a)) return Status::OK();
    const TablePtr input = from_base ? env_.base : InputTable(t);
    return RunNodeQuery(*t.node, input, a, intra, kernel, use_spill);
  }

  Status RunFusedTask(const TaskSpec& t, Attempt* a, int intra, bool from_base,
                      std::optional<AggKernel> kernel, bool use_spill) {
    // Cache-served members leave the shared scan; only the rest pay for a
    // pass over the input (none hit -> the planned scan, all hit -> none).
    std::vector<const PlanNode*> pending;
    pending.reserve(t.fused.size());
    for (const PlanNode* m : t.fused) {
      if (!TryServeFromCache(*m, a)) pending.push_back(m);
    }
    if (pending.empty()) return Status::OK();
    const TablePtr input = from_base ? env_.base : InputTable(t);
    QueryExecutor exec(&a->ctx, env_.scan_mode, intra);
    exec.set_forced_kernel(kernel);
    exec.set_force_scalar(env_.force_scalar);
    // Shared scans cannot spill; with a memory budget set the executor
    // meters them anyway and fails with ResourceExhausted on a trip, which
    // walks this task down the split_fused rung into spillable per-query
    // passes.
    exec.set_spill(EffectiveSpill(use_spill));
    std::vector<GroupByQuery> queries;
    std::vector<std::string> names;
    queries.reserve(pending.size());
    names.reserve(pending.size());
    for (const PlanNode* m : pending) {
      Result<GroupByQuery> q = env_.BuildQuery(*input, m->columns, m->aggs);
      if (!q.ok()) return q.status();
      queries.push_back(std::move(q).ValueOrDie());
      names.push_back(m->materialized() ? env_.TempNameFor(m->columns)
                                        : ExecEnv::LeafNameFor(m->columns));
    }
    Result<std::vector<TablePtr>> tables =
        exec.ExecuteSharedScan(*input, queries, names);
    if (!tables.ok()) return tables.status();
    for (size_t i = 0; i < pending.size(); ++i) {
      const PlanNode& m = *pending[i];
      const TablePtr& table = (*tables)[i];
      if (m.materialized()) {
        GBMQO_RETURN_NOT_OK(RegisterOutput(&m, table, a));
      } else if (m.required && cache_ != nullptr) {
        a->offers.emplace_back(&m, table);
      }
      if (m.required) a->results[m.columns] = table;
    }
    return Status::OK();
  }

  /// Degraded replay of a fused task: each member runs as an independent
  /// per-query pass over the input (one scan per member instead of the
  /// shared scan). Results are identical — fusion never changes what a
  /// query computes — only the scan counters differ.
  Status RunFusedAsQueries(const TaskSpec& t, Attempt* a, int intra,
                           bool from_base, std::optional<AggKernel> kernel,
                           bool use_spill) {
    const TablePtr input = from_base ? env_.base : InputTable(t);
    for (const PlanNode* m : t.fused) {
      GBMQO_RETURN_NOT_OK(a->ctx.CheckCancelled());
      if (TryServeFromCache(*m, a)) continue;
      GBMQO_RETURN_NOT_OK(RunNodeQuery(*m, input, a, intra, kernel, use_spill));
    }
    return Status::OK();
  }

  Status RunCompositeTask(const TaskSpec& t, Attempt* a, int intra,
                          bool from_base, std::optional<AggKernel> kernel,
                          bool use_spill) {
    const TablePtr input = from_base ? env_.base : InputTable(t);
    SubtreeRunner runner(env_, &a->ctx, intra, kernel,
                         EffectiveSpill(use_spill));
    // Drops any temps the subtree leaves behind on error or exception
    // unwind; a completed subtree has released all of them (no-op).
    SubtreeRunner::TempGuard guard(&runner);
    GBMQO_RETURN_NOT_OK(runner.RunSubPlan(*t.node, input));
    a->results = std::move(runner.results());
    return Status::OK();
  }

  /// Failure path: clean up produced temps whose consumers never ran.
  /// Without a cache this drops them outright (the seed behaviour). With a
  /// cache attached it releases exactly this plan's outstanding consumer
  /// references instead — a table the cache admitted keeps its pin and
  /// survives the failed plan; everything else drops on its last release.
  void Cleanup() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [node, p] : produced_) {
      if (p.table == nullptr) continue;
      if (cache_ != nullptr) {
        while (p.outstanding > 0) {
          const Result<bool> released =
              env_.catalog->ReleaseTempRef(p.table->name());
          --p.outstanding;
          if (!released.ok() || *released) break;
        }
        continue;
      }
      if (env_.catalog->Exists(p.table->name())) {
        const Status dropped = env_.catalog->Drop(p.table->name());
        (void)dropped;
      }
    }
  }

  struct ProducedTable {
    TablePtr table;
    double est_bytes = 0;
    /// Consumer references this plan still holds on the table (handed out
    /// at registration or taken by a cache hit; returned by ReleaseInput).
    int outstanding = 0;
  };

  const ExecEnv& env_;
  const TaskGraph& graph_;
  const std::unordered_map<const PlanNode*, double>* node_bytes_;
  const int total_parallelism_;
  const double budget_;
  const bool gated_;
  const int max_retries_;
  const double backoff_ms_;
  const CancellationToken* cancel_;
  AggregateCache* const cache_;
  StorageGovernor* const governor_;
  std::vector<TaskState> states_;
  std::atomic<bool> aborted_{false};
  std::mutex mu_;  // guards produced_, est_live_ and gov_outstanding_
  std::unordered_map<const PlanNode*, ProducedTable> produced_;
  double est_live_ = 0;
  /// Bytes this Execute currently holds reserved on the governor.
  double gov_outstanding_ = 0;
};

}  // namespace

Result<ExecutionResult> PlanExecutor::Execute(
    const LogicalPlan& plan, const std::vector<GroupByRequest>& requests) {
  if (cancel_ != nullptr) GBMQO_RETURN_NOT_OK(cancel_->Check());
  Result<TablePtr> base = catalog_->Get(base_table_);
  if (!base.ok()) return base.status();
  GBMQO_RETURN_NOT_OK(ValidateRequests(requests, (*base)->schema()));
  GBMQO_RETURN_NOT_OK(plan.Validate(requests));

  catalog_->ResetPeakTempBytes();
  WallTimer timer;

  const bool gated =
      whatif_ != nullptr &&
      (storage_budget_ < std::numeric_limits<double>::infinity() ||
       governor_ != nullptr);
  std::unordered_map<const PlanNode*, double> node_bytes;
  if (gated) node_bytes = PlanNodeStorage(plan, whatif_);

  SpillOptions spill = spill_;
  if (spill.governor == nullptr) spill.governor = governor_;
  ExecEnv env{catalog_,    *base,          (*base)->schema(),
              scan_mode_,  forced_kernel_, force_scalar_,
              spill};
  GraphBuilder builder(fusion_enabled_, base->get(),
                       gated ? &node_bytes : nullptr);
  const TaskGraph graph = builder.Build(plan);

  DagRunner runner(env, graph, gated ? &node_bytes : nullptr, parallelism_,
                   storage_budget_, gated, max_task_retries_, retry_backoff_ms_,
                   cancel_, cache_, governor_);
  const int workers =
      node_parallel_
          ? std::max(1, std::min(parallelism_,
                                 static_cast<int>(graph.tasks.size())))
          : 1;
  GBMQO_RETURN_NOT_OK(runner.Run(workers));

  ExecutionResult out;
  runner.FoldInto(&out);
  out.wall_seconds = timer.ElapsedSeconds();
  out.peak_temp_bytes = catalog_->peak_temp_bytes();
  return out;
}

}  // namespace gbmqo
