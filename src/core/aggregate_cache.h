// AggregateCache: a cross-request cache of materialized group-by results,
// the serving layer's answer to the paper's observation that GB-MQO
// intermediates are valuable beyond the plan that created them. When a plan
// materializes a required or intermediate aggregate, the executor offers it
// here; later requests (from any concurrent client) whose grouping set and
// aggregates match — exactly, or by subset re-aggregation at the serving
// layer — are answered from the pinned table with zero base-relation scans.
//
// Keying: (grouping column set, canonical aggregate list, selection
// signature, source-table version). The engine currently has no selection
// predicates, so the selection signature is the empty string — the key slot
// exists so predicated scans can join the scheme without reshaping the
// cache. The version counter invalidates every entry when the base relation
// changes destructively (Invalidate bumps it; old entries are evicted).
// Append-only changes take the cheaper path: core/delta_maintenance.h
// rebuilds each entry's table from (old table + delta) and swaps it in via
// ReplaceEntry, so the key — and every warm hit — survives ingestion.
//
// Pinning: entries hold one cache reference on the Catalog temp table
// (Catalog::AddTempRef / RegisterTempWithRefs), so a cached table survives
// the plan that built it and concurrent readers take additional references
// through Lookup — eviction can never free a table out from under a reader,
// it only drops the cache's own pin. Budgeting: admission is deterministic
// (fits-after-LRU-eviction, never random), the byte budget counts the
// pinned tables' real sizes, and an attached StorageGovernor is charged for
// pinned bytes so cache retention and concurrent plan intermediates share
// one global storage pool.
#ifndef GBMQO_CORE_AGGREGATE_CACHE_H_
#define GBMQO_CORE_AGGREGATE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "core/request.h"
#include "storage/catalog.h"
#include "storage/storage_governor.h"
#include "storage/table.h"

namespace gbmqo {

/// Observability counters (monotonic since construction).
struct AggregateCacheStats {
  uint64_t hits = 0;        ///< Lookup found a usable entry
  uint64_t misses = 0;      ///< Lookup found nothing
  uint64_t admissions = 0;  ///< AcceptPinned pinned a new entry
  uint64_t declined = 0;    ///< AcceptPinned rejected an offer
  uint64_t evictions = 0;   ///< entries unpinned to make room / invalidate
  uint64_t refreshes = 0;   ///< entries replaced in place by ReplaceEntry
  size_t entries = 0;       ///< live entries now
  uint64_t pinned_bytes = 0;  ///< bytes held by live entries now
};

/// A cached aggregate advertised to the optimizer's what-if API: enough to
/// cost "answer request r from this view" as a scan of rows x row_width
/// instead of a base-relation pass (see OptimizerOptions::cached_views).
struct CachedViewDesc {
  ColumnSet columns;
  std::vector<AggRequest> aggs;
  double rows = 0;
  double row_width = 0;
};

/// One live entry as seen by the incremental maintainer
/// (core/delta_maintenance.h): enough to rebuild the entry's table from
/// (old table + delta batch) and swap it back in via ReplaceEntry.
struct RefreshableEntry {
  ColumnSet columns;
  std::vector<AggRequest> aggs;
  TablePtr table;              ///< the currently pinned aggregate table
  uint64_t source_version = 0; ///< base-table version it was built against
  bool needs_recompute = false;  ///< MIN/MAX escape hatch tripped
};

/// Thread-safe LRU cache of pinned aggregate tables. All operations take an
/// internal mutex; reference handover to readers happens under that mutex,
/// so a Lookup-returned table is guaranteed pinned for the caller even if
/// an eviction races with it.
class AggregateCache {
 public:
  /// `budget_bytes` <= 0 disables admission (every offer is declined, every
  /// lookup misses). `governor`, when given, is charged TryReserve/Release
  /// for pinned bytes.
  AggregateCache(Catalog* catalog, double budget_bytes,
                 StorageGovernor* governor = nullptr)
      : catalog_(catalog), budget_bytes_(budget_bytes), governor_(governor) {}
  ~AggregateCache() { Clear(); }

  AggregateCache(const AggregateCache&) = delete;
  AggregateCache& operator=(const AggregateCache&) = delete;

  /// Exact-key lookup. On a hit, bumps the entry's LRU position, takes
  /// `add_refs` additional Catalog references on the table for the caller
  /// (atomically with the lookup, so eviction cannot slip between), and
  /// returns the pinned table. nullptr on miss.
  TablePtr Lookup(ColumnSet columns, const std::vector<AggRequest>& aggs,
                  int add_refs);

  /// Offers a materialized aggregate for admission. `registered` says the
  /// table is already in the Catalog (the cache adds its own reference);
  /// otherwise the cache registers it as a reference-counted temp. Declines
  /// (returning false, taking no reference) offers that duplicate a live
  /// key, exceed the whole budget, or cannot obtain governor headroom even
  /// after evicting the cache's own LRU entries. Admission is a
  /// deterministic function of (cache state, offer) — no sampling.
  bool AcceptPinned(ColumnSet columns, const std::vector<AggRequest>& aggs,
                    const TablePtr& table, bool registered);

  /// Drops every entry (releasing the cache's pins) and bumps the source
  /// version so keys from earlier versions can never hit again. The
  /// non-maintainable path: call when the base relation changes and the
  /// entries cannot be refreshed in place (incremental maintenance off, or
  /// a change that is not an append).
  void Invalidate();

  /// Invalidate, minus the version bump — used by the destructor and tests.
  /// Like every eviction path, this returns all pinned bytes to the
  /// attached StorageGovernor and releases the cache's Catalog pins, so a
  /// dropped cache leaves the governor balance at exactly what it was
  /// before the cache's admissions (see aggregate_cache_test.cc).
  void Clear();

  // ---- Incremental maintenance interface (core/delta_maintenance.h) ----
  //
  // On an append batch the maintainer snapshots the live entries, rebuilds
  // each aggregate table from (old pinned table + delta), and swaps the new
  // table in under the *same* key — the entry is refreshed, not dropped, so
  // warm hits survive ingestion. Callers must serialize these three calls
  // against concurrent Lookup/AcceptPinned at a higher level (the Server's
  // ingest lock) if readers must not observe a half-refreshed generation.

  /// Snapshot of live entries, sorted by cache key so refresh order (and
  /// therefore counters) is deterministic across runs.
  std::vector<RefreshableEntry> SnapshotEntriesForRefresh() const;

  /// Replaces the table pinned under (columns, aggs) with `new_table`,
  /// keeping the entry's key and LRU identity. `registered` as in
  /// AcceptPinned. Byte accounting moves by the size delta: growth must fit
  /// the budget and governor (other LRU entries may be evicted to make
  /// room — never this one); shrinkage returns bytes. On any failure the
  /// stale entry is evicted (stale results must not serve) and false is
  /// returned. Bumps the entry's source_version to `new_version` and clears
  /// its needs_recompute flag on success.
  bool ReplaceEntry(ColumnSet columns, const std::vector<AggRequest>& aggs,
                    const TablePtr& new_table, bool registered,
                    uint64_t new_version);

  /// Drops the single entry under (columns, aggs) — releasing its Catalog
  /// pin and governor bytes — e.g. when maintenance could not produce a
  /// fresh table and the stale one must not keep serving. Returns whether
  /// an entry was dropped.
  bool Evict(ColumnSet columns, const std::vector<AggRequest>& aggs);

  /// Trips the per-entry escape hatch: the next maintenance round must
  /// rebuild this entry from the base relation instead of merging a delta
  /// (MIN/MAX after a retraction, or any condition that breaks
  /// delta-mergeability). No-op if the entry is not live.
  void MarkNeedsRecompute(ColumnSet columns,
                          const std::vector<AggRequest>& aggs);

  /// Source-table version stamped onto entries admitted from now on.
  /// The serving layer advances this after each applied ingest batch.
  void SetSourceVersion(uint64_t version);
  uint64_t source_version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return source_version_;
  }

  /// Snapshot of live entries for the optimizer's what-if costing, sorted
  /// by key so concurrent callers see a deterministic order.
  std::vector<CachedViewDesc> SnapshotViews() const;

  // ---- Durability interface (storage/checkpoint.h, api/server.h) -------

  /// Snapshot of live entries in LRU order, most recently used first — the
  /// order a checkpoint stores so recovery can rebuild the same eviction
  /// priority (re-admitting in reverse restores MRU-at-front exactly).
  std::vector<RefreshableEntry> SnapshotEntriesLru() const;

  /// Recovery-side admission: like AcceptPinned for an unregistered table,
  /// but stamps the entry with the checkpointed `source_version` and
  /// `needs_recompute` instead of the cache's current source version.
  /// Subject to the same deterministic budget/governor discipline.
  bool RestorePinned(ColumnSet columns, const std::vector<AggRequest>& aggs,
                     const TablePtr& table, uint64_t source_version,
                     bool needs_recompute);

  AggregateCacheStats stats() const;
  uint64_t pinned_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pinned_bytes_;
  }
  double budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::string table_name;
    TablePtr table;
    ColumnSet columns;
    std::vector<AggRequest> aggs;
    uint64_t bytes = 0;
    uint64_t source_version = 0;   ///< base version the table reflects
    bool needs_recompute = false;  ///< see MarkNeedsRecompute
    std::list<std::string>::iterator lru_pos;  // into lru_, MRU at front
  };

  std::string KeyFor(ColumnSet columns,
                     const std::vector<AggRequest>& aggs) const;
  /// Unpins the entry under `it` (release catalog ref + governor bytes) and
  /// erases it. Caller holds mu_.
  void EvictLocked(std::unordered_map<std::string, Entry>::iterator it);
  /// Evicts LRU entries until `bytes` more fit under the byte budget and,
  /// when a governor is attached, until the governor grants the
  /// reservation. Returns false (nothing reserved) if even an empty cache
  /// cannot fit the offer. Caller holds mu_.
  bool MakeRoomLocked(uint64_t bytes);

  Catalog* catalog_;
  const double budget_bytes_;
  StorageGovernor* governor_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // keys, most recently used first
  uint64_t pinned_bytes_ = 0;
  uint64_t version_ = 0;
  uint64_t source_version_ = 0;  // stamped onto newly admitted entries
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t admissions_ = 0;
  uint64_t declined_ = 0;
  uint64_t evictions_ = 0;
  uint64_t refreshes_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_AGGREGATE_CACHE_H_
