// EXPLAIN for logical plans: renders a plan as an indented tree annotated
// with per-node estimated cardinality, materialized bytes, edge cost and
// BF/DF scheduling marks — the inspection surface a production optimizer
// exposes.
#ifndef GBMQO_CORE_EXPLAIN_H_
#define GBMQO_CORE_EXPLAIN_H_

#include <string>

#include "core/logical_plan.h"
#include "cost/cost_model.h"
#include "cost/whatif.h"
#include "storage/schema.h"

namespace gbmqo {

/// Renders `plan` with costs under `model` and estimates from `whatif`.
/// Column ordinals are resolved to names via `schema`. Example output:
///
///   R (1000000 rows, 118 B/row)
///   ├─ {l_shipdate,l_commitdate} rows≈152000 cost≈1.2e+08 spool≈4.9MB [DF]
///   │  ├─ {l_shipdate}* rows≈2526 cost≈5.3e+06
///   │  └─ {l_commitdate}* rows≈2466 cost≈5.3e+06
///   └─ {l_comment}* rows≈525000 cost≈1.4e+08
std::string ExplainPlan(const LogicalPlan& plan, const Schema& schema,
                        PlanCostModel* model, WhatIfProvider* whatif);

}  // namespace gbmqo

#endif  // GBMQO_CORE_EXPLAIN_H_
