// SubPlanMerge: the basic search operator of Section 4.1. Merging two
// sub-plans P1 (rooted at v1) and P2 (rooted at v2) introduces the node
// m = v1 ∪ v2 — the minimal-cardinality relation from which both can be
// computed — and yields up to four shapes (Figure 4):
//
//   (a) m adopts both sub-plans' children; v1, v2 vanish   [neither required]
//   (b) m adopts P1 and P2 whole (both stay materialized)  [always]
//   (c) m adopts P1's children and P2 whole; v1 vanishes   [v1 not required]
//   (d) m adopts P1 whole and P2's children; v2 vanishes   [v2 not required]
//
// When v2 ⊆ v1 the shapes degenerate (Section 4.1 end): P2 is attached
// under P1's root, or — if v2 is not required — v2 is elided and its
// children attach directly.
//
// With the Section 7.1 extension enabled, CUBE(m) and ROLLUP(m) roots are
// offered as additional alternatives when both inputs are leaf sub-plans.
#ifndef GBMQO_CORE_SUBPLAN_MERGE_H_
#define GBMQO_CORE_SUBPLAN_MERGE_H_

#include <vector>

#include "core/logical_plan.h"

namespace gbmqo {

/// Candidate-generation options.
struct MergeOptions {
  /// Restrict to shape (b) only — the binary-tree search-space restriction
  /// of Section 4.2 (evaluated in Experiment 6.5).
  bool only_type_b = false;
  /// Offer CUBE(m) roots (Section 7.1). Only generated when both inputs are
  /// leaves and |m| <= max_cube_width.
  bool enable_cube = false;
  /// Offer ROLLUP roots when one input's set contains the other's.
  bool enable_rollup = false;
  int max_cube_width = 6;
  /// Section 7.2: when the two inputs need different aggregate sets, also
  /// offer a shape-(b) variant whose root materializes one narrow copy per
  /// input instead of a single wide union-of-aggregates table.
  bool enable_multi_copy = false;
};

/// Returns the candidate sub-plans from merging `p1` and `p2`. Candidates
/// are self-contained trees to be computed directly from R. Never empty:
/// shape (b) (or its subsumption degeneration) is always present.
std::vector<PlanNode> SubPlanMerge(const PlanNode& p1, const PlanNode& p2,
                                   const MergeOptions& options = {});

/// Set-union of aggregate lists, preserving determinism (sorted).
std::vector<AggRequest> UnionAggs(const std::vector<AggRequest>& a,
                                  const std::vector<AggRequest>& b);

}  // namespace gbmqo

#endif  // GBMQO_CORE_SUBPLAN_MERGE_H_
