// PlanExecutor: the client-side realization of Section 5.2. Walks a
// LogicalPlan and issues one group-by query per edge against the engine:
//
//   SELECT v, COUNT(*) AS cnt INTO T_v FROM T_u GROUP BY v      -- interior
//   SELECT v, COUNT(*) AS cnt FROM T_u GROUP BY v               -- leaf
//
// with COUNT(*) replaced by SUM(cnt) (and SUM/MIN/MAX re-aggregated) when
// T_u is itself an intermediate. Temp tables are registered in the Catalog,
// executed in the BF/DF order chosen by StorageScheduler, and dropped as
// soon as their last child has been computed, so the Catalog's peak temp
// bytes realize the Section 4.4 accounting. CUBE nodes are expanded bottom-
// up over a spanning tree of the lattice; ROLLUP nodes as a prefix chain.
#ifndef GBMQO_CORE_PLAN_EXECUTOR_H_
#define GBMQO_CORE_PLAN_EXECUTOR_H_

#include <map>
#include <string>

#include "core/logical_plan.h"
#include "exec/query_executor.h"
#include "storage/catalog.h"

namespace gbmqo {

/// Outcome of executing a plan.
struct ExecutionResult {
  /// Result table per required column set (grouping columns + aggregates).
  std::map<ColumnSet, TablePtr> results;
  /// Deterministic work performed (the reproducible cost metric).
  WorkCounters counters;
  /// Wall-clock seconds for the whole plan.
  double wall_seconds = 0;
  /// High-water mark of live temp-table bytes during execution.
  uint64_t peak_temp_bytes = 0;
};

class PlanExecutor {
 public:
  /// `base_table` is R's name in `catalog`. The catalog outlives the
  /// executor; temp tables are created and dropped inside Execute.
  /// `scan_mode` selects the row-store scan simulation (default, matching
  /// the paper's substrate) or native columnar scans. `parallelism` is the
  /// total thread budget: it is split between independent sub-plans (which
  /// share nothing but the base relation; the catalog is internally
  /// synchronized) and intra-query morsel parallelism inside each worker's
  /// QueryExecutor — W = min(parallelism, #sub-plans) sub-plan workers each
  /// running at parallelism/W, so the two levels never oversubscribe. A
  /// plan with a single sub-plan gives the whole budget to the morsel
  /// engine. Wall-clock gains require multiple cores; the deterministic
  /// work counters are independent of the thread count either way.
  PlanExecutor(Catalog* catalog, std::string base_table,
               ScanMode scan_mode = ScanMode::kRowStore, int parallelism = 1)
      : catalog_(catalog),
        base_table_(std::move(base_table)),
        scan_mode_(scan_mode),
        parallelism_(parallelism < 1 ? 1 : parallelism) {}

  /// Executes `plan` (validated against `requests` first) and returns one
  /// result table per request.
  Result<ExecutionResult> Execute(const LogicalPlan& plan,
                                  const std::vector<GroupByRequest>& requests);

  /// Test/bench knob forwarded to every QueryExecutor this executor
  /// creates: starts the hash-aggregation kernel ladder at `kernel` (see
  /// QueryExecutor::set_forced_kernel). nullopt = automatic selection.
  void set_forced_kernel(std::optional<AggKernel> kernel) {
    forced_kernel_ = kernel;
  }

 private:
  Catalog* catalog_;
  std::string base_table_;
  ScanMode scan_mode_;
  int parallelism_;
  std::optional<AggKernel> forced_kernel_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_PLAN_EXECUTOR_H_
