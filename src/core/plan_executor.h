// PlanExecutor: the client-side realization of Section 5.2. Flattens a
// LogicalPlan into a dependency DAG of node-level tasks and issues one
// group-by query per edge against the engine:
//
//   SELECT v, COUNT(*) AS cnt INTO T_v FROM T_u GROUP BY v      -- interior
//   SELECT v, COUNT(*) AS cnt FROM T_u GROUP BY v               -- leaf
//
// with COUNT(*) replaced by SUM(cnt) (and SUM/MIN/MAX re-aggregated) when
// T_u is itself an intermediate. Temp-table lifetime is reference-counted:
// T_u is dropped the moment its last consumer task has read it, and the
// task order encodes the BF/DF marks chosen by StorageScheduler, so the
// Catalog's peak temp bytes realize the Section 4.4 accounting. Eligible
// sibling Group By children of one parent can be fused into a single
// shared-scan pass (set_fusion_enabled), and the Section 4.4 d(u) estimates
// can gate task admission against a storage budget (set_storage_budget).
// CUBE nodes are expanded bottom-up over a spanning tree of the lattice;
// ROLLUP nodes as a prefix chain; both drop each level as soon as its last
// consumer has read it.
#ifndef GBMQO_CORE_PLAN_EXECUTOR_H_
#define GBMQO_CORE_PLAN_EXECUTOR_H_

#include <limits>
#include <map>
#include <string>

#include "common/cancellation.h"
#include "core/logical_plan.h"
#include "cost/whatif.h"
#include "exec/query_executor.h"
#include "storage/catalog.h"

namespace gbmqo {

class AggregateCache;
class StorageGovernor;

/// Outcome of executing a plan.
struct ExecutionResult {
  /// Result table per required column set (grouping columns + aggregates).
  std::map<ColumnSet, TablePtr> results;
  /// Deterministic work performed (the reproducible cost metric).
  WorkCounters counters;
  /// Wall-clock seconds for the whole plan.
  double wall_seconds = 0;
  /// High-water mark of live temp-table bytes during execution.
  uint64_t peak_temp_bytes = 0;
  /// Generation of the base relation the result was computed against.
  /// Filled by the serving layer (api/server.h): 0 = the as-loaded table,
  /// k = after the k-th applied append batch. Always 0 from a bare
  /// PlanExecutor, which has no ingestion.
  uint64_t base_version = 0;
};

/// Builds the executor-level query `SELECT base_cols, aggs GROUP BY
/// base_cols` against `input`, which is either the base relation R
/// (`input_is_base`) or a materialized intermediate carrying R's column
/// names plus aggregate columns. Grouping columns are base-schema ordinals;
/// against an intermediate the aggregates re-aggregate the carried columns
/// (COUNT(*) -> SUM(cnt), SUM -> SUM(sum_x), MIN/MAX re-applied). Exported
/// because the serving layer answers subset requests from cached aggregates
/// with exactly this rewrite (see api/server.h).
Result<GroupByQuery> BuildGroupByOver(const Table& input, bool input_is_base,
                                      const Schema& base_schema,
                                      ColumnSet base_cols,
                                      const std::vector<AggRequest>& aggs);

class PlanExecutor {
 public:
  /// `base_table` is R's name in `catalog`. The catalog outlives the
  /// executor; temp tables are created and dropped inside Execute.
  /// `scan_mode` selects the row-store scan simulation (default, matching
  /// the paper's substrate) or native columnar scans. `parallelism` is the
  /// total thread budget, shared between concurrent DAG tasks and
  /// intra-query morsel parallelism: each dispatched task runs its queries
  /// at parallelism / (running tasks), so the two levels never
  /// oversubscribe, and a lone task gets the whole budget. Wall-clock gains
  /// require multiple cores; the deterministic work counters are
  /// independent of the thread count either way.
  PlanExecutor(Catalog* catalog, std::string base_table,
               ScanMode scan_mode = ScanMode::kRowStore, int parallelism = 1)
      : catalog_(catalog),
        base_table_(std::move(base_table)),
        scan_mode_(scan_mode),
        parallelism_(parallelism < 1 ? 1 : parallelism) {}

  /// Executes `plan` (validated against `requests` first) and returns one
  /// result table per request.
  Result<ExecutionResult> Execute(const LogicalPlan& plan,
                                  const std::vector<GroupByRequest>& requests);

  /// Test/bench knob forwarded to every QueryExecutor this executor
  /// creates: starts the hash-aggregation kernel ladder at `kernel` (see
  /// QueryExecutor::set_forced_kernel). nullopt = automatic selection.
  void set_forced_kernel(std::optional<AggKernel> kernel) {
    forced_kernel_ = kernel;
  }

  /// Pins every QueryExecutor this executor creates to the scalar SIMD
  /// tier (QueryExecutor::set_force_scalar). Results and counters are
  /// bit-identical either way; this is a differential-testing and
  /// bench-baseline knob.
  void set_force_scalar(bool force) { force_scalar_ = force; }

  /// Sibling shared-scan fusion: plain Group By children of one parent that
  /// would each hash-aggregate over it (single-copy, kAuto/kHash hint, no
  /// covering base index claiming the edge) are computed by one
  /// ExecuteSharedScan pass instead of one scan per child. Off by default
  /// so per-edge scan counters — and A/B comparisons against the unfused
  /// path — stay available; results are bit-identical either way.
  void set_fusion_enabled(bool on) { fusion_enabled_ = on; }

  /// Node-level parallelism: when on (default), independent DAG tasks run
  /// concurrently on the worker pool, subject to data dependencies and the
  /// storage gate. Off = strict priority order on one worker, with the
  /// whole thread budget given to intra-query morsel parallelism.
  void set_node_parallel(bool on) { node_parallel_ = on; }

  /// Storage-aware admission gate (Section 4.4 at runtime): a task is not
  /// dispatched while the d(u) estimates (from `whatif`) of live temp
  /// tables plus its own reservation would exceed `max_bytes` — unless
  /// nothing is running, which forces progress so an over-budget node
  /// cannot deadlock the plan. Pass infinity / nullptr to disable (the
  /// default).
  void set_storage_budget(double max_bytes, WhatIfProvider* whatif) {
    storage_budget_ = max_bytes;
    whatif_ = whatif;
  }

  /// Resilience: extra attempts allowed per failed task (default 0 = fail
  /// fast, the seed behaviour). Each re-attempt walks the degradation
  /// ladder — a failed fused task re-runs its members as independent
  /// per-query passes, a failed task that read a temp table recomputes
  /// directly from the base relation, and a ResourceExhausted failure
  /// serializes the task's internal parallelism and forces the multi-word
  /// kernel. Recovered runs produce the same result content as the
  /// fault-free run and are surfaced via WorkCounters::tasks_retried /
  /// tasks_degraded.
  void set_max_task_retries(int retries) {
    max_task_retries_ = retries < 0 ? 0 : retries;
  }

  /// Sleep before the k-th re-attempt of a task: k * backoff_ms.
  void set_retry_backoff_ms(double backoff_ms) {
    retry_backoff_ms_ = backoff_ms < 0 ? 0 : backoff_ms;
  }

  /// Cooperative cancellation / deadline: the token is checked at every
  /// task start and at morsel/block boundaries inside the engine; once it
  /// fires, Execute unwinds (no retries), releases all temp tables, and
  /// returns Status::Cancelled or DeadlineExceeded. nullptr disables.
  void set_cancellation(const CancellationToken* token) { cancel_ = token; }

  /// Cross-request aggregate cache (core/aggregate_cache.h). When attached:
  /// before computing a plain or fused node the executor looks its
  /// (grouping set, aggregates) key up and, on a hit, serves the pinned
  /// table instead of scanning — taking the node's consumer references
  /// atomically with the lookup, so downstream tasks release it exactly
  /// like a computed temp while the cache's own pin keeps it alive across
  /// plans. On success, every materialized intermediate and required leaf
  /// this plan computed is offered to the cache for admission. Hits and
  /// misses are surfaced via WorkCounters::cache_hits / cache_misses.
  /// Composite (CUBE/ROLLUP/multi-copy) subtrees manage their own
  /// materializations and bypass the cache. nullptr (default) disables.
  void set_aggregate_cache(AggregateCache* cache) { cache_ = cache; }

  /// Global storage governor shared across concurrent executors (and the
  /// aggregate cache). Each task's Section 4.4 d(u) reservation is also
  /// charged against the governor at admission; forced admissions (the
  /// no-deadlock path) reserve unconditionally. Requires a what-if provider
  /// (set_storage_budget supplies it; a per-plan budget of infinity is fine)
  /// for the d(u) estimates. nullptr (default) disables.
  void set_storage_governor(StorageGovernor* governor) {
    governor_ = governor;
  }

  /// Out-of-core aggregation (see QueryExecutor::SpillOptions), forwarded
  /// to every QueryExecutor this executor creates. Makes the memory budget
  /// a hard cap instead of a refusal, in two places: (1) a hash aggregation
  /// whose realized group-table bytes trip the budget restarts on the
  /// radix-spill path with bit-identical results; (2) a task whose d(u)
  /// reservation alone exceeds the whole admission budget is downgraded to
  /// a forced-spill run instead of being rejected. The resilience ladder
  /// also gains a spill rung: a ResourceExhausted attempt first retries
  /// with spill forced, and only if that still fails serializes and forces
  /// the multi-word kernel. spill.governor defaults to the storage
  /// governor set above.
  void set_spill(const SpillOptions& spill) { spill_ = spill; }

 private:
  Catalog* catalog_;
  std::string base_table_;
  ScanMode scan_mode_;
  int parallelism_;
  std::optional<AggKernel> forced_kernel_;
  bool force_scalar_ = false;
  bool fusion_enabled_ = false;
  bool node_parallel_ = true;
  double storage_budget_ = std::numeric_limits<double>::infinity();
  WhatIfProvider* whatif_ = nullptr;
  int max_task_retries_ = 0;
  double retry_backoff_ms_ = 0;
  const CancellationToken* cancel_ = nullptr;
  AggregateCache* cache_ = nullptr;
  StorageGovernor* governor_ = nullptr;
  SpillOptions spill_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_PLAN_EXECUTOR_H_
