#include "core/subplan_merge.h"

#include <algorithm>
#include <set>

namespace gbmqo {

std::vector<AggRequest> UnionAggs(const std::vector<AggRequest>& a,
                                  const std::vector<AggRequest>& b) {
  std::set<AggRequest> u(a.begin(), a.end());
  u.insert(b.begin(), b.end());
  // Intermediates always carry COUNT(*) so descendants can re-aggregate
  // counts and the executor can SUM(cnt).
  u.insert(AggRequest{});
  return std::vector<AggRequest>(u.begin(), u.end());
}

namespace {

/// Appends copies of `src`'s children to `dst.children`.
void AdoptChildren(const PlanNode& src, PlanNode* dst) {
  for (const PlanNode& child : src.children) dst->children.push_back(child);
}

/// Merge candidates when sub == sup (equal root sets): unify the two roots.
PlanNode MergeEqualRoots(const PlanNode& a, const PlanNode& b) {
  PlanNode out = a;
  AdoptChildren(b, &out);
  out.required = a.required || b.required;
  out.aggs = UnionAggs(a.aggs, b.aggs);
  return out;
}

/// ROLLUP order covering `inner` as a prefix of `outer`: inner's columns
/// (ascending) then the rest of outer (ascending).
std::vector<int> RollupOrderFor(ColumnSet outer, ColumnSet inner) {
  std::vector<int> order = inner.ToVector();
  for (int c : outer.Minus(inner).ToVector()) order.push_back(c);
  return order;
}

}  // namespace

std::vector<PlanNode> SubPlanMerge(const PlanNode& p1, const PlanNode& p2,
                                   const MergeOptions& options) {
  std::vector<PlanNode> out;
  const ColumnSet m = p1.columns.Union(p2.columns);
  const std::vector<AggRequest> maggs = UnionAggs(p1.aggs, p2.aggs);

  if (p1.columns == p2.columns) {
    out.push_back(MergeEqualRoots(p1, p2));
    return out;
  }

  // Subsumption: one root contains the other (common in practice; shapes
  // (b)-(d) degenerate, Section 4.1).
  if (m == p1.columns || m == p2.columns) {
    const PlanNode& sup = (m == p1.columns) ? p1 : p2;
    const PlanNode& sub = (m == p1.columns) ? p2 : p1;
    {
      // Attach the contained sub-plan whole under the container's root.
      PlanNode root = sup;
      root.aggs = maggs;
      root.children.push_back(sub);
      out.push_back(std::move(root));
    }
    if (!options.only_type_b && !sub.required && !sub.children.empty()) {
      // Elide the contained root; its children compute from sup directly
      // (the degenerate analogue of shape (a)).
      PlanNode root = sup;
      root.aggs = maggs;
      AdoptChildren(sub, &root);
      out.push_back(std::move(root));
    }
    if (options.enable_rollup && sup.is_leaf() && sub.is_leaf() &&
        sup.kind == NodeKind::kGroupBy && sub.kind == NodeKind::kGroupBy) {
      // ROLLUP over sup's columns ordered so sub's set is a prefix: one
      // chain query produces both (Section 7.1).
      PlanNode root;
      root.columns = sup.columns;
      root.kind = NodeKind::kRollup;
      root.rollup_order = RollupOrderFor(sup.columns, sub.columns);
      root.aggs = maggs;
      if (sup.required) {
        PlanNode leaf = sup;
        root.children.push_back(std::move(leaf));
      }
      if (sub.required) {
        PlanNode leaf = sub;
        root.children.push_back(std::move(leaf));
      }
      out.push_back(std::move(root));
    }
    return out;
  }

  // General case: new root m = v1 ∪ v2.
  auto make_root = [&]() {
    PlanNode root;
    root.columns = m;
    root.kind = NodeKind::kGroupBy;
    root.required = false;
    root.aggs = maggs;
    return root;
  };

  {
    // Shape (b): keep both sub-plans whole.
    PlanNode b = make_root();
    b.children.push_back(p1);
    b.children.push_back(p2);
    out.push_back(std::move(b));
  }
  if (options.enable_multi_copy &&
      std::set<AggRequest>(p1.aggs.begin(), p1.aggs.end()) !=
          std::set<AggRequest>(p2.aggs.begin(), p2.aggs.end())) {
    // Section 7.2: shape (b) with one narrow copy per input instead of a
    // single union-of-aggregates table. Each copy always carries COUNT(*)
    // so counts can re-aggregate.
    PlanNode mc = make_root();
    mc.agg_copies = {UnionAggs(p1.aggs, {}), UnionAggs(p2.aggs, {})};
    mc.aggs = UnionAggs(mc.agg_copies[0], mc.agg_copies[1]);
    mc.children.push_back(p1);
    mc.children.push_back(p2);
    out.push_back(std::move(mc));
  }
  if (!options.only_type_b) {
    if (!p1.required && !p2.required &&
        (!p1.children.empty() || !p2.children.empty())) {
      // Shape (a): both roots vanish.
      PlanNode a = make_root();
      AdoptChildren(p1, &a);
      AdoptChildren(p2, &a);
      out.push_back(std::move(a));
    }
    if (!p1.required && !p1.children.empty()) {
      // Shape (c): v1 vanishes, P2 kept whole.
      PlanNode c = make_root();
      AdoptChildren(p1, &c);
      c.children.push_back(p2);
      out.push_back(std::move(c));
    }
    if (!p2.required && !p2.children.empty()) {
      // Shape (d): v2 vanishes, P1 kept whole.
      PlanNode d = make_root();
      d.children.push_back(p1);
      AdoptChildren(p2, &d);
      out.push_back(std::move(d));
    }
  }
  if (options.enable_cube && p1.is_leaf() && p2.is_leaf() &&
      p1.kind == NodeKind::kGroupBy && p2.kind == NodeKind::kGroupBy &&
      m.size() <= options.max_cube_width) {
    // CUBE(m) serves both leaves from its lattice (Section 7.1).
    PlanNode cube = make_root();
    cube.kind = NodeKind::kCube;
    if (p1.required) cube.children.push_back(p1);
    if (p2.required) cube.children.push_back(p2);
    out.push_back(std::move(cube));
  }
  return out;
}

}  // namespace gbmqo
