#include "core/delta_maintenance.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/plan_executor.h"
#include "core/request.h"

namespace gbmqo {

namespace {

// Canonical aggregate signature: sorted, deduplicated — two entries with the
// same signature carry the same aggregate output columns, which is what
// makes a finer delta aggregate reusable for a coarser grouping set.
std::string SigFor(const std::vector<AggRequest>& aggs) {
  std::vector<AggRequest> sorted = aggs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string sig;
  for (const AggRequest& a : sorted) {
    sig += std::to_string(static_cast<int>(a.kind));
    sig += ":";
    sig += std::to_string(a.column);
    sig += "|";
  }
  return sig;
}

// Concatenates two parts of the same logical aggregate (the old pinned
// table and the delta's per-group partials) into one unregistered table
// with `part`'s schema. Columns are matched by name so an old table that
// carries extra aggregate columns, or the same columns in another order,
// still lines up.
Result<TablePtr> ConcatParts(const Table& old_part, const Table& delta_part,
                             const std::string& name) {
  TableBuilder builder(delta_part.schema());
  for (int c = 0; c < delta_part.schema().num_columns(); ++c) {
    const ColumnDef& def = delta_part.schema().column(c);
    const int old_ord = old_part.schema().FindColumn(def.name);
    if (old_ord < 0) {
      return Status::Internal("cached aggregate " + old_part.name() +
                              " does not carry column '" + def.name + "'");
    }
    if (old_part.schema().column(old_ord).type != def.type) {
      return Status::Internal("cached aggregate " + old_part.name() +
                              " column '" + def.name + "' changed type");
    }
    Column* out = builder.column(c);
    out->Reserve(old_part.num_rows() + delta_part.num_rows());
    out->AppendRangeFrom(old_part.column(old_ord), 0, old_part.num_rows());
    out->AppendRangeFrom(delta_part.column(c), 0, delta_part.num_rows());
  }
  return builder.Build(name);
}

}  // namespace

Result<DeltaMaintenanceReport> DeltaMaintainer::ApplyDelta(
    const TablePtr& delta, const TablePtr& new_base, const Schema& base_schema,
    uint64_t new_version) {
  DeltaMaintenanceReport report;
  report.delta_rows = delta->num_rows();

  std::vector<RefreshableEntry> entries = cache_->SnapshotEntriesForRefresh();
  // Finest-first (|columns| descending; the snapshot's key order breaks
  // ties), so every coarser entry sees the finer delta aggregates already
  // memoized — the Section 4.4 lattice walked over deltas.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const RefreshableEntry& a, const RefreshableEntry& b) {
                     return a.columns.size() > b.columns.size();
                   });

  ExecContext ctx;
  QueryExecutor exec(&ctx, options_.scan_mode, options_.parallelism);
  exec.set_forced_kernel(options_.forced_kernel);

  // Memoized delta aggregates of this batch: (signature, grouping mask) ->
  // per-group partials. std::map for deterministic superset selection.
  std::map<std::pair<std::string, uint64_t>, TablePtr> delta_aggs;

  for (const RefreshableEntry& e : entries) {
    Result<TablePtr> fresh = [&]() -> Result<TablePtr> {
      if (e.needs_recompute) {
        // Escape hatch: rebuild from the new base relation.
        Result<GroupByQuery> q = BuildGroupByOver(
            *new_base, /*input_is_base=*/true, base_schema, e.columns, e.aggs);
        if (!q.ok()) return q.status();
        return exec.ExecuteGroupBy(*new_base, *q,
                                   catalog_->NextTempName("maint"));
      }
      const std::string sig = SigFor(e.aggs);

      // Delta aggregate for this grouping set: reuse the finest memoized
      // superset with the same signature, else aggregate the delta batch.
      TablePtr delta_agg;
      if (options_.rollup_from_finer) {
        const TablePtr* best = nullptr;
        int best_size = ColumnSet::kMaxColumns + 1;
        for (const auto& [key, table] : delta_aggs) {
          if (key.first != sig) continue;
          const ColumnSet have(key.second);
          if (!have.ContainsAll(e.columns)) continue;
          if (have.size() < best_size) {
            best = &table;
            best_size = have.size();
          }
        }
        if (best != nullptr) {
          Result<GroupByQuery> q =
              BuildGroupByOver(**best, /*input_is_base=*/false, base_schema,
                               e.columns, e.aggs);
          if (!q.ok()) return q.status();
          Result<TablePtr> rolled = exec.ExecuteGroupBy(
              **best, *q, catalog_->NextTempName("delta"));
          if (!rolled.ok()) return rolled.status();
          delta_agg = *rolled;
          ++report.rollup_reuses;
        }
      }
      if (delta_agg == nullptr) {
        Result<GroupByQuery> q = BuildGroupByOver(
            *delta, /*input_is_base=*/true, base_schema, e.columns, e.aggs);
        if (!q.ok()) return q.status();
        Result<TablePtr> agg =
            exec.ExecuteGroupBy(*delta, *q, catalog_->NextTempName("delta"));
        if (!agg.ok()) return agg.status();
        delta_agg = *agg;
      }
      delta_aggs[{sig, e.columns.mask()}] = delta_agg;

      // Old per-group values and the delta's partials, folded by the same
      // re-aggregation rewrite intermediates use: COUNT(*) -> SUM(cnt),
      // SUM -> SUM(sum_x), MIN/MAX re-applied.
      Result<TablePtr> merged = ConcatParts(
          *e.table, *delta_agg, catalog_->NextTempName("maint_in"));
      if (!merged.ok()) return merged.status();
      Result<GroupByQuery> fold =
          BuildGroupByOver(**merged, /*input_is_base=*/false, base_schema,
                           e.columns, e.aggs);
      if (!fold.ok()) return fold.status();
      return exec.ExecuteGroupBy(**merged, *fold,
                                 catalog_->NextTempName("maint"));
    }();

    if (!fresh.ok()) {
      // A stale entry must never serve at the new version: drop it and let
      // the next request rebuild it through the normal admission path.
      cache_->Evict(e.columns, e.aggs);
      ++report.entries_dropped;
      continue;
    }
    if (cache_->ReplaceEntry(e.columns, e.aggs, *fresh, /*registered=*/false,
                             new_version)) {
      if (e.needs_recompute) {
        ++report.entries_recomputed;
      } else {
        ++report.entries_refreshed;
      }
    } else {
      ++report.entries_dropped;  // ReplaceEntry evicted it (no room / race)
    }
  }

  cache_->SetSourceVersion(new_version);
  report.counters = ctx.counters();
  return report;
}

}  // namespace gbmqo
