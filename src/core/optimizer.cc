#include "core/optimizer.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/timer.h"
#include "core/storage_scheduler.h"

namespace gbmqo {

LogicalPlan NaivePlan(const std::vector<GroupByRequest>& requests) {
  LogicalPlan plan;
  for (const GroupByRequest& req : requests) {
    PlanNode leaf;
    leaf.columns = req.columns;
    leaf.required = true;
    leaf.aggs = req.aggs;
    plan.subplans.push_back(std::move(leaf));
  }
  return plan;
}

namespace {

/// An antichain of minimal column sets under ⊆. Supports "does any member
/// U satisfy U ⊆ probe?" in O(|antichain|) word ops. Used both for the
/// subsumption prune (minimal pair unions) and the monotonicity prune
/// (minimal failed unions).
class MinimalSetFamily {
 public:
  void Clear() { members_.clear(); }

  /// True iff some member is a subset of `probe` (inclusive).
  bool ContainsSubsetOf(ColumnSet probe) const {
    for (ColumnSet m : members_) {
      if (probe.ContainsAll(m)) return true;
    }
    return false;
  }

  /// True iff some member is a *strict* subset of `probe`.
  bool ContainsStrictSubsetOf(ColumnSet probe) const {
    for (ColumnSet m : members_) {
      if (probe.StrictSuperset(m)) return true;
    }
    return false;
  }

  /// Inserts `set`, keeping only minimal members.
  void Insert(ColumnSet set) {
    if (ContainsSubsetOf(set)) return;  // redundant
    members_.erase(std::remove_if(members_.begin(), members_.end(),
                                  [&](ColumnSet m) {
                                    return m.StrictSuperset(set);
                                  }),
                   members_.end());
    members_.push_back(set);
  }

  size_t size() const { return members_.size(); }

 private:
  std::vector<ColumnSet> members_;
};

struct SubPlanEntry {
  PlanNode node;
  double cost = 0;
  bool alive = true;
};

struct PairEval {
  bool has_candidate = false;
  double delta = 0;       // best candidate cost - (cost_i + cost_j)
  PlanNode best;          // best candidate sub-plan
  double best_cost = 0;
};

/// Canonical (sorted, deduplicated) aggregate list for set comparison.
std::vector<AggRequest> CanonicalAggs(const std::vector<AggRequest>& aggs) {
  std::vector<AggRequest> out = aggs;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Whether `view` can answer `req`: its grouping columns contain the
/// request's and it carries every aggregate the request needs (COUNT(*) and
/// SUM re-aggregate as SUM, MIN/MAX re-apply — any carried aggregate can be
/// rolled up to a coarser grouping).
bool ViewCovers(const CachedViewDesc& view, const GroupByRequest& req) {
  if (!view.columns.ContainsAll(req.columns)) return false;
  for (const AggRequest& a : req.aggs) {
    if (std::find(view.aggs.begin(), view.aggs.end(), a) == view.aggs.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<OptimizerResult> GbMqoOptimizer::Optimize(
    const std::vector<GroupByRequest>& requests) {
  GBMQO_RETURN_NOT_OK(
      ValidateRequests(requests, whatif_->stats()->table().schema()));

  WallTimer timer;
  const uint64_t calls_before = model_->optimizer_calls();
  const NodeDesc root = whatif_->Root();

  MergeOptions merge_options;
  merge_options.only_type_b = options_.only_type_b;
  merge_options.enable_cube = options_.enable_cube;
  merge_options.enable_rollup = options_.enable_rollup;
  merge_options.max_cube_width = options_.max_cube_width;
  merge_options.enable_multi_copy = options_.enable_multi_copy;

  OptimizerResult result;

  // Step 0: route requests answerable from cached views. A view serves a
  // request at the cost of one pass over the (small) pinned aggregate —
  // zero on an exact match, where the pinned table *is* the answer — and
  // the served request leaves the hill climb. naive_cost keeps its meaning:
  // every request computed from R.
  constexpr size_t kNoView = std::numeric_limits<size_t>::max();
  std::vector<GroupByRequest> open;
  double served_cost = 0;
  // Step 1-2: the naive plan over the open requests, one leaf per request.
  std::vector<SubPlanEntry> entries;
  {
    LogicalPlan naive = NaivePlan(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      PlanNode& leaf = naive.subplans[i];
      const double from_r = CostSubPlan(leaf, root, model_, whatif_);
      result.naive_cost += from_r;
      double best_cost = from_r;
      size_t best_view = kNoView;
      const std::vector<AggRequest> want = CanonicalAggs(requests[i].aggs);
      for (size_t v = 0; v < options_.cached_views.size(); ++v) {
        const CachedViewDesc& view = options_.cached_views[v];
        if (!ViewCovers(view, requests[i])) continue;
        double serve;
        if (view.columns == requests[i].columns &&
            CanonicalAggs(view.aggs) == want) {
          serve = 0.0;  // exact: the pinned table is returned as-is
        } else {
          NodeDesc u;
          u.columns = view.columns;
          u.rows = view.rows;
          u.row_width = view.row_width;
          u.is_root = false;
          serve = model_->QueryCost(
              u, whatif_->Describe(requests[i].columns,
                                   static_cast<int>(requests[i].aggs.size())));
        }
        if (best_view == kNoView || serve < best_cost) {
          best_cost = serve;
          best_view = v;
        }
      }
      if (best_view != kNoView && best_cost < from_r) {
        result.cache_edges[i] = best_view;
        served_cost += best_cost;
        continue;
      }
      open.push_back(requests[i]);
      SubPlanEntry e;
      e.cost = from_r;
      e.node = std::move(leaf);
      entries.push_back(std::move(e));
    }
  }
  double current_cost = 0;
  for (const SubPlanEntry& e : entries) current_cost += e.cost;

  std::map<std::pair<size_t, size_t>, PairEval> eval_cache;
  MinimalSetFamily failed_unions;  // monotonicity prune state

  // Step 3-10: hill climbing.
  while (true) {
    ++result.stats.iterations;

    std::vector<size_t> alive;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].alive) alive.push_back(i);
    }
    if (alive.size() < 2) break;

    // Subsumption prune (Section 4.3.1): a pair is skipped when its union
    // strictly contains some other alive pair's union. The minimal unions
    // form an antichain; testing against it is equivalent.
    MinimalSetFamily minimal_unions;
    if (options_.subsumption_pruning) {
      for (size_t a = 0; a < alive.size(); ++a) {
        for (size_t b = a + 1; b < alive.size(); ++b) {
          minimal_unions.Insert(entries[alive[a]].node.columns.Union(
              entries[alive[b]].node.columns));
        }
      }
    }

    double best_delta = -1e-9;
    const PairEval* best_eval = nullptr;
    std::pair<size_t, size_t> best_pair{0, 0};

    for (size_t a = 0; a < alive.size(); ++a) {
      for (size_t b = a + 1; b < alive.size(); ++b) {
        const size_t i = alive[a], j = alive[b];
        const ColumnSet u =
            entries[i].node.columns.Union(entries[j].node.columns);
        if (options_.subsumption_pruning &&
            minimal_unions.ContainsStrictSubsetOf(u)) {
          ++result.stats.pairs_pruned_subsumption;
          continue;
        }
        if (options_.monotonicity_pruning &&
            failed_unions.ContainsSubsetOf(u)) {
          ++result.stats.pairs_pruned_monotonicity;
          continue;
        }
        auto key = std::make_pair(i, j);
        auto it = eval_cache.find(key);
        if (it == eval_cache.end()) {
          ++result.stats.merges_evaluated;
          PairEval eval;
          std::vector<PlanNode> candidates =
              SubPlanMerge(entries[i].node, entries[j].node, merge_options);
          const double pair_cost = entries[i].cost + entries[j].cost;
          for (PlanNode& cand : candidates) {
            if (options_.max_intermediate_storage_bytes <
                std::numeric_limits<double>::infinity()) {
              // Section 4.4.2: reject candidates that cannot be executed
              // within the storage budget.
              PlanNode scheduled = cand;
              const double storage = ScheduleSubPlan(&scheduled, whatif_);
              if (storage > options_.max_intermediate_storage_bytes) continue;
            }
            ++result.stats.candidates_costed;
            const double c = CostSubPlan(cand, root, model_, whatif_);
            const double delta = c - pair_cost;
            if (!eval.has_candidate || delta < eval.delta) {
              eval.has_candidate = true;
              eval.delta = delta;
              eval.best_cost = c;
              eval.best = std::move(cand);
            }
          }
          if (options_.monotonicity_pruning &&
              (!eval.has_candidate || eval.delta >= 0)) {
            failed_unions.Insert(u);
          }
          it = eval_cache.emplace(key, std::move(eval)).first;
        }
        const PairEval& eval = it->second;
        if (eval.has_candidate && eval.delta < best_delta) {
          best_delta = eval.delta;
          best_eval = &eval;
          best_pair = key;
        }
      }
    }

    if (best_eval == nullptr) break;  // local minimum reached

    // Apply the best merge: retire the pair, add the merged sub-plan.
    SubPlanEntry merged;
    merged.node = best_eval->best;
    merged.cost = best_eval->best_cost;
    current_cost += best_delta;
    entries[best_pair.first].alive = false;
    entries[best_pair.second].alive = false;
    entries.push_back(std::move(merged));
  }

  for (SubPlanEntry& e : entries) {
    if (e.alive) result.plan.subplans.push_back(std::move(e.node));
  }
  result.cost = current_cost + served_cost;
  SchedulePlanStorage(&result.plan, whatif_);

  GBMQO_RETURN_NOT_OK(result.plan.Validate(open));
  result.stats.optimizer_calls = model_->optimizer_calls() - calls_before;
  result.stats.optimization_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gbmqo
