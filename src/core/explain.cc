#include "core/explain.h"

#include "common/str_util.h"
#include "core/storage_scheduler.h"

namespace gbmqo {

namespace {

const char* KindLabel(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGroupBy: return "";
    case NodeKind::kCube: return "CUBE ";
    case NodeKind::kRollup: return "ROLLUP ";
  }
  return "";
}

std::string HumanBytes(double bytes) {
  if (bytes >= 1e9) return StrFormat("%.1fGB", bytes / 1e9);
  if (bytes >= 1e6) return StrFormat("%.1fMB", bytes / 1e6);
  if (bytes >= 1e3) return StrFormat("%.1fKB", bytes / 1e3);
  return StrFormat("%.0fB", bytes);
}

void RenderNode(const PlanNode& node, const NodeDesc& parent,
                const Schema& schema, PlanCostModel* model,
                WhatIfProvider* whatif, const std::string& prefix,
                bool is_last, std::string* out) {
  const NodeDesc self = DescribeNode(node, whatif);
  const double cost = CostSubPlan(node, parent, model, whatif);

  *out += prefix;
  *out += is_last ? "└─ " : "├─ ";
  *out += KindLabel(node.kind);
  *out += "{" + Join(schema.ColumnNames(node.columns), ",") + "}";
  if (node.required) *out += "*";
  *out += StrFormat(" rows≈%.0f subtree-cost≈%.3g", self.rows, cost);
  if (node.materialized()) {
    *out += " spool≈" + HumanBytes(EstimateNodeBytes(node, whatif));
    *out += node.mark == TraversalMark::kBreadthFirst ? " [BF]" : " [DF]";
  }
  *out += "\n";

  const std::string child_prefix = prefix + (is_last ? "   " : "│  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    RenderNode(node.children[i], self, schema, model, whatif, child_prefix,
               i + 1 == node.children.size(), out);
  }
}

}  // namespace

std::string ExplainPlan(const LogicalPlan& plan, const Schema& schema,
                        PlanCostModel* model, WhatIfProvider* whatif) {
  const NodeDesc root = whatif->Root();
  std::string out = StrFormat("R (%.0f rows, %.0f B/row) total-cost≈%.4g\n",
                              root.rows, root.row_width,
                              CostPlan(plan, model, whatif));
  for (size_t i = 0; i < plan.subplans.size(); ++i) {
    RenderNode(plan.subplans[i], root, schema, model, whatif, "",
               i + 1 == plan.subplans.size(), &out);
  }
  return out;
}

}  // namespace gbmqo
