// GroupingSetsPlanner: emulates the plans a commercial DBMS picks for a
// GROUPING SETS query, as characterized in Sections 1 and 6.1 of the paper:
//
//  * Low-overlap inputs (e.g. many single-column sets, "SC"): the optimizer
//    "first compute[s] the Group By of all N columns, materialize[s] that
//    result, and then compute[s] each of the N Group By queries from that
//    materialized result" — nearly as expensive as naive, because the union
//    grouping is almost as large as the base table.
//
//  * Containment-heavy inputs ("CONT"): shared sorts — the engine "arranges
//    the sorting order so that if a grouping set subsumes another, the
//    subsumed grouping is almost free". Modeled as sort-strategy chains: one
//    sorted pass per containment-maximal set, with subsumed sets computed
//    from that pass's materialized output.
//
// The emulation produces a LogicalPlan in the same algebra as GB-MQO plans,
// so baseline and optimized plans execute on the identical engine.
#ifndef GBMQO_CORE_GROUPING_SETS_PLANNER_H_
#define GBMQO_CORE_GROUPING_SETS_PLANNER_H_

#include <vector>

#include "core/logical_plan.h"
#include "core/request.h"

namespace gbmqo {

struct GroupingSetsPlannerOptions {
  /// The engine switches from shared-sort chains to the union-group-by plan
  /// when the number of chains exceeds this (many disjoint sets cannot
  /// share sorts, and a real optimizer collapses them onto one spool).
  int max_sort_chains = 3;
};

class GroupingSetsPlanner {
 public:
  explicit GroupingSetsPlanner(GroupingSetsPlannerOptions options = {})
      : options_(options) {}

  /// Builds the emulated GROUPING SETS plan for `requests`.
  Result<LogicalPlan> Plan(const std::vector<GroupByRequest>& requests,
                           const Schema& schema) const;

 private:
  GroupingSetsPlannerOptions options_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_GROUPING_SETS_PLANNER_H_
