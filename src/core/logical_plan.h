// LogicalPlan: the paper's plan algebra (Section 3.1). A plan is a forest of
// sub-plans rooted at the base relation R; each node is a Group By query
// (or, with the Section 7.1 extension, a CUBE/ROLLUP query) computed from
// its parent. Non-leaf nodes are materialized into temporary tables.
#ifndef GBMQO_CORE_LOGICAL_PLAN_H_
#define GBMQO_CORE_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "core/request.h"
#include "cost/cost_model.h"
#include "cost/whatif.h"
#include "exec/query_executor.h"

namespace gbmqo {

/// What a node computes from its parent.
enum class NodeKind {
  kGroupBy,  ///< plain GROUP BY node.columns
  kCube,     ///< CUBE(node.columns): all subsets (Section 7.1)
  kRollup,   ///< ROLLUP(rollup_order): all prefixes (Section 7.1)
};

/// How the node subtree is sequenced for minimum intermediate storage
/// (Section 4.4.1). Set by StorageScheduler; kDepthFirst is the default.
enum class TraversalMark {
  kDepthFirst,
  kBreadthFirst,
};

/// One node of a logical plan, owning its children by value. Sub-plans are
/// small trees (tens of nodes), so value semantics keep the hill-climbing
/// search simple and allocation-light.
struct PlanNode {
  ColumnSet columns;
  NodeKind kind = NodeKind::kGroupBy;
  bool required = false;  ///< one of the input queries
  /// Aggregates produced at this node. For intermediates this is the union
  /// of everything any descendant needs (Section 7.2) plus COUNT(*), which
  /// is always carried so descendants can re-aggregate counts.
  std::vector<AggRequest> aggs = {AggRequest{}};
  /// Section 7.2's alternative to the single union-of-aggregates copy: when
  /// non-empty, this node is materialized as one temp table per entry, each
  /// carrying only that entry's aggregates (narrower rows), and every child
  /// reads the first copy that carries all of its aggregates. Only
  /// non-required GroupBy intermediates may use copies; `aggs` must equal
  /// the union of the copies. Chosen cost-based by SubPlanMerge when
  /// enabled.
  std::vector<std::vector<AggRequest>> agg_copies;
  /// Column order for kRollup (prefixes of this order are produced).
  std::vector<int> rollup_order;
  /// Physical hint for the edge parent -> this (planners may force kSort to
  /// model shared-sort GROUPING SETS execution).
  AggStrategy strategy_hint = AggStrategy::kAuto;
  TraversalMark mark = TraversalMark::kDepthFirst;
  std::vector<PlanNode> children;

  bool is_leaf() const { return children.empty(); }

  /// True iff executing this node spools a temp table: any non-leaf GroupBy,
  /// and every CUBE/ROLLUP (their lattice levels are materialized).
  bool materialized() const {
    return !children.empty() || kind != NodeKind::kGroupBy;
  }

  /// Index into agg_copies of the copy serving `child_aggs`, or -1 when the
  /// node is single-copy or no copy covers them.
  int CopyFor(const std::vector<AggRequest>& child_aggs) const;

  /// Compact rendering, e.g. "{0,2}[{0},{2}]"; cube/rollup prefixed.
  std::string ToString() const;
};

/// A complete plan: sub-plans computed from R, executed left to right.
struct LogicalPlan {
  std::vector<PlanNode> subplans;

  std::string ToString() const;

  /// Total number of nodes (excluding R).
  int NumNodes() const;

  /// Structural + semantic validation against the request set:
  ///  * every child's columns are a subset of its parent's "coverage"
  ///    (node.columns for GroupBy/Cube; a prefix of rollup_order for Rollup),
  ///  * children of GroupBy nodes are strict subsets,
  ///  * every request appears exactly once as a required node with exactly
  ///    its aggregates,
  ///  * intermediate nodes carry every aggregate their descendants need,
  ///  * CUBE/ROLLUP nodes have only leaf children.
  Status Validate(const std::vector<GroupByRequest>& requests) const;
};

/// Cost of one sub-plan computed from `parent` (Section 3.2): the sum over
/// edges of QueryCost plus MaterializeCost for spooled nodes. CUBE/ROLLUP
/// nodes are priced by their bottom-up lattice/chain expansion.
double CostSubPlan(const PlanNode& node, const NodeDesc& parent,
                   PlanCostModel* model, WhatIfProvider* whatif);

/// Cost of a full plan: sum of sub-plan costs from R.
double CostPlan(const LogicalPlan& plan, PlanCostModel* model,
                WhatIfProvider* whatif);

/// Hypothetical descriptor of a plan node (row width includes its carried
/// aggregate columns).
NodeDesc DescribeNode(const PlanNode& node, WhatIfProvider* whatif);

}  // namespace gbmqo

#endif  // GBMQO_CORE_LOGICAL_PLAN_H_
