#include "core/aggregate_cache.h"

#include <algorithm>
#include <utility>

namespace gbmqo {

std::string AggregateCache::KeyFor(
    ColumnSet columns, const std::vector<AggRequest>& aggs) const {
  // Canonical key: grouping set, sorted aggregate list, selection signature
  // (empty until the engine grows predicates), source version. Aggregates
  // are sorted so request-side ordering differences cannot split entries.
  std::vector<AggRequest> sorted = aggs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key = columns.ToString();
  for (const AggRequest& a : sorted) {
    key += "|";
    key += std::to_string(static_cast<int>(a.kind));
    key += ":";
    key += std::to_string(a.column);
  }
  key += "|sel:";  // selection signature slot (always empty today)
  key += "|v";
  key += std::to_string(version_);
  return key;
}

TablePtr AggregateCache::Lookup(ColumnSet columns,
                                const std::vector<AggRequest>& aggs,
                                int add_refs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyFor(columns, aggs));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  Entry& e = it->second;
  if (add_refs > 0) {
    // Hand the caller its references while still under mu_: eviction also
    // runs under mu_, so the entry's own pin is live here and the table
    // cannot be dropped before the caller's references are in place.
    const Status s = catalog_->AddTempRef(e.table_name, add_refs);
    if (!s.ok()) {
      // The pinned name vanished from the Catalog (a bug elsewhere, or a
      // test dropped it); treat as a miss and forget the entry.
      lru_.erase(e.lru_pos);
      pinned_bytes_ -= e.bytes;
      if (governor_ != nullptr) governor_->Release(static_cast<double>(e.bytes));
      entries_.erase(it);
      ++misses_;
      return nullptr;
    }
  }
  lru_.erase(e.lru_pos);
  lru_.push_front(it->first);
  e.lru_pos = lru_.begin();
  ++hits_;
  return e.table;
}

void AggregateCache::EvictLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  Entry& e = it->second;
  // Drop the cache's own pin. Readers that took references via Lookup keep
  // the table alive until they release; the Catalog frees it on the last.
  const Result<bool> dropped = catalog_->ReleaseTempRef(e.table_name);
  (void)dropped;
  pinned_bytes_ -= e.bytes;
  if (governor_ != nullptr) governor_->Release(static_cast<double>(e.bytes));
  lru_.erase(e.lru_pos);
  entries_.erase(it);
  ++evictions_;
}

bool AggregateCache::MakeRoomLocked(uint64_t bytes) {
  if (budget_bytes_ <= 0 || static_cast<double>(bytes) > budget_bytes_) {
    return false;
  }
  while (static_cast<double>(pinned_bytes_ + bytes) > budget_bytes_) {
    auto victim = entries_.find(lru_.back());
    EvictLocked(victim);
  }
  if (governor_ == nullptr) return true;
  while (!governor_->TryReserve(static_cast<double>(bytes))) {
    if (lru_.empty()) return false;
    // Shed our own retention before declining: cached bytes are the one
    // storage class the governor can always claw back.
    EvictLocked(entries_.find(lru_.back()));
  }
  return true;
}

bool AggregateCache::AcceptPinned(ColumnSet columns,
                                  const std::vector<AggRequest>& aggs,
                                  const TablePtr& table, bool registered) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyFor(columns, aggs);
  if (entries_.count(key) > 0) {
    ++declined_;  // first materialization wins; duplicates are redundant
    return false;
  }
  const uint64_t bytes = table->ByteSize();
  if (!MakeRoomLocked(bytes)) {
    ++declined_;
    return false;
  }
  const Status pin = registered
                         ? catalog_->AddTempRef(table->name(), 1)
                         : catalog_->RegisterTempWithRefs(table, 1);
  if (!pin.ok()) {
    if (governor_ != nullptr) governor_->Release(static_cast<double>(bytes));
    ++declined_;
    return false;
  }
  Entry e;
  e.table_name = table->name();
  e.table = table;
  e.columns = columns;
  e.aggs = aggs;
  e.bytes = bytes;
  e.source_version = source_version_;
  lru_.push_front(key);
  e.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(e));
  pinned_bytes_ += bytes;
  ++admissions_;
  return true;
}

bool AggregateCache::RestorePinned(ColumnSet columns,
                                   const std::vector<AggRequest>& aggs,
                                   const TablePtr& table,
                                   uint64_t source_version,
                                   bool needs_recompute) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = KeyFor(columns, aggs);
  if (entries_.count(key) > 0) {
    ++declined_;
    return false;
  }
  const uint64_t bytes = table->ByteSize();
  if (!MakeRoomLocked(bytes)) {
    ++declined_;
    return false;
  }
  const Status pin = catalog_->RegisterTempWithRefs(table, 1);
  if (!pin.ok()) {
    if (governor_ != nullptr) governor_->Release(static_cast<double>(bytes));
    ++declined_;
    return false;
  }
  Entry e;
  e.table_name = table->name();
  e.table = table;
  e.columns = columns;
  e.aggs = aggs;
  e.bytes = bytes;
  e.source_version = source_version;
  e.needs_recompute = needs_recompute;
  lru_.push_front(key);
  e.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(e));
  pinned_bytes_ += bytes;
  ++admissions_;
  return true;
}

std::vector<RefreshableEntry> AggregateCache::SnapshotEntriesLru() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RefreshableEntry> out;
  out.reserve(lru_.size());
  for (const std::string& key : lru_) {  // MRU first
    const Entry& e = entries_.at(key);
    RefreshableEntry r;
    r.columns = e.columns;
    r.aggs = e.aggs;
    r.table = e.table;
    r.source_version = e.source_version;
    r.needs_recompute = e.needs_recompute;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<RefreshableEntry> AggregateCache::SnapshotEntriesForRefresh()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, RefreshableEntry>> keyed;
  keyed.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    RefreshableEntry r;
    r.columns = e.columns;
    r.aggs = e.aggs;
    r.table = e.table;
    r.source_version = e.source_version;
    r.needs_recompute = e.needs_recompute;
    keyed.emplace_back(key, std::move(r));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RefreshableEntry> out;
  out.reserve(keyed.size());
  for (auto& [key, r] : keyed) out.push_back(std::move(r));
  return out;
}

bool AggregateCache::ReplaceEntry(ColumnSet columns,
                                  const std::vector<AggRequest>& aggs,
                                  const TablePtr& new_table, bool registered,
                                  uint64_t new_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyFor(columns, aggs));
  if (it == entries_.end()) return false;  // raced away; nothing to refresh
  Entry& e = it->second;
  const uint64_t new_bytes = new_table->ByteSize();
  const uint64_t old_bytes = e.bytes;

  // Make the refreshed entry most-recently-used *before* making room, so
  // the eviction loops below can never pick it as their own victim.
  lru_.erase(e.lru_pos);
  lru_.push_front(it->first);
  e.lru_pos = lru_.begin();

  if (new_bytes > old_bytes) {
    const uint64_t delta = new_bytes - old_bytes;
    // Budget: the refreshed cache holds pinned_bytes_ - old + new.
    while (static_cast<double>(pinned_bytes_ - old_bytes + new_bytes) >
           budget_bytes_) {
      if (lru_.size() <= 1) {
        // Even alone it no longer fits. The stale table must not keep
        // serving, so the entry goes too.
        EvictLocked(it);
        return false;
      }
      EvictLocked(entries_.find(lru_.back()));
    }
    if (governor_ != nullptr) {
      while (!governor_->TryReserve(static_cast<double>(delta))) {
        if (lru_.size() <= 1) {
          EvictLocked(it);
          return false;
        }
        EvictLocked(entries_.find(lru_.back()));
      }
    }
  } else if (governor_ != nullptr && old_bytes > new_bytes) {
    governor_->Release(static_cast<double>(old_bytes - new_bytes));
  }
  // Byte accounting for the swap is settled from here on: the governor
  // holds exactly new_bytes for this entry. Record that before any pin
  // operation so a failure path's EvictLocked releases the right amount.
  pinned_bytes_ = pinned_bytes_ - old_bytes + new_bytes;
  e.bytes = new_bytes;

  const Status pin = registered
                         ? catalog_->AddTempRef(new_table->name(), 1)
                         : catalog_->RegisterTempWithRefs(new_table, 1);
  if (!pin.ok()) {
    // Could not pin the replacement; e still points at the old table and
    // e.bytes at the new size, so rewind the size before evicting.
    if (governor_ != nullptr && new_bytes > old_bytes) {
      governor_->Release(static_cast<double>(new_bytes - old_bytes));
    } else if (governor_ != nullptr && old_bytes > new_bytes) {
      // Re-reserve what we released above so EvictLocked's release of
      // old_bytes stays balanced.
      governor_->ForceReserve(static_cast<double>(old_bytes - new_bytes));
    }
    pinned_bytes_ = pinned_bytes_ - new_bytes + old_bytes;
    e.bytes = old_bytes;
    EvictLocked(it);
    return false;
  }
  // Swap: drop the cache's pin on the old table (concurrent readers that
  // took refs via Lookup keep it alive), install the new one.
  const Result<bool> dropped = catalog_->ReleaseTempRef(e.table_name);
  (void)dropped;
  e.table_name = new_table->name();
  e.table = new_table;
  e.source_version = new_version;
  e.needs_recompute = false;
  ++refreshes_;
  return true;
}

bool AggregateCache::Evict(ColumnSet columns,
                           const std::vector<AggRequest>& aggs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyFor(columns, aggs));
  if (it == entries_.end()) return false;
  EvictLocked(it);
  return true;
}

void AggregateCache::MarkNeedsRecompute(ColumnSet columns,
                                        const std::vector<AggRequest>& aggs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyFor(columns, aggs));
  if (it != entries_.end()) it->second.needs_recompute = true;
}

void AggregateCache::SetSourceVersion(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  source_version_ = version;
}

void AggregateCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) EvictLocked(entries_.find(lru_.back()));
  ++version_;
}

void AggregateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) EvictLocked(entries_.find(lru_.back()));
}

std::vector<CachedViewDesc> AggregateCache::SnapshotViews() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, CachedViewDesc>> keyed;
  keyed.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    CachedViewDesc d;
    d.columns = e.columns;
    d.aggs = e.aggs;
    d.rows = static_cast<double>(e.table->num_rows());
    d.row_width = e.table->num_rows() == 0
                      ? 0.0
                      : static_cast<double>(e.bytes) /
                            static_cast<double>(e.table->num_rows());
    keyed.emplace_back(key, std::move(d));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CachedViewDesc> out;
  out.reserve(keyed.size());
  for (auto& [key, d] : keyed) out.push_back(std::move(d));
  return out;
}

AggregateCacheStats AggregateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AggregateCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.admissions = admissions_;
  s.declined = declined_;
  s.evictions = evictions_;
  s.refreshes = refreshes_;
  s.entries = entries_.size();
  s.pinned_bytes = pinned_bytes_;
  return s;
}

}  // namespace gbmqo
