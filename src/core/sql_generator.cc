#include "core/sql_generator.h"

#include "common/str_util.h"

namespace gbmqo {

namespace {

class Generator {
 public:
  Generator(const std::string& base_table, const Schema& schema)
      : base_table_(base_table), schema_(schema) {}

  Status Run(const LogicalPlan& plan) {
    for (const PlanNode& sub : plan.subplans) {
      GBMQO_RETURN_NOT_OK(EmitSubPlan(sub, base_table_, /*parent_is_base=*/true));
    }
    return Status::OK();
  }

  std::vector<SqlStatement>& statements() { return statements_; }

 private:
  std::string ColumnList(ColumnSet cols) const {
    return Join(schema_.ColumnNames(cols), ", ");
  }

  std::string TempName(ColumnSet cols) const {
    std::string name = "tmp";
    for (const std::string& c : schema_.ColumnNames(cols)) name += "_" + c;
    return name;
  }

  /// Aggregate select-list item, re-aggregating when reading a temp table.
  std::string AggExpr(const AggRequest& agg, bool parent_is_base) const {
    const std::string out = AggOutputName(agg, schema_);
    if (parent_is_base) {
      switch (agg.kind) {
        case AggKind::kCountStar: return "COUNT(*) AS " + out;
        case AggKind::kSum:
          return "SUM(" + schema_.column(agg.column).name + ") AS " + out;
        case AggKind::kMin:
          return "MIN(" + schema_.column(agg.column).name + ") AS " + out;
        case AggKind::kMax:
          return "MAX(" + schema_.column(agg.column).name + ") AS " + out;
      }
    }
    switch (agg.kind) {
      case AggKind::kCountStar: return "SUM(cnt) AS cnt";
      case AggKind::kSum: return "SUM(" + out + ") AS " + out;
      case AggKind::kMin: return "MIN(" + out + ") AS " + out;
      case AggKind::kMax: return "MAX(" + out + ") AS " + out;
    }
    return out;
  }

  std::string SelectList(const PlanNode& node, bool parent_is_base) const {
    std::vector<std::string> items;
    const std::string cols = ColumnList(node.columns);
    if (!cols.empty()) items.push_back(cols);
    for (const AggRequest& agg : node.aggs) {
      items.push_back(AggExpr(agg, parent_is_base));
    }
    return Join(items, ", ");
  }

  void EmitQuery(const PlanNode& node, const std::string& parent,
                 bool parent_is_base) {
    std::string group_clause;
    switch (node.kind) {
      case NodeKind::kGroupBy:
        group_clause = ColumnList(node.columns);
        break;
      case NodeKind::kCube:
        group_clause = "CUBE(" + ColumnList(node.columns) + ")";
        break;
      case NodeKind::kRollup: {
        std::vector<std::string> names;
        for (int c : node.rollup_order) names.push_back(schema_.column(c).name);
        group_clause = "ROLLUP(" + Join(names, ", ") + ")";
        break;
      }
    }
    SqlStatement stmt;
    if (node.materialized()) {
      stmt.kind = SqlStatement::Kind::kSelectInto;
      stmt.text = "SELECT " + SelectList(node, parent_is_base) + " INTO " +
                  TempName(node.columns) + " FROM " + parent + " GROUP BY " +
                  group_clause + ";";
    } else {
      stmt.kind = SqlStatement::Kind::kSelect;
      stmt.text = "SELECT " + SelectList(node, parent_is_base) + " FROM " +
                  parent + " GROUP BY " + group_clause + ";";
    }
    statements_.push_back(std::move(stmt));
  }

  void EmitDrop(const PlanNode& node) {
    if (!node.materialized()) return;
    statements_.push_back(SqlStatement{
        SqlStatement::Kind::kDropTable,
        "DROP TABLE " + TempName(node.columns) + ";"});
  }

  Status EmitSubPlan(const PlanNode& node, const std::string& parent,
                     bool parent_is_base) {
    if (!node.agg_copies.empty()) {
      return EmitMultiCopy(node, parent, parent_is_base);
    }
    EmitQuery(node, parent, parent_is_base);
    return EmitDescend(node);
  }

  /// Section 7.2 multi-copy node: one SELECT INTO per copy (suffixed temp
  /// names), children read their serving copy, copies dropped at the end.
  Status EmitMultiCopy(const PlanNode& node, const std::string& parent,
                       bool parent_is_base) {
    std::vector<std::string> copy_names;
    for (size_t i = 0; i < node.agg_copies.size(); ++i) {
      PlanNode copy_view = node;
      copy_view.aggs = node.agg_copies[i];
      copy_view.agg_copies.clear();
      const std::string copy_name =
          TempName(node.columns) + "_copy" + std::to_string(i);
      std::vector<std::string> items;
      const std::string cols = ColumnList(node.columns);
      if (!cols.empty()) items.push_back(cols);
      for (const AggRequest& agg : node.agg_copies[i]) {
        items.push_back(AggExpr(agg, parent_is_base));
      }
      statements_.push_back(SqlStatement{
          SqlStatement::Kind::kSelectInto,
          "SELECT " + Join(items, ", ") + " INTO " + copy_name + " FROM " +
              parent + " GROUP BY " + ColumnList(node.columns) + ";"});
      copy_names.push_back(copy_name);
    }
    for (const PlanNode& child : node.children) {
      const int copy = node.CopyFor(child.aggs);
      if (copy < 0) return Status::Internal("no copy serves child");
      GBMQO_RETURN_NOT_OK(EmitSubPlan(
          child, copy_names[static_cast<size_t>(copy)], /*parent_is_base=*/false));
    }
    for (const std::string& copy_name : copy_names) {
      statements_.push_back(SqlStatement{SqlStatement::Kind::kDropTable,
                                         "DROP TABLE " + copy_name + ";"});
    }
    return Status::OK();
  }

  Status EmitDescend(const PlanNode& node) {
    if (node.children.empty()) {
      // CUBE/ROLLUP results are consumed by the client directly; drop after.
      if (node.kind != NodeKind::kGroupBy) EmitDrop(node);
      return Status::OK();
    }
    const std::string self = TempName(node.columns);
    if (node.mark == TraversalMark::kDepthFirst) {
      for (const PlanNode& child : node.children) {
        if (node.kind != NodeKind::kGroupBy) continue;  // served by CUBE/ROLLUP
        GBMQO_RETURN_NOT_OK(EmitSubPlan(child, self, /*parent_is_base=*/false));
      }
      EmitDrop(node);
      return Status::OK();
    }
    // Breadth-first: all children queried, parent dropped, then descend.
    for (const PlanNode& child : node.children) {
      EmitQuery(child, self, /*parent_is_base=*/false);
    }
    EmitDrop(node);
    for (const PlanNode& child : node.children) {
      GBMQO_RETURN_NOT_OK(EmitDescend(child));
    }
    return Status::OK();
  }

  const std::string& base_table_;
  const Schema& schema_;
  std::vector<SqlStatement> statements_;
};

}  // namespace

Result<std::vector<SqlStatement>> SqlGenerator::Generate(
    const LogicalPlan& plan) const {
  for (const PlanNode& sub : plan.subplans) {
    for (int c : sub.columns.ToVector()) {
      if (c >= schema_.num_columns()) {
        return Status::InvalidArgument("plan references unknown column " +
                                       std::to_string(c));
      }
    }
  }
  Generator gen(base_table_, schema_);
  GBMQO_RETURN_NOT_OK(gen.Run(plan));
  return std::move(gen.statements());
}

std::string SqlGenerator::GroupingSetsSql(
    const std::vector<GroupByRequest>& requests) const {
  std::vector<std::string> sets;
  ColumnSet all;
  for (const GroupByRequest& req : requests) {
    sets.push_back("(" + Join(schema_.ColumnNames(req.columns), ", ") + ")");
    all = all.Union(req.columns);
  }
  return "SELECT " + Join(schema_.ColumnNames(all), ", ") +
         ", COUNT(*) AS cnt FROM " + base_table_ +
         " GROUP BY GROUPING SETS (" + Join(sets, ", ") + ");";
}

}  // namespace gbmqo
