#include "core/exhaustive.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "core/storage_scheduler.h"
#include "core/subplan_merge.h"

namespace gbmqo {

namespace {

/// DP state for one input. Request subsets are bitmasks over request
/// indices ("qmask"); column sets are unioned per qmask.
class Search {
 public:
  Search(const std::vector<GroupByRequest>& requests, PlanCostModel* model,
         WhatIfProvider* whatif)
      : requests_(requests), model_(model), whatif_(whatif) {
    const int n = static_cast<int>(requests.size());
    // Distinct aggregates across all requests (COUNT(*) always present for
    // intermediates).
    agg_universe_.push_back(AggRequest{});
    for (const GroupByRequest& req : requests) {
      for (const AggRequest& a : req.aggs) {
        if (std::find(agg_universe_.begin(), agg_universe_.end(), a) ==
            agg_universe_.end()) {
          agg_universe_.push_back(a);
        }
      }
    }
    req_agg_bits_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      uint32_t bits = 0;
      for (const AggRequest& a : requests[static_cast<size_t>(i)].aggs) {
        const size_t pos =
            static_cast<size_t>(std::find(agg_universe_.begin(),
                                          agg_universe_.end(), a) -
                                agg_universe_.begin());
        bits |= 1u << pos;
      }
      req_agg_bits_[static_cast<size_t>(i)] = bits;
    }
  }

  /// Minimum total plan cost; call once.
  double Solve() {
    const uint32_t full = (1u << requests_.size()) - 1;
    root_ = whatif_->Root();
    return PartitionCost(/*node_qmask=*/0, full, /*parent_is_root=*/true);
  }

  /// Rebuilds the optimal plan from the DP tables.
  LogicalPlan BuildPlan() {
    LogicalPlan plan;
    const uint32_t full = (1u << requests_.size()) - 1;
    EmitPartition(/*node_qmask=*/0, full, /*parent_is_root=*/true,
                  &plan.subplans);
    return plan;
  }

 private:
  // ---- derived per-qmask quantities ----

  ColumnSet Union(uint32_t qmask) const {
    ColumnSet u;
    for (uint32_t m = qmask; m != 0; m &= m - 1) {
      const int i = std::countr_zero(m);
      u = u.Union(requests_[static_cast<size_t>(i)].columns);
    }
    return u;
  }

  /// Aggregates carried by the node serving `qmask` (COUNT(*) + union).
  std::vector<AggRequest> NodeAggs(uint32_t qmask) const {
    uint32_t bits = 1;  // COUNT(*) is agg_universe_[0]
    for (uint32_t m = qmask; m != 0; m &= m - 1) {
      bits |= req_agg_bits_[static_cast<size_t>(std::countr_zero(m))];
    }
    std::vector<AggRequest> aggs;
    for (size_t i = 0; i < agg_universe_.size(); ++i) {
      if (bits & (1u << i)) aggs.push_back(agg_universe_[i]);
    }
    return aggs;
  }

  NodeDesc NodeDescOf(uint32_t qmask) {
    return whatif_->Describe(Union(qmask),
                             static_cast<int>(NodeAggs(qmask).size()));
  }
  NodeDesc LeafDesc(int request) {
    const GroupByRequest& req = requests_[static_cast<size_t>(request)];
    return whatif_->Describe(req.columns, static_cast<int>(req.aggs.size()));
  }

  // ---- DP ----

  /// Cost of the subtree rooted at the node serving `qmask` (>= 2 requests),
  /// including its materialization, excluding the edge from its parent.
  double SubtreeCost(uint32_t qmask) {
    auto it = subtree_memo_.find(qmask);
    if (it != subtree_memo_.end()) return it->second;
    const NodeDesc self = NodeDescOf(qmask);
    const double cost = model_->MaterializeCost(self) +
                        PartitionCost(qmask, qmask, /*parent_is_root=*/false);
    subtree_memo_.emplace(qmask, cost);
    return cost;
  }

  /// Cost of one partition part under the given parent.
  double PartCost(uint32_t node_qmask, uint32_t part, bool parent_is_root) {
    const NodeDesc parent = parent_is_root ? root_ : NodeDescOf(node_qmask);
    if ((part & (part - 1)) == 0) {
      // Singleton: a leaf request.
      const int q = std::countr_zero(part);
      if (!parent_is_root &&
          requests_[static_cast<size_t>(q)].columns == Union(node_qmask)) {
        return 0;  // the node itself IS this request's result
      }
      return model_->QueryCost(parent, LeafDesc(q));
    }
    // Non-singleton: a materialized child node union(part).
    if (!parent_is_root && Union(part) == Union(node_qmask)) {
      // Identical column set as the parent: never useful, and recursing
      // would not terminate.
      return kInfeasible;
    }
    return model_->QueryCost(parent, NodeDescOf(part)) + SubtreeCost(part);
  }

  /// Min cost of partitioning `rest` into parts under the node serving
  /// `node_qmask` (or under R when parent_is_root).
  double PartitionCost(uint32_t node_qmask, uint32_t rest,
                       bool parent_is_root) {
    if (rest == 0) return 0;
    const uint64_t memo_key =
        (static_cast<uint64_t>(node_qmask) << 32) | rest |
        (parent_is_root ? (1ULL << 63) : 0);
    auto it = partition_memo_.find(memo_key);
    if (it != partition_memo_.end()) return it->second;

    const uint32_t lowest = rest & (~rest + 1);
    double best = kInfeasible;
    // Enumerate subsets of `rest` containing the lowest element.
    const uint32_t others = rest ^ lowest;
    uint32_t sub = others;
    while (true) {
      const uint32_t part = sub | lowest;
      const double pc = PartCost(node_qmask, part, parent_is_root);
      if (pc < kInfeasible) {
        const double restc =
            PartitionCost(node_qmask, rest ^ part, parent_is_root);
        best = std::min(best, pc + restc);
      }
      if (sub == 0) break;
      sub = (sub - 1) & others;
    }
    partition_memo_.emplace(memo_key, best);
    return best;
  }

  // ---- plan reconstruction (re-derives argmins from the memo tables) ----

  PlanNode EmitSubtree(uint32_t qmask) {
    PlanNode node;
    node.columns = Union(qmask);
    node.aggs = NodeAggs(qmask);
    EmitPartition(qmask, qmask, /*parent_is_root=*/false, &node.children);
    // If one request equals this node's columns, the node serves it.
    for (uint32_t m = qmask; m != 0; m &= m - 1) {
      const int q = std::countr_zero(m);
      if (requests_[static_cast<size_t>(q)].columns == node.columns) {
        node.required = true;
      }
    }
    return node;
  }

  void EmitPartition(uint32_t node_qmask, uint32_t rest, bool parent_is_root,
                     std::vector<PlanNode>* out) {
    if (rest == 0) return;
    const double target = PartitionCost(node_qmask, rest, parent_is_root);
    const uint32_t lowest = rest & (~rest + 1);
    const uint32_t others = rest ^ lowest;
    uint32_t sub = others;
    while (true) {
      const uint32_t part = sub | lowest;
      const double pc = PartCost(node_qmask, part, parent_is_root);
      if (pc < kInfeasible) {
        const double restc =
            PartitionCost(node_qmask, rest ^ part, parent_is_root);
        if (pc + restc <= target + 1e-6) {
          EmitPart(node_qmask, part, parent_is_root, out);
          EmitPartition(node_qmask, rest ^ part, parent_is_root, out);
          return;
        }
      }
      if (sub == 0) break;
      sub = (sub - 1) & others;
    }
  }

  void EmitPart(uint32_t node_qmask, uint32_t part, bool parent_is_root,
                std::vector<PlanNode>* out) {
    if ((part & (part - 1)) == 0) {
      const int q = std::countr_zero(part);
      const GroupByRequest& req = requests_[static_cast<size_t>(q)];
      if (!parent_is_root && req.columns == Union(node_qmask)) {
        return;  // served by the node itself (marked in EmitSubtree)
      }
      PlanNode leaf;
      leaf.columns = req.columns;
      leaf.required = true;
      leaf.aggs = req.aggs;
      out->push_back(std::move(leaf));
      return;
    }
    out->push_back(EmitSubtree(part));
  }

  static constexpr double kInfeasible = 1e300;

  const std::vector<GroupByRequest>& requests_;
  PlanCostModel* model_;
  WhatIfProvider* whatif_;
  NodeDesc root_;
  std::vector<AggRequest> agg_universe_;
  std::vector<uint32_t> req_agg_bits_;
  std::unordered_map<uint32_t, double> subtree_memo_;
  std::unordered_map<uint64_t, double> partition_memo_;
};

}  // namespace

Result<OptimizerResult> ExhaustiveOptimizer::Optimize(
    const std::vector<GroupByRequest>& requests) {
  GBMQO_RETURN_NOT_OK(
      ValidateRequests(requests, whatif_->stats()->table().schema()));
  if (static_cast<int>(requests.size()) > kMaxRequests) {
    return Status::InvalidArgument(
        "exhaustive search supports at most " +
        std::to_string(kMaxRequests) + " requests (got " +
        std::to_string(requests.size()) + ")");
  }
  WallTimer timer;
  const uint64_t calls_before = model_->optimizer_calls();

  Search search(requests, model_, whatif_);
  OptimizerResult result;
  result.cost = search.Solve();
  result.plan = search.BuildPlan();
  {
    LogicalPlan naive = NaivePlan(requests);
    result.naive_cost = CostPlan(naive, model_, whatif_);
  }
  SchedulePlanStorage(&result.plan, whatif_);
  GBMQO_RETURN_NOT_OK(result.plan.Validate(requests));
  result.stats.optimizer_calls = model_->optimizer_calls() - calls_before;
  result.stats.optimization_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gbmqo
