// StorageScheduler: intermediate-storage sequencing (Section 4.4).
//
// Executing a logical plan materializes temp tables; the order in which the
// tree is traversed changes the peak storage held at once. The paper's
// recurrence
//
//   Storage(u) = min( d(u) + sum_i d(v_i),            // breadth-first at u
//                     d(u) + max_i Storage(v_i) )     // depth-first at u
//
// picks, per node, whether to compute all children before descending (BF)
// or to finish one child subtree at a time (DF). This module computes
// Storage(u), marks every node BF/DF, and estimates d(u) from what-if
// statistics (bytes = estimated rows × row width).
#ifndef GBMQO_CORE_STORAGE_SCHEDULER_H_
#define GBMQO_CORE_STORAGE_SCHEDULER_H_

#include <unordered_map>

#include "core/logical_plan.h"
#include "cost/whatif.h"

namespace gbmqo {

/// Estimated materialized size in bytes of one plan node (0 for leaves,
/// which stream to the client and are never spooled).
double EstimateNodeBytes(const PlanNode& node, WhatIfProvider* whatif);

/// Per-node d(u) estimates for every node of `plan`, keyed by node pointer
/// (valid only while `plan` is alive). Leaves map to 0; CUBE/ROLLUP/
/// multi-copy nodes to their whole expansion. PlanExecutor's storage-aware
/// admission gate reserves these bytes before scheduling a node.
std::unordered_map<const PlanNode*, double> PlanNodeStorage(
    const LogicalPlan& plan, WhatIfProvider* whatif);

/// Computes the Section 4.4.1 recurrence over the sub-plan rooted at `node`,
/// setting `node->mark` (and descendants') to the argmin traversal. Returns
/// Storage(node) in estimated bytes. CUBE/ROLLUP nodes are treated as a
/// single materialization of their whole lattice/chain.
double ScheduleSubPlan(PlanNode* node, WhatIfProvider* whatif);

/// Schedules every sub-plan of `plan` and returns the plan's peak estimate —
/// the max over sub-plans, since sub-plans execute one after another.
double SchedulePlanStorage(LogicalPlan* plan, WhatIfProvider* whatif);

/// Simulates executing the (already scheduled) sub-plan and returns the peak
/// bytes of live temp tables under the same estimates — used by tests to
/// check that the emitted order realizes the recurrence's accounting.
double SimulatePeakStorage(const PlanNode& node, WhatIfProvider* whatif);

}  // namespace gbmqo

#endif  // GBMQO_CORE_STORAGE_SCHEDULER_H_
