#include "core/logical_plan.h"

#include <algorithm>
#include <map>
#include <set>

namespace gbmqo {

namespace {

std::string KindPrefix(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGroupBy: return "";
    case NodeKind::kCube: return "CUBE";
    case NodeKind::kRollup: return "ROLLUP";
  }
  return "";
}

std::set<AggRequest> AggSet(const std::vector<AggRequest>& aggs) {
  return std::set<AggRequest>(aggs.begin(), aggs.end());
}

/// What column sets a node can serve to a child "for free" or by
/// computation. GroupBy serves strict subsets by computation; Cube serves
/// any subset for free; Rollup serves prefixes for free.
bool ChildAllowed(const PlanNode& parent, const PlanNode& child) {
  switch (parent.kind) {
    case NodeKind::kGroupBy:
      return parent.columns.StrictSuperset(child.columns);
    case NodeKind::kCube:
      return parent.columns.ContainsAll(child.columns);
    case NodeKind::kRollup: {
      // child.columns must equal some prefix of rollup_order.
      ColumnSet prefix;
      if (child.columns.empty()) return true;
      for (int c : parent.rollup_order) {
        prefix = prefix.With(c);
        if (prefix == child.columns) return true;
        if (prefix.size() > child.columns.size()) return false;
      }
      return false;
    }
  }
  return false;
}

Status ValidateNode(const PlanNode& node, const PlanNode* parent,
                    std::map<ColumnSet, const PlanNode*>* required_found) {
  if (node.columns.empty() && node.kind == NodeKind::kGroupBy) {
    return Status::InvalidArgument("plan node with empty column set");
  }
  if (node.aggs.empty()) {
    return Status::InvalidArgument("plan node with no aggregates");
  }
  if (node.kind == NodeKind::kRollup) {
    ColumnSet order_set;
    for (int c : node.rollup_order) order_set = order_set.With(c);
    if (order_set != node.columns ||
        static_cast<int>(node.rollup_order.size()) != node.columns.size()) {
      return Status::InvalidArgument("rollup_order inconsistent with columns");
    }
  }
  if (!node.agg_copies.empty()) {
    // Section 7.2 multi-copy constraints.
    if (node.kind != NodeKind::kGroupBy || node.required) {
      return Status::InvalidArgument(
          "aggregate copies are only allowed on non-required GroupBy nodes");
    }
    if (node.children.empty()) {
      return Status::InvalidArgument("multi-copy node has no children");
    }
    std::set<AggRequest> union_of_copies;
    for (const auto& copy : node.agg_copies) {
      if (copy.empty()) {
        return Status::InvalidArgument("empty aggregate copy");
      }
      union_of_copies.insert(copy.begin(), copy.end());
    }
    if (union_of_copies != AggSet(node.aggs)) {
      return Status::InvalidArgument(
          "aggregate copies do not union to the node's aggregates");
    }
    for (const PlanNode& child : node.children) {
      if (node.CopyFor(child.aggs) < 0) {
        return Status::InvalidArgument(
            "no aggregate copy covers a child of " + node.columns.ToString());
      }
    }
  }
  if (parent != nullptr) {
    if (!ChildAllowed(*parent, node)) {
      return Status::InvalidArgument("node " + node.columns.ToString() +
                                     " is not derivable from parent " +
                                     parent->columns.ToString());
    }
    // The parent must carry every aggregate this node needs (within a
    // single copy, when the parent is multi-copy).
    if (parent->agg_copies.empty()) {
      const std::set<AggRequest> pa = AggSet(parent->aggs);
      for (const AggRequest& a : node.aggs) {
        if (pa.count(a) == 0) {
          return Status::InvalidArgument(
              "parent " + parent->columns.ToString() +
              " does not carry an aggregate needed by " +
              node.columns.ToString());
        }
      }
    } else if (parent->CopyFor(node.aggs) < 0) {
      return Status::InvalidArgument(
          "no copy of parent " + parent->columns.ToString() +
          " carries the aggregates needed by " + node.columns.ToString());
    }
  }
  if (node.kind != NodeKind::kGroupBy) {
    for (const PlanNode& child : node.children) {
      if (!child.is_leaf() || child.kind != NodeKind::kGroupBy) {
        return Status::NotSupported(
            "CUBE/ROLLUP nodes may only have leaf GroupBy children");
      }
    }
  }
  if (node.required) {
    if (!required_found->emplace(node.columns, &node).second) {
      return Status::InvalidArgument("required set " + node.columns.ToString() +
                                     " appears more than once");
    }
  }
  for (const PlanNode& child : node.children) {
    GBMQO_RETURN_NOT_OK(ValidateNode(child, &node, required_found));
  }
  return Status::OK();
}

}  // namespace

int PlanNode::CopyFor(const std::vector<AggRequest>& child_aggs) const {
  for (size_t i = 0; i < agg_copies.size(); ++i) {
    const std::set<AggRequest> have(agg_copies[i].begin(),
                                    agg_copies[i].end());
    bool covers = true;
    for (const AggRequest& a : child_aggs) {
      if (have.count(a) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) return static_cast<int>(i);
  }
  return -1;
}

std::string PlanNode::ToString() const {
  std::string out = KindPrefix(kind) + columns.ToString();
  if (required) out += "*";
  if (!children.empty()) {
    out += "[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ",";
      out += children[i].ToString();
    }
    out += "]";
  }
  return out;
}

std::string LogicalPlan::ToString() const {
  std::string out = "R[";
  for (size_t i = 0; i < subplans.size(); ++i) {
    if (i > 0) out += ",";
    out += subplans[i].ToString();
  }
  out += "]";
  return out;
}

namespace {
int CountNodes(const PlanNode& node) {
  int n = 1;
  for (const PlanNode& child : node.children) n += CountNodes(child);
  return n;
}
}  // namespace

int LogicalPlan::NumNodes() const {
  int n = 0;
  for (const PlanNode& sub : subplans) n += CountNodes(sub);
  return n;
}

Status LogicalPlan::Validate(
    const std::vector<GroupByRequest>& requests) const {
  std::map<ColumnSet, const PlanNode*> required_found;
  for (const PlanNode& sub : subplans) {
    GBMQO_RETURN_NOT_OK(ValidateNode(sub, nullptr, &required_found));
  }
  if (required_found.size() != requests.size()) {
    return Status::InvalidArgument(
        "plan serves " + std::to_string(required_found.size()) +
        " required sets, expected " + std::to_string(requests.size()));
  }
  for (const GroupByRequest& req : requests) {
    auto it = required_found.find(req.columns);
    if (it == required_found.end()) {
      return Status::InvalidArgument("request " + req.columns.ToString() +
                                     " is not served by the plan");
    }
    // The serving node must carry at least the requested aggregates.
    const std::set<AggRequest> have = AggSet(it->second->aggs);
    for (const AggRequest& a : req.aggs) {
      if (have.count(a) == 0) {
        return Status::InvalidArgument("request " + req.columns.ToString() +
                                       " is missing an aggregate in the plan");
      }
    }
  }
  return Status::OK();
}

NodeDesc DescribeNode(const PlanNode& node, WhatIfProvider* whatif) {
  return whatif->Describe(node.columns, static_cast<int>(node.aggs.size()));
}

namespace {

/// Cost of CUBE(m) computed from `parent`: a bottom-up spanning tree over
/// the 2^|m| lattice where each proper subset s is computed from
/// s + {lowest column of m \ s}. Every level is materialized (the execution
/// mirrors this exactly).
double CostCube(const PlanNode& node, const NodeDesc& parent,
                PlanCostModel* model, WhatIfProvider* whatif) {
  const int num_aggs = static_cast<int>(node.aggs.size());
  const std::vector<int> cols = node.columns.ToVector();
  const uint64_t full = node.columns.mask();

  double cost = 0;
  // Enumerate all submasks of `full` (including full and 0).
  uint64_t sub = full;
  while (true) {
    const ColumnSet s(sub);
    const NodeDesc sd = whatif->Describe(s, num_aggs);
    if (sub == full) {
      cost += model->QueryCost(parent, sd) + model->MaterializeCost(sd);
    } else {
      // Spanning parent: add the lowest missing column of m.
      ColumnSet missing = node.columns.Minus(s);
      const ColumnSet sp = s.With(missing.ToVector().front());
      const NodeDesc pd = whatif->Describe(sp, num_aggs);
      cost += model->QueryCost(pd, sd) + model->MaterializeCost(sd);
    }
    if (sub == 0) break;
    sub = (sub - 1) & full;
  }
  return cost;
}

/// Cost of ROLLUP(order) from `parent`: a chain where each level is the
/// previous level minus its last order column, down to the empty grouping.
double CostRollup(const PlanNode& node, const NodeDesc& parent,
                  PlanCostModel* model, WhatIfProvider* whatif) {
  const int num_aggs = static_cast<int>(node.aggs.size());
  double cost = 0;
  NodeDesc prev = whatif->Describe(node.columns, num_aggs);
  cost += model->QueryCost(parent, prev) + model->MaterializeCost(prev);
  ColumnSet level = node.columns;
  for (int i = static_cast<int>(node.rollup_order.size()) - 1; i >= 0; --i) {
    level = level.Without(node.rollup_order[static_cast<size_t>(i)]);
    const NodeDesc ld = whatif->Describe(level, num_aggs);
    cost += model->QueryCost(prev, ld) + model->MaterializeCost(ld);
    prev = ld;
  }
  return cost;
}

}  // namespace

double CostSubPlan(const PlanNode& node, const NodeDesc& parent,
                   PlanCostModel* model, WhatIfProvider* whatif) {
  if (node.kind == NodeKind::kCube) {
    // Required leaf children are served from the materialized lattice at no
    // extra cost.
    return CostCube(node, parent, model, whatif);
  }
  if (node.kind == NodeKind::kRollup) {
    return CostRollup(node, parent, model, whatif);
  }
  if (!node.agg_copies.empty()) {
    // Section 7.2 multi-copy: one query + spool per copy; each child is
    // priced against the (narrower) copy that serves it.
    double cost = 0;
    std::vector<NodeDesc> copy_descs;
    for (const auto& copy : node.agg_copies) {
      const NodeDesc d =
          whatif->Describe(node.columns, static_cast<int>(copy.size()));
      cost += model->QueryCost(parent, d) + model->MaterializeCost(d);
      copy_descs.push_back(d);
    }
    for (const PlanNode& child : node.children) {
      const int copy = node.CopyFor(child.aggs);
      cost += CostSubPlan(child, copy_descs[static_cast<size_t>(copy < 0 ? 0 : copy)],
                          model, whatif);
    }
    return cost;
  }
  const NodeDesc self = DescribeNode(node, whatif);
  double cost = model->QueryCost(parent, self);
  if (node.materialized()) cost += model->MaterializeCost(self);
  for (const PlanNode& child : node.children) {
    cost += CostSubPlan(child, self, model, whatif);
  }
  return cost;
}

double CostPlan(const LogicalPlan& plan, PlanCostModel* model,
                WhatIfProvider* whatif) {
  const NodeDesc root = whatif->Root();
  double cost = 0;
  for (const PlanNode& sub : plan.subplans) {
    cost += CostSubPlan(sub, root, model, whatif);
  }
  return cost;
}

}  // namespace gbmqo
