#include "core/join_pushdown.h"

#include <algorithm>
#include <set>

#include "common/timer.h"
#include "core/subplan_merge.h"
#include "cost/optimizer_cost_model.h"
#include "exec/query_executor.h"

namespace gbmqo {

namespace {

constexpr const char* kGrpTag = "grp_tag";

Status ValidateJoinQuery(const JoinGroupingSetsQuery& q, const Table& left,
                         const Table& right) {
  GBMQO_RETURN_NOT_OK(ValidateRequests(q.requests, left.schema()));
  if (q.left_join_col < 0 || q.left_join_col >= left.schema().num_columns() ||
      q.right_join_col < 0 ||
      q.right_join_col >= right.schema().num_columns()) {
    return Status::InvalidArgument("join column out of range");
  }
  GBMQO_RETURN_NOT_OK(q.left_filter.Validate(left.schema()));
  GBMQO_RETURN_NOT_OK(q.right_filter.Validate(right.schema()));
  return Status::OK();
}

/// Applies a (possibly TRUE) filter, avoiding a copy when trivial.
Result<TablePtr> MaybeFilter(const TablePtr& table, const Predicate& pred,
                             const std::string& name, ExecContext* ctx) {
  if (pred.is_true()) return table;
  return ApplyFilter(*table, pred, name, ctx);
}

/// Final re-aggregation spec: the joined/pushed input carries the aggregate
/// columns by their stable output names.
Result<AggregateSpec> ReaggSpec(const Table& input, const AggRequest& agg,
                                const Schema& left_schema) {
  const std::string name = AggOutputName(agg, left_schema);
  const int ord = input.schema().FindColumn(name);
  if (ord < 0) {
    return Status::Internal("aggregate column '" + name + "' missing");
  }
  switch (agg.kind) {
    case AggKind::kCountStar:
    case AggKind::kSum:
      return AggregateSpec::Sum(ord, name);
    case AggKind::kMin:
      return AggregateSpec::Min(ord, name);
    case AggKind::kMax:
      return AggregateSpec::Max(ord, name);
  }
  return Status::Internal("unknown aggregate");
}

}  // namespace

Result<JoinExecutionResult> JoinGroupingSetsExecutor::ExecuteJoinFirst(
    const JoinGroupingSetsQuery& q) {
  Result<TablePtr> left = catalog_->Get(q.left_table);
  if (!left.ok()) return left.status();
  Result<TablePtr> right = catalog_->Get(q.right_table);
  if (!right.ok()) return right.status();
  GBMQO_RETURN_NOT_OK(ValidateJoinQuery(q, **left, **right));

  WallTimer timer;
  ExecContext ctx;
  Result<TablePtr> lf = MaybeFilter(*left, q.left_filter, "jf_left", &ctx);
  if (!lf.ok()) return lf.status();
  Result<TablePtr> rf = MaybeFilter(*right, q.right_filter, "jf_right", &ctx);
  if (!rf.ok()) return rf.status();

  Result<TablePtr> joined = HashJoin(
      **lf, **rf, JoinSpec{q.left_join_col, q.right_join_col}, "joined", &ctx);
  if (!joined.ok()) return joined.status();

  // Left columns keep their ordinals in the join output, so requests apply
  // verbatim (COUNT(*)/SUM/... over raw columns).
  QueryExecutor exec(&ctx);
  JoinExecutionResult out;
  for (const GroupByRequest& req : q.requests) {
    GroupByQuery query;
    query.grouping = req.columns;
    for (const AggRequest& agg : req.aggs) {
      switch (agg.kind) {
        case AggKind::kCountStar:
          query.aggregates.push_back(
              AggregateSpec::CountStar(AggOutputName(agg, (*left)->schema())));
          break;
        case AggKind::kSum:
          query.aggregates.push_back(AggregateSpec::Sum(
              agg.column, AggOutputName(agg, (*left)->schema())));
          break;
        case AggKind::kMin:
          query.aggregates.push_back(AggregateSpec::Min(
              agg.column, AggOutputName(agg, (*left)->schema())));
          break;
        case AggKind::kMax:
          query.aggregates.push_back(AggregateSpec::Max(
              agg.column, AggOutputName(agg, (*left)->schema())));
          break;
      }
    }
    Result<TablePtr> r = exec.ExecuteGroupBy(
        **joined, query, "result" + req.columns.ToString());
    if (!r.ok()) return r.status();
    out.results[req.columns] = *r;
  }
  out.counters = ctx.counters();
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

Result<JoinExecutionResult> JoinGroupingSetsExecutor::ExecutePushdown(
    const JoinGroupingSetsQuery& q, PushdownMode mode) {
  Result<TablePtr> left = catalog_->Get(q.left_table);
  if (!left.ok()) return left.status();
  Result<TablePtr> right = catalog_->Get(q.right_table);
  if (!right.ok()) return right.status();
  GBMQO_RETURN_NOT_OK(ValidateJoinQuery(q, **left, **right));
  const Schema& left_schema = (*left)->schema();

  WallTimer timer;
  ExecContext ctx;
  Result<TablePtr> lf = MaybeFilter(*left, q.left_filter,
                                    catalog_->NextTempName("pd_left"), &ctx);
  if (!lf.ok()) return lf.status();
  Result<TablePtr> rf = MaybeFilter(*right, q.right_filter, "pd_right", &ctx);
  if (!rf.ok()) return rf.status();

  // ---- Step 1-2: pushed Group Bys over the (filtered) left relation ------

  // Global aggregate union: every pushed set carries all aggregates any
  // request needs, plus COUNT(*), so the Union-All has one schema.
  std::vector<AggRequest> union_aggs = {AggRequest{}};
  for (const GroupByRequest& req : q.requests) {
    union_aggs = UnionAggs(union_aggs, req.aggs);
  }

  // Deduplicated pushed sets with stable tags.
  std::vector<ColumnSet> pushed_sets;
  std::map<ColumnSet, int64_t> tag_of;  // pushed set -> Grp-Tag value
  for (const GroupByRequest& req : q.requests) {
    const ColumnSet pushed = req.columns.With(q.left_join_col);
    if (tag_of.emplace(pushed, static_cast<int64_t>(pushed_sets.size())).second) {
      pushed_sets.push_back(pushed);
    }
  }
  std::vector<GroupByRequest> pushed_requests;
  for (ColumnSet s : pushed_sets) {
    pushed_requests.push_back(GroupByRequest{s, union_aggs});
  }

  // Register the filtered left side so PlanExecutor can run plans over it.
  const bool left_is_temp = (*lf != *left);
  if (left_is_temp) {
    GBMQO_RETURN_NOT_OK(catalog_->RegisterTemp(*lf));
  }
  LogicalPlan pushed_plan;
  if (mode == PushdownMode::kGbMqo) {
    StatisticsManager stats(**lf);
    WhatIfProvider whatif(&stats);
    OptimizerCostModel model(**lf);
    GbMqoOptimizer optimizer(&model, &whatif);
    Result<OptimizerResult> opt = optimizer.Optimize(pushed_requests);
    if (!opt.ok()) return opt.status();
    pushed_plan = std::move(opt->plan);
  } else {
    pushed_plan = NaivePlan(pushed_requests);
  }
  PlanExecutor plan_exec(catalog_, (*lf)->name());
  Result<ExecutionResult> pushed =
      plan_exec.Execute(pushed_plan, pushed_requests);
  if (left_is_temp) GBMQO_RETURN_NOT_OK(catalog_->Drop((*lf)->name()));
  if (!pushed.ok()) return pushed.status();
  ctx.counters() += pushed->counters;

  // ---- Step 3: Union-All with Grp-Tag ------------------------------------

  ColumnSet all_group_cols;
  for (ColumnSet s : pushed_sets) all_group_cols = all_group_cols.Union(s);

  std::vector<ColumnDef> defs;
  defs.push_back(ColumnDef{kGrpTag, DataType::kInt64, false});
  for (int c : all_group_cols.ToVector()) {
    ColumnDef def = left_schema.column(c);
    def.nullable = true;  // NULL where a tag's grouping omits the column
    defs.push_back(def);
  }
  for (const AggRequest& agg : union_aggs) {
    const bool is_count = agg.kind == AggKind::kCountStar;
    defs.push_back(ColumnDef{AggOutputName(agg, left_schema),
                             is_count ? DataType::kInt64
                                      : left_schema.column(agg.column).type,
                             !is_count});
  }
  TableBuilder union_builder{Schema(defs)};

  for (ColumnSet s : pushed_sets) {
    const TablePtr& part = pushed->results.at(s);
    const int64_t tag = tag_of.at(s);
    for (size_t row = 0; row < part->num_rows(); ++row) {
      int out_col = 0;
      union_builder.column(out_col++)->AppendInt64(tag);
      for (int c : all_group_cols.ToVector()) {
        const int src = part->schema().FindColumn(left_schema.column(c).name);
        if (src < 0) {
          union_builder.column(out_col++)->AppendNull();
        } else {
          union_builder.column(out_col)->AppendFrom(part->column(src), row);
          ++out_col;
        }
      }
      for (const AggRequest& agg : union_aggs) {
        const int src =
            part->schema().FindColumn(AggOutputName(agg, left_schema));
        if (src < 0) {
          return Status::Internal("pushed result missing aggregate column");
        }
        union_builder.column(out_col)->AppendFrom(part->column(src), row);
        ++out_col;
      }
    }
  }
  Result<TablePtr> unioned = union_builder.Build("pushed_union");
  if (!unioned.ok()) return unioned.status();

  // ---- Step 4: one join of the (small) union with the right side ---------

  const int union_join_col = (*unioned)->schema().FindColumn(
      left_schema.column(q.left_join_col).name);
  Result<TablePtr> joined =
      HashJoin(**unioned, **rf, JoinSpec{union_join_col, q.right_join_col},
               "pushed_joined", &ctx);
  if (!joined.ok()) return joined.status();

  // ---- Step 5: per-request Grp-Tag selection + re-aggregation ------------

  QueryExecutor exec(&ctx);
  JoinExecutionResult out;
  const int tag_col = (*joined)->schema().FindColumn(kGrpTag);
  for (const GroupByRequest& req : q.requests) {
    const int64_t tag = tag_of.at(req.columns.With(q.left_join_col));
    Predicate tag_pred;
    tag_pred.And(Comparison{tag_col, CompareOp::kEq, Value(tag)});
    Result<TablePtr> mine =
        ApplyFilter(**joined, tag_pred, "tagged", &ctx);
    if (!mine.ok()) return mine.status();

    GroupByQuery query;
    for (int c : req.columns.ToVector()) {
      const int ord =
          (*mine)->schema().FindColumn(left_schema.column(c).name);
      if (ord < 0) return Status::Internal("grouping column lost in join");
      query.grouping = query.grouping.With(ord);
    }
    for (const AggRequest& agg : req.aggs) {
      Result<AggregateSpec> spec = ReaggSpec(**mine, agg, left_schema);
      if (!spec.ok()) return spec.status();
      query.aggregates.push_back(std::move(spec).ValueOrDie());
    }
    Result<TablePtr> r = exec.ExecuteGroupBy(
        **mine, query, "result" + req.columns.ToString());
    if (!r.ok()) return r.status();
    out.results[req.columns] = *r;
  }
  out.counters = ctx.counters();
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace gbmqo
