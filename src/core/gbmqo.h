// Umbrella header: the public API of the gbmqo library.
//
// Typical usage (see examples/quickstart.cc):
//
//   Catalog catalog;
//   catalog.RegisterBase(table);
//   StatisticsManager stats(*table);
//   WhatIfProvider whatif(&stats);
//   OptimizerCostModel model(*table);
//   GbMqoOptimizer optimizer(&model, &whatif);
//   auto result = optimizer.Optimize(SingleColumnRequests({0,1,2}));
//   PlanExecutor executor(&catalog, table->name());
//   auto exec = executor.Execute(result->plan, requests);
#ifndef GBMQO_CORE_GBMQO_H_
#define GBMQO_CORE_GBMQO_H_

#include "core/exhaustive.h"           // IWYU pragma: export
#include "core/explain.h"               // IWYU pragma: export
#include "core/grouping_sets_planner.h" // IWYU pragma: export
#include "core/join_pushdown.h"         // IWYU pragma: export
#include "core/logical_plan.h"          // IWYU pragma: export
#include "core/optimizer.h"             // IWYU pragma: export
#include "core/plan_executor.h"         // IWYU pragma: export
#include "core/request.h"               // IWYU pragma: export
#include "core/sql_generator.h"         // IWYU pragma: export
#include "core/storage_scheduler.h"     // IWYU pragma: export
#include "core/subplan_merge.h"         // IWYU pragma: export
#include "cost/cost_model.h"            // IWYU pragma: export
#include "cost/optimizer_cost_model.h"  // IWYU pragma: export
#include "cost/whatif.h"                // IWYU pragma: export

#endif  // GBMQO_CORE_GBMQO_H_
