#include "core/storage_scheduler.h"

#include <algorithm>

namespace gbmqo {

namespace {

/// Bytes of the full CUBE lattice / ROLLUP chain of `node` (everything is
/// live at once in the worst case of its bottom-up computation).
double ExpandedBytes(const PlanNode& node, WhatIfProvider* whatif) {
  const int num_aggs = static_cast<int>(node.aggs.size());
  auto bytes_of = [&](ColumnSet s) {
    const NodeDesc d = whatif->Describe(s, num_aggs);
    return d.rows * d.row_width;
  };
  if (node.kind == NodeKind::kCube) {
    double total = 0;
    const uint64_t full = node.columns.mask();
    uint64_t sub = full;
    while (true) {
      total += bytes_of(ColumnSet(sub));
      if (sub == 0) break;
      sub = (sub - 1) & full;
    }
    return total;
  }
  // Rollup: consecutive levels; at most two levels live at once (each level
  // computed from the previous, previous dropped after).
  double peak = 0;
  ColumnSet level = node.columns;
  double prev = bytes_of(level);
  peak = prev;
  for (int i = static_cast<int>(node.rollup_order.size()) - 1; i >= 0; --i) {
    level = level.Without(node.rollup_order[static_cast<size_t>(i)]);
    const double cur = bytes_of(level);
    peak = std::max(peak, prev + cur);
    prev = cur;
  }
  return peak;
}

}  // namespace

double EstimateNodeBytes(const PlanNode& node, WhatIfProvider* whatif) {
  if (!node.materialized()) return 0.0;
  if (node.kind != NodeKind::kGroupBy) return ExpandedBytes(node, whatif);
  if (!node.agg_copies.empty()) {
    // Section 7.2: all copies are live while the children execute.
    double total = 0;
    for (const auto& copy : node.agg_copies) {
      const NodeDesc d =
          whatif->Describe(node.columns, static_cast<int>(copy.size()));
      total += d.rows * d.row_width;
    }
    return total;
  }
  const NodeDesc d = DescribeNode(node, whatif);
  return d.rows * d.row_width;
}

namespace {

void CollectNodeStorage(const PlanNode& node, WhatIfProvider* whatif,
                        std::unordered_map<const PlanNode*, double>* out) {
  (*out)[&node] = EstimateNodeBytes(node, whatif);
  for (const PlanNode& child : node.children) {
    CollectNodeStorage(child, whatif, out);
  }
}

}  // namespace

std::unordered_map<const PlanNode*, double> PlanNodeStorage(
    const LogicalPlan& plan, WhatIfProvider* whatif) {
  std::unordered_map<const PlanNode*, double> out;
  for (const PlanNode& sub : plan.subplans) {
    CollectNodeStorage(sub, whatif, &out);
  }
  return out;
}

double ScheduleSubPlan(PlanNode* node, WhatIfProvider* whatif) {
  const double d_u = EstimateNodeBytes(*node, whatif);
  if (node->children.empty()) {
    node->mark = TraversalMark::kDepthFirst;
    return d_u;
  }
  double sum_children = 0;
  double max_child_storage = 0;
  for (PlanNode& child : node->children) {
    sum_children += EstimateNodeBytes(child, whatif);
    max_child_storage =
        std::max(max_child_storage, ScheduleSubPlan(&child, whatif));
  }
  const double bf = d_u + sum_children;
  const double df = d_u + max_child_storage;
  if (bf < df) {
    node->mark = TraversalMark::kBreadthFirst;
    return bf;
  }
  node->mark = TraversalMark::kDepthFirst;
  return df;
}

double SchedulePlanStorage(LogicalPlan* plan, WhatIfProvider* whatif) {
  double peak = 0;
  for (PlanNode& sub : plan->subplans) {
    peak = std::max(peak, ScheduleSubPlan(&sub, whatif));
  }
  return peak;
}

namespace {

/// Simulation state: current live bytes and the observed peak.
struct Sim {
  double live = 0;
  double peak = 0;
  void Add(double bytes) {
    live += bytes;
    peak = std::max(peak, live);
  }
  void Remove(double bytes) { live -= bytes; }
};

// Mirrors PlanExecutor's traversal: Materialize(node) allocates, Descend
// processes children per the node's mark and frees the node afterwards.
void SimDescend(const PlanNode& node, double node_bytes, Sim* sim,
                WhatIfProvider* whatif);

double SimMaterialize(const PlanNode& node, Sim* sim, WhatIfProvider* whatif) {
  const double bytes = EstimateNodeBytes(node, whatif);
  sim->Add(bytes);
  return bytes;
}

void SimDescend(const PlanNode& node, double node_bytes, Sim* sim,
                WhatIfProvider* whatif) {
  if (node.children.empty()) {
    sim->Remove(node_bytes);
    return;
  }
  if (node.mark == TraversalMark::kDepthFirst) {
    for (const PlanNode& child : node.children) {
      const double cb = SimMaterialize(child, sim, whatif);
      SimDescend(child, cb, sim, whatif);
    }
    sim->Remove(node_bytes);
  } else {
    std::vector<double> child_bytes;
    for (const PlanNode& child : node.children) {
      child_bytes.push_back(SimMaterialize(child, sim, whatif));
    }
    sim->Remove(node_bytes);
    for (size_t i = 0; i < node.children.size(); ++i) {
      SimDescend(node.children[i], child_bytes[i], sim, whatif);
    }
  }
}

}  // namespace

double SimulatePeakStorage(const PlanNode& node, WhatIfProvider* whatif) {
  Sim sim;
  const double b = SimMaterialize(node, &sim, whatif);
  SimDescend(node, b, &sim, whatif);
  return sim.peak;
}

}  // namespace gbmqo
