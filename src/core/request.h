// GroupByRequest: one required Group By query of the GB-MQO input set S
// (Section 3.1). Requests reference base-relation column ordinals; the
// default aggregate is COUNT(*), and Section 7.2's extension to SUM/MIN/MAX
// is supported via additional AggRequests.
#ifndef GBMQO_CORE_REQUEST_H_
#define GBMQO_CORE_REQUEST_H_

#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "exec/aggregate_spec.h"
#include "storage/schema.h"

namespace gbmqo {

/// One aggregate wanted by a request, in base-relation terms.
struct AggRequest {
  AggKind kind = AggKind::kCountStar;
  int column = -1;  ///< base-relation ordinal; -1 for COUNT(*)

  friend bool operator==(const AggRequest& a, const AggRequest& b) {
    return a.kind == b.kind && a.column == b.column;
  }
  friend bool operator<(const AggRequest& a, const AggRequest& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.column < b.column;
  }
};

/// One required Group By query: SELECT columns, aggs FROM R GROUP BY columns.
struct GroupByRequest {
  ColumnSet columns;
  std::vector<AggRequest> aggs = {AggRequest{}};  // COUNT(*) by default

  static GroupByRequest Count(ColumnSet columns) {
    return GroupByRequest{columns, {AggRequest{}}};
  }
};

/// Builds the single-column COUNT(*) workload ("SC" in the experiments) over
/// the given columns.
std::vector<GroupByRequest> SingleColumnRequests(const std::vector<int>& columns);

/// Builds all-pairs COUNT(*) requests ("TC") over the given columns.
std::vector<GroupByRequest> TwoColumnRequests(const std::vector<int>& columns);

/// Validates a request set against a schema: non-empty sets, in-range
/// ordinals, in-range aggregate arguments, no duplicate column sets.
Status ValidateRequests(const std::vector<GroupByRequest>& requests,
                        const Schema& schema);

/// Stable output-column name for an aggregate, e.g. "cnt", "sum_l_tax".
std::string AggOutputName(const AggRequest& agg, const Schema& schema);

}  // namespace gbmqo

#endif  // GBMQO_CORE_REQUEST_H_
