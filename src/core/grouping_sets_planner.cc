#include "core/grouping_sets_planner.h"

#include <algorithm>

#include "core/subplan_merge.h"

namespace gbmqo {

namespace {

PlanNode LeafOf(const GroupByRequest& req) {
  PlanNode leaf;
  leaf.columns = req.columns;
  leaf.required = true;
  leaf.aggs = req.aggs;
  return leaf;
}

}  // namespace

Result<LogicalPlan> GroupingSetsPlanner::Plan(
    const std::vector<GroupByRequest>& requests, const Schema& schema) const {
  GBMQO_RETURN_NOT_OK(ValidateRequests(requests, schema));

  // Sort requests by descending set size so chain heads come first.
  std::vector<const GroupByRequest*> order;
  order.reserve(requests.size());
  for (const GroupByRequest& req : requests) order.push_back(&req);
  std::sort(order.begin(), order.end(),
            [](const GroupByRequest* a, const GroupByRequest* b) {
              if (a->columns.size() != b->columns.size()) {
                return a->columns.size() > b->columns.size();
              }
              return a->columns < b->columns;
            });

  // Greedy chain cover: each request joins the first chain whose *current
  // tail* contains it (so the chain stays totally ordered by ⊇ and one sort
  // order serves every member); otherwise it starts a new chain.
  struct Chain {
    std::vector<const GroupByRequest*> members;  // descending by ⊇
  };
  std::vector<Chain> chains;
  for (const GroupByRequest* req : order) {
    Chain* home = nullptr;
    for (Chain& chain : chains) {
      if (chain.members.back()->columns.StrictSuperset(req->columns)) {
        home = &chain;
        break;
      }
    }
    if (home == nullptr) {
      chains.push_back(Chain{});
      home = &chains.back();
    }
    home->members.push_back(req);
  }

  LogicalPlan plan;
  if (static_cast<int>(chains.size()) > options_.max_sort_chains) {
    // Union-group-by plan: GROUP BY all referenced columns, spool, then
    // compute every request from the spool (the SC behaviour of Section 6.1).
    ColumnSet all;
    std::vector<AggRequest> all_aggs = {AggRequest{}};
    for (const GroupByRequest& req : requests) {
      all = all.Union(req.columns);
      all_aggs = UnionAggs(all_aggs, req.aggs);
    }
    PlanNode top;
    top.columns = all;
    top.aggs = all_aggs;
    top.strategy_hint = AggStrategy::kHash;
    bool top_required = false;
    for (const GroupByRequest& req : requests) {
      if (req.columns == all) {
        top.required = true;
        top_required = true;
      } else {
        top.children.push_back(LeafOf(req));
      }
    }
    (void)top_required;
    plan.subplans.push_back(std::move(top));
    return plan;
  }

  // Shared-sort plan: one sorted pass over R per chain; the chain head is
  // materialized and every subsumed member is computed from it (nearly free
  // relative to re-scanning R).
  for (const Chain& chain : chains) {
    const GroupByRequest* head = chain.members.front();
    if (chain.members.size() == 1) {
      PlanNode leaf = LeafOf(*head);
      leaf.strategy_hint = AggStrategy::kSort;  // one sorted pass
      plan.subplans.push_back(std::move(leaf));
      continue;
    }
    PlanNode root = LeafOf(*head);
    root.strategy_hint = AggStrategy::kSort;
    for (size_t i = 1; i < chain.members.size(); ++i) {
      root.aggs = UnionAggs(root.aggs, chain.members[i]->aggs);
      root.children.push_back(LeafOf(*chain.members[i]));
    }
    plan.subplans.push_back(std::move(root));
  }
  return plan;
}

}  // namespace gbmqo
