// GROUPING SETS over selections and joins (Section 5.1.1, Figure 8).
//
// A GROUPING SETS query may be defined over Join(R, S) rather than a base
// relation. Selections commute below the grouping; for the join, the
// paper's transform pushes the Group By computation below the join:
//
//   1. each requested set s_i (columns of R) is extended with the join
//      column A: the pushed set s_i ∪ {A};
//   2. the pushed Group Bys over R are computed — and this is where GB-MQO
//      applies again, sharing intermediates among the pushed sets;
//   3. their results are Union-All'ed with a Grp-Tag column identifying
//      which Group By each tuple came from;
//   4. the union joins S once on A;
//   5. each final Group By s_i selects its Grp-Tag rows from the join and
//      re-aggregates (COUNT(*) becomes SUM(cnt), etc.).
//
// Because aggregation happens before the join, the join input shrinks from
// |R| rows to the pushed groups' cardinality.
#ifndef GBMQO_CORE_JOIN_PUSHDOWN_H_
#define GBMQO_CORE_JOIN_PUSHDOWN_H_

#include <map>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "core/plan_executor.h"
#include "exec/hash_join.h"
#include "exec/predicate.h"
#include "storage/catalog.h"

namespace gbmqo {

/// A GROUPING SETS query over sigma(R) join sigma(S). All grouping columns
/// and aggregate arguments refer to the LEFT (R) schema; the join merely
/// multiplies row weights (the Figure 8 setting: "for simplicity assume
/// both B and C are columns in R").
struct JoinGroupingSetsQuery {
  std::string left_table;
  std::string right_table;
  int left_join_col = 0;
  int right_join_col = 0;
  Predicate left_filter;   ///< pushed below the grouping (Section 5.1.1)
  Predicate right_filter;
  std::vector<GroupByRequest> requests;
};

/// Strategy for the pushed Group Bys in the Figure 8 plan.
enum class PushdownMode {
  kNaive,   ///< each pushed set computed directly from R
  kGbMqo,   ///< pushed sets optimized together with GB-MQO
};

struct JoinExecutionResult {
  std::map<ColumnSet, TablePtr> results;  ///< keyed by the requested set
  WorkCounters counters;
  double wall_seconds = 0;
};

class JoinGroupingSetsExecutor {
 public:
  explicit JoinGroupingSetsExecutor(Catalog* catalog) : catalog_(catalog) {}

  /// Baseline: materialize the full join, then run every Group By over it.
  Result<JoinExecutionResult> ExecuteJoinFirst(const JoinGroupingSetsQuery& q);

  /// The Figure 8 plan. With PushdownMode::kGbMqo the pushed Group Bys are
  /// additionally shared via GB-MQO — the paper's "our optimization
  /// techniques can once again be leveraged" note.
  Result<JoinExecutionResult> ExecutePushdown(const JoinGroupingSetsQuery& q,
                                              PushdownMode mode);

 private:
  Catalog* catalog_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_JOIN_PUSHDOWN_H_
