// DeltaMaintainer: incremental maintenance of the AggregateCache's pinned
// group-bys after an append batch (the continuous-analytics scenario of
// ROADMAP item 2).
//
// The paper's Section 4.4 temp tables are exactly the maintained-aggregate
// schemas delta propagation wants: per-group COUNT/SUM/MIN/MAX beside the
// base relation. Because every aggregate we support is insert-mergeable —
//
//   COUNT(*)  merges by SUM(cnt)
//   SUM(x)    merges by SUM(sum_x)
//   MIN/MAX   merge by MIN(min_x)/MAX(max_x) on inserts (monotone)
//   AVG       is derivable downstream as sum_x / cnt
//
// — a cached aggregate at base version v advances to v+1 by aggregating
// only the delta batch, concatenating the per-group partials with the old
// pinned table, and folding the two parts with the same re-aggregation
// rewrite PlanExecutor uses for intermediates (BuildGroupByOver with
// input_is_base = false). That fold runs through QueryExecutor's canonical
// accumulator, so for COUNT and integer SUM/MIN/MAX the maintained table is
// bit-identical to a cold recompute over the full relation (all partial
// sums are integers below 2^53, exact in the double accumulator regardless
// of association). SUM over DOUBLE columns is the documented exception:
// merge order can perturb the last ulp, same as any parallel fold.
//
// Deltas roll up the lattice (Section 4.4, now over deltas): entries are
// maintained finest-first, each computed delta aggregate is memoized by
// (grouping set, aggregate signature), and a coarser entry whose signature
// matches reuses the finest memoized superset instead of re-scanning the
// delta batch.
//
// Limitations — by design, surfaced instead of silently mishandled:
//  * Insert-only. MIN/MAX cannot be maintained under deletion (removing the
//    current extremum needs the base relation); a caller that retracts rows
//    must MarkNeedsRecompute (per entry) or Invalidate (whole cache). The
//    per-entry needs_recompute flag makes the next ApplyDelta rebuild that
//    entry from the new base relation — the escape hatch, not the fast path.
//  * Maintenance must be serialized against concurrent cache readers by the
//    caller (the Server's ingest lock) if a consistent generation across
//    entries is required; each individual ReplaceEntry swap is atomic.
#ifndef GBMQO_CORE_DELTA_MAINTENANCE_H_
#define GBMQO_CORE_DELTA_MAINTENANCE_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "core/aggregate_cache.h"
#include "exec/exec_context.h"
#include "exec/query_executor.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace gbmqo {

struct DeltaMaintenanceOptions {
  /// Scan mode for the maintenance queries. Columnar by default: the inputs
  /// are narrow aggregate tables and small delta batches, where simulating
  /// row-store width would only distort the maintenance-vs-recompute ratio.
  ScanMode scan_mode = ScanMode::kColumnar;
  /// Morsel parallelism for the maintenance queries.
  int parallelism = 1;
  /// Forwarded to QueryExecutor::set_forced_kernel (test/bench knob).
  std::optional<AggKernel> forced_kernel;
  /// Reuse finer memoized delta aggregates for coarser grouping sets
  /// (the delta lattice). Off = every entry aggregates the delta directly.
  bool rollup_from_finer = true;
};

/// What one ApplyDelta call did. All counts are deterministic functions of
/// (cache contents, delta, options) — test assertions rely on that.
struct DeltaMaintenanceReport {
  uint64_t delta_rows = 0;          ///< rows in the applied batch
  uint64_t entries_refreshed = 0;   ///< delta-merged and swapped in place
  uint64_t entries_recomputed = 0;  ///< rebuilt from base (escape hatch)
  uint64_t entries_dropped = 0;     ///< evicted: merge failed or did not fit
  uint64_t rollup_reuses = 0;       ///< delta aggs served from a finer one
  WorkCounters counters;            ///< engine work of all maintenance queries
};

/// Propagates append-batch deltas through every entry of an AggregateCache.
/// Stateless across calls apart from the configuration; safe to reuse, but
/// not concurrently (callers serialize ApplyDelta — the Server's ingest path
/// already holds its exclusive lock here).
class DeltaMaintainer {
 public:
  DeltaMaintainer(Catalog* catalog, AggregateCache* cache,
                  DeltaMaintenanceOptions options = {})
      : catalog_(catalog), cache_(cache), options_(options) {}

  /// Advances every cached entry to `new_version`. `delta` holds just the
  /// appended rows, `new_base` the full relation after the append (used by
  /// the needs_recompute path), both with `base_schema`. Entries that
  /// cannot be refreshed are evicted, never left stale; the call itself
  /// only fails on engine errors that would also fail normal queries.
  Result<DeltaMaintenanceReport> ApplyDelta(const TablePtr& delta,
                                            const TablePtr& new_base,
                                            const Schema& base_schema,
                                            uint64_t new_version);

 private:
  Catalog* catalog_;
  AggregateCache* cache_;
  DeltaMaintenanceOptions options_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_DELTA_MAINTENANCE_H_
