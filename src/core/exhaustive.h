// ExhaustiveOptimizer: exact search for the minimum-cost logical plan, used
// as the "optimal plan" comparator of Experiment 6.3 (Figure 9). Like the
// paper's exhaustive implementation it is exponential and only practical
// for small inputs (they restricted to 7 columns; we cap the request count).
//
// Search space: plans in which every materialized intermediate node is the
// union of the required queries it (transitively) serves. Under any cost
// model that is monotone in the parent's cardinality — both paper models —
// shrinking an intermediate to the union of what it serves never increases
// cost, so this space contains an optimal plan. Enumeration is a dynamic
// program over recursive partitions of the request set: the top level
// partitions S into parts computed from R; a non-singleton part T becomes a
// materialized node union(T), recursively partitioned with that node as the
// parent.
#ifndef GBMQO_CORE_EXHAUSTIVE_H_
#define GBMQO_CORE_EXHAUSTIVE_H_

#include "core/optimizer.h"

namespace gbmqo {

class ExhaustiveOptimizer {
 public:
  /// At most this many requests are accepted (4^n subproblem work).
  static constexpr int kMaxRequests = 14;

  ExhaustiveOptimizer(PlanCostModel* model, WhatIfProvider* whatif)
      : model_(model), whatif_(whatif) {}

  /// Returns the optimal plan (within the space above) and its cost.
  Result<OptimizerResult> Optimize(const std::vector<GroupByRequest>& requests);

 private:
  PlanCostModel* model_;
  WhatIfProvider* whatif_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_EXHAUSTIVE_H_
