#include "core/request.h"

#include <set>

namespace gbmqo {

std::vector<GroupByRequest> SingleColumnRequests(
    const std::vector<int>& columns) {
  std::vector<GroupByRequest> out;
  out.reserve(columns.size());
  for (int c : columns) out.push_back(GroupByRequest::Count(ColumnSet::Single(c)));
  return out;
}

std::vector<GroupByRequest> TwoColumnRequests(const std::vector<int>& columns) {
  std::vector<GroupByRequest> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      out.push_back(
          GroupByRequest::Count(ColumnSet{columns[i], columns[j]}));
    }
  }
  return out;
}

Status ValidateRequests(const std::vector<GroupByRequest>& requests,
                        const Schema& schema) {
  if (requests.empty()) {
    return Status::InvalidArgument("request set is empty");
  }
  std::set<ColumnSet> seen;
  for (const GroupByRequest& req : requests) {
    if (req.columns.empty()) {
      return Status::InvalidArgument("request has empty grouping set");
    }
    for (int c : req.columns.ToVector()) {
      if (c >= schema.num_columns()) {
        return Status::InvalidArgument("grouping column ordinal " +
                                       std::to_string(c) + " out of range");
      }
    }
    if (!seen.insert(req.columns).second) {
      return Status::InvalidArgument("duplicate request for column set " +
                                     req.columns.ToString());
    }
    if (req.aggs.empty()) {
      return Status::InvalidArgument("request has no aggregates");
    }
    for (const AggRequest& agg : req.aggs) {
      if (agg.kind == AggKind::kCountStar) {
        if (agg.column != -1) {
          return Status::InvalidArgument("COUNT(*) takes no argument");
        }
        continue;
      }
      if (agg.column < 0 || agg.column >= schema.num_columns()) {
        return Status::InvalidArgument("aggregate argument out of range");
      }
      if (schema.column(agg.column).type == DataType::kString) {
        return Status::NotSupported("SUM/MIN/MAX over STRING");
      }
    }
  }
  return Status::OK();
}

std::string AggOutputName(const AggRequest& agg, const Schema& schema) {
  switch (agg.kind) {
    case AggKind::kCountStar:
      return "cnt";
    case AggKind::kSum:
      return "sum_" + schema.column(agg.column).name;
    case AggKind::kMin:
      return "min_" + schema.column(agg.column).name;
    case AggKind::kMax:
      return "max_" + schema.column(agg.column).name;
  }
  return "agg";
}

}  // namespace gbmqo
