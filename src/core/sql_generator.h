// SqlGenerator: renders a LogicalPlan as the sequence of SQL statements a
// client application would submit to a real DBMS (Section 5.2):
//
//   SELECT v, COUNT(*) AS cnt INTO tmp_v FROM R GROUP BY v
//   SELECT v2, SUM(cnt) AS cnt FROM tmp_v GROUP BY v2
//   DROP TABLE tmp_v
//
// Statements are emitted in the same BF/DF order PlanExecutor uses, so the
// script realizes the minimum-intermediate-storage schedule of Section 4.4.
// CUBE/ROLLUP nodes render as native GROUP BY CUBE(...) / ROLLUP(...)
// statements.
#ifndef GBMQO_CORE_SQL_GENERATOR_H_
#define GBMQO_CORE_SQL_GENERATOR_H_

#include <string>
#include <vector>

#include "core/logical_plan.h"

namespace gbmqo {

/// One emitted statement.
struct SqlStatement {
  enum class Kind { kSelectInto, kSelect, kDropTable };
  Kind kind = Kind::kSelect;
  std::string text;
};

class SqlGenerator {
 public:
  /// `base_table` is R's SQL name; `schema` provides column names.
  SqlGenerator(std::string base_table, Schema schema)
      : base_table_(std::move(base_table)), schema_(std::move(schema)) {}

  /// Renders the plan. Fails if the plan references unknown ordinals.
  Result<std::vector<SqlStatement>> Generate(const LogicalPlan& plan) const;

  /// Renders a GROUPING SETS statement for the raw request set — what the
  /// client would have sent to a DBMS with native support (for docs/demos).
  std::string GroupingSetsSql(const std::vector<GroupByRequest>& requests) const;

 private:
  std::string base_table_;
  Schema schema_;
};

}  // namespace gbmqo

#endif  // GBMQO_CORE_SQL_GENERATOR_H_
