// GbMqoOptimizer: the bottom-up hill-climbing algorithm of Section 4.2
// (Figure 5). Starts from the naive plan (every request computed directly
// from R) and repeatedly applies the best SubPlanMerge until no merge lowers
// the plan cost. Unlike prior work it never builds the exponential Search
// DAG — only the sub-plans the search actually visits.
//
// Implements both pruning techniques of Section 4.3 (subsumption-based and
// monotonicity-based), the binary-tree restriction of Section 4.2, the
// intermediate-storage constraint of Section 4.4.2, and the CUBE/ROLLUP
// alternatives of Section 7.1.
//
// Merges already evaluated are memoized across iterations, so the algorithm
// performs O(n^2) SubPlanMerge evaluations total (the paper's analysis).
#ifndef GBMQO_CORE_OPTIMIZER_H_
#define GBMQO_CORE_OPTIMIZER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/logical_plan.h"
#include "core/subplan_merge.h"
#include "cost/cost_model.h"
#include "cost/whatif.h"

namespace gbmqo {

/// Search-space and pruning switches (paper defaults: everything on, four
/// merge shapes; experiments toggle these individually).
struct OptimizerOptions {
  /// Restrict SubPlanMerge to shape (b) — binary trees (Section 4.2 /
  /// Experiment 6.5).
  bool only_type_b = false;
  /// Subsumption-based pruning (Section 4.3.1).
  bool subsumption_pruning = true;
  /// Monotonicity-based pruning (Section 4.3.2).
  bool monotonicity_pruning = true;
  /// Section 7.1 extensions.
  bool enable_cube = false;
  bool enable_rollup = false;
  int max_cube_width = 6;
  /// Section 7.2 extension: per-input aggregate copies at merged nodes.
  bool enable_multi_copy = false;
  /// Section 4.4.2: reject candidate sub-plans whose minimum intermediate
  /// storage exceeds this many (estimated) bytes.
  double max_intermediate_storage_bytes =
      std::numeric_limits<double>::infinity();
};

/// Search instrumentation reported alongside the plan.
struct OptimizerStats {
  uint64_t iterations = 0;
  uint64_t merges_evaluated = 0;       ///< SubPlanMerge invocations
  uint64_t candidates_costed = 0;      ///< candidate sub-plans priced
  uint64_t pairs_pruned_subsumption = 0;
  uint64_t pairs_pruned_monotonicity = 0;
  uint64_t optimizer_calls = 0;        ///< distinct cost-model requests
  double optimization_seconds = 0;
};

struct OptimizerResult {
  LogicalPlan plan;
  double cost = 0;        ///< Cost(plan) under the configured model
  double naive_cost = 0;  ///< Cost of the naive plan (baseline)
  OptimizerStats stats;
};

class GbMqoOptimizer {
 public:
  GbMqoOptimizer(PlanCostModel* model, WhatIfProvider* whatif,
                 OptimizerOptions options = {})
      : model_(model), whatif_(whatif), options_(options) {}

  /// Runs the Figure 5 loop over `requests`. The returned plan is validated
  /// and storage-scheduled (BF/DF marks set).
  Result<OptimizerResult> Optimize(const std::vector<GroupByRequest>& requests);

 private:
  PlanCostModel* model_;
  WhatIfProvider* whatif_;
  OptimizerOptions options_;
};

/// The naive plan: every request computed directly from R (the starting
/// point of the search, and the baseline of Tables 2/3).
LogicalPlan NaivePlan(const std::vector<GroupByRequest>& requests);

}  // namespace gbmqo

#endif  // GBMQO_CORE_OPTIMIZER_H_
