// GbMqoOptimizer: the bottom-up hill-climbing algorithm of Section 4.2
// (Figure 5). Starts from the naive plan (every request computed directly
// from R) and repeatedly applies the best SubPlanMerge until no merge lowers
// the plan cost. Unlike prior work it never builds the exponential Search
// DAG — only the sub-plans the search actually visits.
//
// Implements both pruning techniques of Section 4.3 (subsumption-based and
// monotonicity-based), the binary-tree restriction of Section 4.2, the
// intermediate-storage constraint of Section 4.4.2, and the CUBE/ROLLUP
// alternatives of Section 7.1.
//
// Merges already evaluated are memoized across iterations, so the algorithm
// performs O(n^2) SubPlanMerge evaluations total (the paper's analysis).
#ifndef GBMQO_CORE_OPTIMIZER_H_
#define GBMQO_CORE_OPTIMIZER_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "core/aggregate_cache.h"
#include "core/logical_plan.h"
#include "core/subplan_merge.h"
#include "cost/cost_model.h"
#include "cost/whatif.h"

namespace gbmqo {

/// Search-space and pruning switches (paper defaults: everything on, four
/// merge shapes; experiments toggle these individually).
struct OptimizerOptions {
  /// Restrict SubPlanMerge to shape (b) — binary trees (Section 4.2 /
  /// Experiment 6.5).
  bool only_type_b = false;
  /// Subsumption-based pruning (Section 4.3.1).
  bool subsumption_pruning = true;
  /// Monotonicity-based pruning (Section 4.3.2).
  bool monotonicity_pruning = true;
  /// Section 7.1 extensions.
  bool enable_cube = false;
  bool enable_rollup = false;
  int max_cube_width = 6;
  /// Section 7.2 extension: per-input aggregate copies at merged nodes.
  bool enable_multi_copy = false;
  /// Section 4.4.2: reject candidate sub-plans whose minimum intermediate
  /// storage exceeds this many (estimated) bytes.
  double max_intermediate_storage_bytes =
      std::numeric_limits<double>::infinity();
  /// Aggregates already materialized and pinned by the cross-request cache
  /// (AggregateCache::SnapshotViews). Before the hill climb, each request
  /// answerable from a view — equal or superset grouping columns carrying
  /// every needed aggregate — is costed as a zero-base-scan edge from that
  /// view via the what-if API; when that beats computing from R the request
  /// leaves the search entirely (see OptimizerResult::cache_edges) and the
  /// remaining requests are optimized as usual.
  std::vector<CachedViewDesc> cached_views;
};

/// Search instrumentation reported alongside the plan.
struct OptimizerStats {
  uint64_t iterations = 0;
  uint64_t merges_evaluated = 0;       ///< SubPlanMerge invocations
  uint64_t candidates_costed = 0;      ///< candidate sub-plans priced
  uint64_t pairs_pruned_subsumption = 0;
  uint64_t pairs_pruned_monotonicity = 0;
  uint64_t optimizer_calls = 0;        ///< distinct cost-model requests
  double optimization_seconds = 0;
};

struct OptimizerResult {
  /// Plan covering the requests NOT served from cached views.
  LogicalPlan plan;
  double cost = 0;        ///< Cost(plan) plus the cache-serve edges
  double naive_cost = 0;  ///< Cost of the naive plan (baseline, all from R)
  /// Requests routed to cached views: request index (into the Optimize
  /// argument) -> index into OptimizerOptions::cached_views. Served
  /// requests have no leaf in `plan`; the serving layer answers them from
  /// the pinned view (directly on an exact match, else by re-aggregation).
  std::map<size_t, size_t> cache_edges;
  OptimizerStats stats;
};

class GbMqoOptimizer {
 public:
  GbMqoOptimizer(PlanCostModel* model, WhatIfProvider* whatif,
                 OptimizerOptions options = {})
      : model_(model), whatif_(whatif), options_(options) {}

  /// Runs the Figure 5 loop over `requests`. The returned plan is validated
  /// and storage-scheduled (BF/DF marks set).
  Result<OptimizerResult> Optimize(const std::vector<GroupByRequest>& requests);

 private:
  PlanCostModel* model_;
  WhatIfProvider* whatif_;
  OptimizerOptions options_;
};

/// The naive plan: every request computed directly from R (the starting
/// point of the search, and the baseline of Tables 2/3).
LogicalPlan NaivePlan(const std::vector<GroupByRequest>& requests);

}  // namespace gbmqo

#endif  // GBMQO_CORE_OPTIMIZER_H_
