// Parser for GROUPING SETS specifications, the textual front door used by
// the examples:  "((l_shipdate), (l_commitdate), (l_shipdate, l_commitdate))"
// Also accepts the Section 2 "Combi"-style shorthand used in data analysis:
//   "SINGLE(a, b, c)" — every single-column set over the listed columns;
//   "PAIRS(a, b, c)"  — every two-column set over the listed columns.
#ifndef GBMQO_SQL_GROUPING_SETS_PARSER_H_
#define GBMQO_SQL_GROUPING_SETS_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/request.h"
#include "storage/schema.h"

namespace gbmqo {

/// Parses `spec` against `schema` into a COUNT(*) request set.
Result<std::vector<GroupByRequest>> ParseGroupingSets(const std::string& spec,
                                                      const Schema& schema);

}  // namespace gbmqo

#endif  // GBMQO_SQL_GROUPING_SETS_PARSER_H_
