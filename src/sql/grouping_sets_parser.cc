#include "sql/grouping_sets_parser.h"

#include "common/str_util.h"

namespace gbmqo {

namespace {

Result<std::vector<GroupByRequest>> ParseShorthand(std::string_view keyword,
                                                   std::string_view args,
                                                   const Schema& schema) {
  std::vector<int> ordinals;
  for (const std::string& name : SplitAndTrim(args, ',')) {
    const int ord = schema.FindColumn(name);
    if (ord < 0) return Status::NotFound("no column named '" + name + "'");
    ordinals.push_back(ord);
  }
  if (ordinals.empty()) {
    return Status::InvalidArgument("empty column list in shorthand");
  }
  if (EqualsIgnoreCase(keyword, "SINGLE")) {
    return SingleColumnRequests(ordinals);
  }
  if (EqualsIgnoreCase(keyword, "PAIRS")) {
    return TwoColumnRequests(ordinals);
  }
  return Status::InvalidArgument("unknown shorthand '" + std::string(keyword) +
                                 "'");
}

}  // namespace

Result<std::vector<GroupByRequest>> ParseGroupingSets(const std::string& spec,
                                                      const Schema& schema) {
  std::string_view text = Trim(spec);
  if (text.empty()) return Status::InvalidArgument("empty specification");

  // Shorthand form: KEYWORD(list).
  const size_t open = text.find('(');
  if (open != std::string_view::npos && open > 0 &&
      text.back() == ')') {
    const std::string_view keyword = Trim(text.substr(0, open));
    if (!keyword.empty() && keyword.find('(') == std::string_view::npos &&
        keyword.find(',') == std::string_view::npos) {
      return ParseShorthand(keyword,
                            text.substr(open + 1, text.size() - open - 2),
                            schema);
    }
  }

  // Full form: (s1), (s2), ...  optionally wrapped in one outer paren pair.
  if (text.front() == '(' && text.back() == ')') {
    // Strip an outer wrapper only if it encloses the whole list.
    int depth = 0;
    bool wraps_all = true;
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')') {
        --depth;
        if (depth == 0 && i + 1 < text.size()) {
          wraps_all = false;
          break;
        }
      }
    }
    if (wraps_all) text = Trim(text.substr(1, text.size() - 2));
  }

  std::vector<GroupByRequest> requests;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ',' || std::isspace(
                                  static_cast<unsigned char>(text[i])))) {
      ++i;
    }
    if (i >= text.size()) break;
    if (text[i] != '(') {
      return Status::InvalidArgument("expected '(' at position " +
                                     std::to_string(i));
    }
    const size_t close = text.find(')', i);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unbalanced parentheses");
    }
    const std::string_view inner = text.substr(i + 1, close - i - 1);
    ColumnSet set;
    for (const std::string& name : SplitAndTrim(inner, ',')) {
      const int ord = schema.FindColumn(name);
      if (ord < 0) return Status::NotFound("no column named '" + name + "'");
      if (set.Contains(ord)) {
        return Status::InvalidArgument("duplicate column '" + name +
                                       "' in grouping set");
      }
      set = set.With(ord);
    }
    if (set.empty()) {
      return Status::InvalidArgument("empty grouping set");
    }
    requests.push_back(GroupByRequest::Count(set));
    i = close + 1;
  }
  if (requests.empty()) {
    return Status::InvalidArgument("no grouping sets found");
  }
  GBMQO_RETURN_NOT_OK(ValidateRequests(requests, schema));
  return requests;
}

}  // namespace gbmqo
