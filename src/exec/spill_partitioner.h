// Out-of-core aggregation support: the spill-file lifecycle and the memory
// meter that decides when a hash aggregation must leave RAM.
//
// When a group-by's realized group-table bytes exceed the configured budget
// (QueryExecutor::SpillOptions), the executor abandons the in-memory build
// and re-runs the query grace-hash style: one pass radix-partitions the
// input on the packed group key — by the *same* partition function the
// in-memory merge uses (GroupHashTable::PartitionOfHash /
// DenseGroupTable::PartitionOfSlot, kMergePartitions ways) — into one spill
// file per (shard, partition); then each partition is replayed and merged
// independently, so at most one partition's group state is resident at a
// time. Because spill partitions coincide exactly with merge partitions and
// records are written in shard scan order, the replay reproduces the
// in-memory path's group ids, output order, and double-fold order
// bit-for-bit (see DESIGN.md "Out-of-core aggregation").
//
// SpillFileSet owns the on-disk lifecycle under RAII: a unique directory is
// created per aggregation and removed — with every file in it — on
// destruction, so faults, cancellations, and thrown exceptions cannot leak
// spill files. Disk bytes are charged against the per-query max_spill_bytes
// cap and the global StorageGovernor disk ledger as they are written.
#ifndef GBMQO_EXEC_SPILL_PARTITIONER_H_
#define GBMQO_EXEC_SPILL_PARTITIONER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace gbmqo {

class StorageGovernor;

/// Thrown by MemoryMeter when the realized group-table bytes of an
/// in-memory aggregation exceed the memory budget. QueryExecutor catches it
/// and either restarts the query on the spill path (single group-by) or
/// surfaces Status::ResourceExhausted carrying the realized-vs-budgeted
/// numbers (shared scans, which the plan-level retry ladder then splits).
class SpillRequired : public std::runtime_error {
 public:
  SpillRequired(uint64_t realized_bytes, uint64_t budget_bytes)
      : std::runtime_error("group-table memory exhausted: realized " +
                           std::to_string(realized_bytes) +
                           " bytes exceeds the budget of " +
                           std::to_string(budget_bytes) + " bytes"),
        realized_bytes_(realized_bytes),
        budget_bytes_(budget_bytes) {}

  uint64_t realized_bytes() const { return realized_bytes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  uint64_t realized_bytes_;
  uint64_t budget_bytes_;
};

/// Shared running total of the realized group-table bytes of one
/// aggregation (all shards, build and merge phases). Workers report deltas
/// as their tables grow; when tripping is enabled and the total passes the
/// budget, the reporting worker throws SpillRequired. Whether a given input
/// trips is a pure function of (input, budget): bytes only ever grow, so
/// the total crosses the budget for every worker interleaving or none.
class MemoryMeter {
 public:
  /// `trip` = false meters without enforcing (used on the spill replay
  /// itself, where the per-partition working set is the point of the
  /// exercise and must be observable but not re-tripped).
  MemoryMeter(uint64_t budget_bytes, bool trip)
      : budget_bytes_(budget_bytes), trip_(trip) {}

  /// Adds `delta` (may be negative when a worker's table shrinks on
  /// handoff) and enforces the budget.
  void Charge(int64_t delta) {
    const int64_t now = used_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    if (trip_ && budget_bytes_ > 0 && now > static_cast<int64_t>(budget_bytes_)) {
      throw SpillRequired(static_cast<uint64_t>(now), budget_bytes_);
    }
  }

  uint64_t used() const {
    const int64_t v = used_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t peak() const {
    const int64_t v = peak_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  const uint64_t budget_bytes_;
  const bool trip_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// A set of `num_files` append-only spill files in a unique temp
/// subdirectory, removed in full on destruction. Writing is single-writer
/// per file (the partition pass gives each shard its own file range);
/// the byte ledgers are shared and thread-safe. Fault sites kSpillWrite and
/// kSpillRead fire inside Append/ReadAll keyed by the caller's fault key;
/// the shared disk sites (kDiskEnospc, kDiskShortWrite) model real write
/// failures and kSpillCorrupt flips a stored bit on read.
///
/// On-disk format: each Append call writes one checksummed frame —
/// u32 payload_len | u32 crc32(payload) | payload — and ReadAll verifies
/// every frame and returns the concatenated payloads, so byte-level
/// corruption is detected (never silently aggregated) and reported with
/// file and offset. The byte ledgers (max_bytes cap, governor disk ledger,
/// bytes_written/bytes_of) count *payload* bytes: callers size record
/// arrays from them and the budgets keep their PR-9 meaning; the 8-byte
/// frame headers ride along uncharged.
class SpillFileSet {
 public:
  /// Creates the spill directory under `parent` (empty = the system temp
  /// directory). Fails with ResourceExhausted/Internal without touching
  /// disk state the destructor wouldn't clean.
  static Result<std::unique_ptr<SpillFileSet>> Create(
      const std::string& parent, int num_files, uint64_t max_bytes,
      StorageGovernor* governor);

  /// Startup reaper: deletes `gbmqo-spill-<pid>-*` directories under
  /// `parent` (empty = the system temp directory) whose creating process is
  /// dead — the RAII cleanup above cannot run when the process is killed.
  /// Live processes' directories are never touched (the pid in the name is
  /// probed). Returns the number of directories removed.
  static uint64_t ReapStale(const std::string& parent);

  /// Closes and deletes every file and the directory; releases the
  /// governor's disk reservation.
  ~SpillFileSet();

  SpillFileSet(const SpillFileSet&) = delete;
  SpillFileSet& operator=(const SpillFileSet&) = delete;

  /// Appends `bytes` of `data` to file `index` as one checksummed frame,
  /// charging the per-query max_spill_bytes cap and the governor disk
  /// ledger. ResourceExhausted (with realized-vs-budgeted numbers) on
  /// either cap or on ENOSPC — real or injected via kDiskEnospc; Internal
  /// on any other I/O failure (short writes name the file and offset) or an
  /// injected kSpillWrite/kDiskShortWrite fault. After a failed write the
  /// file is not a valid frame sequence; the query abandons the whole set
  /// (the retry ladder re-runs), so no truncation discipline is needed.
  Status Append(int index, uint64_t fault_key, const void* data, size_t bytes);

  /// Flushes and closes every file opened for writing. Call once between
  /// the partition pass and the first ReadAll.
  Status FinishWrites();

  /// Reads file `index` in full, verifying every frame's CRC, and returns
  /// the concatenated payloads (empty vector for a never-written file).
  /// Internal on an I/O failure or an injected kSpillRead fault. A CRC or
  /// framing mismatch — real bit rot or an injected kSpillCorrupt fault —
  /// returns Internal naming file and offset and sets *corrupt (when
  /// non-null), which the executor maps to the recompute-partition retry
  /// rung instead of a plan-shape degradation.
  Result<std::vector<uint8_t>> ReadAll(int index, uint64_t fault_key,
                                       bool* corrupt = nullptr) const;

  /// Total bytes appended across all files so far.
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_of(int index) const {
    return file_bytes_[static_cast<size_t>(index)];
  }
  const std::string& directory() const { return directory_; }

 private:
  SpillFileSet(std::string directory, int num_files, uint64_t max_bytes,
               StorageGovernor* governor);

  std::string PathOf(int index) const;

  std::string directory_;
  uint64_t max_bytes_;
  StorageGovernor* governor_;
  std::vector<std::FILE*> files_;      // lazily opened; one writer per file
  std::vector<uint64_t> file_bytes_;   // payload sizes (read after writes end)
  std::vector<uint64_t> disk_bytes_;   // on-disk sizes incl. frame headers
  std::atomic<uint64_t> bytes_written_{0};
  std::mutex ledger_mu_;               // guards governor_held_
  uint64_t governor_held_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_SPILL_PARTITIONER_H_
