#include "exec/simd.h"

#include <cstdlib>

namespace gbmqo {

#if defined(GBMQO_SIMD_X86)
namespace simd_avx2 {
// Implemented in simd_avx2.cc, compiled with the avx2 target attribute so
// the rest of the build stays at the baseline ISA.
void OrShiftedCodes(const uint64_t* codes, size_t n, uint64_t base, int shift,
                    uint64_t* out);
void AddScaledDigits(const uint64_t* codes, size_t n, uint64_t base,
                     uint32_t stride, uint32_t* out);
void CompareDoublesBitmap(const double* vals, size_t n, simd::Cmp op,
                          double lit, uint64_t* bitmap);
void CompareInt64Bitmap(const int64_t* vals, size_t n, simd::Cmp op,
                        double lit, uint64_t* bitmap);
uint32_t ShiftEqMask8(const uint32_t* v, int shift, uint32_t target);
}  // namespace simd_avx2
#elif defined(GBMQO_SIMD_NEON)
namespace simd_neon {
// Implemented in simd_neon.cc. NEON is the aarch64 baseline, but the
// implementations live in their own TU to mirror the AVX2 layout.
void OrShiftedCodes(const uint64_t* codes, size_t n, uint64_t base, int shift,
                    uint64_t* out);
void AddScaledDigits(const uint64_t* codes, size_t n, uint64_t base,
                     uint32_t stride, uint32_t* out);
void CompareDoublesBitmap(const double* vals, size_t n, simd::Cmp op,
                          double lit, uint64_t* bitmap);
void CompareInt64Bitmap(const int64_t* vals, size_t n, simd::Cmp op,
                        double lit, uint64_t* bitmap);
uint32_t ShiftEqMask8(const uint32_t* v, int shift, uint32_t target);
}  // namespace simd_neon
#endif

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kNEON:
      return "neon";
  }
  return "scalar";
}

SimdLevel DetectSimdLevelUncached() {
  const char* env = std::getenv("GBMQO_DISABLE_SIMD");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return SimdLevel::kScalar;
  }
#if defined(GBMQO_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
  return SimdLevel::kScalar;
#elif defined(GBMQO_SIMD_NEON)
  return SimdLevel::kNEON;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = DetectSimdLevelUncached();
  return level;
}

namespace simd {
namespace {

bool CompareDouble(double v, Cmp op, double lit) {
  switch (op) {
    case Cmp::kEq:
      return v == lit;
    case Cmp::kNe:
      return v != lit;
    case Cmp::kLt:
      return v < lit;
    case Cmp::kLe:
      return v <= lit;
    case Cmp::kGt:
      return v > lit;
    case Cmp::kGe:
      return v >= lit;
  }
  return false;
}

void OrShiftedCodesScalar(const uint64_t* codes, size_t n, uint64_t base,
                          int shift, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] |= (codes[i] - base) << shift;
  }
}

void AddScaledDigitsScalar(const uint64_t* codes, size_t n, uint64_t base,
                           uint32_t stride, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] += static_cast<uint32_t>(codes[i] - base) * stride;
  }
}

void CompareDoublesBitmapScalar(const double* vals, size_t n, Cmp op,
                                double lit, uint64_t* bitmap) {
  for (size_t r = 0; r < n; ++r) {
    if (CompareDouble(vals[r], op, lit)) {
      bitmap[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
}

void CompareInt64BitmapScalar(const int64_t* vals, size_t n, Cmp op,
                              double lit, uint64_t* bitmap) {
  for (size_t r = 0; r < n; ++r) {
    if (CompareDouble(static_cast<double>(vals[r]), op, lit)) {
      bitmap[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
}

uint32_t ShiftEqMask8Scalar(const uint32_t* v, int shift, uint32_t target) {
  uint32_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    if ((v[i] >> shift) == target) mask |= 1u << i;
  }
  return mask;
}

}  // namespace

void OrShiftedCodes(SimdLevel level, const uint64_t* codes, size_t n,
                    uint64_t base, int shift, uint64_t* out) {
#if defined(GBMQO_SIMD_X86)
  if (level == SimdLevel::kAVX2) {
    simd_avx2::OrShiftedCodes(codes, n, base, shift, out);
    return;
  }
#elif defined(GBMQO_SIMD_NEON)
  if (level == SimdLevel::kNEON) {
    simd_neon::OrShiftedCodes(codes, n, base, shift, out);
    return;
  }
#endif
  (void)level;
  OrShiftedCodesScalar(codes, n, base, shift, out);
}

void AddScaledDigits(SimdLevel level, const uint64_t* codes, size_t n,
                     uint64_t base, uint32_t stride, uint32_t* out) {
#if defined(GBMQO_SIMD_X86)
  if (level == SimdLevel::kAVX2) {
    simd_avx2::AddScaledDigits(codes, n, base, stride, out);
    return;
  }
#elif defined(GBMQO_SIMD_NEON)
  if (level == SimdLevel::kNEON) {
    simd_neon::AddScaledDigits(codes, n, base, stride, out);
    return;
  }
#endif
  (void)level;
  AddScaledDigitsScalar(codes, n, base, stride, out);
}

void CompareDoublesBitmap(SimdLevel level, const double* vals, size_t n,
                          Cmp op, double lit, uint64_t* bitmap) {
#if defined(GBMQO_SIMD_X86)
  if (level == SimdLevel::kAVX2) {
    simd_avx2::CompareDoublesBitmap(vals, n, op, lit, bitmap);
    return;
  }
#elif defined(GBMQO_SIMD_NEON)
  if (level == SimdLevel::kNEON) {
    simd_neon::CompareDoublesBitmap(vals, n, op, lit, bitmap);
    return;
  }
#endif
  (void)level;
  CompareDoublesBitmapScalar(vals, n, op, lit, bitmap);
}

void CompareInt64Bitmap(SimdLevel level, const int64_t* vals, size_t n,
                        Cmp op, double lit, uint64_t* bitmap) {
#if defined(GBMQO_SIMD_X86)
  if (level == SimdLevel::kAVX2) {
    simd_avx2::CompareInt64Bitmap(vals, n, op, lit, bitmap);
    return;
  }
#elif defined(GBMQO_SIMD_NEON)
  if (level == SimdLevel::kNEON) {
    simd_neon::CompareInt64Bitmap(vals, n, op, lit, bitmap);
    return;
  }
#endif
  (void)level;
  CompareInt64BitmapScalar(vals, n, op, lit, bitmap);
}

void AndWords(uint64_t* dst, const uint64_t* src, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) dst[w] &= src[w];
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) dst[w] &= ~src[w];
}

uint32_t ShiftEqMask8(SimdLevel level, const uint32_t* v, int shift,
                      uint32_t target) {
#if defined(GBMQO_SIMD_X86)
  if (level == SimdLevel::kAVX2) {
    return simd_avx2::ShiftEqMask8(v, shift, target);
  }
#elif defined(GBMQO_SIMD_NEON)
  if (level == SimdLevel::kNEON) {
    return simd_neon::ShiftEqMask8(v, shift, target);
  }
#endif
  (void)level;
  return ShiftEqMask8Scalar(v, shift, target);
}

}  // namespace simd
}  // namespace gbmqo
