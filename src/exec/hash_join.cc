#include "exec/hash_join.h"

#include <unordered_map>
#include <vector>

namespace gbmqo {

namespace {

/// Joinable key: values are compared by *content* (not per-column dictionary
/// codes, which are incomparable across columns). Strings intern through the
/// probe map; numerics use the 64-bit bit pattern.
struct KeyedRows {
  std::unordered_map<uint64_t, std::vector<uint32_t>> numeric;
  std::unordered_map<std::string, std::vector<uint32_t>> strings;
};

KeyedRows BuildSide(const Table& table, int col_idx) {
  KeyedRows out;
  const Column& col = table.column(col_idx);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (col.IsNull(row)) continue;
    if (col.type() == DataType::kString) {
      out.strings[col.StringAt(row)].push_back(static_cast<uint32_t>(row));
    } else {
      out.numeric[col.CodeAt(row)].push_back(static_cast<uint32_t>(row));
    }
  }
  return out;
}

}  // namespace

Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const JoinSpec& spec, const std::string& name,
                          ExecContext* ctx) {
  if (spec.left_col < 0 || spec.left_col >= left.schema().num_columns() ||
      spec.right_col < 0 || spec.right_col >= right.schema().num_columns()) {
    return Status::InvalidArgument("join column out of range");
  }
  const DataType lt = left.schema().column(spec.left_col).type;
  const DataType rt = right.schema().column(spec.right_col).type;
  if (lt != rt) {
    return Status::InvalidArgument("join columns have different types");
  }

  // Output schema: left columns, then right columns (suffixing collisions).
  std::vector<ColumnDef> defs;
  for (int c = 0; c < left.schema().num_columns(); ++c) {
    defs.push_back(left.schema().column(c));
  }
  for (int c = 0; c < right.schema().num_columns(); ++c) {
    ColumnDef def = right.schema().column(c);
    if (left.schema().FindColumn(def.name) >= 0) def.name += "_r";
    defs.push_back(def);
  }
  TableBuilder builder{Schema(std::move(defs))};

  const KeyedRows build = BuildSide(right, spec.right_col);
  const Column& probe_col = left.column(spec.left_col);
  const int nl = left.schema().num_columns();
  const int nr = right.schema().num_columns();
  uint64_t emitted = 0;

  auto emit = [&](size_t lrow, const std::vector<uint32_t>& matches) {
    for (uint32_t rrow : matches) {
      for (int c = 0; c < nl; ++c) {
        builder.column(c)->AppendFrom(left.column(c), lrow);
      }
      for (int c = 0; c < nr; ++c) {
        builder.column(nl + c)->AppendFrom(right.column(c), rrow);
      }
      ++emitted;
    }
  };

  for (size_t lrow = 0; lrow < left.num_rows(); ++lrow) {
    if (probe_col.IsNull(lrow)) continue;
    if (lt == DataType::kString) {
      auto it = build.strings.find(probe_col.StringAt(lrow));
      if (it != build.strings.end()) emit(lrow, it->second);
    } else {
      auto it = build.numeric.find(probe_col.CodeAt(lrow));
      if (it != build.numeric.end()) emit(lrow, it->second);
    }
  }

  Result<TablePtr> out = builder.Build(name);
  if (ctx != nullptr && out.ok()) {
    WorkCounters& wc = ctx->counters();
    wc.rows_scanned += left.num_rows() + right.num_rows();
    wc.bytes_scanned += static_cast<uint64_t>(
        static_cast<double>(left.num_rows()) * left.AvgRowWidth({}) +
        static_cast<double>(right.num_rows()) * right.AvgRowWidth({}));
    wc.rows_emitted += emitted;
    wc.hash_probes += left.num_rows();
    wc.bytes_materialized += (*out)->ByteSize();  // join output is spooled
  }
  return out;
}

}  // namespace gbmqo
