#include "exec/agg_kernel.h"

#include <algorithm>
#include <bit>

namespace gbmqo {

AggKernelPlan PlanAggKernel(const Table& input, ColumnSet grouping,
                            AggKernel preferred) {
  AggKernelPlan plan;
  for (int ordinal : grouping.ToVector()) {
    const Column& col = input.column(ordinal);
    KernelColumn kc;
    kc.col = &col;
    kc.code_min = col.CodeRangeMin();
    kc.bits = col.CodeBits();
    kc.nullable = col.has_nulls();
    if (kc.nullable) plan.track_nulls = true;
    plan.cols.push_back(kc);
  }
  plan.key_width =
      static_cast<int>(plan.cols.size()) + (plan.track_nulls ? 1 : 0);
  if (plan.key_width == 0) plan.key_width = 1;  // empty grouping: constant key

  if (preferred == AggKernel::kDenseArray) {
    // Dense eligibility: the mixed-radix product of per-column domains must
    // fit the slot budget. Bail on any factor >= budget before forming
    // radix = range + 1 (+ NULL slot), so nothing here can overflow: every
    // partial product and factor stays <= kDenseSlotBudget + 1 < 2^32.
    uint64_t slots = 1;
    bool ok = true;
    for (const KernelColumn& kc : plan.cols) {
      const uint64_t range = kc.col->CodeRange();
      if (range >= kDenseSlotBudget) {
        ok = false;
        break;
      }
      slots *= range + 1 + (kc.nullable ? 1 : 0);
      if (slots > kDenseSlotBudget) {
        ok = false;
        break;
      }
    }
    if (ok) {
      plan.kernel = AggKernel::kDenseArray;
      uint32_t stride = 1;
      for (KernelColumn& kc : plan.cols) {
        kc.radix = static_cast<uint32_t>(kc.col->CodeRange() + 1 +
                                         (kc.nullable ? 1 : 0));
        kc.stride = stride;
        stride *= kc.radix;
      }
      // Pad to a power of two >= 64 so the merge can partition the slot
      // space into equal contiguous ranges (DenseGroupTable::
      // PartitionOfSlot) for any partition count up to 64.
      plan.dense_capacity = std::bit_ceil(std::max<uint64_t>(slots, 64));
      return plan;
    }
  }

  if (preferred != AggKernel::kMultiWord) {
    // Packed eligibility: value bits + one NULL bit per nullable column
    // must fit one word. Layout: value fields low-to-high in column order,
    // then the NULL bits.
    int bits = 0;
    for (const KernelColumn& kc : plan.cols) {
      bits += kc.bits + (kc.nullable ? 1 : 0);
    }
    if (bits <= 64) {
      plan.kernel = AggKernel::kPackedKey;
      int shift = 0;
      for (KernelColumn& kc : plan.cols) {
        kc.shift = shift;
        shift += kc.bits;
      }
      for (KernelColumn& kc : plan.cols) {
        if (kc.nullable) kc.null_bit = shift++;
      }
      plan.total_bits = shift;
      plan.key_width = 1;
      return plan;
    }
  }

  plan.kernel = AggKernel::kMultiWord;
  return plan;
}

void BlockKeyFiller::FillPacked(size_t begin, size_t count, uint64_t* out) {
  std::fill(out, out + count, 0);
  for (const KernelColumn& kc : plan_->cols) {
    if (kc.bits == 0 && !kc.nullable) continue;  // single-valued: no bits
    kc.col->CodeBlock(begin, count, codes_.data());
    const uint64_t min = kc.code_min;
    const int shift = kc.shift;
    if (!kc.nullable) {
      for (size_t i = 0; i < count; ++i) {
        out[i] |= (codes_[i] - min) << shift;
      }
    } else {
      const uint64_t null_mask = 1ull << kc.null_bit;
      for (size_t i = 0; i < count; ++i) {
        // NULL rows must not shift their placeholder code into the key:
        // they contribute only the NULL bit (value field stays zero).
        if (kc.col->IsNull(begin + i)) {
          out[i] |= null_mask;
        } else {
          out[i] |= (codes_[i] - min) << shift;
        }
      }
    }
  }
}

void BlockKeyFiller::FillDense(size_t begin, size_t count, uint32_t* out) {
  std::fill(out, out + count, 0);
  for (const KernelColumn& kc : plan_->cols) {
    kc.col->CodeBlock(begin, count, codes_.data());
    const uint64_t min = kc.code_min;
    const uint32_t stride = kc.stride;
    if (!kc.nullable) {
      for (size_t i = 0; i < count; ++i) {
        out[i] += static_cast<uint32_t>(codes_[i] - min) * stride;
      }
    } else {
      // NULL takes digit 0; values shift up by one.
      for (size_t i = 0; i < count; ++i) {
        const uint32_t digit =
            kc.col->IsNull(begin + i)
                ? 0u
                : static_cast<uint32_t>(codes_[i] - min) + 1u;
        out[i] += digit * stride;
      }
    }
  }
}

void BlockKeyFiller::FillMultiWord(size_t begin, size_t count, uint64_t* out) {
  const size_t kw = static_cast<size_t>(plan_->key_width);
  std::fill(out, out + count * kw, 0);
  const size_t ncols = plan_->cols.size();
  for (size_t c = 0; c < ncols; ++c) {
    const KernelColumn& kc = plan_->cols[c];
    kc.col->CodeBlock(begin, count, codes_.data());
    if (!kc.nullable) {
      for (size_t i = 0; i < count; ++i) {
        out[i * kw + c] = codes_[i];
      }
    } else {
      const uint64_t null_flag = 1ull << c;
      for (size_t i = 0; i < count; ++i) {
        // Same layout as KeyBuilder::FillKey: zero code word + a bit in the
        // trailing null-mask word (index ncols, exists since track_nulls).
        if (kc.col->IsNull(begin + i)) {
          out[i * kw + ncols] |= null_flag;
        } else {
          out[i * kw + c] = codes_[i];
        }
      }
    }
  }
}

}  // namespace gbmqo
