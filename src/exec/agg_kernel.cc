#include "exec/agg_kernel.h"

#include <algorithm>
#include <bit>

namespace gbmqo {

AggKernelPlan PlanAggKernel(const Table& input, ColumnSet grouping,
                            AggKernel preferred) {
  AggKernelPlan plan;
  for (int ordinal : grouping.ToVector()) {
    const Column& col = input.column(ordinal);
    KernelColumn kc;
    kc.col = &col;
    kc.code_min = col.CodeRangeMin();
    kc.bits = col.CodeBits();
    kc.nullable = col.has_nulls();
    if (kc.nullable) plan.track_nulls = true;
    plan.cols.push_back(kc);
  }
  plan.key_width =
      static_cast<int>(plan.cols.size()) + (plan.track_nulls ? 1 : 0);
  if (plan.key_width == 0) plan.key_width = 1;  // empty grouping: constant key

  if (preferred == AggKernel::kDenseArray) {
    // Dense eligibility: the mixed-radix product of per-column domains must
    // fit the slot budget. Bail on any factor >= budget before forming
    // radix = range + 1 (+ NULL slot), so nothing here can overflow: every
    // partial product and factor stays <= kDenseSlotBudget + 1 < 2^32.
    uint64_t slots = 1;
    bool ok = true;
    for (const KernelColumn& kc : plan.cols) {
      const uint64_t range = kc.col->CodeRange();
      if (range >= kDenseSlotBudget) {
        ok = false;
        break;
      }
      slots *= range + 1 + (kc.nullable ? 1 : 0);
      if (slots > kDenseSlotBudget) {
        ok = false;
        break;
      }
    }
    if (ok) {
      plan.kernel = AggKernel::kDenseArray;
      uint32_t stride = 1;
      for (KernelColumn& kc : plan.cols) {
        kc.radix = static_cast<uint32_t>(kc.col->CodeRange() + 1 +
                                         (kc.nullable ? 1 : 0));
        kc.stride = stride;
        stride *= kc.radix;
      }
      // Pad to a power of two >= 64 so the merge can partition the slot
      // space into equal contiguous ranges (DenseGroupTable::
      // PartitionOfSlot) for any partition count up to 64.
      plan.dense_capacity = std::bit_ceil(std::max<uint64_t>(slots, 64));
      return plan;
    }
  }

  if (preferred != AggKernel::kMultiWord) {
    // Packed eligibility: value bits + one NULL bit per nullable column
    // must fit one word. Layout: value fields low-to-high in column order,
    // then the NULL bits. kSortRuns shares the layout — it sorts the very
    // same packed words — so eligibility is identical.
    int bits = 0;
    for (const KernelColumn& kc : plan.cols) {
      bits += kc.bits + (kc.nullable ? 1 : 0);
    }
    if (bits <= 64) {
      int shift = 0;
      for (KernelColumn& kc : plan.cols) {
        kc.shift = shift;
        shift += kc.bits;
      }
      for (KernelColumn& kc : plan.cols) {
        if (kc.nullable) kc.null_bit = shift++;
      }
      plan.total_bits = shift;
      plan.key_width = 1;
      if (preferred == AggKernel::kSortRuns) {
        plan.kernel = AggKernel::kSortRuns;
      } else if (preferred == AggKernel::kDenseArray) {
        // Auto ladder: hash-vs-sort crossover. The group count is at most
        // the smaller of the row count and the packed key domain (2 ^
        // total_bits, saturated); only past the crossover does the hash
        // build's miss-dominated tail lose to the sort. Forcing kPackedKey
        // pins the hash side, so the crossover never flips a forced run.
        const uint64_t domain =
            plan.total_bits >= 64 ? UINT64_MAX : (1ull << plan.total_bits);
        const uint64_t est_groups = std::min<uint64_t>(input.num_rows(), domain);
        plan.kernel = est_groups > kSortCrossoverGroups
                          ? AggKernel::kSortRuns
                          : AggKernel::kPackedKey;
      } else {
        plan.kernel = AggKernel::kPackedKey;
      }
      return plan;
    }
  }

  plan.kernel = AggKernel::kMultiWord;
  return plan;
}

void BlockKeyFiller::FillPacked(size_t begin, size_t count, uint64_t* out) {
  std::fill(out, out + count, 0);
  for (const KernelColumn& kc : plan_->cols) {
    if (kc.bits == 0 && !kc.nullable) continue;  // single-valued: no bits
    kc.col->CodeBlock(begin, count, codes_.data());
    const uint64_t min = kc.code_min;
    const int shift = kc.shift;
    if (!kc.nullable) {
      simd::OrShiftedCodes(simd_, codes_.data(), count, min, shift, out);
    } else {
      const uint64_t null_mask = 1ull << kc.null_bit;
      // Hybrid: 64-row chunks whose null word is clear take the vector
      // shift-and-or loop; a chunk containing a NULL falls back to the
      // per-row branch (NULL rows must not shift their placeholder code
      // into the key — they contribute only the NULL bit).
      size_t i = 0;
      while (i < count) {
        const size_t chunk = std::min<size_t>(64, count - i);
        const uint64_t nulls = kc.col->NullWord(begin + i, chunk);
        if (nulls == 0) {
          simd::OrShiftedCodes(simd_, codes_.data() + i, chunk, min, shift,
                               out + i);
        } else {
          for (size_t j = 0; j < chunk; ++j) {
            if ((nulls >> j) & 1) {
              out[i + j] |= null_mask;
            } else {
              out[i + j] |= (codes_[i + j] - min) << shift;
            }
          }
        }
        i += chunk;
      }
    }
  }
}

void BlockKeyFiller::FillDense(size_t begin, size_t count, uint32_t* out) {
  std::fill(out, out + count, 0);
  for (const KernelColumn& kc : plan_->cols) {
    kc.col->CodeBlock(begin, count, codes_.data());
    const uint64_t min = kc.code_min;
    const uint32_t stride = kc.stride;
    if (!kc.nullable) {
      simd::AddScaledDigits(simd_, codes_.data(), count, min, stride, out);
    } else {
      // NULL takes digit 0; values shift up by one. For NULL-free 64-row
      // chunks the +1 folds into the subtracted base (wrapping min - 1
      // makes code - base == (code - min) + 1), keeping the vector loop.
      size_t i = 0;
      while (i < count) {
        const size_t chunk = std::min<size_t>(64, count - i);
        const uint64_t nulls = kc.col->NullWord(begin + i, chunk);
        if (nulls == 0) {
          simd::AddScaledDigits(simd_, codes_.data() + i, chunk, min - 1,
                                stride, out + i);
        } else {
          for (size_t j = 0; j < chunk; ++j) {
            const uint32_t digit =
                ((nulls >> j) & 1)
                    ? 0u
                    : static_cast<uint32_t>(codes_[i + j] - min) + 1u;
            out[i + j] += digit * stride;
          }
        }
        i += chunk;
      }
    }
  }
}

void BlockKeyFiller::FillMultiWord(size_t begin, size_t count, uint64_t* out) {
  // Stays scalar on every tier: the key words are strided (one row =
  // key_width consecutive words), so vector stores would need scatters.
  // The multi-word kernel is dominated by hashing/compares anyway.
  const size_t kw = static_cast<size_t>(plan_->key_width);
  std::fill(out, out + count * kw, 0);
  const size_t ncols = plan_->cols.size();
  for (size_t c = 0; c < ncols; ++c) {
    const KernelColumn& kc = plan_->cols[c];
    kc.col->CodeBlock(begin, count, codes_.data());
    if (!kc.nullable) {
      for (size_t i = 0; i < count; ++i) {
        out[i * kw + c] = codes_[i];
      }
    } else {
      const uint64_t null_flag = 1ull << c;
      for (size_t i = 0; i < count; ++i) {
        // Same layout as KeyBuilder::FillKey: zero code word + a bit in the
        // trailing null-mask word (index ncols, exists since track_nulls).
        if (kc.col->IsNull(begin + i)) {
          out[i * kw + ncols] |= null_flag;
        } else {
          out[i * kw + c] = codes_[i];
        }
      }
    }
  }
}

}  // namespace gbmqo
