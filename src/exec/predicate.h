// Predicates and filtering: the selection substrate for Section 5.1.1
// (GROUPING SETS queries with selections, which commute below the grouping).
#ifndef GBMQO_EXEC_PREDICATE_H_
#define GBMQO_EXEC_PREDICATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/simd.h"
#include "storage/table.h"

namespace gbmqo {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One column-vs-literal comparison. SQL semantics: any comparison against
/// NULL is false.
struct Comparison {
  int column = 0;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// A conjunction of comparisons. Default-constructed predicate is TRUE.
class Predicate {
 public:
  Predicate() = default;

  /// Adds a conjunct; returns *this for chaining.
  Predicate& And(Comparison cmp) {
    conjuncts_.push_back(std::move(cmp));
    return *this;
  }
  static Predicate True() { return Predicate(); }

  bool is_true() const { return conjuncts_.empty(); }
  const std::vector<Comparison>& conjuncts() const { return conjuncts_; }

  /// Checks the conjuncts are type-compatible with `schema`.
  Status Validate(const Schema& schema) const;

  /// Row-level evaluation. Call Validate first; mismatches here are false.
  bool Matches(const Table& table, size_t row) const;

  /// Debug rendering, e.g. "c3 >= 10 AND c0 = 'x'".
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Comparison> conjuncts_;
};

/// Materializes `SELECT * FROM table WHERE predicate` as a new table named
/// `name`. Charges a full scan to `ctx`.
///
/// Columnar evaluation: each conjunct is compared vector-at-a-time into a
/// selection bitmap (numeric columns via exec/simd.h at `simd`; string
/// columns decide once per distinct dictionary entry), the bitmap is
/// AND-NOT'd with each conjunct column's null bitmap (NULL never satisfies
/// a comparison), and survivors are copied column-wise in runs of
/// consecutive rows (Column::AppendRangeFrom) with capacity reserved from
/// the match count. Output rows, order, and counters are identical across
/// SIMD tiers — kScalar runs the same bitmap pipeline with scalar compares.
Result<TablePtr> ApplyFilter(const Table& table, const Predicate& predicate,
                             const std::string& name, ExecContext* ctx,
                             SimdLevel simd = DetectedSimdLevel());

}  // namespace gbmqo

#endif  // GBMQO_EXEC_PREDICATE_H_
