#include "exec/group_hash_table.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstring>

namespace gbmqo {

namespace {
// 0 = no override (use kMaxGroups). Relaxed: only read on the (rare)
// new-group branch, and tests set it before running aggregations.
std::atomic<size_t> g_max_groups_override{0};
}  // namespace

void GroupHashTable::OverrideMaxGroupsForTest(size_t limit) {
  g_max_groups_override.store(limit, std::memory_order_relaxed);
}

size_t GroupHashTable::max_groups() {
  const size_t limit = g_max_groups_override.load(std::memory_order_relaxed);
  return limit == 0 ? kMaxGroups : limit;
}

namespace {
// 64-bit finalizer (xxHash-style avalanche).
inline uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

GroupHashTable::GroupHashTable(int key_width, size_t initial_capacity,
                               SimdLevel simd)
    : key_width_(key_width), simd_(simd) {
  assert(key_width >= 1);
  size_t cap = std::bit_ceil(initial_capacity < 16 ? size_t{16} : initial_capacity);
  slots_.assign(cap, 0);
  meta_.assign(cap + kMetaGroup - 1, 0);
  slot_mask_ = cap - 1;
}

uint64_t GroupHashTable::HashKey(const uint64_t* key, int width) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < width; ++i) {
    h = Mix(h ^ key[i]);
  }
  return h;
}

uint64_t GroupHashTable::Hash(const uint64_t* key, int width) {
  return HashKey(key, width);
}

size_t GroupHashTable::MergeFrom(
    const GroupHashTable& src, int num_partitions, int partition,
    std::vector<std::pair<uint32_t, uint32_t>>* mapping) {
  assert(src.key_width_ == key_width_);
  size_t taken = 0;
  for (uint32_t id = 0; id < static_cast<uint32_t>(src.num_groups_); ++id) {
    const uint64_t* key = src.KeyOf(id);
    if (PartitionOfHash(HashKey(key, key_width_), num_partitions) != partition) {
      continue;
    }
    const uint32_t dst = FindOrInsert(key);
    if (mapping != nullptr) mapping->emplace_back(id, dst);
    ++taken;
  }
  return taken;
}

void GroupHashTable::Grow() {
  const size_t new_cap = slots_.size() * 2;
  std::vector<uint32_t> new_slots(new_cap, 0);
  std::vector<uint8_t> new_meta(new_cap + kMetaGroup - 1, 0);
  const size_t new_mask = new_cap - 1;
  for (uint32_t tag : slots_) {
    if (tag == 0) continue;
    const uint32_t id = tag - 1;
    const uint64_t* key = KeyOf(id);
    const uint64_t hash = HashKey(key, key_width_);
    size_t pos = hash & new_mask;
    while (new_slots[pos] != 0) pos = (pos + 1) & new_mask;
    new_slots[pos] = tag;
    new_meta[pos] = H2(hash);
    if (pos < kMetaGroup - 1) new_meta[new_cap + pos] = H2(hash);
  }
  slots_ = std::move(new_slots);
  meta_ = std::move(new_meta);
  slot_mask_ = new_mask;
}

uint32_t GroupHashTable::InsertAt(size_t pos, uint64_t hash,
                                  const uint64_t* key, bool* inserted) {
  if (num_groups_ >= max_groups()) {
    throw GroupIdSpaceExhausted(num_groups_, max_groups());
  }
  const uint32_t id = static_cast<uint32_t>(num_groups_++);
  arena_.insert(arena_.end(), key, key + key_width_);
  slots_[pos] = id + 1;
  SetMeta(pos, H2(hash));
  if (inserted != nullptr) *inserted = true;
  return id;
}

uint32_t GroupHashTable::FindOrInsertTagged(const uint64_t* key, uint64_t hash,
                                            bool* inserted) {
  // Visits the same slot sequence as the scalar probe, but skips slots
  // whose tag rules them out without touching their keys: a slot with a
  // non-matching non-zero tag is occupied by a key of a different hash, so
  // it can neither terminate the probe (not empty) nor match (equal keys
  // have equal tags). The first empty-or-candidate slot in order is
  // therefore the same slot the scalar loop would stop at or test.
  const size_t home = hash & slot_mask_;
  const uint8_t h2 = H2(hash);
  size_t p = home;
  while (true) {
    uint32_t eq = 0, zero = 0;
    simd::ScanGroup16(meta_.data() + p, h2, &eq, &zero);
    uint32_t m = eq | zero;
    while (m != 0) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      const size_t pos = (p + static_cast<size_t>(lane)) & slot_mask_;
      // Scalar equivalence: one probe per slot from home through here.
      const uint64_t walked = (pos - home) & slot_mask_;
      if ((zero >> lane) & 1u) {
        probes_ += walked + 1;
        return InsertAt(pos, hash, key, inserted);
      }
      const uint32_t id = slots_[pos] - 1;
      if (std::memcmp(KeyOf(id), key,
                      sizeof(uint64_t) * static_cast<size_t>(key_width_)) ==
          0) {
        probes_ += walked + 1;
        if (inserted != nullptr) *inserted = false;
        return id;
      }
    }
    p = (p + kMetaGroup) & slot_mask_;
  }
}

uint32_t GroupHashTable::FindOrInsert(const uint64_t* key, bool* inserted) {
  if ((num_groups_ + 1) * 10 > slots_.size() * 7) Grow();
  const uint64_t hash = HashKey(key, key_width_);
  if (simd_ != SimdLevel::kScalar) {
    return FindOrInsertTagged(key, hash, inserted);
  }
  size_t pos = hash & slot_mask_;
  while (true) {
    ++probes_;
    const uint32_t tag = slots_[pos];
    if (tag == 0) {
      return InsertAt(pos, hash, key, inserted);
    }
    const uint32_t id = tag - 1;
    if (std::memcmp(KeyOf(id), key,
                    sizeof(uint64_t) * static_cast<size_t>(key_width_)) == 0) {
      if (inserted != nullptr) *inserted = false;
      return id;
    }
    pos = (pos + 1) & slot_mask_;
  }
}

int DenseGroupTable::PartitionOfSlot(uint64_t slot, int num_partitions,
                                     uint64_t capacity) {
  if (num_partitions <= 1) return 0;
  assert(std::has_single_bit(capacity) &&
         std::has_single_bit(static_cast<uint64_t>(num_partitions)) &&
         capacity >= static_cast<uint64_t>(num_partitions));
  const int shift = std::countr_zero(capacity) -
                    std::countr_zero(static_cast<uint64_t>(num_partitions));
  return static_cast<int>(slot >> shift);
}

size_t DenseGroupTable::MergeFrom(
    const DenseGroupTable& src, int num_partitions, int partition,
    uint64_t capacity, std::vector<std::pair<uint32_t, uint32_t>>* mapping) {
  size_t taken = 0;
  const uint32_t n = static_cast<uint32_t>(src.size());
  const auto take = [&](uint32_t id) {
    const uint32_t dst = FindOrInsert(src.group_slots_[id]);
    if (mapping != nullptr) mapping->emplace_back(id, dst);
    ++taken;
  };
  if (num_partitions <= 1) {
    for (uint32_t id = 0; id < n; ++id) take(id);
    return taken;
  }
  assert(std::has_single_bit(capacity) &&
         std::has_single_bit(static_cast<uint64_t>(num_partitions)) &&
         capacity >= static_cast<uint64_t>(num_partitions));
  const int shift = std::countr_zero(capacity) -
                    std::countr_zero(static_cast<uint64_t>(num_partitions));
  const uint32_t target = static_cast<uint32_t>(partition);
  uint32_t id = 0;
  if (simd_ != SimdLevel::kScalar) {
    // 8-wide partition scan; mask bits are consumed in ascending lane
    // order, so taken groups keep ascending src-id order.
    for (; id + 8 <= n; id += 8) {
      uint32_t m = simd::ShiftEqMask8(simd_, src.group_slots_.data() + id,
                                      shift, target);
      while (m != 0) {
        const int lane = std::countr_zero(m);
        m &= m - 1;
        take(id + static_cast<uint32_t>(lane));
      }
    }
  }
  for (; id < n; ++id) {
    if ((src.group_slots_[id] >> shift) == target) take(id);
  }
  return taken;
}

}  // namespace gbmqo
