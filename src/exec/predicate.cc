#include "exec/predicate.h"

namespace gbmqo {

namespace {

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

template <typename T>
bool Compare(const T& a, CompareOp op, const T& b) {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace

Status Predicate::Validate(const Schema& schema) const {
  for (const Comparison& cmp : conjuncts_) {
    if (cmp.column < 0 || cmp.column >= schema.num_columns()) {
      return Status::InvalidArgument("predicate column out of range");
    }
    if (cmp.literal.is_null()) {
      return Status::InvalidArgument(
          "comparison against NULL is always false; use IS NULL semantics "
          "explicitly if needed");
    }
    const DataType type = schema.column(cmp.column).type;
    const bool numeric_literal = cmp.literal.is_int64() || cmp.literal.is_double();
    if (type == DataType::kString && !cmp.literal.is_string()) {
      return Status::InvalidArgument("string column compared to non-string");
    }
    if (type != DataType::kString && !numeric_literal) {
      return Status::InvalidArgument("numeric column compared to non-number");
    }
  }
  return Status::OK();
}

bool Predicate::Matches(const Table& table, size_t row) const {
  for (const Comparison& cmp : conjuncts_) {
    const Column& col = table.column(cmp.column);
    if (col.IsNull(row)) return false;  // NULL never satisfies a comparison
    bool ok = false;
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kDouble:
        ok = Compare(col.NumericAt(row), cmp.op, cmp.literal.AsDouble());
        break;
      case DataType::kString:
        ok = cmp.literal.is_string() &&
             Compare(col.StringAt(row), cmp.op, cmp.literal.str());
        break;
    }
    if (!ok) return false;
  }
  return true;
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conjuncts_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += " AND ";
    const Comparison& cmp = conjuncts_[i];
    out += schema.column(cmp.column).name;
    out += " ";
    out += OpName(cmp.op);
    out += " ";
    if (cmp.literal.is_string()) {
      out += "'" + cmp.literal.str() + "'";
    } else {
      out += cmp.literal.ToString();
    }
  }
  return out;
}

Result<TablePtr> ApplyFilter(const Table& table, const Predicate& predicate,
                             const std::string& name, ExecContext* ctx) {
  GBMQO_RETURN_NOT_OK(predicate.Validate(table.schema()));
  TableBuilder builder(table.schema());
  size_t kept = 0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!predicate.Matches(table, row)) continue;
    for (int c = 0; c < table.schema().num_columns(); ++c) {
      builder.column(c)->AppendFrom(table.column(c), row);
    }
    ++kept;
  }
  Result<TablePtr> out = builder.Build(name);
  if (ctx != nullptr && out.ok()) {
    WorkCounters& wc = ctx->counters();
    wc.rows_scanned += table.num_rows();
    wc.bytes_scanned += static_cast<uint64_t>(
        static_cast<double>(table.num_rows()) * table.AvgRowWidth({}));
    wc.rows_emitted += kept;
    wc.bytes_materialized += (*out)->ByteSize();  // filter output is spooled
  }
  return out;
}

}  // namespace gbmqo
