#include "exec/predicate.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace gbmqo {

namespace {

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

template <typename T>
bool Compare(const T& a, CompareOp op, const T& b) {
  switch (op) {
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kGt: return a > b;
    case CompareOp::kGe: return a >= b;
  }
  return false;
}

simd::Cmp ToSimdCmp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return simd::Cmp::kEq;
    case CompareOp::kNe: return simd::Cmp::kNe;
    case CompareOp::kLt: return simd::Cmp::kLt;
    case CompareOp::kLe: return simd::Cmp::kLe;
    case CompareOp::kGt: return simd::Cmp::kGt;
    case CompareOp::kGe: return simd::Cmp::kGe;
  }
  return simd::Cmp::kEq;
}

// First set (clear) bit index in [from, n) of the bitmap; n when none.
size_t NextSetBit(const std::vector<uint64_t>& bits, size_t from, size_t n) {
  if (from >= n) return n;
  size_t w = from >> 6;
  uint64_t word = bits[w] & (~uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w >= bits.size()) return n;
    word = bits[w];
  }
  const size_t r = (w << 6) + static_cast<size_t>(std::countr_zero(word));
  return r < n ? r : n;
}

size_t NextClearBit(const std::vector<uint64_t>& bits, size_t from, size_t n) {
  if (from >= n) return n;
  size_t w = from >> 6;
  uint64_t word = ~bits[w] & (~uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w >= bits.size()) return n;
    word = ~bits[w];
  }
  const size_t r = (w << 6) + static_cast<size_t>(std::countr_zero(word));
  return r < n ? r : n;
}

}  // namespace

Status Predicate::Validate(const Schema& schema) const {
  for (const Comparison& cmp : conjuncts_) {
    if (cmp.column < 0 || cmp.column >= schema.num_columns()) {
      return Status::InvalidArgument("predicate column out of range");
    }
    if (cmp.literal.is_null()) {
      return Status::InvalidArgument(
          "comparison against NULL is always false; use IS NULL semantics "
          "explicitly if needed");
    }
    const DataType type = schema.column(cmp.column).type;
    const bool numeric_literal = cmp.literal.is_int64() || cmp.literal.is_double();
    if (type == DataType::kString && !cmp.literal.is_string()) {
      return Status::InvalidArgument("string column compared to non-string");
    }
    if (type != DataType::kString && !numeric_literal) {
      return Status::InvalidArgument("numeric column compared to non-number");
    }
  }
  return Status::OK();
}

bool Predicate::Matches(const Table& table, size_t row) const {
  for (const Comparison& cmp : conjuncts_) {
    const Column& col = table.column(cmp.column);
    if (col.IsNull(row)) return false;  // NULL never satisfies a comparison
    bool ok = false;
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kDouble:
        ok = Compare(col.NumericAt(row), cmp.op, cmp.literal.AsDouble());
        break;
      case DataType::kString:
        ok = cmp.literal.is_string() &&
             Compare(col.StringAt(row), cmp.op, cmp.literal.str());
        break;
    }
    if (!ok) return false;
  }
  return true;
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conjuncts_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += " AND ";
    const Comparison& cmp = conjuncts_[i];
    out += schema.column(cmp.column).name;
    out += " ";
    out += OpName(cmp.op);
    out += " ";
    if (cmp.literal.is_string()) {
      out += "'" + cmp.literal.str() + "'";
    } else {
      out += cmp.literal.ToString();
    }
  }
  return out;
}

Result<TablePtr> ApplyFilter(const Table& table, const Predicate& predicate,
                             const std::string& name, ExecContext* ctx,
                             SimdLevel simd) {
  GBMQO_RETURN_NOT_OK(predicate.Validate(table.schema()));
  const size_t n = table.num_rows();
  const size_t nwords = (n + 63) / 64;
  // bit r = row r survives every conjunct folded in so far. Starts all-set
  // with the bits past n cleared, so popcounts and run scans need no
  // end-of-table masking.
  std::vector<uint64_t> sel(nwords, ~uint64_t{0});
  if (nwords > 0 && (n & 63) != 0) {
    sel[nwords - 1] = (uint64_t{1} << (n & 63)) - 1;
  }
  std::vector<uint64_t> cmp;
  for (const Comparison& c : predicate.conjuncts()) {
    const Column& col = table.column(c.column);
    cmp.assign(nwords, 0);
    switch (col.type()) {
      case DataType::kInt64:
        // int64 widens to double before comparing, matching Matches /
        // Column::NumericAt. NULL rows compare their 0 placeholder here;
        // the null-bitmap AND-NOT below clears them regardless.
        simd::CompareInt64Bitmap(simd, col.int64_data(), n, ToSimdCmp(c.op),
                                 c.literal.AsDouble(), cmp.data());
        break;
      case DataType::kDouble:
        simd::CompareDoublesBitmap(simd, col.double_data(), n,
                                   ToSimdCmp(c.op), c.literal.AsDouble(),
                                   cmp.data());
        break;
      case DataType::kString: {
        // Decide once per distinct dictionary entry, then spread the
        // verdicts by code — string compares cost O(dict), not O(rows).
        std::vector<uint8_t> verdict(col.dict_size());
        for (size_t k = 0; k < verdict.size(); ++k) {
          verdict[k] =
              Compare(col.DictEntry(k), c.op, c.literal.str()) ? 1 : 0;
        }
        const uint32_t* codes = col.string_codes();
        for (size_t r = 0; r < n; ++r) {
          cmp[r >> 6] |= static_cast<uint64_t>(verdict[codes[r]]) << (r & 63);
        }
        break;
      }
    }
    simd::AndWords(sel.data(), cmp.data(), nwords);
    if (col.has_nulls()) {
      simd::AndNotWords(sel.data(), col.null_words(), nwords);
    }
  }
  size_t kept = 0;
  for (const uint64_t w : sel) {
    kept += static_cast<size_t>(std::popcount(w));
  }
  TableBuilder builder(table.schema());
  const int ncols = table.schema().num_columns();
  for (int c = 0; c < ncols; ++c) {
    builder.column(c)->Reserve(kept);
  }
  // Copy survivors column-wise, one AppendRangeFrom per run of consecutive
  // selected rows.
  size_t row = 0;
  while (row < n) {
    const size_t run_begin = NextSetBit(sel, row, n);
    if (run_begin >= n) break;
    const size_t run_end = NextClearBit(sel, run_begin, n);
    for (int c = 0; c < ncols; ++c) {
      builder.column(c)->AppendRangeFrom(table.column(c), run_begin,
                                         run_end - run_begin);
    }
    row = run_end;
  }
  Result<TablePtr> out = builder.Build(name);
  if (ctx != nullptr && out.ok()) {
    WorkCounters& wc = ctx->counters();
    wc.rows_scanned += table.num_rows();
    wc.bytes_scanned += static_cast<uint64_t>(
        static_cast<double>(table.num_rows()) * table.AvgRowWidth({}));
    wc.rows_emitted += kept;
    wc.bytes_materialized += (*out)->ByteSize();  // filter output is spooled
  }
  return out;
}

}  // namespace gbmqo
