// QueryExecutor: runs single Group By queries (hash, sort or index-stream
// aggregation) and shared-scan batches of Group By queries over one input —
// the physical layer beneath both the GB-MQO plans and the GROUPING SETS
// baseline.
#ifndef GBMQO_EXEC_QUERY_EXECUTOR_H_
#define GBMQO_EXEC_QUERY_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "exec/aggregate_spec.h"
#include "exec/exec_context.h"
#include "exec/simd.h"
#include "storage/table.h"

namespace gbmqo {

class StorageGovernor;

/// Out-of-core aggregation configuration (see exec/spill_partitioner.h).
/// With a memory budget set, a hash aggregation whose realized group-table
/// bytes exceed it restarts on the radix-spill path instead of failing —
/// the budget is a hard cap, not an admission filter. Results are
/// bit-identical to the uncapped in-memory run. Inputs that fit a single
/// morsel shard never spill (their group state is bounded by one morsel's
/// rows, already far below any useful budget).
struct SpillOptions {
  /// Group-table memory budget in bytes for one hash aggregation (realized
  /// table + accumulator bytes across all shards, build and merge phases;
  /// for shared scans, summed over the fused queries). 0 = uncapped.
  uint64_t memory_budget_bytes = 0;
  /// Directory spill files are created under; "" = the system temp
  /// directory. Each aggregation gets its own subdirectory, removed (with
  /// every file) when the aggregation ends, however it ends.
  std::string directory;
  /// Cap on one aggregation's total spill-file bytes; 0 = unlimited.
  /// Exceeding it fails the query with ResourceExhausted (realized vs
  /// budgeted numbers in the message).
  uint64_t max_spill_bytes = 0;
  /// Routes every eligible hash aggregation through the spill path without
  /// waiting for a budget trip (test/bench knob, and the retry ladder's
  /// spill rung).
  bool force = false;
  /// When a spill file's CRC check fails on replay, re-derive that
  /// (shard, partition)'s records from the still-resident input instead of
  /// failing the query — the rebuilt bytes are bit-identical to the lost
  /// file, so the result is unchanged (counted in spill_corrupt_recoveries).
  /// Off, the corruption surfaces as an Internal error that the plan-level
  /// retry ladder treats as transient (same plan shape, fresh attempt).
  bool recover_corrupt = true;
  /// Optional governor charged with the spill path's RAM working set (one
  /// partition at a time) and its disk bytes, so callers can assert the
  /// realized RAM peak stayed under the cap and meter global disk use.
  StorageGovernor* governor = nullptr;

  bool enabled() const { return force || memory_budget_bytes > 0; }
};

/// One group-by query over a specific input table. `grouping` holds the
/// input table's column ordinals.
struct GroupByQuery {
  ColumnSet grouping;
  std::vector<AggregateSpec> aggregates;
};

/// Physical strategy for a single group-by.
enum class AggStrategy {
  kAuto,         ///< index-stream if a covering index exists, else hash
  kHash,         ///< hash aggregation (one pass, unordered)
  kSort,         ///< sort rows by key, then stream-aggregate
  kIndexStream,  ///< stream over a covering index; error if none exists
};

/// What a table scan physically costs.
///
/// The paper's substrate is a row store: scanning R pays for the *full row
/// width* regardless of how many columns the query touches, which is
/// exactly why computing from a narrower materialized intermediate wins.
/// kRowStore (the default) simulates that by touching every column of each
/// scanned row, so wall-clock times reproduce the paper's trade-off.
/// kColumnar reads only the referenced columns (this engine's native
/// behaviour) — faster, but it understates the benefit a row-store system
/// gets from GB-MQO plans. Index streams always read narrow leaf pages.
enum class ScanMode {
  kRowStore,
  kColumnar,
};

/// Executes group-by queries against in-memory tables, charging work to an
/// ExecContext. Stateless apart from the context pointer; safe to reuse.
///
/// Hash aggregation (single-query and shared-scan) is morsel-driven: the
/// input is split into kMorselRows-row morsels, morsel i belongs to
/// pre-aggregation shard i mod kBuildShards, and each shard is built into a
/// thread-local group table before a partitioned merge in which each worker
/// owns a disjoint key range. `parallelism` sets how many worker threads
/// execute that pipeline. The shard and partition counts are fixed
/// (independent of `parallelism`), so every WorkCounters field — including
/// measured hash probes and the scan-touch checksum — is bit-identical for
/// any thread count. Inputs that fit in a single morsel take a one-shard
/// fast path that behaves exactly like serial aggregation.
///
/// Each hash aggregation runs one of four kernels — dense-array, packed
/// single-word key, sort-runs over packed keys, or multi-word key —
/// selected per (input, grouping) from the input columns' code-domain
/// metadata (see exec/agg_kernel.h). The choice is a pure function of the
/// input table, never of the thread count.
class QueryExecutor {
 public:
  /// Rows per scan morsel (the unit of the parallel hash-aggregation scan).
  static constexpr size_t kMorselRows = 1 << 16;
  /// Pre-aggregation shards built during the scan phase. Fixed, so counters
  /// do not depend on the worker count; also the maximum build parallelism.
  static constexpr int kBuildShards = 16;
  /// Hash partitions merged exclusively by one worker each (power of two).
  static constexpr int kMergePartitions = 16;

  explicit QueryExecutor(ExecContext* ctx,
                         ScanMode scan_mode = ScanMode::kRowStore,
                         int parallelism = 1)
      : ctx_(ctx),
        scan_mode_(scan_mode),
        parallelism_(parallelism < 1 ? 1 : parallelism) {}

  int parallelism() const { return parallelism_; }
  void set_parallelism(int parallelism) {
    parallelism_ = parallelism < 1 ? 1 : parallelism;
  }

  /// Test/bench knob: starts the kernel fallback ladder at `kernel` instead
  /// of trying the most specialized kernel first. A forced kernel that is
  /// ineligible for some input (e.g. dense over a huge domain) falls down
  /// the ladder as usual, so forcing is always safe. nullopt = automatic.
  void set_forced_kernel(std::optional<AggKernel> kernel) {
    forced_kernel_ = kernel;
  }
  std::optional<AggKernel> forced_kernel() const { return forced_kernel_; }

  /// Pins this executor's hot loops (key formation, hash probe, columnar
  /// accumulate) to the scalar SIMD tier regardless of the host CPU.
  /// Results and every WorkCounters field are bit-identical either way —
  /// the vectorized loops preserve the scalar visit and accumulation
  /// orders — so this is a differential-testing and bench-baseline knob,
  /// not a semantic one. See exec/simd.h for the process-wide
  /// GBMQO_DISABLE_SIMD override.
  void set_force_scalar(bool force) { force_scalar_ = force; }
  bool force_scalar() const { return force_scalar_; }

  /// Configures out-of-core aggregation (disabled by default). Single
  /// group-bys spill transparently when the memory budget trips; shared
  /// scans cannot spill (their shard state interleaves queries), so a
  /// tripped budget fails them with ResourceExhausted and the plan-level
  /// retry ladder splits the fused batch into spillable per-query runs.
  void set_spill(const SpillOptions& spill) { spill_ = spill; }
  const SpillOptions& spill() const { return spill_; }

  /// The SIMD tier this executor's queries run at.
  SimdLevel simd_level() const { return EffectiveSimdLevel(force_scalar_); }

  /// Runs one group-by and returns the (unregistered) result table named
  /// `output_name`. Grouping columns keep their input names; aggregates use
  /// their `output_name`s.
  Result<TablePtr> ExecuteGroupBy(const Table& input, const GroupByQuery& query,
                                  const std::string& output_name,
                                  AggStrategy strategy = AggStrategy::kAuto);

  /// Runs several group-bys over `input` in a single shared scan (the
  /// commercial-engine optimization leveraged by GROUPING SETS, and by
  /// PlanExecutor's sibling fusion — `input` may be the base relation or a
  /// materialized intermediate). Counter attribution: scan-side work
  /// (rows_scanned, bytes_scanned, the touch checksum) is charged once for
  /// the shared pass, while per-query work — kernel rows, hash probes,
  /// aggregation CPU, rows_emitted, queries_executed — is charged per
  /// query, so a fused run is distinguishable from N separate scans by its
  /// scan counters alone. Each query keeps its own hash state and kernel
  /// plan; outputs are bit-identical to per-query ExecuteGroupBy hash runs.
  Result<std::vector<TablePtr>> ExecuteSharedScan(
      const Table& input, const std::vector<GroupByQuery>& queries,
      const std::vector<std::string>& output_names);

 private:
  /// Bodies of the two entry points. The public wrappers convert a
  /// GroupIdSpaceExhausted thrown from any group table (including from a
  /// joined morsel worker, rethrown by RunTasks) into
  /// Status::ResourceExhausted, so uint32 group-id exhaustion surfaces as a
  /// Status instead of wrapping ids silently.
  Result<TablePtr> ExecuteGroupByImpl(const Table& input,
                                      const GroupByQuery& query,
                                      const std::string& output_name,
                                      AggStrategy strategy);
  Result<std::vector<TablePtr>> ExecuteSharedScanImpl(
      const Table& input, const std::vector<GroupByQuery>& queries,
      const std::vector<std::string>& output_names);

  ExecContext* ctx_;
  ScanMode scan_mode_;
  int parallelism_;
  std::optional<AggKernel> forced_kernel_;
  bool force_scalar_ = false;
  SpillOptions spill_;
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_QUERY_EXECUTOR_H_
