// QueryExecutor: runs single Group By queries (hash, sort or index-stream
// aggregation) and shared-scan batches of Group By queries over one input —
// the physical layer beneath both the GB-MQO plans and the GROUPING SETS
// baseline.
#ifndef GBMQO_EXEC_QUERY_EXECUTOR_H_
#define GBMQO_EXEC_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "exec/aggregate_spec.h"
#include "exec/exec_context.h"
#include "storage/table.h"

namespace gbmqo {

/// One group-by query over a specific input table. `grouping` holds the
/// input table's column ordinals.
struct GroupByQuery {
  ColumnSet grouping;
  std::vector<AggregateSpec> aggregates;
};

/// Physical strategy for a single group-by.
enum class AggStrategy {
  kAuto,         ///< index-stream if a covering index exists, else hash
  kHash,         ///< hash aggregation (one pass, unordered)
  kSort,         ///< sort rows by key, then stream-aggregate
  kIndexStream,  ///< stream over a covering index; error if none exists
};

/// What a table scan physically costs.
///
/// The paper's substrate is a row store: scanning R pays for the *full row
/// width* regardless of how many columns the query touches, which is
/// exactly why computing from a narrower materialized intermediate wins.
/// kRowStore (the default) simulates that by touching every column of each
/// scanned row, so wall-clock times reproduce the paper's trade-off.
/// kColumnar reads only the referenced columns (this engine's native
/// behaviour) — faster, but it understates the benefit a row-store system
/// gets from GB-MQO plans. Index streams always read narrow leaf pages.
enum class ScanMode {
  kRowStore,
  kColumnar,
};

/// Executes group-by queries against in-memory tables, charging work to an
/// ExecContext. Stateless apart from the context pointer; safe to reuse.
class QueryExecutor {
 public:
  explicit QueryExecutor(ExecContext* ctx,
                         ScanMode scan_mode = ScanMode::kRowStore)
      : ctx_(ctx), scan_mode_(scan_mode) {}

  /// Runs one group-by and returns the (unregistered) result table named
  /// `output_name`. Grouping columns keep their input names; aggregates use
  /// their `output_name`s.
  Result<TablePtr> ExecuteGroupBy(const Table& input, const GroupByQuery& query,
                                  const std::string& output_name,
                                  AggStrategy strategy = AggStrategy::kAuto);

  /// Runs several group-bys over `input` in a single shared scan (the
  /// commercial-engine optimization leveraged by GROUPING SETS). Input rows
  /// and bytes are charged once; each query maintains its own hash state.
  Result<std::vector<TablePtr>> ExecuteSharedScan(
      const Table& input, const std::vector<GroupByQuery>& queries,
      const std::vector<std::string>& output_names);

 private:
  ExecContext* ctx_;
  ScanMode scan_mode_;
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_QUERY_EXECUTOR_H_
