#include "exec/query_executor.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <numeric>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "exec/agg_kernel.h"
#include "exec/group_hash_table.h"
#include "exec/spill_partitioner.h"
#include "exec/task_runner.h"
#include "storage/storage_governor.h"

namespace gbmqo {

namespace {

/// Per-query aggregation state, decoupled from the scan strategy. Groups are
/// dense ids handed out by the caller; `Touch(id)` must be called (in id
/// order for new ids) before Update.
class AggState {
 public:
  AggState(const Table& input, const GroupByQuery& query)
      : input_(input), query_(query), acc_(query.aggregates.size()) {}

  Status Validate() const {
    for (const AggregateSpec& agg : query_.aggregates) {
      if (agg.kind == AggKind::kCountStar) continue;
      if (agg.arg < 0 || agg.arg >= input_.schema().num_columns()) {
        return Status::InvalidArgument("aggregate argument out of range");
      }
      const DataType t = input_.schema().column(agg.arg).type;
      if (t == DataType::kString) {
        return Status::NotSupported("SUM/MIN/MAX over STRING is not supported");
      }
    }
    for (int ordinal : query_.grouping.ToVector()) {
      if (ordinal >= input_.schema().num_columns()) {
        return Status::InvalidArgument("grouping column out of range");
      }
    }
    return Status::OK();
  }

  /// Reserves accumulator capacity for `n` expected groups (e.g. the shard
  /// row count's share of the expected group count), avoiding reallocation
  /// churn in the per-row Touch path.
  void ReserveGroups(size_t n) {
    rep_rows_.reserve(n);
    counts_.reserve(n);
    for (std::vector<Accum>& a : acc_) a.reserve(n);
  }

  /// Ensures state exists for group `id` (ids arrive densely from 0).
  void Touch(uint32_t id, size_t representative_row) {
    if (id == rep_rows_.size()) {
      rep_rows_.push_back(static_cast<uint32_t>(representative_row));
      counts_.push_back(0);
      for (size_t a = 0; a < query_.aggregates.size(); ++a) {
        acc_[a].push_back(InitAccum(query_.aggregates[a]));
      }
    }
  }

  /// Folds row `row` into group `id`.
  void Update(uint32_t id, size_t row) {
    counts_[id] += 1;
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      const AggregateSpec& agg = query_.aggregates[a];
      if (agg.kind == AggKind::kCountStar) continue;
      const Column& col = input_.column(agg.arg);
      if (col.IsNull(row)) continue;
      Accum& acc = acc_[a][id];
      const double v = col.NumericAt(row);
      switch (agg.kind) {
        case AggKind::kSum:
          acc.value += v;
          acc.seen = true;
          break;
        case AggKind::kMin:
          if (!acc.seen || v < acc.value) acc.value = v;
          acc.seen = true;
          break;
        case AggKind::kMax:
          if (!acc.seen || v > acc.value) acc.value = v;
          acc.seen = true;
          break;
        case AggKind::kCountStar:
          break;
      }
    }
  }

  /// Columnar accumulate over a whole key block: ids[i] is the (already
  /// Touched) group of row begin+i. Equivalent to count Update calls — the
  /// per-kind/per-type/per-null dispatch is hoisted out of the row loop and
  /// values are read through raw column pointers, but each (group,
  /// aggregate) accumulator still folds its rows in ascending row order, so
  /// results (including double SUM) are bit-identical to the per-row path.
  void UpdateBlock(const uint32_t* ids, size_t begin, size_t count) {
    for (size_t i = 0; i < count; ++i) counts_[ids[i]] += 1;
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      const AggregateSpec& agg = query_.aggregates[a];
      if (agg.kind == AggKind::kCountStar) continue;
      const Column& col = input_.column(agg.arg);
      std::vector<Accum>& acc = acc_[a];
      const bool nulls = col.has_nulls();
      const auto fold = [&](auto value_at) {
        switch (agg.kind) {
          case AggKind::kSum:
            if (!nulls) {
              for (size_t i = 0; i < count; ++i) {
                Accum& x = acc[ids[i]];
                x.value += value_at(i);
                x.seen = true;
              }
            } else {
              for (size_t i = 0; i < count; ++i) {
                if (col.IsNull(begin + i)) continue;
                Accum& x = acc[ids[i]];
                x.value += value_at(i);
                x.seen = true;
              }
            }
            break;
          case AggKind::kMin:
            for (size_t i = 0; i < count; ++i) {
              if (nulls && col.IsNull(begin + i)) continue;
              Accum& x = acc[ids[i]];
              const double v = value_at(i);
              if (!x.seen || v < x.value) x.value = v;
              x.seen = true;
            }
            break;
          case AggKind::kMax:
            for (size_t i = 0; i < count; ++i) {
              if (nulls && col.IsNull(begin + i)) continue;
              Accum& x = acc[ids[i]];
              const double v = value_at(i);
              if (!x.seen || v > x.value) x.value = v;
              x.seen = true;
            }
            break;
          case AggKind::kCountStar:
            break;
        }
      };
      if (col.type() == DataType::kInt64) {
        const int64_t* data = col.int64_data() + begin;
        fold([data](size_t i) { return static_cast<double>(data[i]); });
      } else if (col.type() == DataType::kDouble) {
        const double* data = col.double_data() + begin;
        fold([data](size_t i) { return data[i]; });
      }
      // Strings are rejected by Validate; nothing else reaches here.
    }
  }

  /// Folds group `src_id` of `src` (same input/query) into group `id`. Used
  /// by the partitioned merge of thread-local pre-aggregation states; the
  /// caller fixes the merge order, so floating-point accumulation stays
  /// deterministic.
  void MergeGroup(uint32_t id, const AggState& src, uint32_t src_id) {
    counts_[id] += src.counts_[src_id];
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      const AggregateSpec& agg = query_.aggregates[a];
      if (agg.kind == AggKind::kCountStar) continue;
      const Accum& in = src.acc_[a][src_id];
      if (!in.seen) continue;
      Accum& acc = acc_[a][id];
      switch (agg.kind) {
        case AggKind::kSum:
          acc.value += in.value;
          acc.seen = true;
          break;
        case AggKind::kMin:
          if (!acc.seen || in.value < acc.value) acc.value = in.value;
          acc.seen = true;
          break;
        case AggKind::kMax:
          if (!acc.seen || in.value > acc.value) acc.value = in.value;
          acc.seen = true;
          break;
        case AggKind::kCountStar:
          break;
      }
    }
  }

  size_t num_groups() const { return rep_rows_.size(); }

  /// Representative input row of group `id` (carries the grouping values).
  uint32_t rep_row(uint32_t id) const { return rep_rows_[id]; }

  /// Realized heap bytes of the accumulators (capacities, like the group
  /// tables' ByteSize) — the AggState share of the spill memory budget.
  size_t ApproxBytes() const {
    size_t bytes = rep_rows_.capacity() * sizeof(uint32_t) +
                   counts_.capacity() * sizeof(uint64_t);
    for (const std::vector<Accum>& a : acc_) bytes += a.capacity() * sizeof(Accum);
    return bytes;
  }

  /// Empty output builder with the query's result schema: grouping columns
  /// (input names/types) then aggregates.
  static TableBuilder MakeOutputBuilder(const Table& input,
                                        const GroupByQuery& query) {
    std::vector<ColumnDef> defs;
    for (int ordinal : query.grouping.ToVector()) {
      defs.push_back(input.schema().column(ordinal));
    }
    for (const AggregateSpec& agg : query.aggregates) {
      DataType out_type = DataType::kInt64;
      bool nullable = false;
      if (agg.kind != AggKind::kCountStar) {
        out_type = input.schema().column(agg.arg).type;
        nullable = true;  // a group may have only NULL arguments
      }
      defs.push_back(ColumnDef{agg.output_name, out_type, nullable});
    }
    return TableBuilder{Schema(std::move(defs))};
  }

  /// Appends this part's groups (in id order) to `builder`'s columns. Parts
  /// appended in canonical partition order reproduce BuildOutput exactly;
  /// the spill path appends partition-by-partition so only one partition's
  /// state is ever resident alongside the output.
  void AppendTo(TableBuilder* builder, const Table& input,
                const GroupByQuery& query) const {
    const std::vector<int> group_cols = query.grouping.ToVector();
    for (size_t c = 0; c < group_cols.size(); ++c) {
      Column* out = builder->column(static_cast<int>(c));
      const Column& in = input.column(group_cols[c]);
      for (size_t g = 0; g < num_groups(); ++g) {
        out->AppendFrom(in, rep_rows_[g]);
      }
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggregateSpec& agg = query.aggregates[a];
      Column* out = builder->column(static_cast<int>(group_cols.size() + a));
      if (agg.kind == AggKind::kCountStar) {
        for (size_t g = 0; g < num_groups(); ++g) {
          out->AppendInt64(static_cast<int64_t>(counts_[g]));
        }
        continue;
      }
      const DataType out_type = input.schema().column(agg.arg).type;
      for (size_t g = 0; g < num_groups(); ++g) {
        const Accum& acc = acc_[a][g];
        if (!acc.seen) {
          out->AppendNull();
        } else if (out_type == DataType::kInt64) {
          out->AppendInt64(static_cast<int64_t>(acc.value));
        } else {
          out->AppendDouble(acc.value);
        }
      }
    }
  }

  /// Builds the output table from `parts` concatenated in order (each part
  /// holds disjoint groups of the same logical query over `input`).
  static Result<TablePtr> BuildOutput(const Table& input,
                                      const GroupByQuery& query,
                                      const std::vector<const AggState*>& parts,
                                      const std::string& output_name) {
    TableBuilder builder = MakeOutputBuilder(input, query);
    size_t n = 0;
    for (const AggState* part : parts) n += part->num_groups();
    const int ncols =
        static_cast<int>(query.grouping.ToVector().size() + query.aggregates.size());
    for (int c = 0; c < ncols; ++c) builder.column(c)->Reserve(n);
    for (const AggState* part : parts) part->AppendTo(&builder, input, query);
    return builder.Build(output_name);
  }

 private:
  struct Accum {
    double value = 0.0;
    bool seen = false;  // saw at least one non-NULL argument
  };

  static Accum InitAccum(const AggregateSpec&) { return Accum{}; }

  const Table& input_;
  const GroupByQuery& query_;
  std::vector<uint32_t> rep_rows_;
  std::vector<uint64_t> counts_;
  // acc_[aggregate][group]; empty for COUNT(*)-only queries.
  std::vector<std::vector<Accum>> acc_;
};

/// Builds per-row group keys into `key` (width = #group cols + 1 null word
/// when tracking nulls). Returns key width.
class KeyBuilder {
 public:
  KeyBuilder(const Table& input, ColumnSet grouping) {
    for (int ordinal : grouping.ToVector()) {
      cols_.push_back(&input.column(ordinal));
      if (cols_.back()->has_nulls()) track_nulls_ = true;
    }
    width_ = static_cast<int>(cols_.size()) + (track_nulls_ ? 1 : 0);
    if (width_ == 0) width_ = 1;  // empty grouping set: constant key
  }

  int width() const { return width_; }

  void FillKey(size_t row, uint64_t* key) const {
    uint64_t null_mask = 0;
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (cols_[c]->IsNull(row)) {
        null_mask |= 1ULL << c;
        key[c] = 0;
      } else {
        key[c] = cols_[c]->CodeAt(row);
      }
    }
    if (track_nulls_) key[cols_.size()] = null_mask;
    if (cols_.empty()) key[0] = 0;
  }

 private:
  std::vector<const Column*> cols_;
  bool track_nulls_ = false;
  int width_ = 0;
};

/// Full-width row access for ScanMode::kRowStore: reads every column of the
/// row (the attribute bytes a row store's page read pays for) and folds the
/// codes into a checksum so the reads cannot be elided.
class RowToucher {
 public:
  RowToucher(const Table& input, bool enabled) {
    if (!enabled) return;
    for (int c = 0; c < input.schema().num_columns(); ++c) {
      cols_.push_back(&input.column(c));
    }
  }

  void Touch(size_t row) {
    // Per attribute: read the value and run a short dependent mix, standing
    // in for the tuple-deserialization work (offset decode, attribute copy)
    // a row store performs per column of every scanned row. This keeps scan
    // cost proportional to row *width*, the regime the paper's experiments
    // ran in (disk-resident, full-width pages).
    uint64_t acc = checksum_;
    for (const Column* col : cols_) {
      uint64_t v = col->IsNull(row) ? row : col->CodeAt(row);
      v *= 0x9E3779B97F4A7C15ULL;
      v ^= v >> 29;
      v *= 0xBF58476D1CE4E5B9ULL;
      acc ^= v;
    }
    checksum_ = acc;
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::vector<const Column*> cols_;
  uint64_t checksum_ = 0;
};

// ---- Morsel-driven parallel hash aggregation --------------------------------
//
// The input is cut into QueryExecutor::kMorselRows-row morsels; morsel i
// belongs to pre-aggregation shard (i mod #shards). A worker claims a whole
// shard and scans its morsels in ascending order into a shard-local group
// table + AggState, so each shard's content is a pure function of the data,
// never of the thread count or scheduling. Groups are then partitioned —
// hash top bits for the hash kernels, contiguous slot ranges for the dense
// kernel (QueryExecutor::kMergePartitions ranges either way); a worker
// claims a partition and merges every shard's groups of that partition —
// visiting shards in ascending order and groups in id order — into a
// partition-local table, so no two workers ever write the same state and
// floating-point accumulation order is fixed. All derived accounting (probe
// counts, scan-touch checksums, group counts) is therefore bit-identical
// for any worker count, including 1. (RunTasks lives in exec/task_runner.h.)

/// Shard layout for one input: morsel i -> shard (i mod shards). `shards` is
/// min(kBuildShards, #morsels) so every shard is non-empty; using fewer
/// shard objects for small inputs is equivalent to leaving the rest empty.
struct MorselLayout {
  size_t num_rows = 0;
  size_t num_morsels = 0;
  int shards = 0;

  explicit MorselLayout(size_t n) : num_rows(n) {
    num_morsels = (n + QueryExecutor::kMorselRows - 1) / QueryExecutor::kMorselRows;
    shards = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(QueryExecutor::kBuildShards), num_morsels));
  }

  size_t ShardRows(int shard) const {
    size_t rows = 0;
    for (size_t m = static_cast<size_t>(shard); m < num_morsels;
         m += static_cast<size_t>(shards)) {
      rows += MorselSize(m);
    }
    return rows;
  }

  size_t MorselBegin(size_t m) const { return m * QueryExecutor::kMorselRows; }
  size_t MorselSize(size_t m) const {
    return std::min(num_rows - MorselBegin(m), QueryExecutor::kMorselRows);
  }

  /// Calls `fn(row)` for every row of `shard`, morsels in ascending order.
  template <typename Fn>
  void ForEachShardRow(int shard, Fn&& fn) const {
    for (size_t m = static_cast<size_t>(shard); m < num_morsels;
         m += static_cast<size_t>(shards)) {
      const size_t begin = MorselBegin(m);
      const size_t end = begin + MorselSize(m);
      for (size_t row = begin; row < end; ++row) fn(row);
    }
  }

  /// Calls `fn(begin, count)` for consecutive row blocks of at most
  /// `block_rows` rows covering every row of `shard`, morsels in ascending
  /// order (blocks never straddle a morsel boundary).
  template <typename Fn>
  void ForEachShardBlock(int shard, size_t block_rows, Fn&& fn) const {
    for (size_t m = static_cast<size_t>(shard); m < num_morsels;
         m += static_cast<size_t>(shards)) {
      const size_t begin = MorselBegin(m);
      const size_t end = begin + MorselSize(m);
      for (size_t b = begin; b < end; b += block_rows) {
        fn(b, std::min(block_rows, end - b));
      }
    }
  }
};

/// One shard's build-phase (or one partition's merge-phase) state for one
/// query: exactly one of `table` / `dense` is set, matching the query's
/// kernel, plus the AggState accumulators.
struct ShardAgg {
  std::unique_ptr<GroupHashTable> table;  // packed / multi-word kernels
  std::unique_ptr<DenseGroupTable> dense;  // dense-array kernel
  std::unique_ptr<AggState> state;

  size_t groups() const {
    return table != nullptr ? table->size()
                            : (dense != nullptr ? dense->size() : 0);
  }
  uint64_t probes() const { return table != nullptr ? table->probes() : 0; }
};

/// Stable LSD radix sort of (key, ordinal) pairs by key, one byte per pass
/// over the key's actual bit width (AggKernelPlan::total_bits). Equivalent
/// to std::sort by (key, ordinal) — stability keeps ordinals ascending
/// within equal keys — but runs in ceil(bits/8) linear passes instead of
/// log2(n) comparison levels, which is what makes the sort-runs kernel
/// competitive with hashing at high group counts.
void RadixSortByKey(std::vector<std::pair<uint64_t, uint32_t>>* v,
                    int total_bits) {
  const int passes = total_bits <= 8 ? 1 : (total_bits + 7) / 8;
  std::vector<std::pair<uint64_t, uint32_t>> scratch(v->size());
  auto* src = v;
  auto* dst = &scratch;
  size_t count[256];
  for (int p = 0; p < passes; ++p) {
    const int shift = p * 8;
    std::fill(std::begin(count), std::end(count), 0);
    for (const auto& e : *src) ++count[(e.first >> shift) & 0xFF];
    size_t pos = 0;
    for (size_t b = 0; b < 256; ++b) {
      const size_t c = count[b];
      count[b] = pos;
      pos += c;
    }
    for (const auto& e : *src) {
      (*dst)[count[(e.first >> shift) & 0xFF]++] = e;
    }
    std::swap(src, dst);
  }
  if (src != v) *v = std::move(*src);
}

/// Builds one shard of one query block-at-a-time: BlockKeyFiller produces
/// the block's keys (one type dispatch per column per block), then a tight
/// per-row loop inserts into the kernel's group table. The sort-runs kernel
/// instead buffers (packed key, row) pairs and folds them at Take(). When a
/// MemoryMeter is attached, the builder reports its realized byte growth
/// after every block, so an over-budget build trips SpillRequired at block
/// granularity.
class ShardBuilder {
 public:
  ShardBuilder(const Table& input, const GroupByQuery& query,
               const AggKernelPlan& plan, size_t shard_rows,
               SimdLevel simd = DetectedSimdLevel(),
               MemoryMeter* meter = nullptr)
      : plan_(&plan), simd_(simd), filler_(plan, simd), meter_(meter) {
    agg_.state = std::make_unique<AggState>(input, query);
    if (plan.kernel == AggKernel::kDenseArray) {
      agg_.state->ReserveGroups(shard_rows / 8 + 16);
      agg_.dense = std::make_unique<DenseGroupTable>(0, plan.dense_capacity,
                                                     simd);
      slots_.resize(BlockKeyFiller::kBlockRows);
      ids_.resize(BlockKeyFiller::kBlockRows);
    } else if (plan.kernel == AggKernel::kSortRuns) {
      // Run-fold accumulators grow only per distinct key; the dominant
      // allocations are the (key, ordinal) and row buffers, one entry per
      // shard row.
      sort_rows_.reserve(shard_rows);
      positions_.reserve(shard_rows);
      keys_.resize(BlockKeyFiller::kBlockRows);
      agg_.table = std::make_unique<GroupHashTable>(plan.key_width, 64, simd);
    } else {
      agg_.state->ReserveGroups(shard_rows / 8 + 16);
      agg_.table = std::make_unique<GroupHashTable>(
          plan.key_width, shard_rows / 8 + 16, simd);
      keys_.resize(BlockKeyFiller::kBlockRows *
                   static_cast<size_t>(plan.key_width));
    }
    ReportMemory();
  }

  /// Folds rows [begin, begin+count) in; count <= BlockKeyFiller::kBlockRows.
  void Consume(size_t begin, size_t count) {
    AggState& state = *agg_.state;
    switch (plan_->kernel) {
      case AggKernel::kDenseArray: {
        filler_.FillDense(begin, count, slots_.data());
        DenseGroupTable& dense = *agg_.dense;
        if (simd_ == SimdLevel::kScalar) {
          for (size_t i = 0; i < count; ++i) {
            const uint32_t id = dense.FindOrInsert(slots_[i]);
            state.Touch(id, begin + i);
            state.Update(id, begin + i);
          }
        } else {
          // Columnar accumulate: assign the whole block's group ids first,
          // then fold each aggregate column block-at-a-time. Bit-identical
          // to the per-row path (see AggState::UpdateBlock).
          for (size_t i = 0; i < count; ++i) {
            const uint32_t id = dense.FindOrInsert(slots_[i]);
            state.Touch(id, begin + i);
            ids_[i] = id;
          }
          state.UpdateBlock(ids_.data(), begin, count);
        }
        break;
      }
      case AggKernel::kPackedKey: {
        filler_.FillPacked(begin, count, keys_.data());
        GroupHashTable& table = *agg_.table;
        for (size_t i = 0; i < count; ++i) {
          const uint32_t id = table.FindOrInsert(&keys_[i]);
          state.Touch(id, begin + i);
          state.Update(id, begin + i);
        }
        break;
      }
      case AggKernel::kSortRuns: {
        filler_.FillPacked(begin, count, keys_.data());
        for (size_t i = 0; i < count; ++i) {
          sort_rows_.emplace_back(keys_[i],
                                  static_cast<uint32_t>(positions_.size()));
          positions_.push_back(static_cast<uint32_t>(begin + i));
        }
        break;
      }
      case AggKernel::kMultiWord: {
        filler_.FillMultiWord(begin, count, keys_.data());
        GroupHashTable& table = *agg_.table;
        const size_t kw = static_cast<size_t>(plan_->key_width);
        for (size_t i = 0; i < count; ++i) {
          const uint32_t id = table.FindOrInsert(keys_.data() + i * kw);
          state.Touch(id, begin + i);
          state.Update(id, begin + i);
        }
        break;
      }
    }
    ReportMemory();
  }

  ShardAgg Take() {
    if (plan_->kernel == AggKernel::kSortRuns) {
      FinalizeSortRuns();
      ReportMemory();
    }
    return std::move(agg_);
  }

 private:
  /// Sort-runs fold, two passes, no hash probing. Pass 1 sorts by
  /// (key, ordinal) — ordinals ascend in shard scan order, so rows ascend
  /// within each equal key — then appends each distinct key once
  /// (AppendUnique: keys arrive ascending, so group ids are dense in key
  /// order and the table is a valid merge source) and scatters the group id
  /// back to its ordinal. Pass 2 updates the accumulators in shard scan
  /// order, so aggregate-argument columns are read with the same locality
  /// as the hash kernels. Per-group update order is row-ascending either
  /// way, so results are bit-identical to a sorted-order fold.
  void FinalizeSortRuns() {
    RadixSortByKey(&sort_rows_, plan_->total_bits);
    GroupHashTable& table = *agg_.table;
    AggState& state = *agg_.state;
    sort_ids_.resize(sort_rows_.size());
    uint32_t id = 0;
    for (size_t i = 0; i < sort_rows_.size(); ++i) {
      if (i == 0 || sort_rows_[i].first != sort_rows_[i - 1].first) {
        id = table.AppendUnique(&sort_rows_[i].first);
        state.Touch(id, positions_[sort_rows_[i].second]);
      }
      sort_ids_[sort_rows_[i].second] = id;
    }
    for (size_t i = 0; i < positions_.size(); ++i) {
      state.Update(sort_ids_[i], positions_[i]);
    }
  }

  void ReportMemory() {
    if (meter_ == nullptr) return;
    size_t bytes =
        agg_.state->ApproxBytes() +
        sort_rows_.capacity() * sizeof(std::pair<uint64_t, uint32_t>) +
        (positions_.capacity() + sort_ids_.capacity()) * sizeof(uint32_t);
    if (agg_.table != nullptr) bytes += agg_.table->ByteSize();
    if (agg_.dense != nullptr) bytes += agg_.dense->ByteSize();
    meter_->Charge(static_cast<int64_t>(bytes) -
                   static_cast<int64_t>(reported_bytes_));
    reported_bytes_ = bytes;
  }

  const AggKernelPlan* plan_;
  SimdLevel simd_;
  BlockKeyFiller filler_;
  MemoryMeter* meter_;
  size_t reported_bytes_ = 0;
  ShardAgg agg_;
  std::vector<uint64_t> keys_;   // hash kernels: count * key_width words
  std::vector<uint32_t> slots_;  // dense kernel: count slots
  std::vector<uint32_t> ids_;    // dense kernel: block group ids (columnar)
  // sort-runs kernel, folded at Take(): (packed key, ordinal) pairs plus
  // ordinal -> global row and ordinal -> group id for the scan-order
  // update pass.
  std::vector<std::pair<uint64_t, uint32_t>> sort_rows_;
  std::vector<uint32_t> positions_;
  std::vector<uint32_t> sort_ids_;
};

/// Merges `shards[*]` for one query into `out` (the `partition`-th of
/// kMergePartitions partition-ordered parts): hash kernels partition by key
/// hash top bits, the dense kernel by contiguous slot ranges; both visit
/// shards in ascending order and groups in id order, so accumulation order
/// is fixed.
void MergePartition(const Table& input, const GroupByQuery& query,
                    const AggKernelPlan& plan, std::vector<ShardAgg>& shards,
                    size_t total_groups, int partition, ShardAgg* out,
                    SimdLevel simd, MemoryMeter* meter = nullptr) {
  constexpr int kParts = QueryExecutor::kMergePartitions;
  ShardAgg merged;
  merged.state = std::make_unique<AggState>(input, query);
  merged.state->ReserveGroups(total_groups / kParts + 16);
  if (plan.kernel == AggKernel::kDenseArray) {
    const uint64_t range = plan.dense_capacity / kParts;
    merged.dense = std::make_unique<DenseGroupTable>(
        range * static_cast<uint64_t>(partition),
        range * static_cast<uint64_t>(partition + 1), simd);
  } else {
    merged.table = std::make_unique<GroupHashTable>(
        plan.key_width, total_groups / kParts + 16, simd);
  }
  std::vector<std::pair<uint32_t, uint32_t>> mapping;
  for (ShardAgg& shard : shards) {
    mapping.clear();
    if (merged.dense != nullptr) {
      merged.dense->MergeFrom(*shard.dense, kParts, partition,
                              plan.dense_capacity, &mapping);
    } else {
      merged.table->MergeFrom(*shard.table, kParts, partition, &mapping);
    }
    for (const auto& [src, dst] : mapping) {
      merged.state->Touch(dst, shard.state->rep_row(src));
      merged.state->MergeGroup(dst, *shard.state, src);
    }
  }
  if (meter != nullptr) {
    size_t bytes = merged.state->ApproxBytes();
    if (merged.table != nullptr) bytes += merged.table->ByteSize();
    if (merged.dense != nullptr) bytes += merged.dense->ByteSize();
    meter->Charge(static_cast<int64_t>(bytes));
  }
  *out = std::move(merged);
}

/// Charges one hash aggregation's kernel-dependent work: per-kernel row
/// counters and AggCpuPerRow.
void ChargeKernel(WorkCounters* wc, AggKernel kernel, size_t rows,
                  size_t groups) {
  switch (kernel) {
    case AggKernel::kDenseArray:
      wc->dense_kernel_rows += rows;
      break;
    case AggKernel::kPackedKey:
      wc->packed_kernel_rows += rows;
      break;
    case AggKernel::kSortRuns:
      wc->sort_kernel_rows += rows;
      break;
    case AggKernel::kMultiWord:
      wc->multiword_kernel_rows += rows;
      break;
  }
  wc->agg_cpu_units +=
      static_cast<double>(rows) * AggCpuPerRow(kernel, static_cast<double>(groups));
}

/// Fault site: allocation pressure while building a shard's group table
/// (GroupHashTable / DenseGroupTable / accumulator growth). Throws the same
/// std::bad_alloc a real allocation failure would; RunTasks rethrows it on
/// the caller and the DAG executor maps it to Status::ResourceExhausted.
/// Keyed by the task's stable fault salt and the shard/partition ordinal,
/// so decisions are independent of worker scheduling.
void InjectAllocPressure(uint64_t salt, uint64_t ordinal) {
  if (GBMQO_INJECT_FAULT(FaultSite::kAllocPressure, FaultKey(salt, ordinal))) {
    throw std::bad_alloc();
  }
}

// ---- Out-of-core (grace-hash) aggregation -----------------------------------
//
// RunHashSpill re-runs a hash aggregation whose in-memory build tripped the
// memory budget (or that SpillOptions::force routed here directly). Pass 1
// radix-partitions every row on its group key into kMergePartitions spill
// files per shard — using the *same* partition function the in-memory merge
// uses — writing records in shard scan order. Pass 2 replays one partition
// at a time: each (shard, partition) file rebuilds a segment whose
// first-touch group-id order equals the in-memory shard's id order filtered
// to that partition (a key's rows all live in one partition, so per-group
// fold order is untouched), which is exactly the order MergeFrom visits.
// The unchanged MergePartition therefore reproduces each in-memory
// partition result bit-for-bit, and appending partitions 0..P-1 reproduces
// the in-memory output — rows, ids, and double bit patterns — exactly. At
// most one partition's segments plus its merged state are resident at a
// time, which is what bounds RAM.
//
// Recursion depth is one: partitions are never re-partitioned (a deeper
// split would need a different partition function and break the id-order
// equivalence above). A partition that still exceeds the budget proceeds
// anyway; the overshoot stays visible through the governor's RAM peak.

/// Spill record layouts (fixed width, written in shard scan order):
/// dense kernel: u32 slot + u32 row; hash kernels: key_width x u64 key
/// words + u32 row (records are unaligned on disk; replay memcpys through
/// an aligned buffer).
size_t SpillRecordBytes(const AggKernelPlan& plan) {
  return plan.kernel == AggKernel::kDenseArray
             ? 8
             : static_cast<size_t>(plan.key_width) * 8 + 4;
}

/// Rebuilds one (shard, partition) segment from its spill records.
void BuildSegment(const Table& input, const GroupByQuery& query,
                  const AggKernelPlan& kplan, int partition,
                  const std::vector<uint8_t>& data, SimdLevel simd,
                  MemoryMeter* meter, ShardAgg* out) {
  constexpr int kParts = QueryExecutor::kMergePartitions;
  const size_t rec = SpillRecordBytes(kplan);
  const size_t nrec = data.size() / rec;
  ShardAgg seg;
  seg.state = std::make_unique<AggState>(input, query);
  if (kplan.kernel == AggKernel::kDenseArray) {
    // The segment only ever sees partition-local slots, so its tag array
    // covers just this partition's contiguous slot range.
    const uint64_t range = kplan.dense_capacity / kParts;
    seg.dense = std::make_unique<DenseGroupTable>(
        range * static_cast<uint64_t>(partition),
        range * static_cast<uint64_t>(partition + 1), simd);
    seg.state->ReserveGroups(nrec / 8 + 16);
    for (size_t i = 0; i < nrec; ++i) {
      uint32_t slot = 0;
      uint32_t row = 0;
      std::memcpy(&slot, data.data() + i * rec, 4);
      std::memcpy(&row, data.data() + i * rec + 4, 4);
      const uint32_t id = seg.dense->FindOrInsert(slot);
      seg.state->Touch(id, row);
      seg.state->Update(id, row);
    }
  } else if (kplan.kernel == AggKernel::kSortRuns) {
    seg.table = std::make_unique<GroupHashTable>(kplan.key_width, 64, simd);
    // Same two-pass fold as ShardBuilder::FinalizeSortRuns. Records sit in
    // shard scan order, so the record index is the ordinal: sort
    // (key, ordinal), append each distinct key once (ascending), scatter
    // ids, then update in record order — rows ascend within each key on
    // both passes, so the segment is bit-identical to the in-memory shard's
    // fold filtered to this partition.
    std::vector<std::pair<uint64_t, uint32_t>> order;
    std::vector<uint32_t> rows(nrec);
    std::vector<uint32_t> ids(nrec);
    order.reserve(nrec);
    for (size_t i = 0; i < nrec; ++i) {
      uint64_t key = 0;
      std::memcpy(&key, data.data() + i * rec, 8);
      std::memcpy(&rows[i], data.data() + i * rec + 8, 4);
      order.emplace_back(key, static_cast<uint32_t>(i));
    }
    RadixSortByKey(&order, kplan.total_bits);
    uint32_t id = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i == 0 || order[i].first != order[i - 1].first) {
        id = seg.table->AppendUnique(&order[i].first);
        seg.state->Touch(id, rows[order[i].second]);
      }
      ids[order[i].second] = id;
    }
    for (size_t i = 0; i < nrec; ++i) {
      seg.state->Update(ids[i], rows[i]);
    }
  } else {
    const size_t kw = static_cast<size_t>(kplan.key_width);
    seg.table = std::make_unique<GroupHashTable>(kplan.key_width,
                                                 nrec / 8 + 16, simd);
    seg.state->ReserveGroups(nrec / 8 + 16);
    std::vector<uint64_t> kbuf(kw);
    for (size_t i = 0; i < nrec; ++i) {
      std::memcpy(kbuf.data(), data.data() + i * rec, kw * 8);
      uint32_t row = 0;
      std::memcpy(&row, data.data() + i * rec + kw * 8, 4);
      const uint32_t id = seg.table->FindOrInsert(kbuf.data());
      seg.state->Touch(id, row);
      seg.state->Update(id, row);
    }
  }
  if (meter != nullptr) {
    size_t bytes = seg.state->ApproxBytes();
    if (seg.table != nullptr) bytes += seg.table->ByteSize();
    if (seg.dense != nullptr) bytes += seg.dense->ByteSize();
    meter->Charge(static_cast<int64_t>(bytes));
  }
  *out = std::move(seg);
}

/// Re-derives the exact payload of one (shard, partition) spill file from
/// the still-resident input: the recompute-partition retry rung for a
/// corrupt spill record. Runs the pass-1 encoding loop for one shard
/// filtered to one partition, so the rebuilt bytes equal the damaged
/// file's payload bit-for-bit (no touch-tracking: the scan-side counters
/// were charged by the real pass 1).
std::vector<uint8_t> RebuildShardPartition(const Table& input,
                                           const AggKernelPlan& kplan,
                                           const MorselLayout& layout, int s,
                                           int p, SimdLevel simd) {
  constexpr int kParts = QueryExecutor::kMergePartitions;
  BlockKeyFiller filler(kplan, simd);
  const bool dense = kplan.kernel == AggKernel::kDenseArray;
  const size_t kw = static_cast<size_t>(kplan.key_width);
  std::vector<uint64_t> keys;
  std::vector<uint32_t> slots;
  if (dense) {
    slots.resize(BlockKeyFiller::kBlockRows);
  } else {
    keys.resize(BlockKeyFiller::kBlockRows * kw);
  }
  std::vector<uint8_t> buf;
  layout.ForEachShardBlock(
      s, BlockKeyFiller::kBlockRows, [&](size_t begin, size_t count) {
        if (dense) {
          filler.FillDense(begin, count, slots.data());
          for (size_t i = 0; i < count; ++i) {
            if (DenseGroupTable::PartitionOfSlot(slots[i], kParts,
                                                 kplan.dense_capacity) != p) {
              continue;
            }
            const uint32_t row = static_cast<uint32_t>(begin + i);
            const uint8_t* sp = reinterpret_cast<const uint8_t*>(&slots[i]);
            buf.insert(buf.end(), sp, sp + 4);
            const uint8_t* rp = reinterpret_cast<const uint8_t*>(&row);
            buf.insert(buf.end(), rp, rp + 4);
          }
        } else {
          if (kplan.kernel == AggKernel::kMultiWord) {
            filler.FillMultiWord(begin, count, keys.data());
          } else {
            filler.FillPacked(begin, count, keys.data());
          }
          for (size_t i = 0; i < count; ++i) {
            const uint64_t* keyp = keys.data() + i * kw;
            if (GroupHashTable::PartitionOfHash(
                    GroupHashTable::Hash(keyp, kplan.key_width), kParts) != p) {
              continue;
            }
            const uint8_t* kp = reinterpret_cast<const uint8_t*>(keyp);
            buf.insert(buf.end(), kp, kp + kw * 8);
            const uint32_t row = static_cast<uint32_t>(begin + i);
            const uint8_t* rp = reinterpret_cast<const uint8_t*>(&row);
            buf.insert(buf.end(), rp, rp + 4);
          }
        }
      });
  return buf;
}

/// The grace-hash spill path for one hash group-by. The caller has already
/// charged the per-query scan counters (queries_executed, rows_scanned,
/// bytes_scanned); this charges everything downstream of the scan —
/// checksum, probes, kernel rows, rows_emitted — plus the spill_* counters,
/// exactly once, whether the in-memory attempt tripped early or late.
Result<TablePtr> RunHashSpill(const Table& input, const GroupByQuery& query,
                              const std::string& output_name,
                              const AggKernelPlan& kplan,
                              const MorselLayout& layout,
                              const SpillOptions& spill, bool touch,
                              int parallelism, SimdLevel simd,
                              ExecContext* ctx) {
  constexpr int kParts = QueryExecutor::kMergePartitions;
  const int shards = layout.shards;
  auto files_r = SpillFileSet::Create(spill.directory, shards * kParts,
                                      spill.max_spill_bytes, spill.governor);
  if (!files_r.ok()) return files_r.status();
  const std::unique_ptr<SpillFileSet> files = std::move(files_r).ValueOrDie();

  WorkCounters& wc = ctx->counters();
  const CancellationToken* tok = ctx->cancellation();
  const uint64_t salt = ctx->fault_salt();

  // Pass 1: radix-partition. Each shard stages records per partition and
  // flushes to its own file range (single writer per file), so the staging
  // working set is shards * partitions * kFlushBytes regardless of input
  // size.
  constexpr size_t kFlushBytes = size_t{1} << 15;
  std::vector<Status> shard_status(static_cast<size_t>(shards));
  std::vector<uint64_t> shard_checksums(static_cast<size_t>(shards), 0);
  RunTasks(shards, parallelism, [&](int s) {
    Status& st = shard_status[static_cast<size_t>(s)];
    BlockKeyFiller filler(kplan, simd);
    const bool dense = kplan.kernel == AggKernel::kDenseArray;
    const size_t kw = static_cast<size_t>(kplan.key_width);
    std::vector<uint64_t> keys;
    std::vector<uint32_t> slots;
    if (dense) {
      slots.resize(BlockKeyFiller::kBlockRows);
    } else {
      keys.resize(BlockKeyFiller::kBlockRows * kw);
    }
    std::vector<std::vector<uint8_t>> stage(kParts);
    RowToucher shard_toucher(input, touch);
    const auto flush = [&](int p) {
      std::vector<uint8_t>& buf = stage[static_cast<size_t>(p)];
      const int file = s * kParts + p;
      const Status ap =
          files->Append(file, FaultKey(salt, 0x57000000ull + file), buf.data(),
                        buf.size());
      if (!ap.ok() && st.ok()) st = ap;
      buf.clear();
    };
    layout.ForEachShardBlock(
        s, BlockKeyFiller::kBlockRows, [&](size_t begin, size_t count) {
          if (!st.ok()) return;
          if (tok != nullptr && tok->Fired()) return;
          for (size_t r = begin; r < begin + count; ++r) {
            shard_toucher.Touch(r);
          }
          if (dense) {
            filler.FillDense(begin, count, slots.data());
            for (size_t i = 0; i < count; ++i) {
              const int p = DenseGroupTable::PartitionOfSlot(
                  slots[i], kParts, kplan.dense_capacity);
              std::vector<uint8_t>& buf = stage[static_cast<size_t>(p)];
              const uint32_t row = static_cast<uint32_t>(begin + i);
              const uint8_t* sp = reinterpret_cast<const uint8_t*>(&slots[i]);
              buf.insert(buf.end(), sp, sp + 4);
              const uint8_t* rp = reinterpret_cast<const uint8_t*>(&row);
              buf.insert(buf.end(), rp, rp + 4);
              if (buf.size() >= kFlushBytes) flush(p);
            }
          } else {
            if (kplan.kernel == AggKernel::kMultiWord) {
              filler.FillMultiWord(begin, count, keys.data());
            } else {
              filler.FillPacked(begin, count, keys.data());
            }
            for (size_t i = 0; i < count; ++i) {
              const uint64_t* keyp = keys.data() + i * kw;
              const int p = GroupHashTable::PartitionOfHash(
                  GroupHashTable::Hash(keyp, kplan.key_width), kParts);
              std::vector<uint8_t>& buf = stage[static_cast<size_t>(p)];
              const uint8_t* kp = reinterpret_cast<const uint8_t*>(keyp);
              buf.insert(buf.end(), kp, kp + kw * 8);
              const uint32_t row = static_cast<uint32_t>(begin + i);
              const uint8_t* rp = reinterpret_cast<const uint8_t*>(&row);
              buf.insert(buf.end(), rp, rp + 4);
              if (buf.size() >= kFlushBytes) flush(p);
            }
          }
        });
    if (st.ok() && (tok == nullptr || !tok->Fired())) {
      for (int p = 0; p < kParts; ++p) {
        if (!stage[static_cast<size_t>(p)].empty()) flush(p);
      }
    }
    shard_checksums[static_cast<size_t>(s)] = shard_toucher.checksum();
  });
  for (const Status& s : shard_status) GBMQO_RETURN_NOT_OK(s);
  GBMQO_RETURN_NOT_OK(ctx->CheckCancelled());
  GBMQO_RETURN_NOT_OK(files->FinishWrites());
  for (uint64_t c : shard_checksums) wc.scan_touch_checksum ^= c;

  // Pass 2: replay partitions 0..P-1 in order, appending each merged
  // partition to the output builder before the next partition's state is
  // built. Segment rebuilds within a partition run in parallel.
  TableBuilder builder = AggState::MakeOutputBuilder(input, query);
  uint64_t probes = 0;
  size_t groups = 0;
  uint64_t bytes_read = 0;
  uint64_t ram_peak = 0;
  for (int p = 0; p < kParts; ++p) {
    GBMQO_RETURN_NOT_OK(ctx->CheckCancelled());
    if (GBMQO_INJECT_FAULT(FaultSite::kSpillMerge,
                           FaultKey(salt, 0x4D000000ull + p))) {
      return Status::Internal("injected spill merge failure");
    }
    MemoryMeter part_meter(0, /*trip=*/false);
    std::vector<ShardAgg> segs(static_cast<size_t>(shards));
    std::vector<Status> seg_status(static_cast<size_t>(shards));
    std::vector<uint64_t> seg_bytes(static_cast<size_t>(shards), 0);
    std::vector<uint64_t> seg_recoveries(static_cast<size_t>(shards), 0);
    RunTasks(shards, parallelism, [&](int s) {
      const int file = s * kParts + p;
      bool corrupt = false;
      Result<std::vector<uint8_t>> data = files->ReadAll(
          file, FaultKey(salt, 0x52000000ull + file), &corrupt);
      std::vector<uint8_t> bytes;
      if (data.ok()) {
        bytes = std::move(*data);
      } else if (corrupt && spill.recover_corrupt) {
        // Recompute-partition rung: the input is still resident, so the
        // damaged file's records can be re-derived bit-identically instead
        // of failing the query.
        bytes = RebuildShardPartition(input, kplan, layout, s, p, simd);
        seg_recoveries[static_cast<size_t>(s)] = 1;
      } else {
        seg_status[static_cast<size_t>(s)] = data.status();
        return;
      }
      seg_bytes[static_cast<size_t>(s)] = bytes.size();
      part_meter.Charge(static_cast<int64_t>(bytes.size()));
      BuildSegment(input, query, kplan, p, bytes, simd, &part_meter,
                   &segs[static_cast<size_t>(s)]);
    });
    for (const Status& s : seg_status) GBMQO_RETURN_NOT_OK(s);
    for (uint64_t b : seg_bytes) bytes_read += b;
    for (uint64_t r : seg_recoveries) wc.spill_corrupt_recoveries += r;
    size_t part_total = 0;
    for (const ShardAgg& seg : segs) {
      part_total += seg.groups();
      probes += seg.probes();
    }
    ShardAgg merged;
    MergePartition(input, query, kplan, segs, part_total * kParts, p, &merged,
                   simd, &part_meter);
    probes += merged.probes();
    groups += merged.groups();
    merged.state->AppendTo(&builder, input, query);
    ram_peak = std::max(ram_peak, part_meter.peak());
  }
  if (spill.governor != nullptr && ram_peak > 0) {
    // Record the replay's realized RAM working set in the governor's peak
    // high-water mark, so callers can assert the out-of-core run actually
    // stayed under the cap.
    spill.governor->ForceReserve(static_cast<double>(ram_peak));
    spill.governor->Release(static_cast<double>(ram_peak));
  }
  wc.queries_spilled += 1;
  wc.spill_partitions += static_cast<uint64_t>(kParts);
  wc.spill_bytes_written += files->bytes_written();
  wc.spill_bytes_read += bytes_read;
  wc.hash_probes += probes;
  ChargeKernel(&wc, kplan.kernel, layout.num_rows, groups);
  wc.rows_emitted += groups;
  return builder.Build(output_name);
}

}  // namespace

Result<TablePtr> QueryExecutor::ExecuteGroupBy(const Table& input,
                                               const GroupByQuery& query,
                                               const std::string& output_name,
                                               AggStrategy strategy) {
  try {
    return ExecuteGroupByImpl(input, query, output_name, strategy);
  } catch (const GroupIdSpaceExhausted& e) {
    return Status::ResourceExhausted(e.what());
  } catch (const SpillRequired& e) {
    // Defensive: the impl restarts eligible trips on the spill path before
    // they reach here; anything else surfaces with realized-vs-budgeted
    // numbers.
    return Status::ResourceExhausted(e.what());
  }
}

Result<TablePtr> QueryExecutor::ExecuteGroupByImpl(
    const Table& input, const GroupByQuery& query,
    const std::string& output_name, AggStrategy strategy) {
  GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
  AggState state(input, query);
  GBMQO_RETURN_NOT_OK(state.Validate());

  const Index* index = nullptr;
  if (strategy == AggStrategy::kAuto || strategy == AggStrategy::kIndexStream) {
    index = input.FindCoveringIndex(query.grouping);
    if (strategy == AggStrategy::kIndexStream && index == nullptr) {
      return Status::NotFound("no covering index on " +
                              query.grouping.ToString());
    }
    if (strategy == AggStrategy::kAuto && index == nullptr) {
      strategy = AggStrategy::kHash;
    } else {
      strategy = AggStrategy::kIndexStream;
    }
  }
  if (query.grouping.empty() && strategy == AggStrategy::kIndexStream) {
    strategy = AggStrategy::kHash;  // no index needed for a grand total
  }

  KeyBuilder keys(input, query.grouping);
  const int kw = keys.width();
  std::vector<uint64_t> key(static_cast<size_t>(kw));
  const size_t n = input.num_rows();

  WorkCounters& wc = ctx_->counters();
  wc.queries_executed += 1;
  wc.rows_scanned += n;
  if (strategy == AggStrategy::kIndexStream) {
    // Index scan reads only the key columns' width (narrow leaf pages).
    wc.bytes_scanned += static_cast<uint64_t>(
        static_cast<double>(n) * input.AvgRowWidth(query.grouping));
  } else {
    wc.bytes_scanned +=
        static_cast<uint64_t>(static_cast<double>(n) * input.AvgRowWidth({}));
  }

  RowToucher toucher(input, scan_mode_ == ScanMode::kRowStore &&
                                strategy == AggStrategy::kSort);

  // Output parts: the hash path produces one part per merge partition (or
  // one for the single-shard fast path); sort/index paths fill `state`.
  std::vector<std::unique_ptr<AggState>> owned_parts;
  std::vector<const AggState*> parts;

  switch (strategy) {
    case AggStrategy::kHash: {
      const AggKernelPlan kplan = PlanAggKernel(
          input, query.grouping,
          forced_kernel_.value_or(AggKernel::kDenseArray));
      const MorselLayout layout(n);
      const bool touch = scan_mode_ == ScanMode::kRowStore;
      const SimdLevel simd = simd_level();
      // Out-of-core eligibility: multi-shard inputs only (a single-shard
      // input's group state is bounded by one morsel's rows, below any
      // useful budget, and its fast path emits first-touch order directly).
      const bool spill_ok = spill_.enabled() && layout.shards > 1;
      if (spill_ok && spill_.force) {
        return RunHashSpill(input, query, output_name, kplan, layout, spill_,
                            touch, parallelism_, simd, ctx_);
      }
      // The meter trips mid-build/mid-merge when the realized group-table
      // bytes pass the budget; the catch below restarts on the spill path.
      // Bytes only grow, so whether a given input trips is independent of
      // the worker interleaving.
      MemoryMeter meter(spill_.memory_budget_bytes,
                        spill_.memory_budget_bytes > 0 && layout.shards > 1);
      try {
        std::vector<ShardAgg> shards(static_cast<size_t>(layout.shards));
        std::vector<uint64_t> shard_checksums(
            static_cast<size_t>(layout.shards), 0);
        const CancellationToken* tok = ctx_->cancellation();
        const uint64_t salt = ctx_->fault_salt();
        RunTasks(layout.shards, parallelism_, [&](int s) {
          InjectAllocPressure(salt, static_cast<uint64_t>(s));
          ShardBuilder builder(input, query, kplan, layout.ShardRows(s), simd,
                               &meter);
          RowToucher shard_toucher(input, touch);
          layout.ForEachShardBlock(
              s, BlockKeyFiller::kBlockRows, [&](size_t begin, size_t count) {
                // Morsel-boundary cancellation point: a fired token stops the
                // scan early; the caller surfaces Cancelled before any output
                // is built from the partial state.
                if (tok != nullptr && tok->Fired()) return;
                for (size_t r = begin; r < begin + count; ++r) {
                  shard_toucher.Touch(r);
                }
                builder.Consume(begin, count);
              });
          shards[static_cast<size_t>(s)] = builder.Take();
          shard_checksums[static_cast<size_t>(s)] = shard_toucher.checksum();
        });
        GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());

        uint64_t probes = 0;
        size_t groups = 0;
        for (const ShardAgg& shard : shards) probes += shard.probes();

        if (layout.shards <= 1) {
          // Single-shard fast path: the shard already holds the final groups
          // in first-occurrence order — identical to serial aggregation.
          if (!shards.empty()) {
            groups = shards[0].groups();
            owned_parts.push_back(std::move(shards[0].state));
          }
        } else {
          size_t total_groups = 0;
          for (const ShardAgg& shard : shards) total_groups += shard.groups();
          std::vector<ShardAgg> merged(kMergePartitions);
          RunTasks(kMergePartitions, parallelism_, [&](int p) {
            InjectAllocPressure(salt, 4096 + static_cast<uint64_t>(p));
            MergePartition(input, query, kplan, shards, total_groups, p,
                           &merged[static_cast<size_t>(p)], simd, &meter);
          });
          GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
          for (ShardAgg& part : merged) {
            probes += part.probes();
            groups += part.groups();
            owned_parts.push_back(std::move(part.state));
          }
        }
        // Checksum fold happens only once the whole aggregation has
        // survived the budget: a tripped attempt charges nothing here, and
        // the spill pass re-derives the full checksum from its own scan.
        for (uint64_t c : shard_checksums) wc.scan_touch_checksum ^= c;
        for (const auto& part : owned_parts) parts.push_back(part.get());

        wc.hash_probes += probes;
        ChargeKernel(&wc, kplan.kernel, n, groups);
      } catch (const SpillRequired& e) {
        if (!spill_ok) return Status::ResourceExhausted(e.what());
        owned_parts.clear();
        parts.clear();
        return RunHashSpill(input, query, output_name, kplan, layout, spill_,
                            touch, parallelism_, simd, ctx_);
      }
      break;
    }
    case AggStrategy::kSort: {
      // Materialize keys, sort row ids lexicographically, stream runs.
      std::vector<uint64_t> all(n * static_cast<size_t>(kw));
      for (size_t row = 0; row < n; ++row) {
        if ((row & 0xFFFF) == 0) GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
        toucher.Touch(row);
        keys.FillKey(row, all.data() + row * static_cast<size_t>(kw));
      }
      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        const uint64_t* ka = all.data() + static_cast<size_t>(a) * kw;
        const uint64_t* kb = all.data() + static_cast<size_t>(b) * kw;
        return std::lexicographical_compare(ka, ka + kw, kb, kb + kw);
      });
      wc.rows_sorted += n;
      uint32_t id = 0;
      for (size_t i = 0; i < n; ++i) {
        const size_t row = order[i];
        if (i > 0) {
          const uint64_t* prev = all.data() + static_cast<size_t>(order[i - 1]) * kw;
          const uint64_t* cur = all.data() + static_cast<size_t>(row) * kw;
          if (!std::equal(prev, prev + kw, cur)) ++id;
        }
        state.Touch(id, row);
        state.Update(id, row);
      }
      wc.agg_cpu_units += static_cast<double>(n);  // stream after sort
      parts.push_back(&state);
      break;
    }
    case AggStrategy::kIndexStream: {
      const std::vector<uint32_t>& order = index->sorted_rows();
      std::vector<uint64_t> prev(static_cast<size_t>(kw));
      uint32_t id = 0;
      bool first = true;
      for (size_t i = 0; i < n; ++i) {
        if ((i & 0xFFFF) == 0) GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
        const size_t row = order[i];
        keys.FillKey(row, key.data());
        if (!first && !std::equal(key.begin(), key.end(), prev.begin())) ++id;
        first = false;
        prev = key;
        state.Touch(id, row);
        state.Update(id, row);
      }
      wc.agg_cpu_units += static_cast<double>(n);  // stream over index
      parts.push_back(&state);
      break;
    }
    case AggStrategy::kAuto:
      return Status::Internal("strategy not resolved");
  }

  size_t num_groups = 0;
  for (const AggState* part : parts) num_groups += part->num_groups();
  wc.rows_emitted += num_groups;
  wc.scan_touch_checksum ^= toucher.checksum();
  return AggState::BuildOutput(input, query, parts, output_name);
}

Result<std::vector<TablePtr>> QueryExecutor::ExecuteSharedScan(
    const Table& input, const std::vector<GroupByQuery>& queries,
    const std::vector<std::string>& output_names) {
  try {
    return ExecuteSharedScanImpl(input, queries, output_names);
  } catch (const GroupIdSpaceExhausted& e) {
    return Status::ResourceExhausted(e.what());
  } catch (const SpillRequired& e) {
    // Shared scans cannot spill — their shard state interleaves queries —
    // so a tripped budget fails the fused batch with the realized and
    // budgeted bytes; the plan-level retry ladder then splits it into
    // per-query runs, which can.
    return Status::ResourceExhausted(e.what());
  }
}

Result<std::vector<TablePtr>> QueryExecutor::ExecuteSharedScanImpl(
    const Table& input, const std::vector<GroupByQuery>& queries,
    const std::vector<std::string>& output_names) {
  GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
  if (queries.size() != output_names.size()) {
    return Status::InvalidArgument("queries/output_names size mismatch");
  }
  const size_t nq = queries.size();
  // An empty batch performs no scan, so it must charge none: the scan-side
  // counters below are per shared pass, not per query.
  if (nq == 0) return std::vector<TablePtr>{};
  std::vector<AggKernelPlan> kplans;
  kplans.reserve(nq);
  for (const GroupByQuery& q : queries) {
    GBMQO_RETURN_NOT_OK(AggState(input, q).Validate());
    kplans.push_back(PlanAggKernel(
        input, q.grouping, forced_kernel_.value_or(AggKernel::kDenseArray)));
  }
  const size_t n = input.num_rows();
  const MorselLayout layout(n);

  WorkCounters& wc = ctx_->counters();
  wc.queries_executed += nq;
  wc.rows_scanned += n;  // one shared pass
  wc.bytes_scanned +=
      static_cast<uint64_t>(static_cast<double>(n) * input.AvgRowWidth({}));

  // Build phase: one worker per shard; each shard scans its morsels once
  // (one full-width touch per row — the shared scan) and pre-aggregates
  // every query into shard-local state.
  const bool touch = scan_mode_ == ScanMode::kRowStore;
  // Shared scans meter the fused batch's realized group-table bytes against
  // the same budget as single queries but cannot spill (shard state
  // interleaves queries): a trip throws SpillRequired through RunTasks to
  // the public wrapper, which fails the batch so the plan layer can split
  // it into spillable per-query runs.
  MemoryMeter meter(spill_.memory_budget_bytes,
                    spill_.memory_budget_bytes > 0 && layout.shards > 1);
  // shard_aggs[shard][query]
  std::vector<std::vector<ShardAgg>> shard_aggs(
      static_cast<size_t>(layout.shards));
  std::vector<uint64_t> shard_checksums(static_cast<size_t>(layout.shards), 0);
  // Per-shard failure slots for the batch-read fault site: a failed shard
  // records a Status instead of throwing, and the first non-OK one fails
  // the whole shared pass after the build phase joins.
  std::vector<Status> shard_status(static_cast<size_t>(layout.shards));
  const CancellationToken* tok = ctx_->cancellation();
  const uint64_t salt = ctx_->fault_salt();
  const SimdLevel simd = simd_level();
  RunTasks(layout.shards, parallelism_, [&](int s) {
    if (GBMQO_INJECT_FAULT(FaultSite::kSharedScanBatch,
                           FaultKey(salt, static_cast<uint64_t>(s)))) {
      shard_status[static_cast<size_t>(s)] =
          Status::Internal("injected shared-scan batch read failure");
      return;
    }
    InjectAllocPressure(salt, static_cast<uint64_t>(s));
    const size_t shard_rows = layout.ShardRows(s);
    std::vector<ShardBuilder> builders;
    builders.reserve(nq);
    for (size_t qi = 0; qi < nq; ++qi) {
      builders.emplace_back(input, queries[qi], kplans[qi], shard_rows, simd,
                            &meter);
    }
    RowToucher shard_toucher(input, touch);
    layout.ForEachShardBlock(
        s, BlockKeyFiller::kBlockRows, [&](size_t begin, size_t count) {
          // Morsel-boundary cancellation point (see ExecuteGroupBy).
          if (tok != nullptr && tok->Fired()) return;
          // One full-width touch per row (the shared scan), then every
          // query consumes the same block.
          for (size_t r = begin; r < begin + count; ++r) {
            shard_toucher.Touch(r);
          }
          for (size_t qi = 0; qi < nq; ++qi) {
            builders[qi].Consume(begin, count);
          }
        });
    std::vector<ShardAgg>& aggs = shard_aggs[static_cast<size_t>(s)];
    aggs.reserve(nq);
    for (ShardBuilder& b : builders) aggs.push_back(b.Take());
    shard_checksums[static_cast<size_t>(s)] = shard_toucher.checksum();
  });
  for (const Status& s : shard_status) GBMQO_RETURN_NOT_OK(s);
  GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
  for (uint64_t c : shard_checksums) wc.scan_touch_checksum ^= c;

  // Merge phase: each (query, partition) pair is an independent task.
  // per_query[qi] holds the output parts in partition order.
  std::vector<std::vector<std::unique_ptr<AggState>>> per_query(nq);
  std::vector<uint64_t> query_probes(nq, 0);
  std::vector<size_t> query_groups(nq, 0);
  for (size_t qi = 0; qi < nq; ++qi) {
    for (const auto& shard : shard_aggs) {
      query_probes[qi] += shard[qi].probes();
    }
  }
  if (layout.shards <= 1) {
    // Single-shard fast path: shard 0 already holds each query's final
    // groups in first-occurrence order.
    for (size_t qi = 0; qi < nq; ++qi) {
      if (!shard_aggs.empty()) {
        query_groups[qi] = shard_aggs[0][qi].groups();
        per_query[qi].push_back(std::move(shard_aggs[0][qi].state));
      }
    }
  } else {
    // Re-shape to shards-per-query for MergePartition.
    std::vector<std::vector<ShardAgg>> by_query(nq);
    std::vector<size_t> totals(nq, 0);
    for (size_t qi = 0; qi < nq; ++qi) {
      for (auto& shard : shard_aggs) {
        totals[qi] += shard[qi].groups();
        by_query[qi].push_back(std::move(shard[qi]));
      }
    }
    std::vector<std::vector<ShardAgg>> merged(nq);
    for (auto& v : merged) v.resize(kMergePartitions);
    const int tasks = static_cast<int>(nq) * kMergePartitions;
    RunTasks(tasks, parallelism_, [&](int t) {
      InjectAllocPressure(salt, 4096 + static_cast<uint64_t>(t));
      const size_t qi = static_cast<size_t>(t) / kMergePartitions;
      const int p = t % kMergePartitions;
      MergePartition(input, queries[qi], kplans[qi], by_query[qi], totals[qi],
                     p, &merged[qi][static_cast<size_t>(p)], simd, &meter);
    });
    GBMQO_RETURN_NOT_OK(ctx_->CheckCancelled());
    for (size_t qi = 0; qi < nq; ++qi) {
      for (ShardAgg& part : merged[qi]) {
        query_probes[qi] += part.probes();
        query_groups[qi] += part.groups();
        per_query[qi].push_back(std::move(part.state));
      }
    }
  }

  std::vector<TablePtr> out;
  out.reserve(nq);
  for (size_t qi = 0; qi < nq; ++qi) {
    wc.hash_probes += query_probes[qi];
    ChargeKernel(&wc, kplans[qi].kernel, n, query_groups[qi]);
    wc.rows_emitted += query_groups[qi];
    std::vector<const AggState*> parts;
    for (const auto& part : per_query[qi]) parts.push_back(part.get());
    Result<TablePtr> t =
        AggState::BuildOutput(input, queries[qi], parts, output_names[qi]);
    if (!t.ok()) return t.status();
    out.push_back(std::move(t).ValueOrDie());
  }
  return out;
}

}  // namespace gbmqo
