#include "exec/query_executor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "exec/group_hash_table.h"

namespace gbmqo {

namespace {

/// Per-query aggregation state, decoupled from the scan strategy. Groups are
/// dense ids handed out by the caller; `Touch(id)` must be called (in id
/// order for new ids) before Update.
class AggState {
 public:
  AggState(const Table& input, const GroupByQuery& query)
      : input_(input), query_(query), acc_(query.aggregates.size()) {}

  Status Validate() const {
    for (const AggregateSpec& agg : query_.aggregates) {
      if (agg.kind == AggKind::kCountStar) continue;
      if (agg.arg < 0 || agg.arg >= input_.schema().num_columns()) {
        return Status::InvalidArgument("aggregate argument out of range");
      }
      const DataType t = input_.schema().column(agg.arg).type;
      if (t == DataType::kString) {
        return Status::NotSupported("SUM/MIN/MAX over STRING is not supported");
      }
    }
    for (int ordinal : query_.grouping.ToVector()) {
      if (ordinal >= input_.schema().num_columns()) {
        return Status::InvalidArgument("grouping column out of range");
      }
    }
    return Status::OK();
  }

  /// Ensures state exists for group `id` (ids arrive densely from 0).
  void Touch(uint32_t id, size_t representative_row) {
    if (id == rep_rows_.size()) {
      rep_rows_.push_back(static_cast<uint32_t>(representative_row));
      counts_.push_back(0);
      for (size_t a = 0; a < query_.aggregates.size(); ++a) {
        acc_[a].push_back(InitAccum(query_.aggregates[a]));
      }
    }
  }

  /// Folds row `row` into group `id`.
  void Update(uint32_t id, size_t row) {
    counts_[id] += 1;
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      const AggregateSpec& agg = query_.aggregates[a];
      if (agg.kind == AggKind::kCountStar) continue;
      const Column& col = input_.column(agg.arg);
      if (col.IsNull(row)) continue;
      Accum& acc = acc_[a][id];
      const double v = col.NumericAt(row);
      switch (agg.kind) {
        case AggKind::kSum:
          acc.value += v;
          acc.seen = true;
          break;
        case AggKind::kMin:
          if (!acc.seen || v < acc.value) acc.value = v;
          acc.seen = true;
          break;
        case AggKind::kMax:
          if (!acc.seen || v > acc.value) acc.value = v;
          acc.seen = true;
          break;
        case AggKind::kCountStar:
          break;
      }
    }
  }

  size_t num_groups() const { return rep_rows_.size(); }

  /// Builds the output table.
  Result<TablePtr> BuildOutput(const std::string& output_name) const {
    // Output schema: grouping columns (input names/types) then aggregates.
    std::vector<ColumnDef> defs;
    const std::vector<int> group_cols = query_.grouping.ToVector();
    for (int ordinal : group_cols) {
      defs.push_back(input_.schema().column(ordinal));
    }
    for (const AggregateSpec& agg : query_.aggregates) {
      DataType out_type = DataType::kInt64;
      bool nullable = false;
      if (agg.kind != AggKind::kCountStar) {
        out_type = input_.schema().column(agg.arg).type;
        nullable = true;  // a group may have only NULL arguments
      }
      defs.push_back(ColumnDef{agg.output_name, out_type, nullable});
    }
    TableBuilder builder{Schema(std::move(defs))};

    const size_t n = num_groups();
    for (size_t c = 0; c < group_cols.size(); ++c) {
      Column* out = builder.column(static_cast<int>(c));
      const Column& in = input_.column(group_cols[c]);
      out->Reserve(n);
      for (size_t g = 0; g < n; ++g) out->AppendFrom(in, rep_rows_[g]);
    }
    for (size_t a = 0; a < query_.aggregates.size(); ++a) {
      const AggregateSpec& agg = query_.aggregates[a];
      Column* out = builder.column(static_cast<int>(group_cols.size() + a));
      out->Reserve(n);
      if (agg.kind == AggKind::kCountStar) {
        for (size_t g = 0; g < n; ++g) {
          out->AppendInt64(static_cast<int64_t>(counts_[g]));
        }
        continue;
      }
      const DataType out_type = input_.schema().column(agg.arg).type;
      for (size_t g = 0; g < n; ++g) {
        const Accum& acc = acc_[a][g];
        if (!acc.seen) {
          out->AppendNull();
        } else if (out_type == DataType::kInt64) {
          out->AppendInt64(static_cast<int64_t>(acc.value));
        } else {
          out->AppendDouble(acc.value);
        }
      }
    }
    return builder.Build(output_name);
  }

 private:
  struct Accum {
    double value = 0.0;
    bool seen = false;  // saw at least one non-NULL argument
  };

  static Accum InitAccum(const AggregateSpec&) { return Accum{}; }

  const Table& input_;
  const GroupByQuery& query_;
  std::vector<uint32_t> rep_rows_;
  std::vector<uint64_t> counts_;
  // acc_[aggregate][group]; empty for COUNT(*)-only queries.
  std::vector<std::vector<Accum>> acc_;
};

/// Builds per-row group keys into `key` (width = #group cols + 1 null word
/// when tracking nulls). Returns key width.
class KeyBuilder {
 public:
  KeyBuilder(const Table& input, ColumnSet grouping) {
    for (int ordinal : grouping.ToVector()) {
      cols_.push_back(&input.column(ordinal));
      if (cols_.back()->has_nulls()) track_nulls_ = true;
    }
    width_ = static_cast<int>(cols_.size()) + (track_nulls_ ? 1 : 0);
    if (width_ == 0) width_ = 1;  // empty grouping set: constant key
  }

  int width() const { return width_; }

  void FillKey(size_t row, uint64_t* key) const {
    uint64_t null_mask = 0;
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (cols_[c]->IsNull(row)) {
        null_mask |= 1ULL << c;
        key[c] = 0;
      } else {
        key[c] = cols_[c]->CodeAt(row);
      }
    }
    if (track_nulls_) key[cols_.size()] = null_mask;
    if (cols_.empty()) key[0] = 0;
  }

 private:
  std::vector<const Column*> cols_;
  bool track_nulls_ = false;
  int width_ = 0;
};

/// Full-width row access for ScanMode::kRowStore: reads every column of the
/// row (the attribute bytes a row store's page read pays for) and folds the
/// codes into a checksum so the reads cannot be elided.
class RowToucher {
 public:
  RowToucher(const Table& input, bool enabled) {
    if (!enabled) return;
    for (int c = 0; c < input.schema().num_columns(); ++c) {
      cols_.push_back(&input.column(c));
    }
  }

  void Touch(size_t row) {
    // Per attribute: read the value and run a short dependent mix, standing
    // in for the tuple-deserialization work (offset decode, attribute copy)
    // a row store performs per column of every scanned row. This keeps scan
    // cost proportional to row *width*, the regime the paper's experiments
    // ran in (disk-resident, full-width pages).
    uint64_t acc = checksum_;
    for (const Column* col : cols_) {
      uint64_t v = col->IsNull(row) ? row : col->CodeAt(row);
      v *= 0x9E3779B97F4A7C15ULL;
      v ^= v >> 29;
      v *= 0xBF58476D1CE4E5B9ULL;
      acc ^= v;
    }
    checksum_ = acc;
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::vector<const Column*> cols_;
  uint64_t checksum_ = 0;
};

}  // namespace

Result<TablePtr> QueryExecutor::ExecuteGroupBy(const Table& input,
                                               const GroupByQuery& query,
                                               const std::string& output_name,
                                               AggStrategy strategy) {
  AggState state(input, query);
  GBMQO_RETURN_NOT_OK(state.Validate());

  const Index* index = nullptr;
  if (strategy == AggStrategy::kAuto || strategy == AggStrategy::kIndexStream) {
    index = input.FindCoveringIndex(query.grouping);
    if (strategy == AggStrategy::kIndexStream && index == nullptr) {
      return Status::NotFound("no covering index on " +
                              query.grouping.ToString());
    }
    if (strategy == AggStrategy::kAuto && index == nullptr) {
      strategy = AggStrategy::kHash;
    } else {
      strategy = AggStrategy::kIndexStream;
    }
  }
  if (query.grouping.empty() && strategy == AggStrategy::kIndexStream) {
    strategy = AggStrategy::kHash;  // no index needed for a grand total
  }

  KeyBuilder keys(input, query.grouping);
  const int kw = keys.width();
  std::vector<uint64_t> key(static_cast<size_t>(kw));
  const size_t n = input.num_rows();

  WorkCounters& wc = ctx_->counters();
  wc.queries_executed += 1;
  wc.rows_scanned += n;
  if (strategy == AggStrategy::kIndexStream) {
    // Index scan reads only the key columns' width (narrow leaf pages).
    wc.bytes_scanned += static_cast<uint64_t>(
        static_cast<double>(n) * input.AvgRowWidth(query.grouping));
  } else {
    wc.bytes_scanned +=
        static_cast<uint64_t>(static_cast<double>(n) * input.AvgRowWidth({}));
  }

  RowToucher toucher(input, scan_mode_ == ScanMode::kRowStore &&
                                strategy != AggStrategy::kIndexStream);

  switch (strategy) {
    case AggStrategy::kHash: {
      GroupHashTable table(kw, n / 8 + 16);
      for (size_t row = 0; row < n; ++row) {
        toucher.Touch(row);
        keys.FillKey(row, key.data());
        const uint32_t id = table.FindOrInsert(key.data());
        state.Touch(id, row);
        state.Update(id, row);
      }
      wc.hash_probes += table.probes();
      wc.agg_cpu_units +=
          static_cast<double>(n) *
          HashAggCpuPerRow(static_cast<double>(table.size()));
      break;
    }
    case AggStrategy::kSort: {
      // Materialize keys, sort row ids lexicographically, stream runs.
      std::vector<uint64_t> all(n * static_cast<size_t>(kw));
      for (size_t row = 0; row < n; ++row) {
        toucher.Touch(row);
        keys.FillKey(row, all.data() + row * static_cast<size_t>(kw));
      }
      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        const uint64_t* ka = all.data() + static_cast<size_t>(a) * kw;
        const uint64_t* kb = all.data() + static_cast<size_t>(b) * kw;
        return std::lexicographical_compare(ka, ka + kw, kb, kb + kw);
      });
      wc.rows_sorted += n;
      uint32_t id = 0;
      for (size_t i = 0; i < n; ++i) {
        const size_t row = order[i];
        if (i > 0) {
          const uint64_t* prev = all.data() + static_cast<size_t>(order[i - 1]) * kw;
          const uint64_t* cur = all.data() + static_cast<size_t>(row) * kw;
          if (!std::equal(prev, prev + kw, cur)) ++id;
        }
        state.Touch(id, row);
        state.Update(id, row);
      }
      wc.agg_cpu_units += static_cast<double>(n);  // stream after sort
      break;
    }
    case AggStrategy::kIndexStream: {
      const std::vector<uint32_t>& order = index->sorted_rows();
      std::vector<uint64_t> prev(static_cast<size_t>(kw));
      uint32_t id = 0;
      bool first = true;
      for (size_t i = 0; i < n; ++i) {
        const size_t row = order[i];
        keys.FillKey(row, key.data());
        if (!first && !std::equal(key.begin(), key.end(), prev.begin())) ++id;
        first = false;
        prev = key;
        state.Touch(id, row);
        state.Update(id, row);
      }
      wc.agg_cpu_units += static_cast<double>(n);  // stream over index
      break;
    }
    case AggStrategy::kAuto:
      return Status::Internal("strategy not resolved");
  }

  wc.rows_emitted += state.num_groups();
  wc.scan_touch_checksum ^= toucher.checksum();
  return state.BuildOutput(output_name);
}

Result<std::vector<TablePtr>> QueryExecutor::ExecuteSharedScan(
    const Table& input, const std::vector<GroupByQuery>& queries,
    const std::vector<std::string>& output_names) {
  if (queries.size() != output_names.size()) {
    return Status::InvalidArgument("queries/output_names size mismatch");
  }
  std::vector<AggState> states;
  states.reserve(queries.size());
  std::vector<KeyBuilder> keybuilders;
  std::vector<GroupHashTable> tables;
  int max_width = 1;
  for (const GroupByQuery& q : queries) {
    states.emplace_back(input, q);
    GBMQO_RETURN_NOT_OK(states.back().Validate());
    keybuilders.emplace_back(input, q.grouping);
    max_width = std::max(max_width, keybuilders.back().width());
  }
  const size_t n = input.num_rows();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    tables.emplace_back(keybuilders[qi].width(), n / 8 + 16);
  }

  WorkCounters& wc = ctx_->counters();
  wc.queries_executed += queries.size();
  wc.rows_scanned += n;  // one shared pass
  wc.bytes_scanned +=
      static_cast<uint64_t>(static_cast<double>(n) * input.AvgRowWidth({}));

  RowToucher toucher(input, scan_mode_ == ScanMode::kRowStore);
  std::vector<uint64_t> key(static_cast<size_t>(max_width));
  for (size_t row = 0; row < n; ++row) {
    toucher.Touch(row);  // one full-width touch per row — the shared scan
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      keybuilders[qi].FillKey(row, key.data());
      const uint32_t id = tables[qi].FindOrInsert(key.data());
      states[qi].Touch(id, row);
      states[qi].Update(id, row);
    }
  }

  wc.scan_touch_checksum ^= toucher.checksum();
  std::vector<TablePtr> out;
  out.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    wc.hash_probes += tables[qi].probes();
    wc.agg_cpu_units +=
        static_cast<double>(n) *
        HashAggCpuPerRow(static_cast<double>(tables[qi].size()));
    wc.rows_emitted += states[qi].num_groups();
    Result<TablePtr> t = states[qi].BuildOutput(output_names[qi]);
    if (!t.ok()) return t.status();
    out.push_back(std::move(t).ValueOrDie());
  }
  return out;
}

}  // namespace gbmqo
