// Inner equi-join: the join substrate for Section 5.1.1 (GROUPING SETS over
// Join(R, S) with group-by pushdown below the join, Figure 8).
#ifndef GBMQO_EXEC_HASH_JOIN_H_
#define GBMQO_EXEC_HASH_JOIN_H_

#include <string>

#include "common/status.h"
#include "exec/exec_context.h"
#include "storage/table.h"

namespace gbmqo {

/// Equi-join condition left.left_col = right.right_col. Columns must have
/// the same data type; NULL keys never join (SQL semantics).
struct JoinSpec {
  int left_col = 0;
  int right_col = 0;
};

/// Materializes `SELECT * FROM left JOIN right ON <spec>` as a table named
/// `name`. Output schema: left's columns followed by right's; right-side
/// names that collide get a "_r" suffix. Build side is `right`.
Result<TablePtr> HashJoin(const Table& left, const Table& right,
                          const JoinSpec& spec, const std::string& name,
                          ExecContext* ctx);

}  // namespace gbmqo

#endif  // GBMQO_EXEC_HASH_JOIN_H_
