// RunTasks: the engine's minimal fork-join helper, used by the morsel-driven
// aggregation pipeline (shard builds, partition merges). Tasks are claimed
// off a shared atomic counter; the calling thread participates.
//
// Exception safety: a task that throws (e.g. std::bad_alloc while growing a
// hash table) must not std::terminate the process from a worker thread. The
// first exception is captured, remaining tasks are abandoned, workers drain,
// and the exception is rethrown on the calling thread — so callers see the
// same behaviour as a serial loop that threw partway through.
#ifndef GBMQO_EXEC_TASK_RUNNER_H_
#define GBMQO_EXEC_TASK_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gbmqo {

/// Runs `task(i)` for i in [0, num_tasks) on up to `workers` threads (the
/// calling thread participates). Tasks must not touch shared mutable state.
/// If any task throws, the first captured exception is rethrown here after
/// all workers have been joined; tasks not yet claimed are skipped.
inline void RunTasks(int num_tasks, int workers,
                     const std::function<void(int)>& task) {
  workers = std::min(workers, num_tasks);
  if (workers <= 1) {
    for (int i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto loop = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1);
      if (i >= num_tasks) break;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) threads.emplace_back(loop);
  loop();
  for (std::thread& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace gbmqo

#endif  // GBMQO_EXEC_TASK_RUNNER_H_
