// RunTasks / RunTaskGraph: the engine's fork-join helpers.
//
// RunTasks is the minimal flat pool used by the morsel-driven aggregation
// pipeline (shard builds, partition merges): tasks are claimed off a shared
// atomic counter and the calling thread participates.
//
// RunTaskGraph runs a dependency DAG of tasks (the node-level plan
// scheduler): a task becomes ready when all its predecessors completed,
// ready tasks are dispatched lowest-index-first (the index order is the
// caller's priority order), and an optional admission callback can hold a
// ready task back — used by PlanExecutor's storage-aware gate.
//
// Exception safety (both helpers): a task that throws (e.g. std::bad_alloc
// while growing a hash table) must not std::terminate the process from a
// worker thread. The first exception is captured, remaining tasks are
// abandoned, workers drain, and the exception is rethrown on the calling
// thread — so callers see the same behaviour as a serial loop that threw
// partway through.
#ifndef GBMQO_EXEC_TASK_RUNNER_H_
#define GBMQO_EXEC_TASK_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gbmqo {

/// Runs `task(i)` for i in [0, num_tasks) on up to `workers` threads (the
/// calling thread participates). Tasks must not touch shared mutable state.
/// If any task throws, the first captured exception is rethrown here after
/// all workers have been joined; tasks not yet claimed are skipped.
inline void RunTasks(int num_tasks, int workers,
                     const std::function<void(int)>& task) {
  workers = std::min(workers, num_tasks);
  if (workers <= 1) {
    for (int i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto loop = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1);
      if (i >= num_tasks) break;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) threads.emplace_back(loop);
  loop();
  for (std::thread& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// Runs `task(id, active)` for every task of a dependency DAG on up to
/// `workers` threads (the calling thread participates). `deps[i]` lists the
/// predecessor task ids of task i (entries < 0 are ignored); the graph must
/// be acyclic — PlanExecutor guarantees this by only depending on
/// lower-indexed tasks. `active` is the number of tasks running at the
/// moment task `id` was dispatched (including itself), so tasks can size
/// their internal parallelism to the free share of the thread budget.
///
/// Dispatch order: among ready tasks the lowest id wins, so with one worker
/// the graph executes in exact index order — the caller encodes scheduling
/// priorities (e.g. the BF/DF traversal of a plan) as task indices.
///
/// Admission: when `admit` is non-null it is consulted under the scheduler
/// lock before a ready task is dispatched. `admit(id, false)` returning true
/// commits the task (the callback must reserve whatever resource it gates
/// on); returning false skips it this round — it is re-examined whenever
/// another task completes. If nothing is running and every ready task was
/// refused, the lowest-indexed ready task is forced: `admit(id, true)` is
/// called (and must reserve) and the task runs regardless, so an
/// over-budget task cannot deadlock the graph.
inline void RunTaskGraph(int num_tasks,
                         const std::vector<std::vector<int>>& deps, int workers,
                         const std::function<bool(int, bool)>& admit,
                         const std::function<void(int, int)>& task) {
  if (num_tasks <= 0) return;
  std::vector<int> pending(static_cast<size_t>(num_tasks), 0);
  std::vector<std::vector<int>> successors(static_cast<size_t>(num_tasks));
  for (int i = 0; i < num_tasks; ++i) {
    if (static_cast<size_t>(i) >= deps.size()) break;
    for (int d : deps[static_cast<size_t>(i)]) {
      if (d < 0 || d >= num_tasks || d == i) continue;
      ++pending[static_cast<size_t>(i)];
      successors[static_cast<size_t>(d)].push_back(i);
    }
  }
  std::set<int> ready;
  for (int i = 0; i < num_tasks; ++i) {
    if (pending[static_cast<size_t>(i)] == 0) ready.insert(i);
  }

  std::mutex mu;
  std::condition_variable cv;
  int running = 0;
  int completed = 0;
  bool failed = false;
  std::exception_ptr first_error;

  auto worker = [&]() {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      int pick = -1;
      if (!failed) {
        for (int id : ready) {
          if (admit == nullptr || admit(id, /*forced=*/false)) {
            pick = id;
            break;
          }
        }
        if (pick < 0 && running == 0 && !ready.empty()) {
          // Every ready task was refused and nothing can free resources:
          // force the highest-priority one through.
          pick = *ready.begin();
          if (admit != nullptr) admit(pick, /*forced=*/true);
        }
      }
      if (pick >= 0) {
        ready.erase(pick);
        ++running;
        const int active = running;
        lock.unlock();
        std::exception_ptr error;
        try {
          task(pick, active);
        } catch (...) {
          error = std::current_exception();
        }
        lock.lock();
        --running;
        ++completed;
        if (error != nullptr) {
          if (first_error == nullptr) first_error = error;
          failed = true;
        } else {
          for (int s : successors[static_cast<size_t>(pick)]) {
            if (--pending[static_cast<size_t>(s)] == 0) ready.insert(s);
          }
        }
        cv.notify_all();
        continue;
      }
      const bool drained = failed ? running == 0
                                  : (completed == num_tasks ||
                                     (ready.empty() && running == 0));
      if (drained) break;
      cv.wait(lock);
    }
    // Wake peers blocked in cv.wait so they can observe termination too.
    cv.notify_all();
  };

  workers = std::min(workers, num_tasks);
  std::vector<std::thread> threads;
  if (workers > 1) {
    threads.reserve(static_cast<size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) threads.emplace_back(worker);
  }
  worker();
  for (std::thread& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  if (completed != num_tasks) {
    throw std::logic_error("RunTaskGraph: dependency cycle left " +
                           std::to_string(num_tasks - completed) +
                           " tasks unreachable");
  }
}

}  // namespace gbmqo

#endif  // GBMQO_EXEC_TASK_RUNNER_H_
