// Aggregate function specifications. All four paper aggregates (COUNT(*),
// SUM, MIN, MAX — Sections 3.1 and 7.2) are *decomposable*: re-aggregating a
// materialized intermediate uses SUM(cnt) for COUNT(*), SUM for SUM, MIN for
// MIN, MAX for MAX. PlanExecutor relies on this to compute a node from a
// materialized ancestor instead of the base relation.
#ifndef GBMQO_EXEC_AGGREGATE_SPEC_H_
#define GBMQO_EXEC_AGGREGATE_SPEC_H_

#include <string>
#include <vector>

namespace gbmqo {

/// Aggregate function kind.
enum class AggKind {
  kCountStar,  ///< COUNT(*) — no argument
  kSum,        ///< SUM(arg)
  kMin,        ///< MIN(arg)
  kMax,        ///< MAX(arg)
};

inline const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar: return "COUNT(*)";
    case AggKind::kSum: return "SUM";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
  }
  return "?";
}

/// One aggregate in a group-by query's SELECT list.
struct AggregateSpec {
  AggKind kind = AggKind::kCountStar;
  /// Argument column ordinal in the *input* table; -1 for COUNT(*).
  int arg = -1;
  /// Output column name, e.g. "cnt" or "sum_l_quantity".
  std::string output_name = "cnt";

  static AggregateSpec CountStar(std::string name = "cnt") {
    return AggregateSpec{AggKind::kCountStar, -1, std::move(name)};
  }
  static AggregateSpec Sum(int arg, std::string name) {
    return AggregateSpec{AggKind::kSum, arg, std::move(name)};
  }
  static AggregateSpec Min(int arg, std::string name) {
    return AggregateSpec{AggKind::kMin, arg, std::move(name)};
  }
  static AggregateSpec Max(int arg, std::string name) {
    return AggregateSpec{AggKind::kMax, arg, std::move(name)};
  }
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_AGGREGATE_SPEC_H_
