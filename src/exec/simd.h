// Runtime-dispatched SIMD primitives for the execution hot loops.
//
// Every inner loop the engine vectorizes — packed/dense key formation
// (exec/agg_kernel.cc), the tagged hash-table probe and the dense-merge
// partition scan (exec/group_hash_table.cc), columnar selection
// (exec/predicate.cc) — goes through this header. One ISA tier is detected
// at process start (AVX2 on x86-64, NEON on aarch64, scalar everywhere
// else) and cached; callers pass the tier explicitly so the scalar path is
// always forcible per call site.
//
// Two override knobs, both documented in README:
//  * GBMQO_DISABLE_SIMD (environment) — pins DetectedSimdLevel() to scalar
//    for the whole process (checked once, at first detection).
//  * SessionOptions::force_scalar / QueryExecutor::set_force_scalar — pins
//    one session/executor to the scalar tier (EffectiveSimdLevel).
//
// Determinism contract: for every primitive here, the vectorized and scalar
// implementations produce bit-identical outputs (pure integer/bitwise ops,
// or floating-point compares with C++ NaN semantics). Nothing in this layer
// reassociates floating-point additions; the engine keeps double SUM in the
// canonical blocked scalar order (see DESIGN.md "Vectorized execution").
#ifndef GBMQO_EXEC_SIMD_H_
#define GBMQO_EXEC_SIMD_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define GBMQO_SIMD_X86 1
#include <emmintrin.h>  // SSE2: x86-64 baseline, used without dispatch
#elif defined(__aarch64__)
#define GBMQO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace gbmqo {

/// The ISA tier a hot loop runs at. kAVX2/kNEON are only ever produced on
/// hosts (and builds) that support them; kScalar is always valid.
enum class SimdLevel {
  kScalar,
  kAVX2,
  kNEON,
};

const char* SimdLevelName(SimdLevel level);

/// One-time CPU detection, honoring GBMQO_DISABLE_SIMD (any non-empty value
/// other than "0" disables). Cached after the first call; the environment
/// variable must be set before the process first touches the engine.
SimdLevel DetectedSimdLevel();

/// Uncached detection — re-reads the environment and CPU flags on every
/// call. Exposed for tests of the override logic; engine code uses the
/// cached DetectedSimdLevel().
SimdLevel DetectSimdLevelUncached();

/// The tier a per-session/executor `force_scalar` knob resolves to.
inline SimdLevel EffectiveSimdLevel(bool force_scalar) {
  return force_scalar ? SimdLevel::kScalar : DetectedSimdLevel();
}

namespace simd {

/// Comparison operator for the bitmap compare primitives. Mirrors
/// CompareOp in exec/predicate.h (kept separate so this header stays free
/// of the table/schema dependencies predicate.h carries).
enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

/// out[i] |= (codes[i] - base) << shift for i in [0, n). The packed-key
/// formation inner loop: wrapping uint64 arithmetic, identical across
/// tiers.
void OrShiftedCodes(SimdLevel level, const uint64_t* codes, size_t n,
                    uint64_t base, int shift, uint64_t* out);

/// out[i] += uint32(codes[i] - base) * stride for i in [0, n). The dense
/// mixed-radix slot formation inner loop; every offset code fits uint32 by
/// the dense kernel's eligibility rule.
void AddScaledDigits(SimdLevel level, const uint64_t* codes, size_t n,
                     uint64_t base, uint32_t stride, uint32_t* out);

/// Sets bit r of bitmap (word r>>6, bit r&63) to `vals[r] op lit` for r in
/// [0, n); bits >= n in the last touched word are left untouched, so
/// callers should pass a zeroed bitmap of (n+63)/64 words. NaN follows C++
/// semantics: all ordered compares false, != true.
void CompareDoublesBitmap(SimdLevel level, const double* vals, size_t n,
                          Cmp op, double lit, uint64_t* bitmap);

/// Same, comparing double(vals[r]) against lit — the engine's numeric
/// widening. The vector tiers use an exactly-rounded int64→double
/// conversion, so results match the scalar static_cast for the full int64
/// range (including values above 2^53).
void CompareInt64Bitmap(SimdLevel level, const int64_t* vals, size_t n,
                        Cmp op, double lit, uint64_t* bitmap);

/// dst[w] &= src[w] / dst[w] &= ~src[w] for w in [0, nwords). Word-wise
/// bitmap combine (selection AND null-bitmap folding); compilers vectorize
/// these themselves, so there is no per-tier dispatch.
void AndWords(uint64_t* dst, const uint64_t* src, size_t nwords);
void AndNotWords(uint64_t* dst, const uint64_t* src, size_t nwords);

/// Bitmask (bit i = lane i) of lanes i in [0, 8) with (v[i] >> shift) ==
/// target. The dense-merge partition scan: 8 slot words per call.
uint32_t ShiftEqMask8(SimdLevel level, const uint32_t* v, int shift,
                      uint32_t target);

/// 16-byte metadata group scan (the Swiss-table-style probe): writes the
/// bitmask (bit i = lane i) of bytes equal to `b` and of zero bytes.
/// Uses the platform's baseline 128-bit ISA directly (SSE2 / NEON) — no
/// tier dispatch, since both are unconditionally available where compiled.
inline void ScanGroup16(const uint8_t* g, uint8_t b, uint32_t* eq_mask,
                        uint32_t* zero_mask) {
#if defined(GBMQO_SIMD_X86)
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(g));
  *eq_mask = static_cast<uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(b)))));
  *zero_mask = static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())));
#elif defined(GBMQO_SIMD_NEON)
  // vshrn narrows each 16-bit lane's middle bits: a matched byte becomes a
  // 0xF nibble. The shift cascade then compresses bit 4i -> bit i.
  const uint8x16_t v = vld1q_u8(g);
  const auto mask_of = [](uint8x16_t eq) -> uint32_t {
    const uint8x8_t nib =
        vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
    uint64_t x = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    x &= 0x1111111111111111ull;
    x = (x | (x >> 3)) & 0x0303030303030303ull;
    x = (x | (x >> 6)) & 0x000F000F000F000Full;
    x = (x | (x >> 12)) & 0x000000FF000000FFull;
    x = (x | (x >> 24)) & 0xFFFFull;
    return static_cast<uint32_t>(x);
  };
  *eq_mask = mask_of(vceqq_u8(v, vdupq_n_u8(b)));
  *zero_mask = mask_of(vceqq_u8(v, vdupq_n_u8(0)));
#else
  uint32_t eq = 0, zero = 0;
  for (int i = 0; i < 16; ++i) {
    if (g[i] == b) eq |= 1u << i;
    if (g[i] == 0) zero |= 1u << i;
  }
  *eq_mask = eq;
  *zero_mask = zero;
#endif
}

}  // namespace simd
}  // namespace gbmqo

#endif  // GBMQO_EXEC_SIMD_H_
