// AVX2 implementations of the exec/simd.h primitives. This TU is the only
// one compiled for AVX2 (via per-function target attributes, not a global
// -mavx2), so the binary still runs on non-AVX2 x86-64 hosts — the
// dispatcher in simd.cc only routes here after __builtin_cpu_supports
// confirms the ISA.
#include "exec/simd.h"

#if defined(GBMQO_SIMD_X86)

#include <immintrin.h>

#define GBMQO_AVX2 __attribute__((target("avx2")))

namespace gbmqo {
namespace simd_avx2 {
namespace {

// Exact full-range int64 -> double conversion (round-to-nearest-even,
// matching static_cast<double>): splits each lane into low/high 32-bit
// halves biased into the exponent ranges of 2^52 and 2^84, then recombines.
// The three magic constants encode 2^52, 2^84 + 2^63, and
// 2^84 + 2^63 + 2^52. AVX2 has no native epi64->pd conversion; truncating
// through 2^53-wide paths would silently round values above 2^53
// differently from the scalar cast, breaking the scalar/SIMD determinism
// contract.
GBMQO_AVX2 inline __m256d Int64ToDouble(__m256i x) {
  const __m256i magic_lo = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256i magic_hi = _mm256_set1_epi64x(0x4530000080000000LL);
  const __m256i magic_all = _mm256_set1_epi64x(0x4530000080100000LL);
  const __m256i v_lo = _mm256_blend_epi32(magic_lo, x, 0b01010101);
  __m256i v_hi = _mm256_srli_epi64(x, 32);
  v_hi = _mm256_xor_si256(v_hi, magic_hi);
  const __m256d hi_dbl =
      _mm256_sub_pd(_mm256_castsi256_pd(v_hi), _mm256_castsi256_pd(magic_all));
  return _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo));
}

// Scalar twin of the _mm256_cmp_pd predicate, for loop tails.
template <int P>
inline bool CmpScalar(double v, double lit) {
  if constexpr (P == _CMP_EQ_OQ) return v == lit;
  if constexpr (P == _CMP_NEQ_UQ) return v != lit;
  if constexpr (P == _CMP_LT_OQ) return v < lit;
  if constexpr (P == _CMP_LE_OQ) return v <= lit;
  if constexpr (P == _CMP_GT_OQ) return v > lit;
  if constexpr (P == _CMP_GE_OQ) return v >= lit;
  return false;
}

template <int P>
GBMQO_AVX2 void CompareDoublesLoop(const double* vals, size_t n, double lit,
                                   uint64_t* bitmap) {
  const __m256d vlit = _mm256_set1_pd(lit);
  size_t r = 0;
  for (; r + 64 <= n; r += 64) {
    uint64_t w = 0;
    for (int i = 0; i < 64; i += 4) {
      const int m = _mm256_movemask_pd(
          _mm256_cmp_pd(_mm256_loadu_pd(vals + r + i), vlit, P));
      w |= static_cast<uint64_t>(m) << i;
    }
    bitmap[r >> 6] |= w;
  }
  for (; r < n; ++r) {
    if (CmpScalar<P>(vals[r], lit)) bitmap[r >> 6] |= uint64_t{1} << (r & 63);
  }
}

template <int P>
GBMQO_AVX2 void CompareInt64Loop(const int64_t* vals, size_t n, double lit,
                                 uint64_t* bitmap) {
  const __m256d vlit = _mm256_set1_pd(lit);
  size_t r = 0;
  for (; r + 64 <= n; r += 64) {
    uint64_t w = 0;
    for (int i = 0; i < 64; i += 4) {
      const __m256d v = Int64ToDouble(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(vals + r + i)));
      const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, vlit, P));
      w |= static_cast<uint64_t>(m) << i;
    }
    bitmap[r >> 6] |= w;
  }
  for (; r < n; ++r) {
    if (CmpScalar<P>(static_cast<double>(vals[r]), lit)) {
      bitmap[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
}

}  // namespace

GBMQO_AVX2 void OrShiftedCodes(const uint64_t* codes, size_t n, uint64_t base,
                               int shift, uint64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m128i vshift = _mm_cvtsi32_si128(shift);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i lane = _mm256_sll_epi64(_mm256_sub_epi64(c, vbase), vshift);
    const __m256i o = _mm256_loadu_si256(reinterpret_cast<__m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(o, lane));
  }
  for (; i < n; ++i) {
    out[i] |= (codes[i] - base) << shift;
  }
}

GBMQO_AVX2 void AddScaledDigits(const uint64_t* codes, size_t n, uint64_t base,
                                uint32_t stride, uint32_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256i vstride = _mm256_set1_epi32(static_cast<int>(stride));
  // Gathers the even (low) dwords of a 4x64-bit vector into the low lane.
  const __m256i even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i)),
        vbase);
    const __m256i b = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i + 4)),
        vbase);
    const __m128i alo =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(a, even));
    const __m128i blo =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(b, even));
    const __m256i digits = _mm256_set_m128i(blo, alo);
    const __m256i scaled = _mm256_mullo_epi32(digits, vstride);
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(o, scaled));
  }
  for (; i < n; ++i) {
    out[i] += static_cast<uint32_t>(codes[i] - base) * stride;
  }
}

void CompareDoublesBitmap(const double* vals, size_t n, simd::Cmp op,
                          double lit, uint64_t* bitmap) {
  // _mm256_cmp_pd needs its predicate as an immediate, so dispatch once to
  // a per-predicate instantiation. The mapping preserves C++ NaN
  // semantics: ordered-quiet for ==/</<=/>/>= (NaN -> false), unordered
  // for != (NaN -> true).
  switch (op) {
    case simd::Cmp::kEq:
      CompareDoublesLoop<_CMP_EQ_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kNe:
      CompareDoublesLoop<_CMP_NEQ_UQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLt:
      CompareDoublesLoop<_CMP_LT_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLe:
      CompareDoublesLoop<_CMP_LE_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGt:
      CompareDoublesLoop<_CMP_GT_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGe:
      CompareDoublesLoop<_CMP_GE_OQ>(vals, n, lit, bitmap);
      return;
  }
}

void CompareInt64Bitmap(const int64_t* vals, size_t n, simd::Cmp op,
                        double lit, uint64_t* bitmap) {
  switch (op) {
    case simd::Cmp::kEq:
      CompareInt64Loop<_CMP_EQ_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kNe:
      CompareInt64Loop<_CMP_NEQ_UQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLt:
      CompareInt64Loop<_CMP_LT_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLe:
      CompareInt64Loop<_CMP_LE_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGt:
      CompareInt64Loop<_CMP_GT_OQ>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGe:
      CompareInt64Loop<_CMP_GE_OQ>(vals, n, lit, bitmap);
      return;
  }
}

GBMQO_AVX2 uint32_t ShiftEqMask8(const uint32_t* v, int shift,
                                 uint32_t target) {
  const __m256i a =
      _mm256_srl_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(v)),
                       _mm_cvtsi32_si128(shift));
  const __m256i eq =
      _mm256_cmpeq_epi32(a, _mm256_set1_epi32(static_cast<int>(target)));
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

}  // namespace simd_avx2
}  // namespace gbmqo

#endif  // GBMQO_SIMD_X86
