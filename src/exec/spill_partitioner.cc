#include "exec/spill_partitioner.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "storage/checkpoint.h"
#include "storage/storage_governor.h"

namespace gbmqo {

namespace {

namespace fs = std::filesystem;

/// Monotonic suffix so concurrent aggregations in one process never collide
/// on a directory name (the pid disambiguates across processes sharing a
/// temp directory).
std::atomic<uint64_t> g_spill_dir_seq{0};

uint64_t ProcessId() { return CurrentProcessId(); }

constexpr char kSpillDirPrefix[] = "gbmqo-spill-";
constexpr size_t kSpillFrameHeader = 8;  // u32 payload_len + u32 crc

}  // namespace

SpillFileSet::SpillFileSet(std::string directory, int num_files,
                           uint64_t max_bytes, StorageGovernor* governor)
    : directory_(std::move(directory)),
      max_bytes_(max_bytes),
      governor_(governor),
      files_(static_cast<size_t>(num_files), nullptr),
      file_bytes_(static_cast<size_t>(num_files), 0),
      disk_bytes_(static_cast<size_t>(num_files), 0) {}

Result<std::unique_ptr<SpillFileSet>> SpillFileSet::Create(
    const std::string& parent, int num_files, uint64_t max_bytes,
    StorageGovernor* governor) {
  std::error_code ec;
  fs::path base = parent.empty() ? fs::temp_directory_path(ec) : fs::path(parent);
  if (ec) {
    return Status::Internal("spill: cannot resolve the system temp directory: " +
                            ec.message());
  }
  const uint64_t seq = g_spill_dir_seq.fetch_add(1, std::memory_order_relaxed);
  fs::path dir = base / (kSpillDirPrefix + std::to_string(ProcessId()) + "-" +
                         std::to_string(seq));
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("spill: cannot create spill directory " +
                            dir.string() + ": " + ec.message());
  }
  return std::unique_ptr<SpillFileSet>(
      new SpillFileSet(dir.string(), num_files, max_bytes, governor));
}

SpillFileSet::~SpillFileSet() {
  for (std::FILE*& f : files_) {
    if (f != nullptr) {
      std::fclose(f);
      f = nullptr;
    }
  }
  std::error_code ec;
  fs::remove_all(directory_, ec);  // best effort; never throws
  if (governor_ != nullptr && governor_held_ > 0) {
    governor_->ReleaseDisk(static_cast<double>(governor_held_));
  }
}

std::string SpillFileSet::PathOf(int index) const {
  return directory_ + "/f" + std::to_string(index) + ".bin";
}

Status SpillFileSet::Append(int index, uint64_t fault_key, const void* data,
                            size_t bytes) {
  if (bytes == 0) return Status::OK();
  const uint64_t write_offset = disk_bytes_[static_cast<size_t>(index)];
  if (GBMQO_INJECT_FAULT(FaultSite::kSpillWrite, fault_key)) {
    return Status::Internal("injected spill write failure");
  }
  if (GBMQO_INJECT_FAULT(FaultSite::kDiskEnospc, fault_key)) {
    return Status::ResourceExhausted(
        "spill: no space left on device writing " + PathOf(index) +
        " at offset " + std::to_string(write_offset));
  }
  const uint64_t total =
      bytes_written_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (max_bytes_ > 0 && total > max_bytes_) {
    return Status::ResourceExhausted(
        "spill disk budget exhausted: realized " + std::to_string(total) +
        " bytes exceeds max_spill_bytes of " + std::to_string(max_bytes_) +
        " bytes");
  }
  if (governor_ != nullptr) {
    if (!governor_->TryReserveDisk(static_cast<double>(bytes))) {
      return Status::ResourceExhausted(
          "global spill disk budget exhausted: " +
          std::to_string(static_cast<uint64_t>(governor_->disk_reserved())) +
          " bytes reserved of " +
          std::to_string(static_cast<uint64_t>(governor_->disk_budget_bytes())) +
          " budgeted");
    }
    const std::lock_guard<std::mutex> lock(ledger_mu_);
    governor_held_ += bytes;
  }
  std::FILE*& f = files_[static_cast<size_t>(index)];
  if (f == nullptr) {
    f = std::fopen(PathOf(index).c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("spill: cannot open " + PathOf(index) +
                              " for writing: " + std::strerror(errno));
    }
  }
  // One checksummed frame per Append: u32 payload_len + u32 crc + payload.
  uint8_t header[kSpillFrameHeader];
  const uint32_t payload_len = static_cast<uint32_t>(bytes);
  const uint32_t crc = Crc32(data, bytes);
  std::memcpy(header, &payload_len, 4);
  std::memcpy(header + 4, &crc, 4);
  size_t to_write = bytes;
  if (GBMQO_INJECT_FAULT(FaultSite::kDiskShortWrite, fault_key)) {
    to_write = bytes / 2;
  }
  size_t written = 0;
  if (std::fwrite(header, 1, kSpillFrameHeader, f) == kSpillFrameHeader) {
    written = std::fwrite(data, 1, to_write, f);
  }
  if (written != bytes) {
    const bool enospc = errno == ENOSPC;
    const std::string detail =
        "spill: short write to " + PathOf(index) + " at offset " +
        std::to_string(write_offset) + ": wrote " + std::to_string(written) +
        " of " + std::to_string(bytes) + " payload bytes";
    return enospc ? Status::ResourceExhausted(detail + " (ENOSPC)")
                  : Status::Internal(detail);
  }
  file_bytes_[static_cast<size_t>(index)] += bytes;
  disk_bytes_[static_cast<size_t>(index)] += kSpillFrameHeader + bytes;
  return Status::OK();
}

Status SpillFileSet::FinishWrites() {
  for (size_t i = 0; i < files_.size(); ++i) {
    std::FILE*& f = files_[i];
    if (f == nullptr) continue;
    const bool flush_failed = std::fflush(f) != 0;
    const int rc = std::fclose(f);
    f = nullptr;
    if (flush_failed || rc != 0) {
      return Status::Internal("spill: close failed after writing " +
                              PathOf(static_cast<int>(i)));
    }
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SpillFileSet::ReadAll(int index,
                                                   uint64_t fault_key,
                                                   bool* corrupt) const {
  if (corrupt != nullptr) *corrupt = false;
  if (GBMQO_INJECT_FAULT(FaultSite::kSpillRead, fault_key)) {
    return Status::Internal("injected spill read failure");
  }
  const uint64_t payload_size = file_bytes_[static_cast<size_t>(index)];
  std::vector<uint8_t> payload;
  payload.reserve(payload_size);
  if (payload_size == 0) return payload;
  const uint64_t disk_size = disk_bytes_[static_cast<size_t>(index)];
  std::vector<uint8_t> raw(disk_size);
  std::FILE* f = std::fopen(PathOf(index).c_str(), "rb");
  if (f == nullptr) {
    return Status::Internal("spill: cannot open " + PathOf(index) +
                            " for reading: " + std::strerror(errno));
  }
  const size_t got = std::fread(raw.data(), 1, disk_size, f);
  std::fclose(f);
  if (got != disk_size) {
    return Status::Internal("spill: short read from " + PathOf(index) +
                            " at offset " + std::to_string(got) + ": got " +
                            std::to_string(got) + " of " +
                            std::to_string(disk_size) + " bytes");
  }
  // Fault site for silent disk corruption: flip one stored bit before
  // verification and let the CRC below prove it cannot slip through.
  if (GBMQO_INJECT_FAULT(FaultSite::kSpillCorrupt, fault_key)) {
    raw[raw.size() / 2] ^= 0x20;
  }
  size_t pos = 0;
  auto corrupt_at = [&](const char* why) {
    if (corrupt != nullptr) *corrupt = true;
    return Status::Internal("spill: corrupt record in " + PathOf(index) +
                            " at offset " + std::to_string(pos) + ": " + why);
  };
  while (pos < raw.size()) {
    if (raw.size() - pos < kSpillFrameHeader) {
      return corrupt_at("truncated frame header");
    }
    uint32_t frame_len, crc;
    std::memcpy(&frame_len, raw.data() + pos, 4);
    std::memcpy(&crc, raw.data() + pos + 4, 4);
    if (raw.size() - pos - kSpillFrameHeader < frame_len) {
      return corrupt_at("frame extends past end of file");
    }
    const uint8_t* frame = raw.data() + pos + kSpillFrameHeader;
    if (Crc32(frame, frame_len) != crc) {
      return corrupt_at("CRC mismatch");
    }
    payload.insert(payload.end(), frame, frame + frame_len);
    pos += kSpillFrameHeader + frame_len;
  }
  if (payload.size() != payload_size) {
    return corrupt_at("payload size does not match the write ledger");
  }
  return payload;
}

uint64_t SpillFileSet::ReapStale(const std::string& parent) {
  std::error_code ec;
  const fs::path base =
      parent.empty() ? fs::temp_directory_path(ec) : fs::path(parent);
  if (ec || !fs::exists(base, ec)) return 0;
  uint64_t reaped = 0;
  const size_t prefix_len = sizeof(kSpillDirPrefix) - 1;
  for (const auto& entry : fs::directory_iterator(base, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.compare(0, prefix_len, kSpillDirPrefix) != 0) continue;
    const size_t dash = name.find('-', prefix_len);
    if (dash == std::string::npos) continue;
    const std::string digits = name.substr(prefix_len, dash - prefix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const uint64_t pid = std::strtoull(digits.c_str(), nullptr, 10);
    if (ProcessAlive(pid)) continue;
    if (fs::remove_all(entry.path(), ec) > 0 && !ec) ++reaped;
  }
  return reaped;
}

}  // namespace gbmqo
