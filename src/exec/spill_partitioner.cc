#include "exec/spill_partitioner.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/fault_injector.h"
#include "storage/storage_governor.h"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace gbmqo {

namespace {

namespace fs = std::filesystem;

/// Monotonic suffix so concurrent aggregations in one process never collide
/// on a directory name (the pid disambiguates across processes sharing a
/// temp directory).
std::atomic<uint64_t> g_spill_dir_seq{0};

uint64_t ProcessId() {
#if defined(_WIN32)
  return static_cast<uint64_t>(_getpid());
#else
  return static_cast<uint64_t>(getpid());
#endif
}

}  // namespace

SpillFileSet::SpillFileSet(std::string directory, int num_files,
                           uint64_t max_bytes, StorageGovernor* governor)
    : directory_(std::move(directory)),
      max_bytes_(max_bytes),
      governor_(governor),
      files_(static_cast<size_t>(num_files), nullptr),
      file_bytes_(static_cast<size_t>(num_files), 0) {}

Result<std::unique_ptr<SpillFileSet>> SpillFileSet::Create(
    const std::string& parent, int num_files, uint64_t max_bytes,
    StorageGovernor* governor) {
  std::error_code ec;
  fs::path base = parent.empty() ? fs::temp_directory_path(ec) : fs::path(parent);
  if (ec) {
    return Status::Internal("spill: cannot resolve the system temp directory: " +
                            ec.message());
  }
  const uint64_t seq = g_spill_dir_seq.fetch_add(1, std::memory_order_relaxed);
  fs::path dir = base / ("gbmqo-spill-" + std::to_string(ProcessId()) + "-" +
                         std::to_string(seq));
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("spill: cannot create spill directory " +
                            dir.string() + ": " + ec.message());
  }
  return std::unique_ptr<SpillFileSet>(
      new SpillFileSet(dir.string(), num_files, max_bytes, governor));
}

SpillFileSet::~SpillFileSet() {
  for (std::FILE*& f : files_) {
    if (f != nullptr) {
      std::fclose(f);
      f = nullptr;
    }
  }
  std::error_code ec;
  fs::remove_all(directory_, ec);  // best effort; never throws
  if (governor_ != nullptr && governor_held_ > 0) {
    governor_->ReleaseDisk(static_cast<double>(governor_held_));
  }
}

std::string SpillFileSet::PathOf(int index) const {
  return directory_ + "/f" + std::to_string(index) + ".bin";
}

Status SpillFileSet::Append(int index, uint64_t fault_key, const void* data,
                            size_t bytes) {
  if (bytes == 0) return Status::OK();
  if (GBMQO_INJECT_FAULT(FaultSite::kSpillWrite, fault_key)) {
    return Status::Internal("injected spill write failure");
  }
  const uint64_t total =
      bytes_written_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (max_bytes_ > 0 && total > max_bytes_) {
    return Status::ResourceExhausted(
        "spill disk budget exhausted: realized " + std::to_string(total) +
        " bytes exceeds max_spill_bytes of " + std::to_string(max_bytes_) +
        " bytes");
  }
  if (governor_ != nullptr) {
    if (!governor_->TryReserveDisk(static_cast<double>(bytes))) {
      return Status::ResourceExhausted(
          "global spill disk budget exhausted: " +
          std::to_string(static_cast<uint64_t>(governor_->disk_reserved())) +
          " bytes reserved of " +
          std::to_string(static_cast<uint64_t>(governor_->disk_budget_bytes())) +
          " budgeted");
    }
    const std::lock_guard<std::mutex> lock(ledger_mu_);
    governor_held_ += bytes;
  }
  std::FILE*& f = files_[static_cast<size_t>(index)];
  if (f == nullptr) {
    f = std::fopen(PathOf(index).c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("spill: cannot open " + PathOf(index) +
                              " for writing: " + std::strerror(errno));
    }
  }
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::Internal("spill: short write to " + PathOf(index));
  }
  file_bytes_[static_cast<size_t>(index)] += bytes;
  return Status::OK();
}

Status SpillFileSet::FinishWrites() {
  for (std::FILE*& f : files_) {
    if (f == nullptr) continue;
    const int rc = std::fclose(f);
    f = nullptr;
    if (rc != 0) return Status::Internal("spill: close failed after writing");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SpillFileSet::ReadAll(int index,
                                                   uint64_t fault_key) const {
  if (GBMQO_INJECT_FAULT(FaultSite::kSpillRead, fault_key)) {
    return Status::Internal("injected spill read failure");
  }
  const uint64_t size = file_bytes_[static_cast<size_t>(index)];
  std::vector<uint8_t> data(size);
  if (size == 0) return data;
  std::FILE* f = std::fopen(PathOf(index).c_str(), "rb");
  if (f == nullptr) {
    return Status::Internal("spill: cannot open " + PathOf(index) +
                            " for reading: " + std::strerror(errno));
  }
  const size_t got = std::fread(data.data(), 1, size, f);
  std::fclose(f);
  if (got != size) {
    return Status::Internal("spill: short read from " + PathOf(index));
  }
  return data;
}

}  // namespace gbmqo
