// GroupHashTable: open-addressing hash table mapping fixed-width group keys
// (arrays of 64-bit codes) to dense group ids. This is the core of hash
// aggregation; it avoids per-key allocations by storing all keys in a flat
// arena.
#ifndef GBMQO_EXEC_GROUP_HASH_TABLE_H_
#define GBMQO_EXEC_GROUP_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gbmqo {

/// Maps keys of `key_width` uint64 words to dense ids [0, size()). Uses
/// linear probing over a power-of-two slot array; resizes at 70% load.
class GroupHashTable {
 public:
  explicit GroupHashTable(int key_width, size_t initial_capacity = 64);

  /// Looks up `key` (key_width words); inserts if absent. Returns the dense
  /// group id. `*inserted` (optional) reports whether a new group was made.
  uint32_t FindOrInsert(const uint64_t* key, bool* inserted = nullptr);

  size_t size() const { return num_groups_; }
  int key_width() const { return key_width_; }

  /// Pointer to the stored key of group `id` (key_width words).
  const uint64_t* KeyOf(uint32_t id) const {
    return arena_.data() + static_cast<size_t>(id) * static_cast<size_t>(key_width_);
  }

  /// Total probe count since construction (for work accounting).
  uint64_t probes() const { return probes_; }

 private:
  static uint64_t HashKey(const uint64_t* key, int width);
  void Grow();

  int key_width_;
  size_t num_groups_ = 0;
  uint64_t probes_ = 0;

  // slot value: group id + 1; 0 = empty.
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;

  std::vector<uint64_t> arena_;  // num_groups_ * key_width_ words
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_GROUP_HASH_TABLE_H_
