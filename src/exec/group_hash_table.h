// GroupHashTable: open-addressing hash table mapping fixed-width group keys
// (arrays of 64-bit codes) to dense group ids. This is the core of hash
// aggregation; it avoids per-key allocations by storing all keys in a flat
// arena. The partition/merge API supports morsel-driven parallel
// aggregation: thread-local tables are merged by hash partition so each
// merge worker owns a disjoint key range (see QueryExecutor).
#ifndef GBMQO_EXEC_GROUP_HASH_TABLE_H_
#define GBMQO_EXEC_GROUP_HASH_TABLE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/simd.h"

namespace gbmqo {

/// Thrown by the group tables when handing out one more dense id would
/// overflow the uint32 id space (slot tags store id + 1, so at most
/// 2^32 - 1 groups are representable; beyond that ids would silently wrap).
/// QueryExecutor converts it to Status::ResourceExhausted at the query
/// boundary, like any other resource exhaustion.
class GroupIdSpaceExhausted : public std::runtime_error {
 public:
  explicit GroupIdSpaceExhausted(size_t groups, size_t limit)
      : std::runtime_error("group id space exhausted: realized " +
                           std::to_string(groups) +
                           " groups at the id limit of " +
                           std::to_string(limit)) {}
};

/// Maps keys of `key_width` uint64 words to dense ids [0, size()). Uses
/// linear probing over a power-of-two slot array; resizes at 70% load.
/// Not internally synchronized: one table per thread, merged afterwards.
class GroupHashTable {
 public:
  /// `simd` selects the probe loop: the vector tiers scan a Swiss-table
  /// style 1-byte metadata array 16 slots at a time before any key compare;
  /// kScalar probes slot-by-slot. Both visit the identical slot sequence
  /// (a skipped tag can never be empty or hold an equal key), so group ids,
  /// sizes, and probes() are bit-identical across tiers.
  explicit GroupHashTable(int key_width, size_t initial_capacity = 64,
                          SimdLevel simd = DetectedSimdLevel());

  /// Looks up `key` (key_width words); inserts if absent. Returns the dense
  /// group id. `*inserted` (optional) reports whether a new group was made.
  uint32_t FindOrInsert(const uint64_t* key, bool* inserted = nullptr);

  /// Appends `key` as a brand-new group without probing — the caller
  /// guarantees it is not already present (the sort-runs fold sees each
  /// distinct key exactly once, in ascending order). Only the key arena and
  /// group count are maintained, not the probe slots, so a table built this
  /// way is a *merge source only*: KeyOf / size / MergeFrom(src=this) work,
  /// FindOrInsert on it does not. Charges no probes.
  uint32_t AppendUnique(const uint64_t* key) {
    if (num_groups_ >= max_groups()) {
      throw GroupIdSpaceExhausted(num_groups_, max_groups());
    }
    const uint32_t id = static_cast<uint32_t>(num_groups_++);
    arena_.insert(arena_.end(), key, key + key_width_);
    return id;
  }

  /// Switches the probe implementation (determinism contract above); usable
  /// at any point, including mid-stream.
  void set_simd_level(SimdLevel level) { simd_ = level; }
  SimdLevel simd_level() const { return simd_; }

  size_t size() const { return num_groups_; }
  int key_width() const { return key_width_; }

  /// Current slot-array capacity (power of two). The table grows before an
  /// insert would push the load factor past 70%, so
  /// size() * 10 <= slot_capacity() * 7 holds after every FindOrInsert.
  size_t slot_capacity() const { return slots_.size(); }

  /// Pointer to the stored key of group `id` (key_width words).
  const uint64_t* KeyOf(uint32_t id) const {
    return arena_.data() + static_cast<size_t>(id) * static_cast<size_t>(key_width_);
  }

  /// Total probe count since construction (for work accounting). Strictly
  /// increases by at least one per FindOrInsert.
  uint64_t probes() const { return probes_; }

  /// Realized heap bytes of the slot array, tag metadata, and key arena —
  /// the quantity charged against the out-of-core memory budget (the spill
  /// trip must depend on real allocation, not estimates). Uses capacities,
  /// since reserved-but-unused vector memory is just as resident.
  size_t ByteSize() const {
    return slots_.capacity() * sizeof(uint32_t) + meta_.capacity() +
           arena_.capacity() * sizeof(uint64_t);
  }

  /// Largest representable group count: ids are uint32 and slot tags store
  /// id + 1 (0 = empty), so at most 2^32 - 1 groups exist per table.
  static constexpr size_t kMaxGroups = 0xFFFFFFFFu;

  /// Test hook: lowers the id-space limit process-wide so the exhaustion
  /// guard branch is exercisable without 2^32 real groups. 0 restores
  /// kMaxGroups. Applies to GroupHashTable and DenseGroupTable alike.
  static void OverrideMaxGroupsForTest(size_t limit);
  /// The effective id-space limit (kMaxGroups unless overridden for tests).
  static size_t max_groups();

  // ---- Partitioned merge (parallel aggregation) ----------------------------

  /// The hash used for slot placement, exposed so callers can partition keys
  /// consistently with the table (and so tests can engineer collisions).
  /// A pure function of (key, width).
  static uint64_t Hash(const uint64_t* key, int width);

  /// Hash of the stored key of group `id`.
  uint64_t HashOfGroup(uint32_t id) const {
    return Hash(KeyOf(id), key_width_);
  }

  /// Merge partition of a hash value. `num_partitions` must be a power of
  /// two; uses the hash's *top* bits, which are independent of the low bits
  /// used for slot placement, so one partition does not collapse onto a few
  /// slots of the destination table.
  static int PartitionOfHash(uint64_t hash, int num_partitions) {
    if (num_partitions <= 1) return 0;
    const int bits = std::countr_zero(static_cast<uint64_t>(num_partitions));
    return static_cast<int>(hash >> (64 - bits));
  }

  /// Merge partition of group `id` under `num_partitions`.
  int PartitionOf(uint32_t id, int num_partitions) const {
    return PartitionOfHash(HashOfGroup(id), num_partitions);
  }

  /// Inserts every group of `src` whose merge partition equals `partition`
  /// into this table, in ascending src-id order, and appends one
  /// (src_id, dst_id) pair per taken group to `mapping` (which is not
  /// cleared). Key widths must match. Returns the number of groups taken.
  /// Calling this once per partition over the same `src` visits every src
  /// group exactly once (partitions are disjoint and complete).
  size_t MergeFrom(const GroupHashTable& src, int num_partitions, int partition,
                   std::vector<std::pair<uint32_t, uint32_t>>* mapping);

 private:
  /// Metadata group width: the probe scans this many tag bytes per step.
  static constexpr size_t kMetaGroup = 16;

  static uint64_t HashKey(const uint64_t* key, int width);
  /// 1-byte tag of a hash: bit 7 set (so never 0 = empty) plus 7 hash bits
  /// taken from the middle of the hash — disjoint from both the low bits
  /// (slot placement) and the top bits (merge partition), so tags stay
  /// discriminating within a probe window.
  static uint8_t H2(uint64_t hash) {
    return static_cast<uint8_t>(0x80 | ((hash >> 32) & 0x7F));
  }
  void SetMeta(size_t pos, uint8_t m) {
    meta_[pos] = m;
    // First kMetaGroup-1 tags are mirrored past the end so a group load
    // near the wrap point sees the wrapped slots without masking.
    if (pos < kMetaGroup - 1) meta_[slots_.size() + pos] = m;
  }
  uint32_t InsertAt(size_t pos, uint64_t hash, const uint64_t* key,
                    bool* inserted);
  uint32_t FindOrInsertTagged(const uint64_t* key, uint64_t hash,
                              bool* inserted);
  void Grow();

  int key_width_;
  SimdLevel simd_;
  size_t num_groups_ = 0;
  uint64_t probes_ = 0;

  // slot value: group id + 1; 0 = empty.
  std::vector<uint32_t> slots_;
  // slot tag: 0 = empty, else H2(hash); slots_.size() + kMetaGroup - 1
  // bytes (mirror tail). Maintained on both probe tiers.
  std::vector<uint8_t> meta_;
  size_t slot_mask_ = 0;

  std::vector<uint64_t> arena_;  // num_groups_ * key_width_ words
};

/// Maps dense slot indices (mixed-radix packed group codes, bounded by the
/// dense-array kernel's slot budget — see exec/agg_kernel.h) to dense group
/// ids by direct array indexing: no hashing, no key compares. Group ids are
/// handed out in first-touch order, mirroring GroupHashTable, so output
/// ordering matches the hash kernels on the single-shard path.
/// Not internally synchronized: one table per thread, merged afterwards.
class DenseGroupTable {
 public:
  /// Covers slots [slot_begin, slot_end). Build-side tables cover the whole
  /// [0, capacity); merge-side tables cover one partition's contiguous
  /// range, so per-partition memory is capacity / num_partitions tags.
  /// `simd` selects the MergeFrom partition-scan loop (8 slots per step on
  /// the vector tiers); taken groups and their order are identical across
  /// tiers.
  DenseGroupTable(uint64_t slot_begin, uint64_t slot_end,
                  SimdLevel simd = DetectedSimdLevel())
      : begin_(slot_begin), simd_(simd), tags_(slot_end - slot_begin, 0) {}

  void set_simd_level(SimdLevel level) { simd_ = level; }
  SimdLevel simd_level() const { return simd_; }

  /// Returns the dense group id of `slot` (must be in this table's range),
  /// inserting if absent.
  uint32_t FindOrInsert(uint32_t slot) {
    uint32_t& tag = tags_[slot - begin_];
    if (tag == 0) {
      if (group_slots_.size() >= GroupHashTable::max_groups()) {
        throw GroupIdSpaceExhausted(group_slots_.size(),
                                    GroupHashTable::max_groups());
      }
      group_slots_.push_back(slot);
      tag = static_cast<uint32_t>(group_slots_.size());
    }
    return tag - 1;
  }

  size_t size() const { return group_slots_.size(); }

  /// The slot of group `id` (the inverse of FindOrInsert).
  uint32_t SlotOfGroup(uint32_t id) const { return group_slots_[id]; }

  /// Realized heap bytes (see GroupHashTable::ByteSize).
  size_t ByteSize() const {
    return tags_.capacity() * sizeof(uint32_t) +
           group_slots_.capacity() * sizeof(uint32_t);
  }

  /// Merge partition of a slot: `capacity` (the kernel plan's padded
  /// dense_capacity) is a power of two >= `num_partitions` (also a power of
  /// two), so the slot space splits into num_partitions equal contiguous
  /// ranges — partition p owns [p, p+1) * capacity / num_partitions.
  static int PartitionOfSlot(uint64_t slot, int num_partitions,
                             uint64_t capacity);

  /// Inserts every group of `src` whose slot partition equals `partition`
  /// into this table, in ascending src-id order, appending one
  /// (src_id, dst_id) pair per taken group to `mapping` (not cleared).
  /// Returns the number of groups taken. One call per partition over the
  /// same `src` visits every src group exactly once.
  size_t MergeFrom(const DenseGroupTable& src, int num_partitions,
                   int partition, uint64_t capacity,
                   std::vector<std::pair<uint32_t, uint32_t>>* mapping);

 private:
  uint64_t begin_;
  SimdLevel simd_;
  std::vector<uint32_t> tags_;         // slot - begin_ -> group id + 1
  std::vector<uint32_t> group_slots_;  // group id -> slot
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_GROUP_HASH_TABLE_H_
