// Adaptive aggregation-kernel selection.
//
// GB-MQO's required group-bys mostly run over *small materialized
// intermediates*, where the grouping columns' combined code domain is tiny.
// PlanAggKernel inspects the input columns' code-domain metadata
// (Column::CodeBits / CodeRange) and walks a fallback ladder:
//
//   1. kDenseArray — if the product of per-column radixes (code range + 1,
//      plus a NULL slot for nullable columns) fits kDenseSlotBudget, group
//      lookup is a direct index into a dense slot array: no hashing, no key
//      compares.
//   2. kPackedKey / kSortRuns — if the per-column bit-widths (plus one NULL
//      bit per nullable column) sum to <= 64, all grouping columns are
//      bit-packed into a single uint64 key. Small estimated group counts
//      build a one-word GroupHashTable (kPackedKey); past the hash-vs-sort
//      crossover (kSortCrossoverGroups) the same packed keys are instead
//      sorted and folded run-by-run (kSortRuns), trading the hash build's
//      cache-miss-dominated probes for a comparison sort.
//   3. kMultiWord  — the general case: one key word per grouping column
//      plus a null-mask word, exactly the layout KeyBuilder produces.
//
// The plan is a pure function of (input table, grouping set) — never of the
// thread count — so all WorkCounters stay bit-identical across parallelism.
// BlockKeyFiller then builds keys/slots in 1024-row column-major blocks with
// one type dispatch per column per block instead of one per row.
#ifndef GBMQO_EXEC_AGG_KERNEL_H_
#define GBMQO_EXEC_AGG_KERNEL_H_

#include <cstdint>
#include <vector>

#include "common/column_set.h"
#include "exec/exec_context.h"
#include "exec/simd.h"
#include "storage/table.h"

namespace gbmqo {

/// Dense-array slot budget: caps the per-shard slot array at 1 MiB of
/// 4-byte tags, the scale at which direct indexing stays cache-resident and
/// beats hashing. Domain products above this fall back to a hash kernel.
inline constexpr uint64_t kDenseSlotBudget = 1ull << 18;

/// Hash-vs-sort crossover: when the estimated group count — the smaller of
/// the input row count and the packed key domain — exceeds this, the auto
/// ladder picks kSortRuns over kPackedKey. At this scale most hash probes
/// miss cache while the sort's sequential passes do not (the regime mapped
/// by the hash-vs-sort literature); below it the hash build is cheaper.
/// Mirrored by OptimizerCostModel's CostParams::sort_crossover_groups so
/// plans price the kernel the executor will actually run.
inline constexpr uint64_t kSortCrossoverGroups = 1ull << 20;

/// Per-grouping-column packing/indexing parameters.
struct KernelColumn {
  const Column* col = nullptr;
  uint64_t code_min = 0;  ///< offset subtracted from every code
  int bits = 0;           ///< exact value bit-width (Column::CodeBits)
  int shift = 0;          ///< packed: bit position of the value field
  int null_bit = -1;      ///< packed: bit position of the NULL flag (-1: none)
  uint32_t radix = 1;     ///< dense: per-column domain size (incl. NULL slot)
  uint32_t stride = 1;    ///< dense: mixed-radix multiplier
  bool nullable = false;  ///< column has NULLs
};

/// The kernel chosen for one (input, grouping) pair plus everything the
/// block key builder needs.
struct AggKernelPlan {
  AggKernel kernel = AggKernel::kMultiWord;
  std::vector<KernelColumn> cols;
  bool track_nulls = false;     ///< multi-word: a null-mask word is appended
  int key_width = 1;            ///< key words per row (1 for packed)
  int total_bits = 0;           ///< packed: value + NULL bits used (<= 64)
  uint64_t dense_capacity = 0;  ///< dense: power-of-two padded slot count
};

/// Plans the kernel for `grouping` over `input`. `preferred` is where the
/// fallback ladder starts (the test/bench forcing knob): kDenseArray tries
/// the whole ladder (including the sort crossover), kPackedKey skips dense
/// and pins the hash side of the crossover, kSortRuns pins the sort side
/// (packed-eligible inputs only), kMultiWord forces the general kernel.
/// An ineligible preference falls through to the next rung, so forcing is
/// always safe.
AggKernelPlan PlanAggKernel(const Table& input, ColumnSet grouping,
                            AggKernel preferred = AggKernel::kDenseArray);

/// Builds group keys (or dense slots) for row blocks, column-major: per
/// block, each grouping column is read through one Column::CodeBlock call
/// (a single type switch), then packed/indexed in a tight per-column loop.
/// One filler per worker; not thread-safe (holds a scratch code buffer).
class BlockKeyFiller {
 public:
  /// Rows per block: small enough that codes + keys stay L1-resident.
  static constexpr size_t kBlockRows = 1024;

  /// `simd` selects the packing loops (exec/simd.h). All key formation is
  /// pure integer arithmetic, so every tier produces bit-identical keys;
  /// the knob only changes speed.
  explicit BlockKeyFiller(const AggKernelPlan& plan,
                          SimdLevel simd = DetectedSimdLevel())
      : plan_(&plan), simd_(simd), codes_(kBlockRows) {}

  /// Packed kernel: out[i] = single-word key of row begin+i. NULL rows
  /// contribute a set NULL bit and zero value bits (count <= kBlockRows).
  void FillPacked(size_t begin, size_t count, uint64_t* out);

  /// Dense kernel: out[i] = mixed-radix slot of row begin+i, in
  /// [0, dense_capacity). NULLs take slot 0 of their column's radix.
  void FillDense(size_t begin, size_t count, uint32_t* out);

  /// Multi-word kernel: out[i * key_width ..] = key of row begin+i, in
  /// exactly the layout KeyBuilder::FillKey produces (codes, then a
  /// null-mask word when track_nulls).
  void FillMultiWord(size_t begin, size_t count, uint64_t* out);

 private:
  const AggKernelPlan* plan_;
  SimdLevel simd_;
  std::vector<uint64_t> codes_;  // scratch: one column's codes for a block
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_AGG_KERNEL_H_
