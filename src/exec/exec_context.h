// ExecContext: deterministic work counters accumulated by the execution
// engine. Wall-clock times vary across machines; these counters let every
// experiment's *shape* be reproduced exactly, and define the simulated-cost
// metric reported next to wall time by the benchmark harnesses.
#ifndef GBMQO_EXEC_EXEC_CONTEXT_H_
#define GBMQO_EXEC_EXEC_CONTEXT_H_

#include <algorithm>
#include <cstdint>

#include "common/cancellation.h"

namespace gbmqo {

/// The hash-aggregation kernel executing a group-by. QueryExecutor selects
/// one per (input table, grouping set) pair — a pure function of the input's
/// column code-domain metadata, never of the thread count — walking the
/// ladder dense -> packed -> multi-word until one is eligible (see
/// exec/agg_kernel.h).
enum class AggKernel {
  kDenseArray,  ///< direct-indexed accumulator array, no hashing
  kPackedKey,   ///< all grouping columns bit-packed into one uint64 hash key
  kMultiWord,   ///< one key word per grouping column (+ null word); fallback
  kSortRuns,    ///< sort packed keys, fold equal-key runs; high-group-count
                ///< and spill-replay rung (packed-eligible inputs only)
};

inline const char* AggKernelName(AggKernel k) {
  switch (k) {
    case AggKernel::kDenseArray:
      return "dense";
    case AggKernel::kPackedKey:
      return "packed";
    case AggKernel::kMultiWord:
      return "multiword";
    case AggKernel::kSortRuns:
      return "sort";
  }
  return "?";
}

/// Per-input-row CPU units of multi-word hash aggregation as a function of
/// the output group count. Small group counts stay cache-resident (cheap
/// probes); large ones pay main-memory latency on most probes. The same
/// function is used by the engine's work accounting and by
/// OptimizerCostModel, so estimated and measured costs agree on *why* a
/// high-cardinality intermediate is a bad materialization candidate (see
/// the Section 6 benches).
inline double HashAggCpuPerRow(double groups) {
  return 4.0 + 1200.0 * (groups / (groups + 200000.0));
}

/// Packed-key kernel: same cache-miss ramp, but a one-word hash and one-word
/// key compares cut both the base cost and the miss penalty.
inline double PackedAggCpuPerRow(double groups) {
  return 2.0 + 600.0 * (groups / (groups + 200000.0));
}

/// Dense-array kernel: one bounded array index per row. The slot budget
/// (kDenseSlotBudget in exec/agg_kernel.h) keeps the accumulators
/// cache-resident, so there is no cardinality ramp.
inline constexpr double kDenseArrayAggCpuPerRow = 1.5;

/// Sort-runs kernel: the per-row cost is dominated by the LSD radix sort of
/// packed keys (linear passes over the key's bit width), which is nearly
/// flat in the group count — runs of equal keys fold sequentially with no
/// probing, so there is no cache-miss ramp to pay.
/// Costs more than a cache-resident hash build at low group counts, far less
/// than the hash kernels' miss-dominated tail at high ones (the hash-vs-sort
/// crossover; see OptimizerCostModel's sort_crossover_groups).
inline double SortAggCpuPerRow(double groups) {
  return 6.0 + 90.0 * (groups / (groups + 200000.0));
}

/// Per-input-row aggregation CPU for `kernel` producing `groups` groups.
inline double AggCpuPerRow(AggKernel kernel, double groups) {
  switch (kernel) {
    case AggKernel::kDenseArray:
      return kDenseArrayAggCpuPerRow;
    case AggKernel::kPackedKey:
      return PackedAggCpuPerRow(groups);
    case AggKernel::kMultiWord:
      return HashAggCpuPerRow(groups);
    case AggKernel::kSortRuns:
      return SortAggCpuPerRow(groups);
  }
  return HashAggCpuPerRow(groups);
}

/// Work performed by one or more executed queries.
struct WorkCounters {
  uint64_t rows_scanned = 0;       ///< input rows read (table or index scans)
  uint64_t bytes_scanned = 0;      ///< full-row-width bytes read
  uint64_t rows_emitted = 0;       ///< result groups produced
  uint64_t bytes_materialized = 0; ///< bytes written into temp tables
  uint64_t hash_probes = 0;        ///< group hash-table lookups
  uint64_t rows_sorted = 0;        ///< rows passed through sort operators
  uint64_t queries_executed = 0;   ///< group-by queries run
  /// Aggregation CPU in work units: rows x AggCpuPerRow(kernel, groups) for
  /// hash paths, 1 unit/row for stream paths.
  double agg_cpu_units = 0;
  /// Input rows aggregated by each hash kernel. Kernel choice is a pure
  /// function of the input table, so these are thread-count deterministic
  /// like every other counter (and show which kernel a query actually ran).
  uint64_t dense_kernel_rows = 0;
  uint64_t packed_kernel_rows = 0;
  uint64_t multiword_kernel_rows = 0;
  uint64_t sort_kernel_rows = 0;
  /// Out-of-core aggregation (exec/spill_partitioner.h): queries completed
  /// via the radix-spill path, partition files replayed, and spill I/O. All
  /// pure functions of (input, budget) like the other counters — whether a
  /// query spills depends only on its realized group-table bytes.
  uint64_t queries_spilled = 0;
  uint64_t spill_partitions = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  /// Spill files whose CRC check failed on replay and whose records were
  /// re-derived from the resident input (SpillOptions::recover_corrupt).
  uint64_t spill_corrupt_recoveries = 0;
  /// Accumulator of the row-store scan simulation (ScanMode::kRowStore):
  /// folding every column of every scanned row in here keeps the full-width
  /// touch from being optimized away. Value is meaningless; ignore it.
  uint64_t scan_touch_checksum = 0;
  /// Resilience: extra task attempts performed after a failure, and tasks
  /// that succeeded via a degraded plan (fused -> per-query, temp -> base
  /// recompute, forced multi-word under memory pressure). Both are pure
  /// functions of (plan, fault seed) — see PlanExecutor's retry ladder.
  uint64_t tasks_retried = 0;
  uint64_t tasks_degraded = 0;
  /// Cross-request aggregate cache (core/aggregate_cache.h): plan nodes
  /// served from a pinned prior materialization vs. computed because no
  /// usable entry existed. Both stay zero when no cache is attached.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  WorkCounters& operator+=(const WorkCounters& o) {
    rows_scanned += o.rows_scanned;
    bytes_scanned += o.bytes_scanned;
    rows_emitted += o.rows_emitted;
    bytes_materialized += o.bytes_materialized;
    hash_probes += o.hash_probes;
    rows_sorted += o.rows_sorted;
    queries_executed += o.queries_executed;
    agg_cpu_units += o.agg_cpu_units;
    dense_kernel_rows += o.dense_kernel_rows;
    packed_kernel_rows += o.packed_kernel_rows;
    multiword_kernel_rows += o.multiword_kernel_rows;
    sort_kernel_rows += o.sort_kernel_rows;
    queries_spilled += o.queries_spilled;
    spill_partitions += o.spill_partitions;
    spill_bytes_written += o.spill_bytes_written;
    spill_bytes_read += o.spill_bytes_read;
    spill_corrupt_recoveries += o.spill_corrupt_recoveries;
    scan_touch_checksum ^= o.scan_touch_checksum;
    tasks_retried += o.tasks_retried;
    tasks_degraded += o.tasks_degraded;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    return *this;
  }

  /// Scalar "simulated time" in abstract work units: full-width scan bytes
  /// (as in the paper's cardinality cost model), cardinality-aware
  /// aggregation CPU, materialization writes charged double (write + later
  /// re-read pressure), an extra per-row sorting charge, and one unit per
  /// spill byte moved in either direction.
  double WorkUnits() const {
    return static_cast<double>(bytes_scanned) + agg_cpu_units +
           2.0 * static_cast<double>(bytes_materialized) +
           64.0 * static_cast<double>(rows_sorted) +
           static_cast<double>(spill_bytes_written + spill_bytes_read);
  }
};

/// Mutable execution-scope state threaded through the engine.
///
/// Thread-safety contract: an ExecContext is single-writer. Parallel code
/// never shares one context between workers; each worker charges work to its
/// own private ExecContext (or to worker-local accumulators, as the morsel
/// engine in QueryExecutor does) and the owner folds the workers' counters
/// in with AbsorbWorker() after joining them. Because every counter is a sum
/// (or an XOR, for the checksum), the fold order does not change the totals.
class ExecContext {
 public:
  WorkCounters& counters() { return counters_; }
  const WorkCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = WorkCounters(); }

  /// Folds a joined worker's counters into this context and resets the
  /// worker, so a retained worker context cannot be double-counted. Call
  /// only after the worker's thread has been joined.
  void AbsorbWorker(ExecContext* worker) {
    counters_ += worker->counters_;
    worker->ResetCounters();
  }

  // ---- resilience plumbing -------------------------------------------------

  /// Cooperative-cancellation token checked by the engine at task starts
  /// and morsel/block boundaries; nullptr (default) disables the checks.
  void set_cancellation(const CancellationToken* token) { cancel_ = token; }
  const CancellationToken* cancellation() const { return cancel_; }

  /// OK, or the token's Cancelled/DeadlineExceeded status once fired.
  Status CheckCancelled() const {
    if (cancel_ == nullptr) return Status::OK();
    return cancel_->Check();
  }

  /// Stable salt mixed into fault-injection keys by the engine's fault
  /// sites (see common/fault_injector.h). The DAG executor derives it from
  /// (task id, attempt), so injected decisions are reproducible for any
  /// thread count.
  void set_fault_salt(uint64_t salt) { fault_salt_ = salt; }
  uint64_t fault_salt() const { return fault_salt_; }

 private:
  WorkCounters counters_;
  const CancellationToken* cancel_ = nullptr;
  uint64_t fault_salt_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_EXEC_EXEC_CONTEXT_H_
