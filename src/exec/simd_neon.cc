// NEON implementations of the exec/simd.h primitives. NEON is the aarch64
// baseline ISA so no target attributes are needed; the TU still mirrors the
// AVX2 layout (dispatcher in simd.cc, implementations here) so the two
// tiers stay structurally comparable. Compiles to nothing on other
// architectures.
#include "exec/simd.h"

#if defined(GBMQO_SIMD_NEON)

namespace gbmqo {
namespace simd_neon {
namespace {

template <simd::Cmp Op>
inline uint64x2_t Cmp2(float64x2_t v, float64x2_t lit) {
  if constexpr (Op == simd::Cmp::kEq) return vceqq_f64(v, lit);
  if constexpr (Op == simd::Cmp::kNe) {
    // != is the negation of ordered ==: NaN compares unequal, matching C++.
    return veorq_u64(vceqq_f64(v, lit), vdupq_n_u64(~uint64_t{0}));
  }
  if constexpr (Op == simd::Cmp::kLt) return vcltq_f64(v, lit);
  if constexpr (Op == simd::Cmp::kLe) return vcleq_f64(v, lit);
  if constexpr (Op == simd::Cmp::kGt) return vcgtq_f64(v, lit);
  return vcgeq_f64(v, lit);
}

template <simd::Cmp Op>
inline bool CmpScalar(double v, double lit) {
  if constexpr (Op == simd::Cmp::kEq) return v == lit;
  if constexpr (Op == simd::Cmp::kNe) return v != lit;
  if constexpr (Op == simd::Cmp::kLt) return v < lit;
  if constexpr (Op == simd::Cmp::kLe) return v <= lit;
  if constexpr (Op == simd::Cmp::kGt) return v > lit;
  return v >= lit;
}

template <simd::Cmp Op>
void CompareDoublesLoop(const double* vals, size_t n, double lit,
                        uint64_t* bitmap) {
  const float64x2_t vlit = vdupq_n_f64(lit);
  size_t r = 0;
  for (; r + 64 <= n; r += 64) {
    uint64_t w = 0;
    for (int i = 0; i < 64; i += 2) {
      const uint64x2_t m = Cmp2<Op>(vld1q_f64(vals + r + i), vlit);
      w |= (vgetq_lane_u64(m, 0) & 1) << i;
      w |= (vgetq_lane_u64(m, 1) & 1) << (i + 1);
    }
    bitmap[r >> 6] |= w;
  }
  for (; r < n; ++r) {
    if (CmpScalar<Op>(vals[r], lit)) bitmap[r >> 6] |= uint64_t{1} << (r & 63);
  }
}

template <simd::Cmp Op>
void CompareInt64Loop(const int64_t* vals, size_t n, double lit,
                      uint64_t* bitmap) {
  const float64x2_t vlit = vdupq_n_f64(lit);
  size_t r = 0;
  for (; r + 64 <= n; r += 64) {
    uint64_t w = 0;
    for (int i = 0; i < 64; i += 2) {
      // vcvtq_f64_s64 rounds to nearest-even over the full int64 range,
      // exactly like the scalar static_cast.
      const float64x2_t v = vcvtq_f64_s64(vld1q_s64(vals + r + i));
      const uint64x2_t m = Cmp2<Op>(v, vlit);
      w |= (vgetq_lane_u64(m, 0) & 1) << i;
      w |= (vgetq_lane_u64(m, 1) & 1) << (i + 1);
    }
    bitmap[r >> 6] |= w;
  }
  for (; r < n; ++r) {
    if (CmpScalar<Op>(static_cast<double>(vals[r]), lit)) {
      bitmap[r >> 6] |= uint64_t{1} << (r & 63);
    }
  }
}

}  // namespace

void OrShiftedCodes(const uint64_t* codes, size_t n, uint64_t base, int shift,
                    uint64_t* out) {
  const uint64x2_t vbase = vdupq_n_u64(base);
  const int64x2_t vshift = vdupq_n_s64(shift);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t c = vsubq_u64(vld1q_u64(codes + i), vbase);
    vst1q_u64(out + i, vorrq_u64(vld1q_u64(out + i), vshlq_u64(c, vshift)));
  }
  for (; i < n; ++i) {
    out[i] |= (codes[i] - base) << shift;
  }
}

void AddScaledDigits(const uint64_t* codes, size_t n, uint64_t base,
                     uint32_t stride, uint32_t* out) {
  const uint64x2_t vbase = vdupq_n_u64(base);
  const uint32x4_t vstride = vdupq_n_u32(stride);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64x2_t a = vsubq_u64(vld1q_u64(codes + i), vbase);
    const uint64x2_t b = vsubq_u64(vld1q_u64(codes + i + 2), vbase);
    const uint32x4_t digits = vcombine_u32(vmovn_u64(a), vmovn_u64(b));
    vst1q_u32(out + i, vmlaq_u32(vld1q_u32(out + i), digits, vstride));
  }
  for (; i < n; ++i) {
    out[i] += static_cast<uint32_t>(codes[i] - base) * stride;
  }
}

void CompareDoublesBitmap(const double* vals, size_t n, simd::Cmp op,
                          double lit, uint64_t* bitmap) {
  switch (op) {
    case simd::Cmp::kEq:
      CompareDoublesLoop<simd::Cmp::kEq>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kNe:
      CompareDoublesLoop<simd::Cmp::kNe>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLt:
      CompareDoublesLoop<simd::Cmp::kLt>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLe:
      CompareDoublesLoop<simd::Cmp::kLe>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGt:
      CompareDoublesLoop<simd::Cmp::kGt>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGe:
      CompareDoublesLoop<simd::Cmp::kGe>(vals, n, lit, bitmap);
      return;
  }
}

void CompareInt64Bitmap(const int64_t* vals, size_t n, simd::Cmp op,
                        double lit, uint64_t* bitmap) {
  switch (op) {
    case simd::Cmp::kEq:
      CompareInt64Loop<simd::Cmp::kEq>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kNe:
      CompareInt64Loop<simd::Cmp::kNe>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLt:
      CompareInt64Loop<simd::Cmp::kLt>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kLe:
      CompareInt64Loop<simd::Cmp::kLe>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGt:
      CompareInt64Loop<simd::Cmp::kGt>(vals, n, lit, bitmap);
      return;
    case simd::Cmp::kGe:
      CompareInt64Loop<simd::Cmp::kGe>(vals, n, lit, bitmap);
      return;
  }
}

uint32_t ShiftEqMask8(const uint32_t* v, int shift, uint32_t target) {
  const int32x4_t vshift = vdupq_n_s32(-shift);
  const uint32x4_t vtarget = vdupq_n_u32(target);
  uint32_t mask = 0;
  for (int half = 0; half < 2; ++half) {
    const uint32x4_t a = vshlq_u32(vld1q_u32(v + half * 4), vshift);
    const uint32x4_t eq = vceqq_u32(a, vtarget);
    mask |= (vgetq_lane_u32(eq, 0) & 1u) << (half * 4 + 0);
    mask |= (vgetq_lane_u32(eq, 1) & 1u) << (half * 4 + 1);
    mask |= (vgetq_lane_u32(eq, 2) & 1u) << (half * 4 + 2);
    mask |= (vgetq_lane_u32(eq, 3) & 1u) << (half * 4 + 3);
  }
  return mask;
}

}  // namespace simd_neon
}  // namespace gbmqo

#endif  // GBMQO_SIMD_NEON
