// WhatIfProvider: builds hypothetical NodeDescs from base-relation
// statistics — the analogue of the commercial what-if APIs the paper uses
// to let the optimizer pretend a table exists with a given cardinality and
// statistics (Section 3.2.2).
#ifndef GBMQO_COST_WHATIF_H_
#define GBMQO_COST_WHATIF_H_

#include "cost/cost_model.h"
#include "stats/statistics_manager.h"

namespace gbmqo {

/// Derives NodeDescs for plan nodes. Statistics are created lazily by the
/// underlying StatisticsManager (whose creation time is metered). Virtual so
/// tests and simulations can inject synthetic cardinalities.
class WhatIfProvider {
 public:
  explicit WhatIfProvider(StatisticsManager* stats) : stats_(stats) {}
  virtual ~WhatIfProvider() = default;

  /// Descriptor of the base relation R.
  virtual NodeDesc Root() const {
    NodeDesc d;
    d.columns = ColumnSet::FirstN(stats_->table().schema().num_columns());
    d.rows = static_cast<double>(stats_->table().num_rows());
    d.row_width = stats_->table().AvgRowWidth({});
    d.is_root = true;
    return d;
  }

  /// Descriptor of the hypothetical materialized result of
  /// `SELECT columns, <num_agg_columns aggregates> FROM R GROUP BY columns`.
  /// Every aggregate output column is 8 bytes (INT64/DOUBLE).
  virtual NodeDesc Describe(ColumnSet columns, int num_agg_columns = 1) {
    const ColumnSetStats& s = stats_->Get(columns);
    NodeDesc d;
    d.columns = columns;
    d.rows = s.distinct_count;
    d.row_width = s.row_width + 8.0 * num_agg_columns;
    d.is_root = false;
    return d;
  }

  StatisticsManager* stats() { return stats_; }

 private:
  StatisticsManager* stats_;
};

}  // namespace gbmqo

#endif  // GBMQO_COST_WHATIF_H_
