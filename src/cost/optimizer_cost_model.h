// OptimizerCostModel: the Query Optimizer cost model of Section 3.2.2,
// realized against this repo's engine instead of a commercial DBMS. It
// prices the physical alternatives the executor actually has:
//
//  * full scan + hash aggregation  (default),
//  * covering-index stream aggregation over the base relation (captures the
//    effect of physical design — Experiment 6.9),
//  * temp-table spooling for intermediate nodes.
//
// Costs are in abstract work units proportional to bytes touched plus per-
// row CPU charges, matching the executor's WorkCounters::WorkUnits metric,
// so "optimizer-estimated cost" and "measured work" live on the same scale.
//
// Identical costing requests are cached; only cache misses count as
// "optimizer calls" (the costing-overhead metric of Figures 10/11).
#ifndef GBMQO_COST_OPTIMIZER_COST_MODEL_H_
#define GBMQO_COST_OPTIMIZER_COST_MODEL_H_

#include <mutex>
#include <unordered_map>

#include "cost/cost_model.h"
#include "storage/table.h"

namespace gbmqo {

/// Tunable constants of the cost model. Defaults mirror the executor's
/// work-unit weights.
struct CostParams {
  double scan_byte = 1.0;         ///< per byte read from a full scan
  double index_byte = 1.0;        ///< per byte read from an index scan
  double tuple_cpu = 4.0;         ///< per input row, hash aggregation
  double stream_cpu = 1.0;        ///< per input row, stream aggregation
  double group_build = 16.0;      ///< per output group (hash build, emit)
  double materialize_byte = 2.0;  ///< per byte spooled into a temp table

  /// Hash-vs-sort crossover mirrored from the executor's kernel ladder
  /// (exec/agg_kernel.h kSortCrossoverGroups): a packed-eligible edge whose
  /// estimated group count exceeds this is priced as the sort-runs kernel,
  /// so plans rank materialization candidates with the kernel the engine
  /// will actually run.
  double sort_crossover_groups = 1048576.0;  // 1 << 20

  /// Out-of-core regime. When spill_ram_budget_bytes > 0 and an edge's
  /// estimated group-table bytes (group count * group_state_byte) exceed
  /// it, the executor will grace-hash through disk: the model adds the
  /// radix-partition write plus the replay read of one fixed-width record
  /// per input row, priced at spill_byte per byte — matching
  /// WorkCounters::WorkUnits, which charges spill bytes at 1.0. 0 (the
  /// default) prices the uncapped in-memory engine.
  double spill_ram_budget_bytes = 0.0;
  double spill_byte = 1.0;        ///< per spill-file byte written or read
  double group_state_byte = 48.0; ///< est. resident bytes per hash group

  /// Per-kernel aggregation-CPU speedup from the vectorized hot loops
  /// (exec/simd.h): QueryCost divides the predicted kernel's AggCpuPerRow
  /// charge by its factor. Defaults of 1.0 price scalar execution, which
  /// keeps estimated cost on the same scale as the engine's WorkCounters —
  /// agg_cpu_units deliberately stays the canonical scalar charge on every
  /// SIMD tier, so these factors tune only the optimizer's ranking, never
  /// the measured counters. SimdAwareCostParams() fills in measured values.
  double simd_dense_speedup = 1.0;      ///< dense-array kernel
  double simd_packed_speedup = 1.0;     ///< packed single-word key kernel
  double simd_sort_speedup = 1.0;       ///< sort-runs kernel
  double simd_multiword_speedup = 1.0;  ///< multi-word key kernel
};

/// CostParams with the SIMD speedup factors set from measurements on an
/// AVX2 host (bench_simd: vectorized key formation + columnar accumulate
/// for dense, vectorized key formation + tagged probe for packed; the
/// multi-word kernel keeps scalar key formation and gains only the tagged
/// probe). Use when the workload will run with SIMD enabled and the
/// optimizer should rank materialization candidates accordingly.
CostParams SimdAwareCostParams();

class OptimizerCostModel : public PlanCostModel {
 public:
  /// `base` is the physical base relation (for index lookups). The model
  /// never dereferences row data — only metadata (indexes, widths).
  explicit OptimizerCostModel(const Table& base,
                              CostParams params = CostParams());

  double QueryCost(const NodeDesc& u, const NodeDesc& v) const override;
  double MaterializeCost(const NodeDesc& v) const override;
  uint64_t optimizer_calls() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

  const CostParams& params() const { return params_; }

 private:
  struct Key {
    uint64_t u_mask;
    uint64_t v_mask;
    bool u_root;
    bool operator==(const Key& o) const {
      return u_mask == o.u_mask && v_mask == o.v_mask && u_root == o.u_root;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.u_mask * 0x9E3779B97F4A7C15ULL;
      h ^= k.v_mask + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h * 2 + (k.u_root ? 1 : 0));
    }
  };

  const Table& base_;
  CostParams params_;
  /// Costing is shared by concurrent serving sessions; the memo cache and
  /// call counter are guarded so QueryCost stays const-callable from any
  /// thread.
  mutable std::mutex mu_;
  mutable std::unordered_map<Key, double, KeyHash> cache_;
  mutable uint64_t calls_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_COST_OPTIMIZER_COST_MODEL_H_
