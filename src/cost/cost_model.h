// Cost-model interface (Section 3.2). A logical plan's cost is the sum over
// its edges u -> v of QueryCost(u, v), plus MaterializeCost(v) for every
// node v that must be spooled into a temp table (i.e. every non-root node
// with children).
//
// Node descriptors are *hypothetical*: they carry estimated cardinality and
// row width so the optimizer can price queries over tables that do not exist
// yet — the what-if contract of Section 3.2.2.
#ifndef GBMQO_COST_COST_MODEL_H_
#define GBMQO_COST_COST_MODEL_H_

#include <atomic>
#include <cstdint>

#include "common/column_set.h"
#include "exec/aggregate_spec.h"
#include "storage/table.h"

namespace gbmqo {

/// Describes a (possibly hypothetical) node of a logical plan.
struct NodeDesc {
  ColumnSet columns;        ///< grouping columns (base-relation ordinals)
  double rows = 0;          ///< (estimated) cardinality
  double row_width = 0;     ///< (estimated) bytes per row incl. aggregates
  bool is_root = false;     ///< true iff this node is the base relation R
};

/// Prices group-by edges and materializations. Implementations must be
/// deterministic; both paper cost models are provided.
class PlanCostModel {
 public:
  virtual ~PlanCostModel() = default;

  /// Cost of executing `SELECT v.columns, aggs FROM u GROUP BY v.columns`.
  virtual double QueryCost(const NodeDesc& u, const NodeDesc& v) const = 0;

  /// Additional cost of spooling v's result into a temporary table
  /// (SELECT ... INTO), beyond QueryCost.
  virtual double MaterializeCost(const NodeDesc& v) const = 0;

  /// Number of distinct costing requests answered so far — the paper's
  /// "number of calls to the query optimizer" metric (Figures 10 and 11).
  virtual uint64_t optimizer_calls() const = 0;
};

/// The Cardinality cost model (Section 3.2.1): the cost of an edge u -> v is
/// |u|, the row count of the parent; materialization is free. This is the
/// model under which the pruning soundness claims (Section 4.3) are proved.
class CardinalityCostModel : public PlanCostModel {
 public:
  double QueryCost(const NodeDesc& u, const NodeDesc& v) const override {
    (void)v;
    calls_.fetch_add(1, std::memory_order_relaxed);
    return u.rows;
  }
  double MaterializeCost(const NodeDesc& v) const override {
    (void)v;
    return 0.0;
  }
  uint64_t optimizer_calls() const override {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  /// Atomic so one model instance can be shared by concurrent sessions.
  mutable std::atomic<uint64_t> calls_{0};
};

}  // namespace gbmqo

#endif  // GBMQO_COST_COST_MODEL_H_
