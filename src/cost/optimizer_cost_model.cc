#include "cost/optimizer_cost_model.h"

#include "exec/agg_kernel.h"
#include "exec/exec_context.h"

namespace gbmqo {

namespace {

/// Predicts which aggregation kernel the executor will pick for a query
/// grouping by `cols`, from the *base* relation's column metadata. Valid
/// for temp-table inputs too: an intermediate's column code domains are
/// subsets of the base column domains it was derived from, so a kernel
/// eligible on the base stays eligible on every intermediate — and it is
/// the small-domain groupings (dense/packed) whose cheaper per-row CPU the
/// optimizer must anticipate when ranking materialization candidates.
/// Column sets with out-of-schema ordinals (hypothetical nodes) get the
/// conservative multi-word prediction.
AggKernel PredictKernel(const Table& base, ColumnSet cols, double input_rows,
                        const CostParams& p) {
  for (int c : cols.ToVector()) {
    if (c >= base.schema().num_columns()) return AggKernel::kMultiWord;
  }
  const AggKernelPlan plan = PlanAggKernel(base, cols);
  // Re-apply the executor's hash-vs-sort crossover against *this edge's*
  // input cardinality and the params' crossover point: PlanAggKernel decided
  // from the base relation's row count, but the edge may read a smaller
  // intermediate, and the crossover is a tunable here. Only packed-eligible
  // plans (single-word key) have the sort rung.
  if (plan.kernel == AggKernel::kPackedKey ||
      plan.kernel == AggKernel::kSortRuns) {
    double domain = plan.total_bits >= 63
                        ? input_rows
                        : static_cast<double>(1ull << plan.total_bits);
    const double est_groups = input_rows < domain ? input_rows : domain;
    return est_groups > p.sort_crossover_groups ? AggKernel::kSortRuns
                                                : AggKernel::kPackedKey;
  }
  return plan.kernel;
}

/// The speedup factor pricing `kernel`'s vectorized aggregation loops.
double SimdSpeedupFor(const CostParams& p, AggKernel kernel) {
  switch (kernel) {
    case AggKernel::kDenseArray:
      return p.simd_dense_speedup;
    case AggKernel::kPackedKey:
      return p.simd_packed_speedup;
    case AggKernel::kSortRuns:
      return p.simd_sort_speedup;
    case AggKernel::kMultiWord:
      return p.simd_multiword_speedup;
  }
  return 1.0;
}

/// Bytes of one radix-partition spill record (exec/spill_partitioner.h):
/// a packed one-word group key plus a u32 row ordinal. Multi-word keys
/// spill wider records, but by then the per-byte charge is already
/// dominated by the key width, so the model keeps one representative size.
constexpr double kSpillRecordBytes = 12.0;

}  // namespace

CostParams SimdAwareCostParams() {
  CostParams p;
  // Measured on the reference AVX2 host (tools/check_bench_regression's
  // BENCH_simd baseline): dense gains vector key formation + columnar
  // accumulate, packed gains vector key formation + the tagged group-of-16
  // probe, multi-word gains only the tagged probe (its key formation stays
  // scalar — see BlockKeyFiller::FillMultiWord).
  p.simd_dense_speedup = 2.0;
  p.simd_packed_speedup = 1.5;
  // Sort runs gain only the vectorized packed-key formation; the comparison
  // sort that dominates its per-row cost is scalar either way.
  p.simd_sort_speedup = 1.1;
  p.simd_multiword_speedup = 1.1;
  return p;
}

OptimizerCostModel::OptimizerCostModel(const Table& base, CostParams params)
    : base_(base), params_(params) {}

double OptimizerCostModel::QueryCost(const NodeDesc& u,
                                     const NodeDesc& v) const {
  const Key key{u.columns.mask(), v.columns.mask(), u.is_root};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  ++calls_;

  double cost = 0;
  // Access path: a covering index is only available on the base relation —
  // temp tables are heaps (the client-side implementation of Section 5.2
  // creates plain SELECT INTO tables).
  const Index* index =
      u.is_root ? base_.FindCoveringIndex(v.columns) : nullptr;
  if (index != nullptr) {
    // Index stream: read only the key columns' bytes, no hash table.
    const double key_width = base_.AvgRowWidth(v.columns);
    cost += u.rows * key_width * params_.index_byte;
    cost += u.rows * params_.stream_cpu;
  } else {
    cost += u.rows * u.row_width * params_.scan_byte;
    // Kernel- and cardinality-aware aggregation CPU: high-cardinality
    // outputs pay cache misses on most probes, while small-domain groupings
    // run the executor's cheaper packed/dense kernels. Mirrors the engine's
    // work accounting (AggCpuPerRow in exec/exec_context.h), scaled down by
    // the kernel's vectorization speedup when the params carry one.
    const AggKernel kernel = PredictKernel(base_, v.columns, u.rows, params_);
    cost += u.rows * AggCpuPerRow(kernel, v.rows) /
            SimdSpeedupFor(params_, kernel);
    cost += v.rows * params_.group_build;
    // Spill regime (exec/spill_partitioner.h): a group table too large for
    // the RAM budget grace-hashes through disk — every input row's record
    // is written to a partition file and read back once during replay.
    if (params_.spill_ram_budget_bytes > 0 &&
        v.rows * params_.group_state_byte > params_.spill_ram_budget_bytes) {
      cost += u.rows * 2.0 * kSpillRecordBytes * params_.spill_byte;
    }
  }
  cache_.emplace(key, cost);
  return cost;
}

double OptimizerCostModel::MaterializeCost(const NodeDesc& v) const {
  return v.rows * v.row_width * params_.materialize_byte;
}

}  // namespace gbmqo
