#include "cost/optimizer_cost_model.h"

#include "exec/agg_kernel.h"
#include "exec/exec_context.h"

namespace gbmqo {

namespace {

/// Predicts which aggregation kernel the executor will pick for a query
/// grouping by `cols`, from the *base* relation's column metadata. Valid
/// for temp-table inputs too: an intermediate's column code domains are
/// subsets of the base column domains it was derived from, so a kernel
/// eligible on the base stays eligible on every intermediate — and it is
/// the small-domain groupings (dense/packed) whose cheaper per-row CPU the
/// optimizer must anticipate when ranking materialization candidates.
/// Column sets with out-of-schema ordinals (hypothetical nodes) get the
/// conservative multi-word prediction.
AggKernel PredictKernel(const Table& base, ColumnSet cols) {
  for (int c : cols.ToVector()) {
    if (c >= base.schema().num_columns()) return AggKernel::kMultiWord;
  }
  return PlanAggKernel(base, cols).kernel;
}

}  // namespace

OptimizerCostModel::OptimizerCostModel(const Table& base, CostParams params)
    : base_(base), params_(params) {}

double OptimizerCostModel::QueryCost(const NodeDesc& u,
                                     const NodeDesc& v) const {
  const Key key{u.columns.mask(), v.columns.mask(), u.is_root};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  ++calls_;

  double cost = 0;
  // Access path: a covering index is only available on the base relation —
  // temp tables are heaps (the client-side implementation of Section 5.2
  // creates plain SELECT INTO tables).
  const Index* index =
      u.is_root ? base_.FindCoveringIndex(v.columns) : nullptr;
  if (index != nullptr) {
    // Index stream: read only the key columns' bytes, no hash table.
    const double key_width = base_.AvgRowWidth(v.columns);
    cost += u.rows * key_width * params_.index_byte;
    cost += u.rows * params_.stream_cpu;
  } else {
    cost += u.rows * u.row_width * params_.scan_byte;
    // Kernel- and cardinality-aware aggregation CPU: high-cardinality
    // outputs pay cache misses on most probes, while small-domain groupings
    // run the executor's cheaper packed/dense kernels. Mirrors the engine's
    // work accounting (AggCpuPerRow in exec/exec_context.h).
    cost += u.rows * AggCpuPerRow(PredictKernel(base_, v.columns), v.rows);
    cost += v.rows * params_.group_build;
  }
  cache_.emplace(key, cost);
  return cost;
}

double OptimizerCostModel::MaterializeCost(const NodeDesc& v) const {
  return v.rows * v.row_width * params_.materialize_byte;
}

}  // namespace gbmqo
