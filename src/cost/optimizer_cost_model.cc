#include "cost/optimizer_cost_model.h"

#include "exec/exec_context.h"

namespace gbmqo {

OptimizerCostModel::OptimizerCostModel(const Table& base, CostParams params)
    : base_(base), params_(params) {}

double OptimizerCostModel::QueryCost(const NodeDesc& u,
                                     const NodeDesc& v) const {
  const Key key{u.columns.mask(), v.columns.mask(), u.is_root};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  ++calls_;

  double cost = 0;
  // Access path: a covering index is only available on the base relation —
  // temp tables are heaps (the client-side implementation of Section 5.2
  // creates plain SELECT INTO tables).
  const Index* index =
      u.is_root ? base_.FindCoveringIndex(v.columns) : nullptr;
  if (index != nullptr) {
    // Index stream: read only the key columns' bytes, no hash table.
    const double key_width = base_.AvgRowWidth(v.columns);
    cost += u.rows * key_width * params_.index_byte;
    cost += u.rows * params_.stream_cpu;
  } else {
    cost += u.rows * u.row_width * params_.scan_byte;
    // Cardinality-aware hash-aggregation CPU: high-cardinality outputs pay
    // cache misses on most probes. Mirrors the engine's work accounting
    // (HashAggCpuPerRow in exec/exec_context.h).
    cost += u.rows * HashAggCpuPerRow(v.rows);
    cost += v.rows * params_.group_build;
  }
  cache_.emplace(key, cost);
  return cost;
}

double OptimizerCostModel::MaterializeCost(const NodeDesc& v) const {
  return v.rows * v.row_width * params_.materialize_byte;
}

}  // namespace gbmqo
