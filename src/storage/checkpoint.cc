#include "storage/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#ifdef _WIN32
#include <io.h>
#include <process.h>
#else
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "storage/storage_governor.h"

namespace gbmqo {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kCkptMagic = 0x504B4347u;  // "GCKP"
constexpr uint32_t kCkptFormat = 1;
constexpr uint32_t kCkptHeaderBytes = 28;  // magic + format + version + len + crc
constexpr char kCkptSuffix[] = ".gckp";

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool Has(size_t n) const { return size - pos >= n; }
  template <typename T>
  bool Get(T* out) {
    if (!Has(sizeof(T))) return false;
    std::memcpy(out, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool GetString(std::string* out) {
    uint32_t len = 0;
    if (!Get(&len) || !Has(len)) return false;
    out->assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return true;
  }
};

Status Truncated(const char* what) {
  return Status::Internal(std::string("checkpoint: truncated ") + what);
}

/// Serializes one table: schema, null bitmaps, typed payloads (strings as
/// dictionary + codes), index key masks. Readable back bit-identically by
/// DecodeTable's append replay.
void EncodeTable(const Table& table, std::string* out) {
  PutString(out, table.name());
  const Schema& schema = table.schema();
  PutU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& def : schema.columns()) {
    PutString(out, def.name);
    PutU8(out, static_cast<uint8_t>(def.type));
    PutU8(out, def.nullable ? 1 : 0);
  }
  const uint64_t rows = table.num_rows();
  PutU64(out, rows);
  const size_t nwords = (rows + 63) / 64;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Column& col = table.column(c);
    const uint64_t* nulls = col.null_words();
    PutU8(out, nulls != nullptr ? 1 : 0);
    if (nulls != nullptr) {
      out->append(reinterpret_cast<const char*>(nulls), nwords * 8);
    }
    switch (col.type()) {
      case DataType::kInt64:
        out->append(reinterpret_cast<const char*>(col.int64_data()), rows * 8);
        break;
      case DataType::kDouble:
        out->append(reinterpret_cast<const char*>(col.double_data()), rows * 8);
        break;
      case DataType::kString: {
        PutU32(out, static_cast<uint32_t>(col.dict_size()));
        for (size_t d = 0; d < col.dict_size(); ++d) {
          PutString(out, col.DictEntry(d));
        }
        out->append(reinterpret_cast<const char*>(col.string_codes()),
                    rows * 4);
        break;
      }
    }
  }
  PutU32(out, static_cast<uint32_t>(table.indexes().size()));
  for (const auto& [key, index] : table.indexes()) {
    PutU64(out, key.mask());
  }
}

/// Rebuilds a table by replaying the original append sequence row by row —
/// the reconstruction is bit-identical to the source table because every
/// table in the engine is itself built purely by appends (dictionary
/// first-occurrence order, null placeholders and code-range metadata all
/// fall out of the replay). Indexes are recomputed from their key masks;
/// CreateIndex sorts deterministically, so the permutations match too.
Result<TablePtr> DecodeTable(Cursor* cur) {
  std::string name;
  if (!cur->GetString(&name)) return Truncated("table name");
  uint32_t ncols = 0;
  if (!cur->Get(&ncols)) return Truncated("column count");
  std::vector<ColumnDef> defs;
  defs.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    if (!cur->GetString(&def.name)) return Truncated("column name");
    uint8_t type = 0, nullable = 0;
    if (!cur->Get(&type) || !cur->Get(&nullable)) return Truncated("column def");
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::Internal("checkpoint: unknown column type " +
                              std::to_string(type));
    }
    def.type = static_cast<DataType>(type);
    def.nullable = nullable != 0;
    defs.push_back(std::move(def));
  }
  uint64_t rows = 0;
  if (!cur->Get(&rows)) return Truncated("row count");
  const size_t nwords = (rows + 63) / 64;

  TableBuilder builder{Schema(defs)};
  std::vector<ColumnSet> index_keys;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint8_t has_nulls = 0;
    if (!cur->Get(&has_nulls)) return Truncated("null flag");
    const uint64_t* nulls = nullptr;
    if (has_nulls != 0) {
      if (!cur->Has(nwords * 8)) return Truncated("null bitmap");
      nulls = reinterpret_cast<const uint64_t*>(cur->data + cur->pos);
      cur->pos += nwords * 8;
    }
    Column* col = builder.column(static_cast<int>(c));
    auto is_null = [&](uint64_t r) {
      return nulls != nullptr && ((nulls[r >> 6] >> (r & 63)) & 1) != 0;
    };
    switch (defs[c].type) {
      case DataType::kInt64: {
        if (!cur->Has(rows * 8)) return Truncated("int64 payload");
        const int64_t* vals =
            reinterpret_cast<const int64_t*>(cur->data + cur->pos);
        cur->pos += rows * 8;
        for (uint64_t r = 0; r < rows; ++r) {
          if (is_null(r)) {
            col->AppendNull();
          } else {
            col->AppendInt64(vals[r]);
          }
        }
        break;
      }
      case DataType::kDouble: {
        if (!cur->Has(rows * 8)) return Truncated("double payload");
        const double* vals =
            reinterpret_cast<const double*>(cur->data + cur->pos);
        cur->pos += rows * 8;
        for (uint64_t r = 0; r < rows; ++r) {
          if (is_null(r)) {
            col->AppendNull();
          } else {
            col->AppendDouble(vals[r]);
          }
        }
        break;
      }
      case DataType::kString: {
        uint32_t dict_count = 0;
        if (!cur->Get(&dict_count)) return Truncated("dictionary count");
        std::vector<std::string> dict;
        dict.reserve(dict_count);
        for (uint32_t d = 0; d < dict_count; ++d) {
          std::string entry;
          if (!cur->GetString(&entry)) return Truncated("dictionary entry");
          dict.push_back(std::move(entry));
        }
        if (!cur->Has(rows * 4)) return Truncated("string codes");
        const uint32_t* codes =
            reinterpret_cast<const uint32_t*>(cur->data + cur->pos);
        cur->pos += rows * 4;
        for (uint64_t r = 0; r < rows; ++r) {
          if (is_null(r)) {
            col->AppendNull();
          } else if (codes[r] < dict.size()) {
            col->AppendString(dict[codes[r]]);
          } else {
            return Status::Internal(
                "checkpoint: string code out of dictionary range");
          }
        }
        break;
      }
    }
  }
  uint32_t nindexes = 0;
  if (!cur->Get(&nindexes)) return Truncated("index count");
  for (uint32_t i = 0; i < nindexes; ++i) {
    uint64_t mask = 0;
    if (!cur->Get(&mask)) return Truncated("index key");
    index_keys.push_back(ColumnSet(mask));
  }
  Result<TablePtr> built = builder.Build(name);
  GBMQO_RETURN_NOT_OK(built.status());
  for (ColumnSet key : index_keys) {
    GBMQO_RETURN_NOT_OK((*built)->CreateIndex(key));
  }
  return built;
}

}  // namespace

bool ProcessAlive(uint64_t pid) {
#ifdef _WIN32
  // Without a handle we cannot probe another process portably; err on the
  // side of "alive" so the reaper never deletes a live process's files.
  (void)pid;
  return true;
#else
  if (pid == 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
#endif
}

uint64_t CurrentProcessId() {
#ifdef _WIN32
  return static_cast<uint64_t>(_getpid());
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

std::string CheckpointFileName(uint64_t version) {
  return "checkpoint-" + std::to_string(version) + kCkptSuffix;
}

Status WriteCheckpoint(const std::string& directory,
                       const CheckpointImage& image, StorageGovernor* governor,
                       uint64_t* bytes_written) {
  if (bytes_written != nullptr) *bytes_written = 0;
  if (image.base == nullptr) {
    return Status::InvalidArgument("checkpoint: no base table to persist");
  }
  std::error_code ec;
  fs::create_directories(directory, ec);

  std::string payload;
  EncodeTable(*image.base, &payload);
  PutU32(&payload, static_cast<uint32_t>(image.entries.size()));
  for (const CheckpointCacheEntry& entry : image.entries) {
    PutU64(&payload, entry.columns_mask);
    PutU32(&payload, static_cast<uint32_t>(entry.aggs.size()));
    for (const CheckpointAggRef& agg : entry.aggs) {
      PutU32(&payload, static_cast<uint32_t>(agg.kind));
      PutU32(&payload, static_cast<uint32_t>(agg.column));
    }
    PutU64(&payload, entry.source_version);
    PutU8(&payload, entry.needs_recompute ? 1 : 0);
    EncodeTable(*entry.table, &payload);
  }

  std::string file_bytes;
  file_bytes.reserve(kCkptHeaderBytes + payload.size());
  PutU32(&file_bytes, kCkptMagic);
  PutU32(&file_bytes, kCkptFormat);
  PutU64(&file_bytes, image.base_version);
  PutU64(&file_bytes, static_cast<uint64_t>(payload.size()));
  PutU32(&file_bytes, Crc32(payload.data(), payload.size()));
  file_bytes += payload;

  const fs::path final_path =
      fs::path(directory) / CheckpointFileName(image.base_version);
  const fs::path tmp_path =
      fs::path(directory) / (CheckpointFileName(image.base_version) + ".tmp-" +
                             std::to_string(CurrentProcessId()));
  const uint64_t salt = FaultKey(image.base_version, 0xC4C4C4C4ull);

  auto fail = [&](Status status) {
    fs::remove(tmp_path, ec);
    return status;
  };

  if (GBMQO_INJECT_FAULT(FaultSite::kDiskEnospc, salt)) {
    return fail(Status::ResourceExhausted(
        "checkpoint: no space left on device writing " + tmp_path.string()));
  }

  std::FILE* file = std::fopen(tmp_path.string().c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("checkpoint: cannot create " + tmp_path.string() +
                            ": " + std::strerror(errno));
  }
  size_t to_write = file_bytes.size();
  if (GBMQO_INJECT_FAULT(FaultSite::kDiskShortWrite, salt)) {
    to_write /= 2;
  }
  const size_t written = std::fwrite(file_bytes.data(), 1, to_write, file);
  if (written != file_bytes.size()) {
    const bool enospc = errno == ENOSPC;
    std::fclose(file);
    const std::string detail = "checkpoint: short write to " +
                               tmp_path.string() + " at offset " +
                               std::to_string(written) + ": wrote " +
                               std::to_string(written) + " of " +
                               std::to_string(file_bytes.size()) + " bytes";
    return fail(enospc ? Status::ResourceExhausted(detail + " (ENOSPC)")
                       : Status::Internal(detail));
  }
  bool sync_failed = std::fflush(file) != 0;
#ifdef _WIN32
  sync_failed = sync_failed || _commit(_fileno(file)) != 0;
#else
  sync_failed = sync_failed || ::fsync(fileno(file)) != 0;
#endif
  std::fclose(file);
  if (sync_failed || GBMQO_INJECT_FAULT(FaultSite::kDiskFsync, salt)) {
    return fail(Status::Internal("checkpoint: fsync failed for " +
                                 tmp_path.string()));
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return fail(Status::Internal("checkpoint: cannot rename " +
                                 tmp_path.string() + " to " +
                                 final_path.string() + ": " + ec.message()));
  }
#ifndef _WIN32
  // fsync the directory so the rename itself survives a power failure.
  const int dir_fd = ::open(directory.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
  if (governor != nullptr) {
    governor->ForceReserveDisk(static_cast<double>(file_bytes.size()));
  }
  if (bytes_written != nullptr) *bytes_written = file_bytes.size();
  return Status::OK();
}

Result<CheckpointImage> ReadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::Internal("checkpoint: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string buf;
  {
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
      buf.append(chunk, n);
    }
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error) {
      return Status::Internal("checkpoint: read error loading " + path);
    }
  }
  if (buf.size() < kCkptHeaderBytes) {
    return Status::Internal("checkpoint: " + path + " is truncated (" +
                            std::to_string(buf.size()) + " bytes)");
  }
  uint32_t magic, format, crc;
  uint64_t base_version, payload_len;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(&format, buf.data() + 4, 4);
  std::memcpy(&base_version, buf.data() + 8, 8);
  std::memcpy(&payload_len, buf.data() + 16, 8);
  std::memcpy(&crc, buf.data() + 24, 4);
  if (magic != kCkptMagic) {
    return Status::Internal("checkpoint: bad magic in " + path);
  }
  if (format != kCkptFormat) {
    return Status::Internal("checkpoint: unsupported format " +
                            std::to_string(format) + " in " + path);
  }
  if (buf.size() - kCkptHeaderBytes != payload_len) {
    return Status::Internal("checkpoint: " + path + " payload is " +
                            std::to_string(buf.size() - kCkptHeaderBytes) +
                            " bytes, header promises " +
                            std::to_string(payload_len));
  }
  uint8_t* payload = reinterpret_cast<uint8_t*>(buf.data()) + kCkptHeaderBytes;
  // Read-path fault site: prove the whole-image CRC rejects bit rot.
  if (payload_len > 0 &&
      GBMQO_INJECT_FAULT(FaultSite::kDiskBitFlip, FaultKey(base_version))) {
    payload[payload_len / 2] ^= 0x04;
  }
  if (Crc32(payload, payload_len) != crc) {
    return Status::Internal("checkpoint: CRC mismatch in " + path);
  }

  Cursor cur{payload, payload_len};
  CheckpointImage image;
  image.base_version = base_version;
  Result<TablePtr> base = DecodeTable(&cur);
  GBMQO_RETURN_NOT_OK(base.status());
  image.base = *base;
  uint32_t num_entries = 0;
  if (!cur.Get(&num_entries)) return Truncated("cache entry count");
  image.entries.reserve(num_entries);
  for (uint32_t e = 0; e < num_entries; ++e) {
    CheckpointCacheEntry entry;
    uint32_t num_aggs = 0;
    if (!cur.Get(&entry.columns_mask) || !cur.Get(&num_aggs)) {
      return Truncated("cache entry key");
    }
    entry.aggs.reserve(num_aggs);
    for (uint32_t a = 0; a < num_aggs; ++a) {
      uint32_t kind = 0, column = 0;
      if (!cur.Get(&kind) || !cur.Get(&column)) return Truncated("agg ref");
      entry.aggs.push_back(CheckpointAggRef{static_cast<int>(kind),
                                            static_cast<int>(column)});
    }
    uint8_t needs_recompute = 0;
    if (!cur.Get(&entry.source_version) || !cur.Get(&needs_recompute)) {
      return Truncated("cache entry stamps");
    }
    entry.needs_recompute = needs_recompute != 0;
    Result<TablePtr> table = DecodeTable(&cur);
    GBMQO_RETURN_NOT_OK(table.status());
    entry.table = *table;
    image.entries.push_back(std::move(entry));
  }
  if (cur.pos != cur.size) {
    return Status::Internal("checkpoint: trailing garbage in " + path);
  }
  return image;
}

Result<std::vector<CheckpointRef>> ListCheckpoints(
    const std::string& directory) {
  std::vector<CheckpointRef> refs;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return refs;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr char kPrefix[] = "checkpoint-";
    const size_t prefix_len = sizeof(kPrefix) - 1;
    const size_t suffix_len = sizeof(kCkptSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len, kCkptSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    refs.push_back(CheckpointRef{std::strtoull(digits.c_str(), nullptr, 10),
                                 entry.path().string()});
  }
  if (ec) {
    return Status::Internal("checkpoint: cannot list " + directory + ": " +
                            ec.message());
  }
  std::sort(refs.begin(), refs.end(),
            [](const CheckpointRef& a, const CheckpointRef& b) {
              return a.version < b.version;
            });
  return refs;
}

uint64_t ReapStaleCheckpointTmps(const std::string& directory) {
  std::error_code ec;
  if (!fs::exists(directory, ec)) return 0;
  uint64_t reaped = 0;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    const size_t marker = name.rfind(".tmp-");
    if (name.compare(0, 11, "checkpoint-") != 0 ||
        marker == std::string::npos) {
      continue;
    }
    const std::string digits = name.substr(marker + 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const uint64_t pid = std::strtoull(digits.c_str(), nullptr, 10);
    if (ProcessAlive(pid)) continue;
    if (fs::remove(entry.path(), ec)) ++reaped;
  }
  return reaped;
}

}  // namespace gbmqo
