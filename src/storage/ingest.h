// Streaming ingestion: the append-batch front door of the continuous-
// analytics scenario (ROADMAP item 2). The engine's tables are immutable
// after build — every scan path, the kernel-selection metadata, and the
// concurrent serving layer rely on that — so an append produces a *new*
// immutable table version: old rows bulk-copied (Column::AppendRangeFrom),
// delta rows appended, registered in the Catalog under a versioned name
// while readers of the previous version keep their snapshot untouched.
// That copy-on-append discipline is what lets the serving layer promise
// "fully-old or fully-new, never torn" without a single reader-side lock
// on row data.
//
// The Ingestor owns the per-table monotone version counters (mirrored into
// the Catalog's version map) and hands each batch back as (new base, delta
// table, version) so core/delta_maintenance.h can propagate the delta
// through the maintained aggregates instead of recomputing them from R.
#ifndef GBMQO_STORAGE_INGEST_H_
#define GBMQO_STORAGE_INGEST_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace gbmqo {

/// Builds an (unregistered) delta table from value rows, validated against
/// `schema` (arity and types; NULLs allowed only in nullable columns).
Result<TablePtr> BuildDeltaTable(const Schema& schema,
                                 const std::vector<std::vector<Value>>& rows,
                                 const std::string& name);

/// Copy-on-append: a new immutable table named `name` holding every row of
/// `base` followed by every row of `delta` (schemas must match column-wise
/// by type). Secondary indexes of `base` are rebuilt on the new version so
/// physical-design decisions survive ingestion.
Result<TablePtr> AppendRows(const Table& base, const Table& delta,
                            std::string name);

/// One applied append batch.
struct IngestBatch {
  TablePtr base;    ///< the new base version, registered in the catalog
  TablePtr delta;   ///< just the appended rows (unregistered)
  uint64_t version = 0;  ///< the table's monotone version after this batch
};

/// Thread-safe append-batch ingestion over a Catalog. Each AppendBatch call
/// on one table family is atomic: the new version is registered under
/// "<table>@v<k>" before the call returns, the previous version's entry is
/// left untouched (the caller decides when unreferenced versions retire),
/// and the family's version counter moves exactly once. Concurrent
/// AppendBatch calls on the same family serialize on an internal mutex.
class Ingestor {
 public:
  explicit Ingestor(Catalog* catalog) : catalog_(catalog) {}

  /// Appends `rows` to the latest version of `table` (the name it was
  /// originally registered under). Empty batches are legal: the version
  /// still advances, so idempotence bookkeeping upstream stays simple.
  Result<IngestBatch> AppendBatch(const std::string& table,
                                  const std::vector<std::vector<Value>>& rows);

  /// The family's current version (0 until the first AppendBatch).
  uint64_t version(const std::string& table) const;

  /// The catalog name of the family's current version ("<table>" at v0,
  /// "<table>@v<k>" after k batches).
  std::string current_name(const std::string& table) const;

  /// Recovery hook (storage/checkpoint.h): positions the family's version
  /// counter at `version` with `current_name` as its live catalog name, as
  /// if that many batches had been applied. The caller must have registered
  /// the table under `current_name` already; subsequent AppendBatch calls
  /// continue from version + 1. Refuses to move a family backwards.
  Status SeedFamily(const std::string& table, uint64_t version,
                    const std::string& current_name);

 private:
  struct Family {
    uint64_t version = 0;
    std::string current_name;
  };

  Catalog* catalog_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Family> families_;
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_INGEST_H_
