// Checkpoints: periodic durable snapshots of the serving state — the base
// relation (current version of the ingest family) plus the pinned
// aggregate-cache entries — that bound WAL replay time. Recovery loads the
// newest valid checkpoint and replays only the WAL records after its
// version (storage/wal.h); together they rebuild *bit-identical* state:
// tables are serialized column-by-column but reconstructed by replaying the
// original row-order appends, which reproduces every internal detail a
// query can observe (dictionary first-occurrence order and codes, null
// placeholders, code-range metadata, index row permutations).
//
// File discipline: an image is assembled in memory, written to
// `checkpoint-<version>.gckp.tmp-<pid>`, flushed, fsynced, then renamed to
// `checkpoint-<version>.gckp` and the directory fsynced — so a crash at any
// byte leaves either the complete old world or the complete new one, never
// a half-written checkpoint under the real name. A whole-image CRC32 plus
// magic/format header lets ReadCheckpoint reject damage; the recovery path
// falls back to the next-older checkpoint when the newest is corrupt.
// Orphaned `.tmp-<pid>` files from a dead process are reaped on startup
// (ReapStaleCheckpointTmps).
#ifndef GBMQO_STORAGE_CHECKPOINT_H_
#define GBMQO_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace gbmqo {

class StorageGovernor;

/// True when a process with this id is currently alive on this host. Used
/// by the stale-file reapers (checkpoint tmps, spill directories): files
/// carrying a dead pid in their name are orphans and safe to delete.
bool ProcessAlive(uint64_t pid);

/// This process's id, as embedded in process-unique file names.
uint64_t CurrentProcessId();

/// One cached aggregate recorded in a checkpoint. The agg list is stored as
/// raw (kind, column) integer pairs — the storage layer deliberately does
/// not depend on core/exec request types; the server translates.
struct CheckpointAggRef {
  int kind = 0;
  int column = 0;
};

/// One pinned aggregate-cache entry: its cache key (grouping mask + aggs),
/// freshness stamps, and materialized result table. Entries are stored in
/// cache LRU order (most recent first) so recovery can rebuild the same
/// eviction order.
struct CheckpointCacheEntry {
  uint64_t columns_mask = 0;
  std::vector<CheckpointAggRef> aggs;
  uint64_t source_version = 0;
  bool needs_recompute = false;
  TablePtr table;
};

/// Everything a checkpoint persists.
struct CheckpointImage {
  uint64_t base_version = 0;
  TablePtr base;
  std::vector<CheckpointCacheEntry> entries;  ///< MRU first
};

/// "checkpoint-<version>.gckp".
std::string CheckpointFileName(uint64_t version);

/// Durably writes `image` into `directory` (created if needed) under the
/// tmp-then-rename discipline above. On success *bytes_written holds the
/// final file size, charged to the governor's disk ledger (the caller owns
/// releasing it when the checkpoint file is later deleted). Any failure —
/// real or injected via the kDiskEnospc / kDiskShortWrite / kDiskFsync
/// fault sites — removes the tmp file and leaves the directory unchanged.
Status WriteCheckpoint(const std::string& directory,
                       const CheckpointImage& image, StorageGovernor* governor,
                       uint64_t* bytes_written);

/// Loads and verifies the checkpoint at `path`. Internal on any damage
/// (bad magic/format, CRC mismatch, framing error) — the caller falls back
/// to an older checkpoint rather than admitting corrupt state. The
/// kDiskBitFlip fault site fires on this read path.
Result<CheckpointImage> ReadCheckpoint(const std::string& path);

/// A discovered checkpoint file.
struct CheckpointRef {
  uint64_t version = 0;
  std::string path;
};

/// Completed checkpoints in `directory`, ascending by version. A missing
/// directory is an empty list.
Result<std::vector<CheckpointRef>> ListCheckpoints(const std::string& directory);

/// Deletes `checkpoint-*.gckp.tmp-<pid>` files whose pid is dead. Returns
/// the number of files removed.
uint64_t ReapStaleCheckpointTmps(const std::string& directory);

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_CHECKPOINT_H_
