#include "storage/catalog.h"

namespace gbmqo {

Status Catalog::RegisterBase(TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, Entry{std::move(table), /*is_temp=*/false, 0});
  return Status::OK();
}

Status Catalog::RegisterTemp(TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  const uint64_t bytes = table->ByteSize();
  tables_.emplace(name, Entry{std::move(table), /*is_temp=*/true, bytes});
  temp_bytes_ += bytes;
  if (temp_bytes_ > peak_temp_bytes_) peak_temp_bytes_ = temp_bytes_;
  return Status::OK();
}

Status Catalog::RegisterTempWithRefs(TablePtr table, int refs) {
  if (refs < 1) {
    return Status::InvalidArgument("temp table '" + table->name() +
                                   "' needs at least one consumer reference");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  const uint64_t bytes = table->ByteSize();
  tables_.emplace(name, Entry{std::move(table), /*is_temp=*/true, bytes, refs});
  temp_bytes_ += bytes;
  if (temp_bytes_ > peak_temp_bytes_) peak_temp_bytes_ = temp_bytes_;
  return Status::OK();
}

Result<bool> Catalog::ReleaseTempRef(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  if (!it->second.is_temp || it->second.refs < 1) {
    return Status::InvalidArgument("table '" + name +
                                   "' is not reference-counted");
  }
  if (--it->second.refs > 0) return false;
  temp_bytes_ -= it->second.bytes;
  tables_.erase(it);
  return true;
}

Status Catalog::AddTempRef(const std::string& name, int n) {
  if (n < 1) {
    return Status::InvalidArgument("must add at least one reference");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  if (!it->second.is_temp) {
    return Status::InvalidArgument("table '" + name +
                                   "' is a base table, not a temp");
  }
  it->second.refs += n;
  return Status::OK();
}

Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  if (it->second.is_temp) temp_bytes_ -= it->second.bytes;
  tables_.erase(it);
  return Status::OK();
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.table;
}

uint64_t Catalog::table_version(const std::string& family) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = family_versions_.find(family);
  return it == family_versions_.end() ? 0 : it->second;
}

void Catalog::SetTableVersion(const std::string& family, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& current = family_versions_[family];
  if (version > current) current = version;
}

std::string Catalog::NextTempName(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name;
  do {
    name = prefix + "_" + std::to_string(temp_counter_++);
  } while (tables_.count(name) > 0);
  return name;
}

}  // namespace gbmqo
