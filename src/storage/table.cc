#include "storage/table.h"

#include <algorithm>
#include <numeric>

namespace gbmqo {

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_columns()));
  for (int i = 0; i < schema_.num_columns(); ++i) {
    columns_.push_back(std::make_shared<Column>(schema_.column(i).type));
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    GBMQO_RETURN_NOT_OK(columns_[i]->AppendValue(row[i]));
  }
  return Status::OK();
}

Result<TablePtr> TableBuilder::Build(std::string name) {
  size_t rows = columns_.empty() ? 0 : columns_[0]->size();
  for (const ColumnPtr& col : columns_) {
    if (col->size() != rows) {
      return Status::Internal("column row counts are inconsistent");
    }
  }
  return std::make_shared<Table>(std::move(name), std::move(schema_),
                                 std::move(columns_), rows);
}

Table::Table(std::string name, Schema schema, std::vector<ColumnPtr> columns,
             size_t num_rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(std::move(columns)),
      num_rows_(num_rows) {}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (const ColumnPtr& col : columns_) bytes += col->ByteSize();
  return bytes;
}

double Table::AvgRowWidth(ColumnSet set) const {
  if (set.empty()) set = ColumnSet::FirstN(schema_.num_columns());
  double width = 0.0;
  for (int ordinal : set.ToVector()) {
    width += column(ordinal).AvgWidthBytes();
  }
  return width;
}

Status Table::CreateIndex(ColumnSet key) {
  if (key.empty()) return Status::InvalidArgument("index key is empty");
  const std::vector<int> cols = key.ToVector();
  for (int c : cols) {
    if (c >= schema_.num_columns()) {
      return Status::InvalidArgument("index key column out of range");
    }
  }
  std::vector<uint32_t> rows(num_rows_);
  std::iota(rows.begin(), rows.end(), 0);
  std::sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
    for (int c : cols) {
      const Column& col = column(c);
      const bool an = col.IsNull(a), bn = col.IsNull(b);
      if (an != bn) return an > bn;  // NULLs first
      if (an) continue;
      const uint64_t ac = col.CodeAt(a), bc = col.CodeAt(b);
      if (ac != bc) return ac < bc;
    }
    return false;
  });
  indexes_.insert_or_assign(key, Index(key, std::move(rows)));
  return Status::OK();
}

const Index* Table::FindIndex(ColumnSet key) const {
  auto it = indexes_.find(key);
  return it == indexes_.end() ? nullptr : &it->second;
}

const Index* Table::FindCoveringIndex(ColumnSet set) const {
  if (set.empty()) return nullptr;
  // Exact match first.
  if (const Index* exact = FindIndex(set)) return exact;
  // Then any index whose lowest-ordinal |set| key columns are exactly `set`.
  // (Key order within an index is ascending ordinal; see header.)
  const int want = set.size();
  for (const auto& [key, index] : indexes_) {
    if (!key.ContainsAll(set)) continue;
    ColumnSet prefix;
    int taken = 0;
    for (int c : key.ToVector()) {
      if (taken == want) break;
      prefix = prefix.With(c);
      ++taken;
    }
    if (prefix == set) return &index;
  }
  return nullptr;
}

std::vector<Value> Table::Row(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const ColumnPtr& col : columns_) out.push_back(col->ValueAt(row));
  return out;
}

}  // namespace gbmqo
