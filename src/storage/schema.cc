#include "storage/schema.h"

#include "common/str_util.h"

namespace gbmqo {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (int i = 0; i < num_columns(); ++i) {
    by_name_.emplace(columns_[static_cast<size_t>(i)].name, i);
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

Result<ColumnSet> Schema::ResolveColumns(
    const std::vector<std::string>& names) const {
  ColumnSet set;
  for (const std::string& name : names) {
    const int ordinal = FindColumn(name);
    if (ordinal < 0) {
      return Status::NotFound("no column named '" + name + "'");
    }
    if (set.Contains(ordinal)) {
      return Status::InvalidArgument("duplicate column '" + name + "'");
    }
    set = set.With(ordinal);
  }
  return set;
}

std::vector<std::string> Schema::ColumnNames(ColumnSet set) const {
  std::vector<std::string> names;
  for (int ordinal : set.ToVector()) {
    names.push_back(column(ordinal).name);
  }
  return names;
}

Schema Schema::Project(ColumnSet set) const {
  std::vector<ColumnDef> defs;
  for (int ordinal : set.ToVector()) {
    defs.push_back(column(ordinal));
  }
  return Schema(std::move(defs));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  for (const ColumnDef& def : columns_) {
    parts.push_back(def.name + " " + DataTypeName(def.type) +
                    (def.nullable ? " NULL" : " NOT NULL"));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace gbmqo
