// Column: typed, append-only columnar storage with a null bitmap.
//
// Group-by execution works on *group codes*: every column exposes a 64-bit
// code per row such that two non-null rows have equal codes iff their values
// are equal. For INT64/DOUBLE the code is the bit pattern; for STRING it is
// a dictionary code (strings are interned on append). NULLs are tracked in a
// separate bitmap and folded into group keys by the executor.
#ifndef GBMQO_STORAGE_COLUMN_H_
#define GBMQO_STORAGE_COLUMN_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace gbmqo {

/// One column of a table. Owned by Table via shared_ptr so projected /
/// derived tables can share storage without copying.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return rows_; }

  // ---- Append interface (used by data generators and materialization) ----

  /// Appends a typed value. The overload must match the column type.
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendNull();

  /// Appends a Value, checking type compatibility.
  Status AppendValue(const Value& v);

  /// Appends row `row` of `other` (same type required). Used when
  /// materializing group-by output from an input column.
  void AppendFrom(const Column& other, size_t row);

  /// Bulk-appends rows [begin, begin+count) of `other` (same type
  /// required). Equivalent to count AppendFrom calls but copies the typed
  /// value arrays wholesale, so the copy-on-append ingestion path
  /// (storage/ingest.h) pays memcpy rates instead of per-row dispatch.
  /// Strings still intern per row (the dictionaries differ).
  void AppendRangeFrom(const Column& other, size_t begin, size_t count);

  /// Reserves space for n rows.
  void Reserve(size_t n);

  // ---- Read interface ----

  bool IsNull(size_t row) const {
    if (null_bitmap_.empty()) return false;
    return (null_bitmap_[row >> 6] >> (row & 63)) & 1;
  }
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  /// 64-bit group code for the row; meaningless if IsNull(row).
  uint64_t CodeAt(size_t row) const {
    switch (type_) {
      case DataType::kInt64:
        return static_cast<uint64_t>(int64_data_[row]);
      case DataType::kDouble:
        return std::bit_cast<uint64_t>(double_data_[row]);
      case DataType::kString:
        return string_codes_[row];
    }
    return 0;
  }

  int64_t Int64At(size_t row) const { return int64_data_[row]; }
  double DoubleAt(size_t row) const { return double_data_[row]; }
  const std::string& StringAt(size_t row) const {
    return dictionary_[string_codes_[row]];
  }
  /// Numeric view of the row (int64 widened to double); 0 for NULL/string.
  double NumericAt(size_t row) const {
    if (IsNull(row)) return 0.0;
    if (type_ == DataType::kInt64) return static_cast<double>(int64_data_[row]);
    if (type_ == DataType::kDouble) return double_data_[row];
    return 0.0;
  }

  /// Dynamically-typed cell (boundary/test use only).
  Value ValueAt(size_t row) const;

  // ---- Raw typed storage (vectorized execution) ----
  //
  // Direct pointers into the value arrays for block-at-a-time kernels
  // (exec/simd.h consumers). Valid for size() rows of the matching type;
  // NULL rows hold their placeholders (0 / 0.0 / the ""-code), so callers
  // must mask with the null bitmap.
  const int64_t* int64_data() const { return int64_data_.data(); }
  const double* double_data() const { return double_data_.data(); }
  const uint32_t* string_codes() const { return string_codes_.data(); }

  /// Null-bitmap words: bit (row & 63) of word (row >> 6) is set iff the
  /// row is NULL; bits past size() are clear. nullptr when no NULL was ever
  /// appended (the bitmap is lazily allocated).
  const uint64_t* null_words() const {
    return null_bitmap_.empty() ? nullptr : null_bitmap_.data();
  }

  /// The null bits of rows [begin, begin+count), count <= 64, packed into
  /// bits 0..count-1 of the result (bit i = row begin+i is NULL). 0 when
  /// the column has no bitmap. Lets block loops test "any NULL in this
  /// chunk" in one word even when begin is not word-aligned.
  uint64_t NullWord(size_t begin, size_t count) const;

  /// The interned string for a dictionary code (STRING columns only).
  const std::string& DictEntry(uint64_t code) const { return dictionary_[code]; }
  size_t dict_size() const { return dictionary_.size(); }

  // ---- Code-domain metadata (aggregation kernel selection) ----
  //
  // Appends maintain the min/max group code over non-NULL rows, so the
  // executor can compute an exact per-column code bit-width and pick a
  // packed or dense aggregation kernel (see exec/agg_kernel.h). The
  // min/max are raw 64-bit codes compared in type order: signed for INT64
  // (bit patterns of INT64_MIN and INT64_MAX bracket correctly), unsigned
  // for DOUBLE bit patterns and dictionary codes.

  /// True once at least one non-NULL value has been appended. While false,
  /// CodeRangeMin()/CodeRange() are 0 and CodeBits() is 0 (an empty or
  /// all-NULL column contributes no value bits to a packed key).
  bool HasCodeRange() const { return has_code_range_; }

  /// Smallest group code among non-NULL rows — the offset the packed and
  /// dense kernels subtract before packing. For INT64 this is the bit
  /// pattern of the signed minimum, so CodeAt(row) - CodeRangeMin() in
  /// wrapping uint64 arithmetic always lands in [0, CodeRange()].
  uint64_t CodeRangeMin() const { return code_min_; }

  /// Largest offset code: max code - min code in wrapping uint64
  /// arithmetic. 0 when the column is empty, all-NULL, or single-valued.
  uint64_t CodeRange() const { return code_max_ - code_min_; }

  /// Exact bits needed to represent CodeAt(row) - CodeRangeMin() for every
  /// non-NULL row: 0 (no bits needed) through 64 (full-range INT64).
  int CodeBits() const {
    const uint64_t range = CodeRange();
    return range == 0 ? 0 : std::bit_width(range);
  }

  /// Writes CodeAt(row) for rows [begin, begin+count) into out[0..count),
  /// with one type dispatch for the whole block instead of one per row.
  /// NULL rows yield their placeholder code; callers mask them via IsNull.
  void CodeBlock(size_t begin, size_t count, uint64_t* out) const;

  /// Approximate in-memory footprint of the column data in bytes, used for
  /// temp-table storage accounting and the optimizer's row-width estimates.
  /// Counts the null bitmap, the typed value array (placeholders included,
  /// so all-NULL columns still have a width), and for STRING columns the
  /// 4-byte dictionary codes plus the referenced payload bytes counted once
  /// per row *occurrence* — modelling the row-store width a DBMS temp table
  /// would have, not this engine's dictionary-compressed footprint.
  size_t ByteSize() const;

  /// Average bytes per row: ByteSize() / size(), clamped to >= 1. Empty
  /// columns (size() == 0 — nothing to divide by) report the type's nominal
  /// width instead: FixedWidthBytes for numerics, 16 bytes for strings.
  double AvgWidthBytes() const;

 private:
  void AppendNotNull();
  void NoteCode(uint64_t code);
  uint32_t InternString(std::string_view v);

  DataType type_;
  size_t rows_ = 0;
  size_t null_count_ = 0;

  // Min/max group code over non-NULL rows (see HasCodeRange()).
  bool has_code_range_ = false;
  uint64_t code_min_ = 0;
  uint64_t code_max_ = 0;

  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;

  // STRING: dictionary-encoded. codes index into dictionary_.
  std::vector<uint32_t> string_codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, uint32_t> intern_;
  size_t string_bytes_ = 0;  // total interned bytes referenced by rows

  // Lazily allocated: empty means "no nulls so far".
  std::vector<uint64_t> null_bitmap_;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_COLUMN_H_
