// StorageGovernor: a process-wide byte budget arbitrating intermediate
// storage across concurrent plan executions and the cross-request aggregate
// cache. Each PlanExecutor keeps enforcing its own per-plan Section 4.4
// storage gate; the governor sits above those gates so the *sum* of
// concurrently live intermediates (plus cache pins) also stays under one
// global budget. Reservations are advisory byte counts (the executor's
// what-if estimates), not allocations.
//
// The governor keeps two independent ledgers:
//  - RAM bytes (TryReserve/ForceReserve/Release): in-memory intermediates —
//    temp tables, cache pins, and the per-partition working set of an
//    out-of-core (spilled) aggregation.
//  - Disk bytes (TryReserveDisk/ReleaseDisk): spill files written by the
//    out-of-core aggregation path (exec/spill_partitioner.h). A separate
//    ledger because spilling exists precisely to trade RAM for disk; one
//    shared pool would make the trade self-defeating.
// Both ledgers record a high-water mark so callers (tests, benches) can
// assert the realized peak stayed under a cap after the fact.
#ifndef GBMQO_STORAGE_STORAGE_GOVERNOR_H_
#define GBMQO_STORAGE_STORAGE_GOVERNOR_H_

#include <algorithm>
#include <mutex>

namespace gbmqo {

/// Thread-safe global storage budget. budget_bytes <= 0 means unlimited
/// (TryReserve always succeeds) while still tracking the reserved total.
class StorageGovernor {
 public:
  explicit StorageGovernor(double budget_bytes, double disk_budget_bytes = 0)
      : budget_bytes_(budget_bytes), disk_budget_bytes_(disk_budget_bytes) {}

  /// Attempts to reserve `bytes`; fails (without reserving) if the grant
  /// would push the reserved total past the budget. Non-positive requests
  /// always succeed.
  bool TryReserve(double bytes) {
    if (bytes <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_bytes_ > 0 && reserved_ + bytes > budget_bytes_) return false;
    reserved_ += bytes;
    peak_reserved_ = std::max(peak_reserved_, reserved_);
    return true;
  }

  /// Reserves unconditionally — used where an executor must make progress
  /// (its forced-admission path) even if that overshoots the budget; the
  /// overshoot is visible in reserved() and repaid on release.
  void ForceReserve(double bytes) {
    if (bytes <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ += bytes;
    peak_reserved_ = std::max(peak_reserved_, reserved_);
  }

  /// Returns `bytes` to the budget (clamped so racy over-release cannot
  /// drive the total negative).
  void Release(double bytes) {
    if (bytes <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ = std::max(0.0, reserved_ - bytes);
  }

  /// Attempts to reserve `bytes` on the disk ledger; fails (without
  /// reserving) if the grant would exceed the disk budget. Non-positive
  /// requests always succeed; disk_budget_bytes <= 0 means unlimited.
  bool TryReserveDisk(double bytes) {
    if (bytes <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    if (disk_budget_bytes_ > 0 && disk_reserved_ + bytes > disk_budget_bytes_) {
      return false;
    }
    disk_reserved_ += bytes;
    peak_disk_reserved_ = std::max(peak_disk_reserved_, disk_reserved_);
    return true;
  }

  /// Reserves unconditionally on the disk ledger — the durability layer
  /// (WAL segments, checkpoint images) accounts bytes it has *already*
  /// written; refusing the reservation cannot unwrite them, so the ledger
  /// records the overshoot instead (mirrors ForceReserve on the RAM side).
  void ForceReserveDisk(double bytes) {
    if (bytes <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    disk_reserved_ += bytes;
    peak_disk_reserved_ = std::max(peak_disk_reserved_, disk_reserved_);
  }

  /// Returns `bytes` to the disk budget (clamped like Release).
  void ReleaseDisk(double bytes) {
    if (bytes <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    disk_reserved_ = std::max(0.0, disk_reserved_ - bytes);
  }

  double reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reserved_;
  }
  double disk_reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return disk_reserved_;
  }
  /// High-water marks since construction or the last ResetPeaks().
  double peak_reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_reserved_;
  }
  double peak_disk_reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_disk_reserved_;
  }
  void ResetPeaks() {
    std::lock_guard<std::mutex> lock(mu_);
    peak_reserved_ = reserved_;
    peak_disk_reserved_ = disk_reserved_;
  }
  double budget_bytes() const { return budget_bytes_; }
  double disk_budget_bytes() const { return disk_budget_bytes_; }

 private:
  const double budget_bytes_;
  const double disk_budget_bytes_;
  mutable std::mutex mu_;
  double reserved_ = 0;
  double disk_reserved_ = 0;
  double peak_reserved_ = 0;
  double peak_disk_reserved_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_STORAGE_GOVERNOR_H_
