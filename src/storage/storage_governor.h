// StorageGovernor: a process-wide byte budget arbitrating intermediate
// storage across concurrent plan executions and the cross-request aggregate
// cache. Each PlanExecutor keeps enforcing its own per-plan Section 4.4
// storage gate; the governor sits above those gates so the *sum* of
// concurrently live intermediates (plus cache pins) also stays under one
// global budget. Reservations are advisory byte counts (the executor's
// what-if estimates), not allocations.
#ifndef GBMQO_STORAGE_STORAGE_GOVERNOR_H_
#define GBMQO_STORAGE_STORAGE_GOVERNOR_H_

#include <algorithm>
#include <mutex>

namespace gbmqo {

/// Thread-safe global storage budget. budget_bytes <= 0 means unlimited
/// (TryReserve always succeeds) while still tracking the reserved total.
class StorageGovernor {
 public:
  explicit StorageGovernor(double budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// Attempts to reserve `bytes`; fails (without reserving) if the grant
  /// would push the reserved total past the budget. Non-positive requests
  /// always succeed.
  bool TryReserve(double bytes) {
    if (bytes <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_bytes_ > 0 && reserved_ + bytes > budget_bytes_) return false;
    reserved_ += bytes;
    return true;
  }

  /// Reserves unconditionally — used where an executor must make progress
  /// (its forced-admission path) even if that overshoots the budget; the
  /// overshoot is visible in reserved() and repaid on release.
  void ForceReserve(double bytes) {
    if (bytes <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ += bytes;
  }

  /// Returns `bytes` to the budget (clamped so racy over-release cannot
  /// drive the total negative).
  void Release(double bytes) {
    if (bytes <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ = std::max(0.0, reserved_ - bytes);
  }

  double reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reserved_;
  }
  double budget_bytes() const { return budget_bytes_; }

 private:
  const double budget_bytes_;
  mutable std::mutex mu_;
  double reserved_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_STORAGE_GOVERNOR_H_
