// Write-ahead log for the ingest path (api/server.h): every AppendBatch is
// serialized and appended to a log segment — length-prefixed,
// CRC32-checksummed records — *before* it is applied to the in-memory base
// relation, so a restarted server can replay the tail and reach the exact
// state an uninterrupted run would hold (see storage/checkpoint.h for the
// companion snapshot mechanism and DESIGN.md "Durability and crash
// recovery" for the invariants).
//
// Record layout (host-endian; a WAL is private to one host):
//
//   u32 magic 'GWAL' | u32 payload_len | u64 version | u32 crc | payload
//
// with crc = CRC32 over (version, payload). The payload is the tagged
// row-batch encoding of EncodeRows. Records are back-to-back; there is no
// resync marker, so the torn-tail rule below is what bounds damage.
//
// Torn-tail rule (replay): a record whose header or payload extends past
// EOF is a *torn* record — a crash interrupted the write — and replay
// truncates the file back to the last complete record and continues
// (truncate-and-continue). A record that is fully present but fails its CRC
// is *corruption* (bit rot, a misdirected write) and replay refuses to
// proceed: corrupt data must never be admitted, and everything after it is
// unframeable. The two cases are distinguishable because a torn write can
// only shorten the file, never damage bytes that fsync already covered.
//
// Fsync discipline (FsyncMode):
//   kNone   — records reach the OS only when the stream buffer spills or
//             the writer closes; a crash can lose recent batches (they were
//             never acknowledged durable — callers know the mode).
//   kBatch  — every Append flushes to the kernel (fflush); an engine crash
//             loses nothing, an OS crash can lose the page cache tail.
//   kAlways — every Append fsyncs; a power failure loses at most the
//             in-flight record (which replay then truncates).
//
// Every write path carries the shared disk fault sites (kDiskShortWrite,
// kDiskTornWrite, kDiskEnospc, kDiskFsync) and the read path carries
// kDiskBitFlip, so the crash-and-recover harness can kill the log at any
// byte and assert recovery never admits a torn or corrupt record.
#ifndef GBMQO_STORAGE_WAL_H_
#define GBMQO_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace gbmqo {

class StorageGovernor;

/// When appended WAL records are forced to stable storage. See file
/// comment for the durability each mode buys.
enum class FsyncMode { kNone, kBatch, kAlways };

const char* FsyncModeName(FsyncMode mode);
Result<FsyncMode> ParseFsyncMode(const std::string& name);

/// Serializes a row batch into the WAL payload encoding: u32 row count,
/// then per row a u32 value count and tagged values (u8 tag: 0 NULL,
/// 1 INT64, 2 DOUBLE, 3 STRING; numerics as raw 8-byte patterns — doubles
/// round-trip bit-exactly — strings as u32 length + bytes).
void EncodeRows(const std::vector<std::vector<Value>>& rows, std::string* out);

/// Inverse of EncodeRows. InvalidArgument on any framing violation (the
/// caller has already CRC-verified the buffer, so a decode failure means a
/// format bug, not disk damage).
Status DecodeRows(const uint8_t* data, size_t size,
                  std::vector<std::vector<Value>>* rows);

/// What one ReplayWal pass saw and did.
struct WalReplayReport {
  uint64_t records_seen = 0;     ///< complete, CRC-valid records in the log
  uint64_t records_applied = 0;  ///< records with version > apply_after
  uint64_t bytes_replayed = 0;   ///< log bytes covered by valid records
  bool tail_truncated = false;   ///< a torn trailing record was dropped
  uint64_t tail_dropped_bytes = 0;  ///< bytes removed by the truncation
};

/// Replays the segment at `path`: verifies every record (magic, framing,
/// CRC, contiguous versions) and invokes `apply` for each record whose
/// version exceeds `apply_after`, in log order. A torn trailing record is
/// truncated off the file (so later appends extend a clean log) and
/// reported; a mid-log CRC/framing failure returns Internal without
/// applying the bad record or anything after it. A missing file is an empty
/// log (OK, zero records). `apply` returning non-OK aborts the replay with
/// that status.
Status ReplayWal(
    const std::string& path, uint64_t apply_after,
    const std::function<Status(uint64_t version,
                               std::vector<std::vector<Value>>&& rows)>& apply,
    WalReplayReport* report);

/// Append-only writer over one WAL segment. Not thread-safe: the serving
/// layer serializes AppendBatch calls already. Bytes are charged to the
/// governor's disk ledger as they are written; the hold is released when
/// the writer is destroyed *and* the segment file has been deleted by the
/// owner (ReleaseGovernorHold), or unconditionally at destruction if the
/// owner never detached it — the server keeps the ledger equal to the live
/// durable bytes on disk.
class WalWriter {
 public:
  /// Opens `path` for appending, creating it if absent. The existing size
  /// (a recovered segment's surviving records) seeds bytes().
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 FsyncMode mode,
                                                 StorageGovernor* governor);

  /// Closes the stream. Releases any remaining governor hold.
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and applies the fsync discipline. On a short
  /// write/ENOSPC/fsync failure the tail is restored (truncated back to the
  /// pre-record offset) so the log stays clean and the caller can keep
  /// serving at the old version; the returned status names the file,
  /// offset, and byte counts. A torn-write fault (crash simulation) leaves
  /// the torn bytes in place and marks the writer broken — every later
  /// Append fails fast, exactly like a dead process's log.
  Status Append(uint64_t version, const std::vector<std::vector<Value>>& rows);

  /// Forces everything appended so far to stable storage (any mode).
  Status Sync();

  /// Logical end of the log: bytes of complete records on disk.
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  bool broken() const { return broken_; }

  /// Detaches the governor hold and returns it without releasing — the
  /// caller now owns returning those bytes to the ledger (used when the
  /// segment outlives the writer across a rotation).
  uint64_t DetachGovernorHold();

 private:
  WalWriter(std::string path, FsyncMode mode, StorageGovernor* governor,
            std::FILE* file, uint64_t existing_bytes);

  /// Best-effort truncate back to `offset` after a failed append.
  void RestoreTail(uint64_t offset);

  std::string path_;
  FsyncMode mode_;
  StorageGovernor* governor_;
  std::FILE* file_;
  uint64_t bytes_ = 0;           ///< complete-record bytes
  uint64_t governor_held_ = 0;   ///< disk-ledger bytes charged by this writer
  bool broken_ = false;
  uint64_t append_seq_ = 0;      ///< fault-key salt, counts Append calls
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_WAL_H_
