// Value: a dynamically-typed cell used at API boundaries (row construction,
// result inspection, tests). Hot execution paths never touch Value; they
// operate on typed column storage and 64-bit group codes (see column.h).
#ifndef GBMQO_STORAGE_VALUE_H_
#define GBMQO_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace gbmqo {

/// Column data types supported by the engine.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns a display name, e.g. "INT64".
inline const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
  }
  return "UNKNOWN";
}

/// In-memory width in bytes of a fixed-width type; strings report their
/// average encoded length via ColumnStats instead.
inline int FixedWidthBytes(DataType type) {
  switch (type) {
    case DataType::kInt64: return 8;
    case DataType::kDouble: return 8;
    case DataType::kString: return 0;  // variable
  }
  return 0;
}

/// SQL-style NULL marker.
struct Null {
  friend bool operator==(Null, Null) { return true; }
};

/// A single cell: NULL, INT64, DOUBLE or STRING.
class Value {
 public:
  Value() : v_(Null{}) {}
  Value(Null) : v_(Null{}) {}                      // NOLINT(runtime/explicit)
  Value(int64_t v) : v_(v) {}                      // NOLINT(runtime/explicit)
  Value(int v) : v_(static_cast<int64_t>(v)) {}    // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                       // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}       // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}     // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t int64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 and double both render as double (for SUM/MIN/MAX
  /// over either type).
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64()) : dbl();
  }

  std::string ToString() const {
    if (is_null()) return "NULL";
    if (is_int64()) return std::to_string(int64());
    if (is_double()) return std::to_string(dbl());
    return str();
  }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<Null, int64_t, double, std::string> v_;
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_VALUE_H_
