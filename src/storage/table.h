// Table: an immutable-after-build, in-memory columnar relation, plus optional
// secondary indexes (sorted row permutations) used by the optimizer cost
// model and the index-scan path (Experiment 6.9, physical design).
#ifndef GBMQO_STORAGE_TABLE_H_
#define GBMQO_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace gbmqo {

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A secondary index on a column set: row ids permuted so that rows with
/// equal key values are adjacent (grouping order). A covering index lets the
/// executor stream-aggregate without a hash table and lets the cost model
/// charge narrow index pages instead of full-width table pages.
class Index {
 public:
  Index(ColumnSet key, std::vector<uint32_t> sorted_rows)
      : key_(key), sorted_rows_(std::move(sorted_rows)) {}

  ColumnSet key() const { return key_; }
  const std::vector<uint32_t>& sorted_rows() const { return sorted_rows_; }

 private:
  ColumnSet key_;
  std::vector<uint32_t> sorted_rows_;
};

/// Builder for assembling a table column by column; validates row counts.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Column accessor for direct typed appends (generators use this).
  Column* column(int ordinal) { return columns_[static_cast<size_t>(ordinal)].get(); }

  /// Appends one row of Values (boundary/test use).
  Status AppendRow(const std::vector<Value>& row);

  /// Finalizes into a table; fails if columns have inconsistent row counts.
  Result<TablePtr> Build(std::string name);

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
};

/// An in-memory relation. After Build() the data is treated as read-only;
/// indexes can still be added (they do not mutate row data).
class Table {
 public:
  Table(std::string name, Schema schema, std::vector<ColumnPtr> columns,
        size_t num_rows);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  const Column& column(int ordinal) const {
    return *columns_[static_cast<size_t>(ordinal)];
  }
  ColumnPtr column_ptr(int ordinal) const {
    return columns_[static_cast<size_t>(ordinal)];
  }

  /// Total data bytes (storage accounting for temp tables).
  size_t ByteSize() const;

  /// Average row width in bytes over the given columns (whole table if
  /// `set` is empty); used by the optimizer cost model.
  double AvgRowWidth(ColumnSet set) const;

  // ---- Index management (physical design) ----

  /// Builds and attaches a secondary index on `key`. Replaces any existing
  /// index with the same key.
  Status CreateIndex(ColumnSet key);

  /// The attached index on exactly `key`, or nullptr.
  const Index* FindIndex(ColumnSet key) const;

  /// An attached index whose *leading* key columns cover `set` in any order
  /// — i.e. an index on superset K where `set` ⊆ K and the index sort groups
  /// `set` contiguously only when set == prefix. We only exploit exact-key
  /// or full-prefix matches: returns an index whose key set equals `set`, or
  /// whose key's first |set| columns (in index key order) are exactly `set`.
  const Index* FindCoveringIndex(ColumnSet set) const;

  const std::map<ColumnSet, Index>& indexes() const { return indexes_; }

  /// One row as Values (test/inspection use).
  std::vector<Value> Row(size_t row) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_;
  std::map<ColumnSet, Index> indexes_;
  // Index key order: we store keys in ascending-ordinal order, so a prefix
  // of an index is its lowest-ordinal columns.
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_TABLE_H_
