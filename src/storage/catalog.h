// Catalog: named base and temporary tables, with storage accounting for the
// intermediate-storage experiments (Section 4.4).
#ifndef GBMQO_STORAGE_CATALOG_H_
#define GBMQO_STORAGE_CATALOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "storage/table.h"

namespace gbmqo {

/// Thread-safe table registry (all operations take an internal mutex, so
/// parallel sub-plan execution can register/drop temp tables concurrently).
/// Temp tables created by plan execution are tracked so peak intermediate
/// storage can be reported and compared against the Storage(u) recurrence
/// of Section 4.4.
class Catalog {
 public:
  /// Registers a base (non-temporary) table. Fails on duplicate name.
  Status RegisterBase(TablePtr table);

  /// Registers a temporary table (plan intermediate). Fails on duplicate
  /// name. Its bytes count toward current/peak temp storage.
  Status RegisterTemp(TablePtr table);

  /// Registers a temporary table whose lifetime is reference-counted by its
  /// consumers: after `refs` (>= 1) ReleaseTempRef calls the table is
  /// dropped and its bytes released. Used by the DAG plan executor, where a
  /// parent's temp table must outlive exactly the tasks that read it.
  Status RegisterTempWithRefs(TablePtr table, int refs);

  /// Releases one consumer reference taken by RegisterTempWithRefs; drops
  /// the table when the count reaches zero. Returns whether this call
  /// dropped it. Fails on tables registered without references.
  Result<bool> ReleaseTempRef(const std::string& name);

  /// Adds `n` (>= 1) consumer references to an existing temp table. Used by
  /// the aggregate cache to pin a materialized intermediate beyond its plan
  /// and to hand extra references to concurrent readers. A temp registered
  /// without references (plain RegisterTemp) becomes reference-counted; its
  /// owner must then release instead of Drop.
  Status AddTempRef(const std::string& name, int n = 1);

  /// Drops a table by name (base or temp). Temp bytes are released.
  Status Drop(const std::string& name);

  /// Lookup; NotFound if missing.
  Result<TablePtr> Get(const std::string& name) const;
  bool Exists(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tables_.count(name) > 0;
  }

  /// Current bytes held by live temp tables.
  uint64_t temp_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return temp_bytes_;
  }
  /// High-water mark of temp bytes since construction / last reset.
  uint64_t peak_temp_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_temp_bytes_;
  }
  void ResetPeakTempBytes() {
    std::lock_guard<std::mutex> lock(mu_);
    peak_temp_bytes_ = temp_bytes_;
  }

  // ---- Table-family versions (streaming ingestion) ----
  //
  // Ingestion never mutates a registered table: storage/ingest.h registers
  // each appended batch as a *new* base table ("<family>@v<k>") and records
  // the family's monotone version here. Readers that captured a snapshot of
  // an older version keep serving it untouched; the version map is how the
  // serving layer and the aggregate cache agree on "which generation of the
  // data is current".

  /// Current version of a table family (0 until the first SetTableVersion —
  /// i.e. the as-loaded generation).
  uint64_t table_version(const std::string& family) const;

  /// Records that `family` advanced to `version`. Monotone: calls with a
  /// version <= the recorded one are ignored.
  void SetTableVersion(const std::string& family, uint64_t version);

  /// Generates a fresh temp-table name with the given prefix.
  std::string NextTempName(const std::string& prefix);

  size_t num_tables() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
  }

 private:
  struct Entry {
    TablePtr table;
    bool is_temp = false;
    uint64_t bytes = 0;
    /// Outstanding consumer references (RegisterTempWithRefs); 0 for tables
    /// whose lifetime is managed by explicit Drop calls.
    int refs = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> tables_;
  std::unordered_map<std::string, uint64_t> family_versions_;
  uint64_t temp_bytes_ = 0;
  uint64_t peak_temp_bytes_ = 0;
  uint64_t temp_counter_ = 0;
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_CATALOG_H_
