#include "storage/column.h"

#include <cassert>
#include <cstring>

namespace gbmqo {

void Column::AppendNotNull() {
  if (!null_bitmap_.empty()) {
    // Bitmap exists; grow it with a cleared bit for this row.
    const size_t word = rows_ >> 6;
    if (word >= null_bitmap_.size()) null_bitmap_.push_back(0);
  }
  ++rows_;
}

void Column::NoteCode(uint64_t code) {
  if (!has_code_range_) {
    code_min_ = code_max_ = code;
    has_code_range_ = true;
    return;
  }
  if (type_ == DataType::kInt64) {
    // Signed order: INT64_MIN's bit pattern must compare below INT64_MAX's.
    const int64_t s = static_cast<int64_t>(code);
    if (s < static_cast<int64_t>(code_min_)) code_min_ = code;
    if (s > static_cast<int64_t>(code_max_)) code_max_ = code;
  } else {
    if (code < code_min_) code_min_ = code;
    if (code > code_max_) code_max_ = code;
  }
}

uint32_t Column::InternString(std::string_view v) {
  auto it = intern_.find(std::string(v));
  if (it != intern_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(dictionary_.size());
  dictionary_.emplace_back(v);
  intern_.emplace(dictionary_.back(), code);
  return code;
}

void Column::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  int64_data_.push_back(v);
  NoteCode(static_cast<uint64_t>(v));
  AppendNotNull();
}

void Column::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  double_data_.push_back(v);
  NoteCode(std::bit_cast<uint64_t>(v));
  AppendNotNull();
}

void Column::AppendString(std::string_view v) {
  assert(type_ == DataType::kString);
  const uint32_t code = InternString(v);
  string_codes_.push_back(code);
  string_bytes_ += v.size();
  NoteCode(code);
  AppendNotNull();
}

void Column::AppendNull() {
  // Lazily materialize the bitmap covering all rows so far.
  if (null_bitmap_.empty()) {
    null_bitmap_.assign((rows_ >> 6) + 1, 0);
  }
  const size_t row = rows_;
  const size_t word = row >> 6;
  while (word >= null_bitmap_.size()) null_bitmap_.push_back(0);
  null_bitmap_[word] |= 1ULL << (row & 63);
  ++null_count_;
  // Keep the value arrays aligned with row indices using a placeholder.
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      double_data_.push_back(0.0);
      break;
    case DataType::kString:
      // Intern the empty string as the NULL placeholder; the null bitmap is
      // what distinguishes NULL from an actual empty string at read time.
      // The placeholder is excluded from the code range (NoteCode is not
      // called) so an all-NULL column keeps CodeBits() == 0.
      string_codes_.push_back(InternString(""));
      break;
  }
  ++rows_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) {
        return Status::InvalidArgument("expected INT64 value");
      }
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.dbl());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64()));
      } else {
        return Status::InvalidArgument("expected DOUBLE value");
      }
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) {
        return Status::InvalidArgument("expected STRING value");
      }
      AppendString(v.str());
      return Status::OK();
  }
  return Status::Internal("unreachable column type");
}

void Column::AppendFrom(const Column& other, size_t row) {
  assert(other.type_ == type_);
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(other.int64_data_[row]);
      break;
    case DataType::kDouble:
      AppendDouble(other.double_data_[row]);
      break;
    case DataType::kString:
      AppendString(other.StringAt(row));
      break;
  }
}

void Column::AppendRangeFrom(const Column& other, size_t begin, size_t count) {
  assert(other.type_ == type_);
  if (count == 0) return;
  Reserve(rows_ + count);
  // The slow path handles NULLs and string re-interning row by row; the
  // numeric no-NULL case is the one worth making a bulk copy.
  if (other.has_nulls() || type_ == DataType::kString) {
    for (size_t i = 0; i < count; ++i) AppendFrom(other, begin + i);
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      int64_data_.insert(int64_data_.end(), other.int64_data_.begin() + begin,
                         other.int64_data_.begin() + begin + count);
      break;
    case DataType::kDouble:
      double_data_.insert(double_data_.end(),
                          other.double_data_.begin() + begin,
                          other.double_data_.begin() + begin + count);
      break;
    case DataType::kString:
      break;  // handled above
  }
  // Fold the source's code range in once instead of per row. The source
  // range over [begin, begin+count) is bounded by its whole-column range;
  // using the whole range only widens CodeBits, never breaks the "every
  // offset code fits" contract the kernels rely on.
  if (other.has_code_range_) {
    NoteCode(other.code_min_);
    NoteCode(other.code_max_);
  }
  if (!null_bitmap_.empty()) {
    // This column tracked NULLs before; extend the bitmap with cleared bits.
    const size_t words = ((rows_ + count) >> 6) + 1;
    null_bitmap_.resize(words, 0);
  }
  rows_ += count;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      int64_data_.reserve(n);
      break;
    case DataType::kDouble:
      double_data_.reserve(n);
      break;
    case DataType::kString:
      string_codes_.reserve(n);
      break;
  }
  if (!null_bitmap_.empty()) null_bitmap_.reserve(((rows_ + n) >> 6) + 1);
}

uint64_t Column::NullWord(size_t begin, size_t count) const {
  assert(count <= 64);
  if (null_bitmap_.empty() || count == 0) return 0;
  const size_t w0 = begin >> 6;
  const int off = static_cast<int>(begin & 63);
  uint64_t w = null_bitmap_[w0] >> off;
  if (off != 0 && w0 + 1 < null_bitmap_.size()) {
    w |= null_bitmap_[w0 + 1] << (64 - off);
  }
  if (count < 64) w &= (uint64_t{1} << count) - 1;
  return w;
}

void Column::CodeBlock(size_t begin, size_t count, uint64_t* out) const {
  switch (type_) {
    case DataType::kInt64:
      // int64/double codes are the 8-byte bit patterns: one memcpy.
      std::memcpy(out, int64_data_.data() + begin, count * sizeof(uint64_t));
      break;
    case DataType::kDouble:
      std::memcpy(out, double_data_.data() + begin, count * sizeof(uint64_t));
      break;
    case DataType::kString:
      for (size_t i = 0; i < count; ++i) {
        out[i] = string_codes_[begin + i];
      }
      break;
  }
}

Value Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value(Null{});
  switch (type_) {
    case DataType::kInt64:
      return Value(int64_data_[row]);
    case DataType::kDouble:
      return Value(double_data_[row]);
    case DataType::kString:
      return Value(StringAt(row));
  }
  return Value(Null{});
}

size_t Column::ByteSize() const {
  size_t bytes = null_bitmap_.size() * sizeof(uint64_t);
  switch (type_) {
    case DataType::kInt64:
      bytes += int64_data_.size() * sizeof(int64_t);
      break;
    case DataType::kDouble:
      bytes += double_data_.size() * sizeof(double);
      break;
    case DataType::kString:
      bytes += string_codes_.size() * sizeof(uint32_t);
      // Count referenced string payload once per row occurrence (this models
      // the row-store width a DBMS temp table would have).
      bytes += string_bytes_;
      break;
  }
  return bytes;
}

double Column::AvgWidthBytes() const {
  if (rows_ == 0) {
    // Nothing stored to average over (ByteSize()/rows_ would divide by
    // zero): report the type's nominal width. 16 bytes for strings matches
    // the generators' typical interned length.
    return type_ == DataType::kString ? 16.0
                                      : static_cast<double>(FixedWidthBytes(type_));
  }
  // Includes the per-row storage of NULL rows (placeholder slots + bitmap),
  // so an all-NULL string column is ~4.x bytes/row (codes + bitmap, no
  // payload) rather than 0 — the dictionary payload is never double-counted
  // because ByteSize() charges it per occurrence, not per dictionary entry.
  const double w = static_cast<double>(ByteSize()) / static_cast<double>(rows_);
  return w < 1.0 ? 1.0 : w;
}

}  // namespace gbmqo
