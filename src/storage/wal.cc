#include "storage/wal.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "storage/storage_governor.h"

namespace gbmqo {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kWalMagic = 0x4C415747u;  // "GWAL"
constexpr uint32_t kWalHeaderBytes = 20;     // magic + len + version + crc
/// Upper bound on one record's payload: anything larger in the file is
/// framing damage, not a real record, so replay can reject it before
/// trying a multi-gigabyte allocation.
constexpr uint32_t kMaxWalPayload = 256u << 20;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

int FsyncFile(std::FILE* file) {
#ifdef _WIN32
  return _commit(_fileno(file));
#else
  return ::fsync(fileno(file));
#endif
}

/// Reads fixed-width little pieces out of a buffer with bounds checking.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool Has(size_t n) const { return size - pos >= n; }
  template <typename T>
  bool Get(T* out) {
    if (!Has(sizeof(T))) return false;
    std::memcpy(out, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
};

}  // namespace

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kNone:
      return "none";
    case FsyncMode::kBatch:
      return "batch";
    case FsyncMode::kAlways:
      return "always";
  }
  return "?";
}

Result<FsyncMode> ParseFsyncMode(const std::string& name) {
  if (name == "none") return FsyncMode::kNone;
  if (name == "batch") return FsyncMode::kBatch;
  if (name == "always") return FsyncMode::kAlways;
  return Status::InvalidArgument("unknown fsync mode '" + name +
                                 "' (expected none|batch|always)");
}

void EncodeRows(const std::vector<std::vector<Value>>& rows, std::string* out) {
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const std::vector<Value>& row : rows) {
    PutU32(out, static_cast<uint32_t>(row.size()));
    for (const Value& value : row) {
      if (value.is_null()) {
        out->push_back(0);
      } else if (value.is_int64()) {
        out->push_back(1);
        PutU64(out, static_cast<uint64_t>(value.int64()));
      } else if (value.is_double()) {
        out->push_back(2);
        uint64_t bits;
        const double d = value.dbl();
        std::memcpy(&bits, &d, sizeof bits);
        PutU64(out, bits);
      } else {
        out->push_back(3);
        const std::string& s = value.str();
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
      }
    }
  }
}

Status DecodeRows(const uint8_t* data, size_t size,
                  std::vector<std::vector<Value>>* rows) {
  Cursor cur{data, size};
  uint32_t num_rows = 0;
  if (!cur.Get(&num_rows)) {
    return Status::InvalidArgument("wal payload: truncated row count");
  }
  rows->clear();
  rows->reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t num_values = 0;
    if (!cur.Get(&num_values)) {
      return Status::InvalidArgument("wal payload: truncated value count");
    }
    std::vector<Value> row;
    row.reserve(num_values);
    for (uint32_t v = 0; v < num_values; ++v) {
      uint8_t tag = 0;
      if (!cur.Get(&tag)) {
        return Status::InvalidArgument("wal payload: truncated value tag");
      }
      switch (tag) {
        case 0:
          row.push_back(Value(Null{}));
          break;
        case 1: {
          uint64_t bits = 0;
          if (!cur.Get(&bits)) {
            return Status::InvalidArgument("wal payload: truncated int64");
          }
          row.push_back(Value(static_cast<int64_t>(bits)));
          break;
        }
        case 2: {
          uint64_t bits = 0;
          if (!cur.Get(&bits)) {
            return Status::InvalidArgument("wal payload: truncated double");
          }
          double d;
          std::memcpy(&d, &bits, sizeof d);
          row.push_back(Value(d));
          break;
        }
        case 3: {
          uint32_t len = 0;
          if (!cur.Get(&len) || !cur.Has(len)) {
            return Status::InvalidArgument("wal payload: truncated string");
          }
          row.push_back(Value(
              std::string(reinterpret_cast<const char*>(cur.data + cur.pos),
                          len)));
          cur.pos += len;
          break;
        }
        default:
          return Status::InvalidArgument("wal payload: unknown value tag " +
                                         std::to_string(tag));
      }
    }
    rows->push_back(std::move(row));
  }
  if (cur.pos != cur.size) {
    return Status::InvalidArgument("wal payload: trailing garbage");
  }
  return Status::OK();
}

Status ReplayWal(
    const std::string& path, uint64_t apply_after,
    const std::function<Status(uint64_t version,
                               std::vector<std::vector<Value>>&& rows)>& apply,
    WalReplayReport* report) {
  if (report != nullptr) *report = WalReplayReport{};
  std::error_code ec;
  if (!fs::exists(path, ec)) return Status::OK();  // empty log

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::Internal("wal: cannot open " + path + " for replay: " +
                            std::strerror(errno));
  }
  std::string buf;
  {
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
      buf.append(chunk, n);
    }
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error) {
      return Status::Internal("wal: read error replaying " + path);
    }
  }

  const uint8_t* data = reinterpret_cast<const uint8_t*>(buf.data());
  size_t pos = 0;
  uint64_t prev_version = 0;
  bool have_prev = false;
  uint64_t record_index = 0;
  bool torn = false;
  while (pos < buf.size()) {
    const size_t remaining = buf.size() - pos;
    if (remaining < kWalHeaderBytes) {
      torn = true;  // a header can only be partial if the write was cut off
      break;
    }
    uint32_t magic, payload_len, crc;
    uint64_t version;
    std::memcpy(&magic, data + pos, 4);
    std::memcpy(&payload_len, data + pos + 4, 4);
    std::memcpy(&version, data + pos + 8, 8);
    std::memcpy(&crc, data + pos + 16, 4);
    if (magic != kWalMagic) {
      return Status::Internal("wal: corrupt record header in " + path +
                              " at offset " + std::to_string(pos) +
                              ": bad magic");
    }
    if (payload_len > kMaxWalPayload) {
      return Status::Internal("wal: corrupt record header in " + path +
                              " at offset " + std::to_string(pos) +
                              ": implausible payload length " +
                              std::to_string(payload_len));
    }
    if (remaining - kWalHeaderBytes < payload_len) {
      torn = true;  // payload cut off mid-write
      break;
    }
    const uint8_t* payload = data + pos + kWalHeaderBytes;
    // Read-path fault site: the harness flips a stored bit to prove the
    // CRC rejects silent disk corruption. Mutates our private copy only.
    if (payload_len > 0 &&
        GBMQO_INJECT_FAULT(FaultSite::kDiskBitFlip, FaultKey(record_index))) {
      const_cast<uint8_t*>(payload)[0] ^= 0x10;
    }
    uint32_t actual = Crc32(&version, sizeof version);
    actual = Crc32(payload, payload_len, actual);
    if (actual != crc) {
      return Status::Internal("wal: CRC mismatch in " + path + " at offset " +
                              std::to_string(pos) + " (record version " +
                              std::to_string(version) + ")");
    }
    if (have_prev && version != prev_version + 1) {
      return Status::Internal("wal: non-contiguous versions in " + path +
                              ": record " + std::to_string(version) +
                              " follows " + std::to_string(prev_version));
    }
    prev_version = version;
    have_prev = true;
    ++record_index;
    if (report != nullptr) {
      ++report->records_seen;
      report->bytes_replayed = pos + kWalHeaderBytes + payload_len;
    }
    if (version > apply_after) {
      std::vector<std::vector<Value>> rows;
      GBMQO_RETURN_NOT_OK(DecodeRows(payload, payload_len, &rows));
      GBMQO_RETURN_NOT_OK(apply(version, std::move(rows)));
      if (report != nullptr) ++report->records_applied;
    }
    pos += kWalHeaderBytes + payload_len;
  }

  if (torn) {
    // Truncate-and-continue: drop the torn trailing record so the log ends
    // on a clean record boundary and future appends stay parseable.
    const uint64_t dropped = buf.size() - pos;
    fs::resize_file(path, pos, ec);
    if (ec) {
      return Status::Internal("wal: cannot truncate torn tail of " + path +
                              " to " + std::to_string(pos) + " bytes: " +
                              ec.message());
    }
    if (report != nullptr) {
      report->tail_truncated = true;
      report->tail_dropped_bytes = dropped;
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   FsyncMode mode,
                                                   StorageGovernor* governor) {
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  uint64_t existing = 0;
  if (fs::exists(path, ec)) existing = fs::file_size(path, ec);
  // "ab" would pin every write to EOF even after our recovery truncation on
  // some platforms; "r+b"/"wb" + explicit seeks keeps truncate semantics
  // exact.
  std::FILE* file = std::fopen(path.c_str(), existing > 0 ? "r+b" : "wb");
  if (file == nullptr) {
    return Status::Internal("wal: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("wal: cannot seek to end of " + path);
  }
  if (governor != nullptr && existing > 0) {
    governor->ForceReserveDisk(existing);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, mode, governor, file, existing));
}

WalWriter::WalWriter(std::string path, FsyncMode mode,
                     StorageGovernor* governor, std::FILE* file,
                     uint64_t existing_bytes)
    : path_(std::move(path)),
      mode_(mode),
      governor_(governor),
      file_(file),
      bytes_(existing_bytes),
      governor_held_(existing_bytes) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
  if (governor_ != nullptr && governor_held_ > 0) {
    governor_->ReleaseDisk(governor_held_);
  }
}

uint64_t WalWriter::DetachGovernorHold() {
  const uint64_t held = governor_held_;
  governor_held_ = 0;
  return held;
}

void WalWriter::RestoreTail(uint64_t offset) {
  // fflush first: buffered bytes past `offset` must not land after the
  // truncate and re-extend the file.
  std::fflush(file_);
  std::error_code ec;
  std::filesystem::resize_file(path_, offset, ec);
  if (ec) {
    // The log now ends in a torn record we cannot remove; replay would
    // handle it, but an appender must not write past garbage.
    broken_ = true;
    return;
  }
  std::fseek(file_, static_cast<long>(offset), SEEK_SET);
}

Status WalWriter::Append(uint64_t version,
                         const std::vector<std::vector<Value>>& rows) {
  if (broken_) {
    return Status::Internal("wal: writer for " + path_ +
                            " is broken after a failed write");
  }
  const uint64_t salt = FaultKey(version, append_seq_++);

  std::string record;
  record.reserve(kWalHeaderBytes + 64 * rows.size());
  std::string payload;
  EncodeRows(rows, &payload);
  uint32_t crc = Crc32(&version, sizeof version);
  crc = Crc32(payload.data(), payload.size(), crc);
  PutU32(&record, kWalMagic);
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU64(&record, version);
  PutU32(&record, crc);
  record += payload;

  const uint64_t start = bytes_;
  if (GBMQO_INJECT_FAULT(FaultSite::kDiskEnospc, salt)) {
    return Status::ResourceExhausted(
        "wal: no space left on device appending to " + path_ + " at offset " +
        std::to_string(start));
  }
  if (GBMQO_INJECT_FAULT(FaultSite::kDiskTornWrite, salt)) {
    // Crash simulation: a prefix of the record reaches the disk and the
    // "process" dies — the torn bytes stay for recovery to truncate.
    const size_t torn = record.size() / 2;
    std::fwrite(record.data(), 1, torn, file_);
    std::fflush(file_);
    broken_ = true;
    if (governor_ != nullptr) {
      governor_->ForceReserveDisk(torn);
      governor_held_ += torn;
    }
    return Status::Internal("wal: torn write (crash) appending to " + path_ +
                            " at offset " + std::to_string(start) + ": " +
                            std::to_string(torn) + " of " +
                            std::to_string(record.size()) + " bytes persisted");
  }

  size_t written;
  if (GBMQO_INJECT_FAULT(FaultSite::kDiskShortWrite, salt)) {
    written = std::fwrite(record.data(), 1, record.size() / 2, file_);
  } else {
    written = std::fwrite(record.data(), 1, record.size(), file_);
  }
  if (written != record.size()) {
    const bool enospc = errno == ENOSPC;
    RestoreTail(start);
    const std::string detail = "wal: short write to " + path_ + " at offset " +
                               std::to_string(start) + ": wrote " +
                               std::to_string(written) + " of " +
                               std::to_string(record.size()) + " bytes";
    return enospc ? Status::ResourceExhausted(detail + " (ENOSPC)")
                  : Status::Internal(detail);
  }

  const bool flush_failed = std::fflush(file_) != 0;
  const bool fsync_failed =
      mode_ == FsyncMode::kAlways && !flush_failed && FsyncFile(file_) != 0;
  if (flush_failed || fsync_failed ||
      (mode_ != FsyncMode::kNone &&
       GBMQO_INJECT_FAULT(FaultSite::kDiskFsync, salt))) {
    // The record may not be durable; treat it as not committed so the
    // caller never applies a batch the disk did not acknowledge.
    RestoreTail(start);
    return Status::Internal("wal: " +
                            std::string(flush_failed ? "flush" : "fsync") +
                            " failed for " + path_ + " after record at offset " +
                            std::to_string(start));
  }
  // kNone intentionally skips fflush-per-record; force the stream buffer
  // out anyway so bytes() matches the file for rotation bookkeeping — the
  // *fsync* is what kNone elides, not kernel visibility.
  if (mode_ == FsyncMode::kNone) std::fflush(file_);

  bytes_ += record.size();
  if (governor_ != nullptr) {
    governor_->ForceReserveDisk(record.size());
    governor_held_ += record.size();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (broken_) {
    return Status::Internal("wal: writer for " + path_ + " is broken");
  }
  if (std::fflush(file_) != 0 || FsyncFile(file_) != 0) {
    return Status::Internal("wal: fsync failed for " + path_);
  }
  return Status::OK();
}

}  // namespace gbmqo
