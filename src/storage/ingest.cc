#include "storage/ingest.h"

#include <utility>

namespace gbmqo {

Result<TablePtr> BuildDeltaTable(const Schema& schema,
                                 const std::vector<std::vector<Value>>& rows,
                                 const std::string& name) {
  TableBuilder builder(schema);
  for (size_t r = 0; r < rows.size(); ++r) {
    const std::vector<Value>& row = rows[r];
    if (static_cast<int>(row.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          "ingest row " + std::to_string(r) + " has " +
          std::to_string(row.size()) + " values, schema has " +
          std::to_string(schema.num_columns()) + " columns");
    }
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (row[static_cast<size_t>(c)].is_null() &&
          !schema.column(c).nullable) {
        return Status::InvalidArgument("ingest row " + std::to_string(r) +
                                       ": NULL in non-nullable column '" +
                                       schema.column(c).name + "'");
      }
    }
    GBMQO_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Build(name);
}

Result<TablePtr> AppendRows(const Table& base, const Table& delta,
                            std::string name) {
  if (delta.schema().num_columns() != base.schema().num_columns()) {
    return Status::InvalidArgument("delta schema arity does not match base");
  }
  for (int c = 0; c < base.schema().num_columns(); ++c) {
    if (delta.schema().column(c).type != base.schema().column(c).type) {
      return Status::InvalidArgument("delta column '" +
                                     delta.schema().column(c).name +
                                     "' type does not match base");
    }
  }
  TableBuilder builder(base.schema());
  for (int c = 0; c < base.schema().num_columns(); ++c) {
    Column* out = builder.column(c);
    out->Reserve(base.num_rows() + delta.num_rows());
    out->AppendRangeFrom(base.column(c), 0, base.num_rows());
    out->AppendRangeFrom(delta.column(c), 0, delta.num_rows());
  }
  Result<TablePtr> built = builder.Build(std::move(name));
  if (!built.ok()) return built.status();
  for (const auto& [key, index] : base.indexes()) {
    GBMQO_RETURN_NOT_OK((*built)->CreateIndex(key));
  }
  return built;
}

Result<IngestBatch> Ingestor::AppendBatch(
    const std::string& table, const std::vector<std::vector<Value>>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(table);
  const std::string current =
      it == families_.end() ? table : it->second.current_name;
  Result<TablePtr> base = catalog_->Get(current);
  if (!base.ok()) return base.status();

  Result<TablePtr> delta =
      BuildDeltaTable((*base)->schema(), rows, table + "@delta");
  if (!delta.ok()) return delta.status();

  const uint64_t next =
      (it == families_.end() ? 0 : it->second.version) + 1;
  const std::string next_name = table + "@v" + std::to_string(next);
  Result<TablePtr> appended = AppendRows(**base, **delta, next_name);
  if (!appended.ok()) return appended.status();
  GBMQO_RETURN_NOT_OK(catalog_->RegisterBase(*appended));
  catalog_->SetTableVersion(table, next);

  Family& family = families_[table];
  family.version = next;
  family.current_name = next_name;

  IngestBatch out;
  out.base = *std::move(appended);
  out.delta = *std::move(delta);
  out.version = next;
  return out;
}

uint64_t Ingestor::version(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(table);
  return it == families_.end() ? 0 : it->second.version;
}

Status Ingestor::SeedFamily(const std::string& table, uint64_t version,
                            const std::string& current_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(table);
  const uint64_t have = it == families_.end() ? 0 : it->second.version;
  if (version < have) {
    return Status::InvalidArgument(
        "SeedFamily would move '" + table + "' backwards: at version " +
        std::to_string(have) + ", asked for " + std::to_string(version));
  }
  if (!catalog_->Exists(current_name)) {
    return Status::NotFound("SeedFamily: '" + current_name +
                            "' is not registered in the catalog");
  }
  Family& family = families_[table];
  family.version = version;
  family.current_name = current_name;
  catalog_->SetTableVersion(table, version);
  return Status::OK();
}

std::string Ingestor::current_name(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(table);
  return it == families_.end() ? table : it->second.current_name;
}

}  // namespace gbmqo
