// Schema: the ordered column layout of a table, plus name <-> ordinal lookup
// and ColumnSet helpers used throughout the optimizer.
#ifndef GBMQO_STORAGE_SCHEMA_H_
#define GBMQO_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/column_set.h"
#include "common/status.h"
#include "storage/value.h"

namespace gbmqo {

/// One column declaration.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = false;
};

/// Ordered list of column definitions with name lookup. Schemas are small
/// value types; copying is fine.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int ordinal) const { return columns_.at(static_cast<size_t>(ordinal)); }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Ordinal of `name`, or -1 if absent. Case-sensitive (SQL identifiers in
  /// this engine are case-preserving, case-sensitive).
  int FindColumn(const std::string& name) const;

  /// Resolves a list of names to a ColumnSet; fails on unknown names or
  /// duplicates.
  Result<ColumnSet> ResolveColumns(const std::vector<std::string>& names) const;

  /// Names of the columns in `set`, in ordinal order.
  std::vector<std::string> ColumnNames(ColumnSet set) const;

  /// Projected schema containing only the columns in `set` (ordinal order).
  Schema Project(ColumnSet set) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace gbmqo

#endif  // GBMQO_STORAGE_SCHEMA_H_
