// OLAP-style analysis with the CUBE/ROLLUP extension (Section 7.1) and
// multiple aggregates (Section 7.2): sales revenue rolled up over partially
// overlapping dimension sets. With enable_cube/enable_rollup the optimizer
// may replace a shared intermediate with a CUBE or ROLLUP node when that is
// cheaper than separate Group By queries.
//
//   $ ./build/examples/olap_cube
#include <cstdio>

#include "core/gbmqo.h"
#include "data/sales_gen.h"

using namespace gbmqo;

int main() {
  TablePtr sales = GenerateSales({.rows = 200000});
  Catalog catalog;
  (void)catalog.RegisterBase(sales);

  // The analyst wants revenue (SUM of quantity) and order counts by:
  //   (region), (channel), (region, channel)  — a classic cube triangle —
  // plus (category) and (category, channel).
  const AggRequest count{};
  const AggRequest revenue{AggKind::kSum, kSalesQuantity};
  std::vector<GroupByRequest> requests = {
      {ColumnSet{kRegion}, {count, revenue}},
      {ColumnSet{kChannel}, {count, revenue}},
      {ColumnSet{kRegion, kChannel}, {count, revenue}},
      {ColumnSet{kCategory}, {count, revenue}},
      {ColumnSet{kCategory, kChannel}, {count, revenue}},
  };

  StatisticsManager stats(*sales);
  WhatIfProvider whatif(&stats);

  // Optimize twice: plain GB-MQO, and with the Section 7.1 extensions.
  OptimizerCostModel plain_model(*sales);
  auto plain = GbMqoOptimizer(&plain_model, &whatif).Optimize(requests);

  OptimizerCostModel ext_model(*sales);
  OptimizerOptions ext;
  ext.enable_cube = true;
  ext.enable_rollup = true;
  auto extended = GbMqoOptimizer(&ext_model, &whatif, ext).Optimize(requests);

  if (!plain.ok() || !extended.ok()) {
    std::fprintf(stderr, "optimization failed\n");
    return 1;
  }
  std::printf("plain GB-MQO plan    : %s  (cost %.0f)\n",
              plain->plan.ToString().c_str(), plain->cost);
  std::printf("with CUBE/ROLLUP     : %s  (cost %.0f)\n\n",
              extended->plan.ToString().c_str(), extended->cost);

  PlanExecutor executor(&catalog, "sales");
  auto exec = executor.Execute(extended->plan, requests);
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }

  // Region x channel revenue matrix.
  const TablePtr& rc = exec->results.at(ColumnSet{kRegion, kChannel});
  std::printf("revenue by (region, channel): %zu cells\n", rc->num_rows());
  for (size_t row = 0; row < rc->num_rows() && row < 8; ++row) {
    std::printf("  %-14s %-8s cnt=%-7lld revenue=%.0f\n",
                rc->column(0).StringAt(row).c_str(),
                rc->column(1).StringAt(row).c_str(),
                static_cast<long long>(rc->column(2).Int64At(row)),
                rc->column(3).NumericAt(row));
  }
  std::printf("  ... (%zu more)\n\n", rc->num_rows() > 8 ? rc->num_rows() - 8 : 0);

  const TablePtr& by_region = exec->results.at(ColumnSet{kRegion});
  std::printf("revenue by region:\n");
  for (size_t row = 0; row < by_region->num_rows(); ++row) {
    std::printf("  %-14s %12.0f\n", by_region->column(0).StringAt(row).c_str(),
                by_region->column(2).NumericAt(row));
  }
  std::printf("\nexecution: %.3fs, %.0f work units, peak temp %.2f MB\n",
              exec->wall_seconds, exec->counters.WorkUnits(),
              static_cast<double>(exec->peak_temp_bytes) / 1e6);
  return 0;
}
