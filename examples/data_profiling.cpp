// Data profiling: the paper's motivating scenario (Section 1). A data
// analyst checks the quality of a Customer relation by computing, for every
// column: the distinct-value count, NULL percentage, and value distribution
// — i.e. many single-column Group By queries — plus an "almost key" check
// on (last_name, first_name, mi, zip). GB-MQO executes the whole profile
// with shared intermediates.
//
//   $ ./build/examples/data_profiling
#include <cstdio>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/gbmqo.h"
#include "stats/histogram.h"

using namespace gbmqo;

namespace {

/// Customer(last_name, first_name, mi, gender, address, city, state, zip,
/// country) with deliberate data-quality problems: bogus state codes, NULL
/// middle initials, a country column that is not constant.
TablePtr MakeCustomers(size_t rows) {
  Schema schema({{"last_name", DataType::kString, false},
                 {"first_name", DataType::kString, false},
                 {"mi", DataType::kString, true},
                 {"gender", DataType::kString, true},
                 {"address", DataType::kString, false},
                 {"city", DataType::kString, false},
                 {"state", DataType::kString, false},
                 {"zip", DataType::kInt64, false},
                 {"country", DataType::kString, false}});
  TableBuilder b(schema);
  Rng rng(77);
  const char* genders[] = {"F", "M", "f", "m"};  // dirty: mixed case
  for (size_t i = 0; i < rows; ++i) {
    const uint64_t person = rng.Uniform(rows * 9 / 10);  // a few duplicates
    const uint64_t city = rng.Uniform(400);
    // Data-quality bug: ~1% of states are bogus codes beyond the 50 valid
    // ones (the paper's ">50 distinct states" red flag).
    const uint64_t state = rng.Bernoulli(0.01) ? 50 + rng.Uniform(30)
                                               : city % 50;
    b.column(0)->AppendString(StrFormat("Last%llu",
                                        static_cast<unsigned long long>(person % 5000)));
    b.column(1)->AppendString(StrFormat("First%llu",
                                        static_cast<unsigned long long>(person % 700)));
    if (rng.Bernoulli(0.35)) {
      b.column(2)->AppendNull();  // many missing middle initials
    } else {
      b.column(2)->AppendString(std::string(1, static_cast<char>('A' + person % 26)));
    }
    if (rng.Bernoulli(0.02)) {
      b.column(3)->AppendNull();
    } else {
      b.column(3)->AppendString(genders[rng.Uniform(4)]);
    }
    b.column(4)->AppendString(StrFormat("%llu Main St",
                                        static_cast<unsigned long long>(person)));
    b.column(5)->AppendString(StrFormat("City%llu",
                                        static_cast<unsigned long long>(city)));
    b.column(6)->AppendString(StrFormat("S%02llu",
                                        static_cast<unsigned long long>(state)));
    b.column(7)->AppendInt64(static_cast<int64_t>(10000 + city * 17 % 90000));
    b.column(8)->AppendString(rng.Bernoulli(0.002) ? "usa" : "USA");
  }
  return std::move(b.Build("customer")).ValueOrDie();
}

}  // namespace

int main() {
  const size_t kRows = 200000;
  TablePtr customer = MakeCustomers(kRows);
  Catalog catalog;
  (void)catalog.RegisterBase(customer);

  // Profile workload: every single-column distribution, plus the composite
  // "is (last_name, first_name, mi, zip) a key?" query.
  std::vector<int> all_cols;
  for (int c = 0; c < customer->schema().num_columns(); ++c) {
    all_cols.push_back(c);
  }
  std::vector<GroupByRequest> requests = SingleColumnRequests(all_cols);
  const ColumnSet candidate_key = ColumnSet{0, 1, 2, 7};
  requests.push_back(GroupByRequest::Count(candidate_key));

  StatisticsManager stats(*customer);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*customer);
  GbMqoOptimizer optimizer(&model, &whatif);
  auto opt = optimizer.Optimize(requests);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 1;
  }
  std::printf("profiling plan: %s\n", opt->plan.ToString().c_str());
  std::printf("estimated speedup over naive: %.2fx\n\n",
              opt->naive_cost / opt->cost);

  PlanExecutor executor(&catalog, "customer");
  auto exec = executor.Execute(opt->plan, requests);
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }

  std::printf("%-12s | %9s | %7s | note\n", "column", "distinct", "null%");
  for (int c = 0; c < customer->schema().num_columns(); ++c) {
    const TablePtr& dist = exec->results.at(ColumnSet::Single(c));
    const double null_pct =
        100.0 * static_cast<double>(customer->column(c).null_count()) /
        static_cast<double>(kRows);
    std::string note;
    if (customer->schema().column(c).name == "state" &&
        dist->num_rows() > 50) {
      note = "<-- more than 50 states: data-quality problem!";
    }
    if (customer->schema().column(c).name == "gender" &&
        dist->num_rows() > 2) {
      note = "<-- mixed-case gender codes";
    }
    std::printf("%-12s | %9zu | %6.1f%% | %s\n",
                customer->schema().column(c).name.c_str(), dist->num_rows(),
                null_pct, note.c_str());
  }

  const TablePtr& key = exec->results.at(candidate_key);
  std::printf("\n(last_name, first_name, mi, zip): %zu groups over %zu rows "
              "-> %s\n",
              key->num_rows(), kRows,
              key->num_rows() == kRows
                  ? "exact key"
                  : StrFormat("almost a key (%.2f%% duplicated)",
                              100.0 * (1.0 - static_cast<double>(key->num_rows()) /
                                                 static_cast<double>(kRows)))
                        .c_str());

  // Value-distribution drill-down with the statistics module's histograms.
  auto zip_hist = Histogram::Build(*customer, 7, 8);
  if (zip_hist.ok()) {
    std::printf("\nzip histogram:\n%s", zip_hist->ToString().c_str());
  }
  return 0;
}
