// Quickstart: optimize and execute a set of Group By queries over one
// relation with GB-MQO, and compare against the naive plan.
//
//   $ ./build/examples/quickstart
//
// Walks the full public API: generate data, register it in a Catalog,
// create statistics, optimize, inspect the plan, execute, read results.
#include <cstdio>

#include "core/gbmqo.h"
#include "data/tpch_gen.h"

using namespace gbmqo;

int main() {
  // 1. A relation. Any TablePtr works; here we synthesize a 100k-row TPC-H
  //    lineitem (see src/data/tpch_gen.h).
  TablePtr lineitem = GenerateLineitem({.rows = 100000});
  Catalog catalog;
  if (Status s = catalog.RegisterBase(lineitem); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 2. The workload: one COUNT(*) Group By query per analysis column — the
  //    paper's "SC" data-profiling scenario.
  std::vector<GroupByRequest> requests =
      SingleColumnRequests(LineitemAnalysisColumns());

  // 3. Statistics + cost model + optimizer. StatisticsManager lazily
  //    creates distinct-count statistics; WhatIfProvider turns them into
  //    hypothetical table descriptors; OptimizerCostModel prices queries.
  StatisticsManager stats(*lineitem);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*lineitem);
  GbMqoOptimizer optimizer(&model, &whatif);

  Result<OptimizerResult> opt = optimizer.Optimize(requests);
  if (!opt.ok()) {
    std::fprintf(stderr, "optimize: %s\n", opt.status().ToString().c_str());
    return 1;
  }
  std::printf("naive cost     : %.0f\n", opt->naive_cost);
  std::printf("optimized cost : %.0f (estimated %.2fx)\n", opt->cost,
              opt->naive_cost / opt->cost);
  std::printf("plan           : %s\n\n", opt->plan.ToString().c_str());

  // 4. Execute both plans on the engine and compare measured work.
  PlanExecutor executor(&catalog, lineitem->name());
  Result<ExecutionResult> naive =
      executor.Execute(NaivePlan(requests), requests);
  Result<ExecutionResult> ours = executor.Execute(opt->plan, requests);
  if (!naive.ok() || !ours.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("naive    : %.3fs, %.0f work units\n", naive->wall_seconds,
              naive->counters.WorkUnits());
  std::printf("optimized: %.3fs, %.0f work units (%.2fx)\n",
              ours->wall_seconds, ours->counters.WorkUnits(),
              naive->counters.WorkUnits() / ours->counters.WorkUnits());
  std::printf("peak temp storage: %.2f MB\n\n",
              static_cast<double>(ours->peak_temp_bytes) / 1e6);

  // 5. Results: one table per request — here, the value distribution of
  //    l_returnflag.
  const TablePtr& flags = ours->results.at(ColumnSet::Single(kReturnflag));
  std::printf("l_returnflag distribution:\n");
  for (size_t row = 0; row < flags->num_rows(); ++row) {
    std::printf("  %-4s %lld\n", flags->column(0).StringAt(row).c_str(),
                static_cast<long long>(flags->column(1).Int64At(row)));
  }
  return 0;
}
