// Client-side SQL generation (Section 5.2): parse a GROUPING SETS
// specification, optimize it, and emit the SQL script a client application
// would run against a commercial DBMS that lacks an optimized GROUPING SETS
// implementation — SELECT INTO temp tables, SUM(cnt) re-aggregation, DROPs
// in the storage-minimizing order.
//
//   $ ./build/examples/sql_codegen
//   $ ./build/examples/sql_codegen "SINGLE(l_returnflag, l_linestatus)"
//   $ ./build/examples/sql_codegen "(l_shipdate), (l_commitdate), (l_shipdate, l_commitdate)"
#include <cstdio>
#include <string>

#include "core/gbmqo.h"
#include "data/tpch_gen.h"
#include "sql/grouping_sets_parser.h"

using namespace gbmqo;

int main(int argc, char** argv) {
  const std::string spec =
      argc > 1 ? argv[1]
               : "SINGLE(l_quantity, l_returnflag, l_linestatus, l_shipdate, "
                 "l_commitdate, l_receiptdate, l_shipmode)";

  // A small lineitem sample provides the statistics the optimizer needs.
  TablePtr lineitem = GenerateLineitem({.rows = 50000});

  auto requests = ParseGroupingSets(spec, lineitem->schema());
  if (!requests.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 requests.status().ToString().c_str());
    return 1;
  }

  SqlGenerator gen("lineitem", lineitem->schema());
  std::printf("-- input (what you would send to a DBMS with native support):\n");
  std::printf("-- %s\n\n", gen.GroupingSetsSql(*requests).c_str());

  StatisticsManager stats(*lineitem);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*lineitem);
  GbMqoOptimizer optimizer(&model, &whatif);
  auto opt = optimizer.Optimize(*requests);
  if (!opt.ok()) {
    std::fprintf(stderr, "optimize: %s\n", opt.status().ToString().c_str());
    return 1;
  }

  std::printf("-- GB-MQO plan: %s\n", opt->plan.ToString().c_str());
  std::printf("-- estimated cost %.0f vs naive %.0f (%.2fx)\n\n", opt->cost,
              opt->naive_cost, opt->naive_cost / opt->cost);

  auto statements = gen.Generate(opt->plan);
  if (!statements.ok()) {
    std::fprintf(stderr, "%s\n", statements.status().ToString().c_str());
    return 1;
  }
  std::printf("-- client-side script (Section 5.2):\n");
  for (const SqlStatement& stmt : *statements) {
    std::printf("%s\n", stmt.text.c_str());
  }
  return 0;
}
