// GROUPING SETS over a join (Section 5.1.1 / Figure 8): analyze order-line
// facts joined with their product dimension, pushing the Group By
// computation below the join and sharing the pushed Group Bys with GB-MQO.
//
//   $ ./build/examples/join_grouping_sets
#include <cstdio>

#include "common/rng.h"
#include "core/join_pushdown.h"

using namespace gbmqo;

int main() {
  // Fact table: order lines with a product key and measures.
  TableBuilder fact(Schema({{"product_id", DataType::kInt64, false},
                            {"store_id", DataType::kInt64, false},
                            {"quantity", DataType::kInt64, false},
                            {"channel", DataType::kString, false}}));
  Rng rng(2024);
  const char* channels[] = {"web", "store", "phone"};
  for (int i = 0; i < 300000; ++i) {
    (void)fact.AppendRow({Value(static_cast<int64_t>(rng.Uniform(100))),
                          Value(static_cast<int64_t>(rng.Uniform(60))),
                          Value(static_cast<int64_t>(rng.Uniform(12)) + 1),
                          Value(channels[rng.Uniform(3)])});
  }
  // Dimension: one row per product (only in-catalog products join).
  TableBuilder dim(Schema({{"product_id", DataType::kInt64, false},
                           {"active", DataType::kInt64, false}}));
  for (int64_t p = 0; p < 90; ++p) {
    (void)dim.AppendRow({Value(p), Value(p % 2)});
  }

  Catalog catalog;
  (void)catalog.RegisterBase(*fact.Build("order_lines"));
  (void)catalog.RegisterBase(*dim.Build("products"));

  JoinGroupingSetsQuery q;
  q.left_table = "order_lines";
  q.right_table = "products";
  q.left_join_col = 0;   // product_id
  q.right_join_col = 0;  // product_id
  // Only active products (a selection on the dimension, pushed below).
  q.right_filter.And({1, CompareOp::kEq, Value(1)});
  // Distribution of joined order lines by store, by channel, and by the
  // pair — with total quantity.
  const AggRequest count{};
  const AggRequest qty{AggKind::kSum, 2};
  q.requests = {{ColumnSet{1}, {count, qty}},
                {ColumnSet{3}, {count, qty}},
                {ColumnSet{1, 3}, {count, qty}}};

  JoinGroupingSetsExecutor executor(&catalog);
  auto join_first = executor.ExecuteJoinFirst(q);
  auto pushed = executor.ExecutePushdown(q, PushdownMode::kGbMqo);
  if (!join_first.ok() || !pushed.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("join-first : %.3fs (%.0f work units)\n",
              join_first->wall_seconds, join_first->counters.WorkUnits());
  std::printf("pushdown   : %.3fs (%.0f work units)  -> %.2fx\n\n",
              pushed->wall_seconds, pushed->counters.WorkUnits(),
              join_first->counters.WorkUnits() /
                  pushed->counters.WorkUnits());

  const TablePtr& by_channel = pushed->results.at(ColumnSet{3});
  std::printf("active-product order lines by channel:\n");
  for (size_t row = 0; row < by_channel->num_rows(); ++row) {
    std::printf("  %-7s lines=%-8lld total_qty=%.0f\n",
                by_channel->column(0).StringAt(row).c_str(),
                static_cast<long long>(by_channel->column(1).Int64At(row)),
                by_channel->column(2).NumericAt(row));
  }
  return 0;
}
