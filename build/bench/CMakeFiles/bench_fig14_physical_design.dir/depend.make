# Empty dependencies file for bench_fig14_physical_design.
# This may be replaced when dependencies are built.
