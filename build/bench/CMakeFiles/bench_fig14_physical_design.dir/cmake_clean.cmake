file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_physical_design.dir/bench_fig14_physical_design.cc.o"
  "CMakeFiles/bench_fig14_physical_design.dir/bench_fig14_physical_design.cc.o.d"
  "bench_fig14_physical_design"
  "bench_fig14_physical_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_physical_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
