# Empty dependencies file for bench_sec511_join_pushdown.
# This may be replaced when dependencies are built.
