file(REMOVE_RECURSE
  "CMakeFiles/bench_sec511_join_pushdown.dir/bench_sec511_join_pushdown.cc.o"
  "CMakeFiles/bench_sec511_join_pushdown.dir/bench_sec511_join_pushdown.cc.o.d"
  "bench_sec511_join_pushdown"
  "bench_sec511_join_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec511_join_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
