# Empty compiler generated dependencies file for bench_fig_binary_tree.
# This may be replaced when dependencies are built.
