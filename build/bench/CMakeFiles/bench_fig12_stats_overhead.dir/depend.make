# Empty dependencies file for bench_fig12_stats_overhead.
# This may be replaced when dependencies are built.
