file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stats_overhead.dir/bench_fig12_stats_overhead.cc.o"
  "CMakeFiles/bench_fig12_stats_overhead.dir/bench_fig12_stats_overhead.cc.o.d"
  "bench_fig12_stats_overhead"
  "bench_fig12_stats_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stats_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
