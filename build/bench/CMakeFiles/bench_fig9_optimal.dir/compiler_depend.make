# Empty compiler generated dependencies file for bench_fig9_optimal.
# This may be replaced when dependencies are built.
