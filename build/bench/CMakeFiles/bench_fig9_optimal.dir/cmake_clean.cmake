file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_optimal.dir/bench_fig9_optimal.cc.o"
  "CMakeFiles/bench_fig9_optimal.dir/bench_fig9_optimal.cc.o.d"
  "bench_fig9_optimal"
  "bench_fig9_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
