# Empty compiler generated dependencies file for bench_table2_grouping_sets.
# This may be replaced when dependencies are built.
