# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_explain "/root/repo/build/tools/gbmqo_cli" "--gen" "tpch" "--rows" "5000" "--spec" "SINGLE(l_returnflag, l_shipmode)" "explain")
set_tests_properties(cli_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/gbmqo_cli" "--gen" "sales" "--rows" "5000" "--spec" "PAIRS(region, channel, payment_type)" "run" "--naive")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sql "/root/repo/build/tools/gbmqo_cli" "--gen" "nref" "--rows" "5000" "--spec" "SINGLE(db_source, score)" "sql")
set_tests_properties(cli_sql PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/gbmqo_cli" "--gen" "tpch" "--rows" "5000" "profile")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_args "/root/repo/build/tools/gbmqo_cli" "--nonsense")
set_tests_properties(cli_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
