# Empty compiler generated dependencies file for gbmqo_cli.
# This may be replaced when dependencies are built.
