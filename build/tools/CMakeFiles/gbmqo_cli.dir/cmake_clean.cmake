file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_cli.dir/gbmqo_cli.cc.o"
  "CMakeFiles/gbmqo_cli.dir/gbmqo_cli.cc.o.d"
  "gbmqo_cli"
  "gbmqo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
