file(REMOVE_RECURSE
  "libgbmqo_cost.a"
)
