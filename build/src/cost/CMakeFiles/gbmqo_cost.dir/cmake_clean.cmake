file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_cost.dir/optimizer_cost_model.cc.o"
  "CMakeFiles/gbmqo_cost.dir/optimizer_cost_model.cc.o.d"
  "libgbmqo_cost.a"
  "libgbmqo_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
