# Empty compiler generated dependencies file for gbmqo_cost.
# This may be replaced when dependencies are built.
