# Empty compiler generated dependencies file for gbmqo_stats.
# This may be replaced when dependencies are built.
