file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_stats.dir/distinct_estimator.cc.o"
  "CMakeFiles/gbmqo_stats.dir/distinct_estimator.cc.o.d"
  "CMakeFiles/gbmqo_stats.dir/histogram.cc.o"
  "CMakeFiles/gbmqo_stats.dir/histogram.cc.o.d"
  "CMakeFiles/gbmqo_stats.dir/statistics_manager.cc.o"
  "CMakeFiles/gbmqo_stats.dir/statistics_manager.cc.o.d"
  "libgbmqo_stats.a"
  "libgbmqo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
