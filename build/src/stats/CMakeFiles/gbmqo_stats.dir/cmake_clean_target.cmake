file(REMOVE_RECURSE
  "libgbmqo_stats.a"
)
