# Empty compiler generated dependencies file for gbmqo_common.
# This may be replaced when dependencies are built.
