file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_common.dir/str_util.cc.o"
  "CMakeFiles/gbmqo_common.dir/str_util.cc.o.d"
  "CMakeFiles/gbmqo_common.dir/zipf.cc.o"
  "CMakeFiles/gbmqo_common.dir/zipf.cc.o.d"
  "libgbmqo_common.a"
  "libgbmqo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
