file(REMOVE_RECURSE
  "libgbmqo_common.a"
)
