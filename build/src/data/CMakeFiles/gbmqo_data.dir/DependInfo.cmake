
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/gbmqo_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/gbmqo_data.dir/csv.cc.o.d"
  "/root/repo/src/data/nref_gen.cc" "src/data/CMakeFiles/gbmqo_data.dir/nref_gen.cc.o" "gcc" "src/data/CMakeFiles/gbmqo_data.dir/nref_gen.cc.o.d"
  "/root/repo/src/data/sales_gen.cc" "src/data/CMakeFiles/gbmqo_data.dir/sales_gen.cc.o" "gcc" "src/data/CMakeFiles/gbmqo_data.dir/sales_gen.cc.o.d"
  "/root/repo/src/data/tpch_gen.cc" "src/data/CMakeFiles/gbmqo_data.dir/tpch_gen.cc.o" "gcc" "src/data/CMakeFiles/gbmqo_data.dir/tpch_gen.cc.o.d"
  "/root/repo/src/data/widen.cc" "src/data/CMakeFiles/gbmqo_data.dir/widen.cc.o" "gcc" "src/data/CMakeFiles/gbmqo_data.dir/widen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/gbmqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gbmqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
