file(REMOVE_RECURSE
  "libgbmqo_data.a"
)
