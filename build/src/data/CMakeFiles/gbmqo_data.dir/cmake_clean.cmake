file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_data.dir/csv.cc.o"
  "CMakeFiles/gbmqo_data.dir/csv.cc.o.d"
  "CMakeFiles/gbmqo_data.dir/nref_gen.cc.o"
  "CMakeFiles/gbmqo_data.dir/nref_gen.cc.o.d"
  "CMakeFiles/gbmqo_data.dir/sales_gen.cc.o"
  "CMakeFiles/gbmqo_data.dir/sales_gen.cc.o.d"
  "CMakeFiles/gbmqo_data.dir/tpch_gen.cc.o"
  "CMakeFiles/gbmqo_data.dir/tpch_gen.cc.o.d"
  "CMakeFiles/gbmqo_data.dir/widen.cc.o"
  "CMakeFiles/gbmqo_data.dir/widen.cc.o.d"
  "libgbmqo_data.a"
  "libgbmqo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
