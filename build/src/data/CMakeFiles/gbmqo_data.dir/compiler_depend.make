# Empty compiler generated dependencies file for gbmqo_data.
# This may be replaced when dependencies are built.
