
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/group_hash_table.cc" "src/exec/CMakeFiles/gbmqo_exec.dir/group_hash_table.cc.o" "gcc" "src/exec/CMakeFiles/gbmqo_exec.dir/group_hash_table.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/exec/CMakeFiles/gbmqo_exec.dir/hash_join.cc.o" "gcc" "src/exec/CMakeFiles/gbmqo_exec.dir/hash_join.cc.o.d"
  "/root/repo/src/exec/predicate.cc" "src/exec/CMakeFiles/gbmqo_exec.dir/predicate.cc.o" "gcc" "src/exec/CMakeFiles/gbmqo_exec.dir/predicate.cc.o.d"
  "/root/repo/src/exec/query_executor.cc" "src/exec/CMakeFiles/gbmqo_exec.dir/query_executor.cc.o" "gcc" "src/exec/CMakeFiles/gbmqo_exec.dir/query_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/gbmqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gbmqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
