file(REMOVE_RECURSE
  "libgbmqo_exec.a"
)
