file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_exec.dir/group_hash_table.cc.o"
  "CMakeFiles/gbmqo_exec.dir/group_hash_table.cc.o.d"
  "CMakeFiles/gbmqo_exec.dir/hash_join.cc.o"
  "CMakeFiles/gbmqo_exec.dir/hash_join.cc.o.d"
  "CMakeFiles/gbmqo_exec.dir/predicate.cc.o"
  "CMakeFiles/gbmqo_exec.dir/predicate.cc.o.d"
  "CMakeFiles/gbmqo_exec.dir/query_executor.cc.o"
  "CMakeFiles/gbmqo_exec.dir/query_executor.cc.o.d"
  "libgbmqo_exec.a"
  "libgbmqo_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
