# Empty dependencies file for gbmqo_exec.
# This may be replaced when dependencies are built.
