file(REMOVE_RECURSE
  "libgbmqo_storage.a"
)
