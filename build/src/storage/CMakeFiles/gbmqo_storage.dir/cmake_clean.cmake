file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_storage.dir/catalog.cc.o"
  "CMakeFiles/gbmqo_storage.dir/catalog.cc.o.d"
  "CMakeFiles/gbmqo_storage.dir/column.cc.o"
  "CMakeFiles/gbmqo_storage.dir/column.cc.o.d"
  "CMakeFiles/gbmqo_storage.dir/schema.cc.o"
  "CMakeFiles/gbmqo_storage.dir/schema.cc.o.d"
  "CMakeFiles/gbmqo_storage.dir/table.cc.o"
  "CMakeFiles/gbmqo_storage.dir/table.cc.o.d"
  "libgbmqo_storage.a"
  "libgbmqo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
