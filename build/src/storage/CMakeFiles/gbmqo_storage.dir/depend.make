# Empty dependencies file for gbmqo_storage.
# This may be replaced when dependencies are built.
