file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_sql.dir/grouping_sets_parser.cc.o"
  "CMakeFiles/gbmqo_sql.dir/grouping_sets_parser.cc.o.d"
  "libgbmqo_sql.a"
  "libgbmqo_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
