file(REMOVE_RECURSE
  "libgbmqo_sql.a"
)
