# Empty dependencies file for gbmqo_sql.
# This may be replaced when dependencies are built.
