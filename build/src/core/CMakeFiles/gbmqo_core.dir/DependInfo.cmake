
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exhaustive.cc" "src/core/CMakeFiles/gbmqo_core.dir/exhaustive.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/exhaustive.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/gbmqo_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/explain.cc.o.d"
  "/root/repo/src/core/grouping_sets_planner.cc" "src/core/CMakeFiles/gbmqo_core.dir/grouping_sets_planner.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/grouping_sets_planner.cc.o.d"
  "/root/repo/src/core/join_pushdown.cc" "src/core/CMakeFiles/gbmqo_core.dir/join_pushdown.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/join_pushdown.cc.o.d"
  "/root/repo/src/core/logical_plan.cc" "src/core/CMakeFiles/gbmqo_core.dir/logical_plan.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/logical_plan.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/gbmqo_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/plan_executor.cc" "src/core/CMakeFiles/gbmqo_core.dir/plan_executor.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/plan_executor.cc.o.d"
  "/root/repo/src/core/request.cc" "src/core/CMakeFiles/gbmqo_core.dir/request.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/request.cc.o.d"
  "/root/repo/src/core/sql_generator.cc" "src/core/CMakeFiles/gbmqo_core.dir/sql_generator.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/sql_generator.cc.o.d"
  "/root/repo/src/core/storage_scheduler.cc" "src/core/CMakeFiles/gbmqo_core.dir/storage_scheduler.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/storage_scheduler.cc.o.d"
  "/root/repo/src/core/subplan_merge.cc" "src/core/CMakeFiles/gbmqo_core.dir/subplan_merge.cc.o" "gcc" "src/core/CMakeFiles/gbmqo_core.dir/subplan_merge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/gbmqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gbmqo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gbmqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gbmqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gbmqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
