file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_core.dir/exhaustive.cc.o"
  "CMakeFiles/gbmqo_core.dir/exhaustive.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/explain.cc.o"
  "CMakeFiles/gbmqo_core.dir/explain.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/grouping_sets_planner.cc.o"
  "CMakeFiles/gbmqo_core.dir/grouping_sets_planner.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/join_pushdown.cc.o"
  "CMakeFiles/gbmqo_core.dir/join_pushdown.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/logical_plan.cc.o"
  "CMakeFiles/gbmqo_core.dir/logical_plan.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/optimizer.cc.o"
  "CMakeFiles/gbmqo_core.dir/optimizer.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/plan_executor.cc.o"
  "CMakeFiles/gbmqo_core.dir/plan_executor.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/request.cc.o"
  "CMakeFiles/gbmqo_core.dir/request.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/sql_generator.cc.o"
  "CMakeFiles/gbmqo_core.dir/sql_generator.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/storage_scheduler.cc.o"
  "CMakeFiles/gbmqo_core.dir/storage_scheduler.cc.o.d"
  "CMakeFiles/gbmqo_core.dir/subplan_merge.cc.o"
  "CMakeFiles/gbmqo_core.dir/subplan_merge.cc.o.d"
  "libgbmqo_core.a"
  "libgbmqo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
