file(REMOVE_RECURSE
  "libgbmqo_core.a"
)
