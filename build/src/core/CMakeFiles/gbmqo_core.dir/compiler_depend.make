# Empty compiler generated dependencies file for gbmqo_core.
# This may be replaced when dependencies are built.
