file(REMOVE_RECURSE
  "libgbmqo_api.a"
)
