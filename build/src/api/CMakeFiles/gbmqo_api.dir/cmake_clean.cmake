file(REMOVE_RECURSE
  "CMakeFiles/gbmqo_api.dir/session.cc.o"
  "CMakeFiles/gbmqo_api.dir/session.cc.o.d"
  "libgbmqo_api.a"
  "libgbmqo_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbmqo_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
