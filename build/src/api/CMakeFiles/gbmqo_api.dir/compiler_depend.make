# Empty compiler generated dependencies file for gbmqo_api.
# This may be replaced when dependencies are built.
