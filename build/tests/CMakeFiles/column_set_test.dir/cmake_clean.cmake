file(REMOVE_RECURSE
  "CMakeFiles/column_set_test.dir/column_set_test.cc.o"
  "CMakeFiles/column_set_test.dir/column_set_test.cc.o.d"
  "column_set_test"
  "column_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
