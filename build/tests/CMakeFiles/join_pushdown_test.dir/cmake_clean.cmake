file(REMOVE_RECURSE
  "CMakeFiles/join_pushdown_test.dir/join_pushdown_test.cc.o"
  "CMakeFiles/join_pushdown_test.dir/join_pushdown_test.cc.o.d"
  "join_pushdown_test"
  "join_pushdown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
