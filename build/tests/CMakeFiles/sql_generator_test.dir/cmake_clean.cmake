file(REMOVE_RECURSE
  "CMakeFiles/sql_generator_test.dir/sql_generator_test.cc.o"
  "CMakeFiles/sql_generator_test.dir/sql_generator_test.cc.o.d"
  "sql_generator_test"
  "sql_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
