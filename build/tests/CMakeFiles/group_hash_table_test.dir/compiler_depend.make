# Empty compiler generated dependencies file for group_hash_table_test.
# This may be replaced when dependencies are built.
