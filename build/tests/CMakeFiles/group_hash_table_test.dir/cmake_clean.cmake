file(REMOVE_RECURSE
  "CMakeFiles/group_hash_table_test.dir/group_hash_table_test.cc.o"
  "CMakeFiles/group_hash_table_test.dir/group_hash_table_test.cc.o.d"
  "group_hash_table_test"
  "group_hash_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_hash_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
