file(REMOVE_RECURSE
  "CMakeFiles/scan_mode_test.dir/scan_mode_test.cc.o"
  "CMakeFiles/scan_mode_test.dir/scan_mode_test.cc.o.d"
  "scan_mode_test"
  "scan_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
