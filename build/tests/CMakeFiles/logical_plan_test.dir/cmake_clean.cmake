file(REMOVE_RECURSE
  "CMakeFiles/logical_plan_test.dir/logical_plan_test.cc.o"
  "CMakeFiles/logical_plan_test.dir/logical_plan_test.cc.o.d"
  "logical_plan_test"
  "logical_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
