file(REMOVE_RECURSE
  "CMakeFiles/storage_scheduler_test.dir/storage_scheduler_test.cc.o"
  "CMakeFiles/storage_scheduler_test.dir/storage_scheduler_test.cc.o.d"
  "storage_scheduler_test"
  "storage_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
