# Empty dependencies file for storage_scheduler_test.
# This may be replaced when dependencies are built.
