file(REMOVE_RECURSE
  "CMakeFiles/multi_copy_test.dir/multi_copy_test.cc.o"
  "CMakeFiles/multi_copy_test.dir/multi_copy_test.cc.o.d"
  "multi_copy_test"
  "multi_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
