
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multi_copy_test.cc" "tests/CMakeFiles/multi_copy_test.dir/multi_copy_test.cc.o" "gcc" "tests/CMakeFiles/multi_copy_test.dir/multi_copy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gbmqo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gbmqo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/gbmqo_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gbmqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gbmqo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gbmqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gbmqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
