# Empty compiler generated dependencies file for hardness_reduction_test.
# This may be replaced when dependencies are built.
