file(REMOVE_RECURSE
  "CMakeFiles/hardness_reduction_test.dir/hardness_reduction_test.cc.o"
  "CMakeFiles/hardness_reduction_test.dir/hardness_reduction_test.cc.o.d"
  "hardness_reduction_test"
  "hardness_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardness_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
