file(REMOVE_RECURSE
  "CMakeFiles/executor_storage_test.dir/executor_storage_test.cc.o"
  "CMakeFiles/executor_storage_test.dir/executor_storage_test.cc.o.d"
  "executor_storage_test"
  "executor_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
