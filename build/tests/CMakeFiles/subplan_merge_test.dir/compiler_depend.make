# Empty compiler generated dependencies file for subplan_merge_test.
# This may be replaced when dependencies are built.
