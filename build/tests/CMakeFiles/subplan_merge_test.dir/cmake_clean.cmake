file(REMOVE_RECURSE
  "CMakeFiles/subplan_merge_test.dir/subplan_merge_test.cc.o"
  "CMakeFiles/subplan_merge_test.dir/subplan_merge_test.cc.o.d"
  "subplan_merge_test"
  "subplan_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subplan_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
