file(REMOVE_RECURSE
  "CMakeFiles/grouping_sets_planner_test.dir/grouping_sets_planner_test.cc.o"
  "CMakeFiles/grouping_sets_planner_test.dir/grouping_sets_planner_test.cc.o.d"
  "grouping_sets_planner_test"
  "grouping_sets_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouping_sets_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
