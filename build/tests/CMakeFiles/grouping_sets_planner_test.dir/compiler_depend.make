# Empty compiler generated dependencies file for grouping_sets_planner_test.
# This may be replaced when dependencies are built.
