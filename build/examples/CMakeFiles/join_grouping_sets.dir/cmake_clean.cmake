file(REMOVE_RECURSE
  "CMakeFiles/join_grouping_sets.dir/join_grouping_sets.cpp.o"
  "CMakeFiles/join_grouping_sets.dir/join_grouping_sets.cpp.o.d"
  "join_grouping_sets"
  "join_grouping_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_grouping_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
