# Empty dependencies file for join_grouping_sets.
# This may be replaced when dependencies are built.
