# Empty dependencies file for sql_codegen.
# This may be replaced when dependencies are built.
