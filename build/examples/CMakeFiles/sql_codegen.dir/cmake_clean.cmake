file(REMOVE_RECURSE
  "CMakeFiles/sql_codegen.dir/sql_codegen.cpp.o"
  "CMakeFiles/sql_codegen.dir/sql_codegen.cpp.o.d"
  "sql_codegen"
  "sql_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
