file(REMOVE_RECURSE
  "CMakeFiles/data_profiling.dir/data_profiling.cpp.o"
  "CMakeFiles/data_profiling.dir/data_profiling.cpp.o.d"
  "data_profiling"
  "data_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
