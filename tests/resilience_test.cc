// Execution resilience: deterministic fault injection, the task-retry
// degradation ladder (fused -> per-query, temp -> base recompute, memory
// pressure -> serialized multi-word kernel), cooperative cancellation and
// deadlines, and the no-leaked-temp-tables invariant on every failure path.
//
// The differential core: for any fault seed, a run that recovers must
// produce the same result *content* as the fault-free run (degraded rungs
// may reorder result rows — from-base recompute changes first-occurrence
// order — so content is compared canonically sorted; all aggregates here
// are int64 COUNTs, so values are exact), the Catalog must end with zero
// temp bytes whether the run recovered or not, and tasks_retried /
// tasks_degraded must be pure functions of (plan, seed), independent of
// the worker count.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/fault_injector.h"
#include "core/gbmqo.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

PlanNode Leaf(ColumnSet cols) {
  PlanNode n;
  n.columns = cols;
  n.required = true;
  return n;
}

struct Fixture {
  explicit Fixture(size_t rows = 8000)
      : table(GenerateLineitem({.rows = rows, .seed = 12})) {
    EXPECT_TRUE(catalog.RegisterBase(table).ok());
  }
  TablePtr table;
  Catalog catalog;
};

/// Result content per request, canonically sorted: one "v1|v2|..." string
/// per row, rows sorted. Degraded recovery rungs may permute result rows,
/// so equality is on content, not order.
std::map<ColumnSet, std::vector<std::string>> CanonicalResults(
    const ExecutionResult& r) {
  std::map<ColumnSet, std::vector<std::string>> out;
  for (const auto& [cols, table] : r.results) {
    std::vector<std::string> rows;
    rows.reserve(table->num_rows());
    for (size_t row = 0; row < table->num_rows(); ++row) {
      std::string s;
      for (int c = 0; c < table->schema().num_columns(); ++c) {
        s += table->column(c).ValueAt(row).ToString();
        s += '|';
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    out[cols] = std::move(rows);
  }
  return out;
}

/// Field-by-field counter equality, including the resilience counters.
void ExpectSameCounters(const WorkCounters& a, const WorkCounters& b) {
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
  EXPECT_EQ(a.rows_emitted, b.rows_emitted);
  EXPECT_EQ(a.bytes_materialized, b.bytes_materialized);
  EXPECT_EQ(a.hash_probes, b.hash_probes);
  EXPECT_EQ(a.rows_sorted, b.rows_sorted);
  EXPECT_EQ(a.queries_executed, b.queries_executed);
  EXPECT_EQ(a.dense_kernel_rows, b.dense_kernel_rows);
  EXPECT_EQ(a.packed_kernel_rows, b.packed_kernel_rows);
  EXPECT_EQ(a.multiword_kernel_rows, b.multiword_kernel_rows);
  EXPECT_EQ(a.sort_kernel_rows, b.sort_kernel_rows);
  EXPECT_EQ(a.queries_spilled, b.queries_spilled);
  EXPECT_EQ(a.spill_bytes_written, b.spill_bytes_written);
  EXPECT_EQ(a.spill_bytes_read, b.spill_bytes_read);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.scan_touch_checksum, b.scan_touch_checksum);
  EXPECT_EQ(a.agg_cpu_units, b.agg_cpu_units);
  EXPECT_EQ(a.tasks_retried, b.tasks_retried);
  EXPECT_EQ(a.tasks_degraded, b.tasks_degraded);
}

/// Fan-out plan with fusable siblings at two levels (same shape as the
/// parallel-executor fusion matrix): a materialized root whose four plain
/// children share one scan of it, plus a base-level leaf that fuses with
/// the root over the base relation.
LogicalPlan FanOutPlan() {
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus, kShipmode};
  root.required = true;
  root.children = {Leaf({kReturnflag}), Leaf({kLinestatus}),
                   Leaf({kShipmode}), Leaf({kReturnflag, kLinestatus})};
  LogicalPlan plan;
  plan.subplans = {root, Leaf({kQuantity})};
  return plan;
}

std::vector<GroupByRequest> FanOutRequests() {
  return {GroupByRequest::Count({kReturnflag, kLinestatus, kShipmode}),
          GroupByRequest::Count({kReturnflag}),
          GroupByRequest::Count({kLinestatus}),
          GroupByRequest::Count({kShipmode}),
          GroupByRequest::Count({kReturnflag, kLinestatus}),
          GroupByRequest::Count({kQuantity})};
}

/// Materialized root with one dependent leaf: the leaf's task reads the
/// root's temp table, so its from-base degradation rung is exercisable.
LogicalPlan ChainPlan() {
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  root.required = true;
  root.children = {Leaf({kReturnflag})};
  LogicalPlan plan;
  plan.subplans = {root};
  return plan;
}

std::vector<GroupByRequest> ChainRequests() {
  return {GroupByRequest::Count({kReturnflag, kLinestatus}),
          GroupByRequest::Count({kReturnflag})};
}

// ---- randomized fault-injection differential --------------------------------

TEST(ResilienceDifferentialTest, RandomizedFaultTrialsMatchFaultFreeRun) {
  Fixture f;
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor ref(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  ref.set_fusion_enabled(true);
  auto baseline = ref.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->counters.tasks_retried, 0u);
  EXPECT_EQ(baseline->counters.tasks_degraded, 0u);
  const auto want = CanonicalResults(*baseline);

  const int kTrials = 60;
  int recovered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const uint64_t seed = 1000 + static_cast<uint64_t>(trial);
    const int workers = 1 + (trial % 8);
    auto run = [&]() -> Result<ExecutionResult> {
      FaultInjector inj(seed);
      inj.ArmProbability(FaultSite::kTaskStart, 0.10);
      inj.ArmProbability(FaultSite::kAllocPressure, 0.05);
      inj.ArmProbability(FaultSite::kTempRegister, 0.05);
      inj.ArmProbability(FaultSite::kSharedScanBatch, 0.05);
      ScopedFaultInjection scoped(&inj);
      PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, workers);
      exec.set_fusion_enabled(true);
      exec.set_max_task_retries(4);
      return exec.Execute(plan, requests);
    };
    auto r = run();
    // Recovered or not, no temp table may survive the call.
    EXPECT_EQ(f.catalog.temp_bytes(), 0u) << "temp tables leaked";
    if (!r.ok()) continue;  // retry budget exhausted: legal, but must be clean
    ++recovered;
    EXPECT_EQ(want, CanonicalResults(*r));
    // Deterministic replay: the same seed and worker count reproduces the
    // run bit-identically, including the retry/degradation attribution.
    auto again = run();
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectSameCounters(r->counters, again->counters);
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
  }
  // The fault rates are chosen so the 4-attempt budget recovers most
  // trials; a flaky harness would show up as mass failure here.
  EXPECT_GE(recovered, kTrials / 2)
      << "only " << recovered << "/" << kTrials << " trials recovered";
}

TEST(ResilienceDifferentialTest, RetryCountersIndependentOfWorkerCount) {
  Fixture f;
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();

  // Probability-armed decisions are keyed on (task id, attempt), never hit
  // order, so a seed that retries at one worker count retries identically
  // at every other. Find a seed whose single-worker run recovers with at
  // least one retry, then pin the whole counter set across worker counts.
  auto run = [&](uint64_t seed, int workers) -> Result<ExecutionResult> {
    FaultInjector inj(seed);
    inj.ArmProbability(FaultSite::kTaskStart, 0.25);
    inj.ArmProbability(FaultSite::kSharedScanBatch, 0.25);
    ScopedFaultInjection scoped(&inj);
    PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, workers);
    exec.set_fusion_enabled(true);
    exec.set_max_task_retries(4);
    return exec.Execute(plan, requests);
  };

  uint64_t seed = 0;
  Result<ExecutionResult> one = Status::Internal("unset");
  for (uint64_t s = 1; s <= 64; ++s) {
    auto r = run(s, 1);
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
    if (r.ok() && r->counters.tasks_retried > 0) {
      seed = s;
      one = std::move(r);
      break;
    }
  }
  ASSERT_GT(seed, 0u) << "no seed with a recovered retry in 64 tries";

  for (const int workers : {2, 8}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    auto r = run(seed, workers);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameCounters(one->counters, r->counters);
    EXPECT_EQ(CanonicalResults(*one), CanonicalResults(*r));
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
  }
}

// ---- degradation-ladder rungs ----------------------------------------------

TEST(DegradationLadderTest, FusedTaskSplitsIntoPerQueryPasses) {
  Fixture f;
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);  // unfused, fault-free
  ASSERT_TRUE(baseline.ok());
  const auto want = CanonicalResults(*baseline);

  std::optional<WorkCounters> pinned;
  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    FaultInjector inj(7);
    // Every shared-scan batch read fails, so every fused task must fall
    // back to independent per-query passes on its first retry.
    inj.ArmProbability(FaultSite::kSharedScanBatch, 1.0);
    ScopedFaultInjection scoped(&inj);
    PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, workers);
    exec.set_fusion_enabled(true);
    exec.set_max_task_retries(1);
    auto r = exec.Execute(plan, requests);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Both fused tasks (base level and root level) retried once, degraded.
    EXPECT_EQ(r->counters.tasks_retried, 2u);
    EXPECT_EQ(r->counters.tasks_degraded, 2u);
    EXPECT_EQ(want, CanonicalResults(*r));
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
    if (!pinned.has_value()) {
      pinned = r->counters;
    } else {
      ExpectSameCounters(*pinned, r->counters);
    }
  }
}

TEST(DegradationLadderTest, TempReaderRecomputesFromBase) {
  Fixture f;
  const auto requests = ChainRequests();
  const LogicalPlan plan = ChainPlan();
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());

  FaultInjector inj(3);
  // Single worker: attempt starts arrive in task order, so hit #1 is the
  // first attempt of the dependent leaf — the task that reads the root's
  // temp table. Its retry must recompute from the base relation.
  inj.ArmOneShot(FaultSite::kTaskStart, 1);
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem");
  exec.set_max_task_retries(1);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(inj.fires(FaultSite::kTaskStart), 1u);
  EXPECT_EQ(r->counters.tasks_retried, 1u);
  EXPECT_EQ(r->counters.tasks_degraded, 1u);
  // From-base recompute scans the base relation once more than planned.
  EXPECT_GT(r->counters.rows_scanned, baseline->counters.rows_scanned);
  EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(DegradationLadderTest, MemoryPressureForcesMultiWordKernel) {
  Fixture f;
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kReturnflag})};
  const LogicalPlan plan = NaivePlan(requests);

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());
  // Fault-free, this low-cardinality query runs on the dense-array kernel.
  EXPECT_GT(baseline->counters.dense_kernel_rows, 0u);
  EXPECT_EQ(baseline->counters.multiword_kernel_rows, 0u);

  FaultInjector inj(11);
  inj.ArmOneShot(FaultSite::kAllocPressure, 0);  // first group-table alloc
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem");
  exec.set_max_task_retries(1);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The injected bad_alloc surfaced as ResourceExhausted, and the retry ran
  // serialized on the low-footprint multi-word kernel.
  EXPECT_EQ(r->counters.tasks_retried, 1u);
  EXPECT_EQ(r->counters.tasks_degraded, 1u);
  EXPECT_EQ(r->counters.dense_kernel_rows, 0u);
  EXPECT_GT(r->counters.multiword_kernel_rows, 0u);
  EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(DegradationLadderTest, ResourceExhaustedRetriesOnSpillRungFirst) {
  // With out-of-core aggregation enabled, the ladder gains a rung *above*
  // "serialize + multi-word": a ResourceExhausted attempt first retries with
  // spill forced, keeping its kernel and parallelism. 150k rows = multiple
  // morsels, so the retried query is spill-eligible.
  Fixture f(150000);
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kQuantity})};
  const LogicalPlan plan = NaivePlan(requests);

  PlanExecutor plain(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());
  EXPECT_GT(baseline->counters.dense_kernel_rows, 0u);

  FaultInjector inj(11);
  inj.ArmOneShot(FaultSite::kAllocPressure, 0);  // first group-table alloc
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  exec.set_max_task_retries(1);
  SpillOptions spill;
  spill.memory_budget_bytes = 1ull << 40;  // enabled, never trips on its own
  exec.set_spill(spill);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->counters.tasks_retried, 1u);
  EXPECT_EQ(r->counters.tasks_degraded, 1u);
  // The retry spilled instead of falling to the multi-word rung: the query
  // kept its dense kernel and never ran multi-word.
  EXPECT_EQ(r->counters.queries_spilled, 1u);
  EXPECT_GT(r->counters.dense_kernel_rows, 0u);
  EXPECT_EQ(r->counters.multiword_kernel_rows, 0u);
  EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(DegradationLadderTest, SpillFaultRollsBackAndRecovers) {
  // A fault inside the spill pipeline itself (partition write, replay read,
  // partition merge) fails that attempt with Internal; the retry re-runs the
  // spill path clean. No temp table and no spill file may survive either
  // attempt.
  Fixture f(150000);
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kQuantity})};
  const LogicalPlan plan = NaivePlan(requests);

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());

  const auto dir = std::filesystem::temp_directory_path() /
                   ("gbmqo-resilience-spill-" +
                    std::to_string(static_cast<uint64_t>(::getpid())));
  std::filesystem::create_directories(dir);
  for (FaultSite site : {FaultSite::kSpillWrite, FaultSite::kSpillRead,
                         FaultSite::kSpillMerge}) {
    SCOPED_TRACE(FaultSiteName(site));
    FaultInjector inj(23);
    inj.ArmOneShot(site, 0);
    ScopedFaultInjection scoped(&inj);
    // Single worker: the spill pipeline runs its passes in deterministic
    // order, so the one-shot always hits the first attempt.
    PlanExecutor exec(&f.catalog, "lineitem");
    exec.set_max_task_retries(1);
    SpillOptions spill;
    spill.force = true;
    spill.directory = dir.string();
    exec.set_spill(spill);
    auto r = exec.Execute(plan, requests);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(inj.fires(site), 1u);
    EXPECT_EQ(r->counters.tasks_retried, 1u);
    EXPECT_EQ(r->counters.queries_spilled, 1u);  // the clean retry
    EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
    EXPECT_TRUE(std::filesystem::is_empty(dir)) << "leaked spill files";
  }
  std::filesystem::remove_all(dir);
}

TEST(DegradationLadderTest, SpillCorruptionRecoversInPlaceWithoutRetry) {
  // Bit rot in a spill partition (every frame CRC fails under probability
  // 1.0) is repaired *inside* the attempt: the corrupt partition is
  // re-derived from the resident input (SpillOptions::recover_corrupt,
  // default on), so the query succeeds with no ladder retry and the result
  // matches an unfaulted run raw-bit.
  Fixture f(150000);
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kQuantity})};
  const LogicalPlan plan = NaivePlan(requests);

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());

  const auto dir = std::filesystem::temp_directory_path() /
                   ("gbmqo-resilience-corrupt-" +
                    std::to_string(static_cast<uint64_t>(::getpid())));
  std::filesystem::create_directories(dir);
  FaultInjector inj(29);
  inj.ArmProbability(FaultSite::kSpillCorrupt, 1.0);
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem");
  SpillOptions spill;
  spill.force = true;
  spill.directory = dir.string();
  exec.set_spill(spill);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(inj.fires(FaultSite::kSpillCorrupt), 0u);
  EXPECT_GT(r->counters.spill_corrupt_recoveries, 0u);
  EXPECT_EQ(r->counters.tasks_retried, 0u);   // repaired inside the attempt
  EXPECT_EQ(r->counters.tasks_degraded, 0u);  // kernel and parallelism kept
  EXPECT_EQ(r->counters.queries_spilled, 1u);
  EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "leaked spill files";
  std::filesystem::remove_all(dir);
}

TEST(DegradationLadderTest, SpillCorruptionWithoutRecoveryClimbsLadder) {
  // With recover_corrupt off, a corrupt spill record fails the attempt with
  // Internal naming the damage; the ladder's same-plan retry re-runs the
  // spill clean (the one-shot fault has been consumed) with no degradation.
  Fixture f(150000);
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kQuantity})};
  const LogicalPlan plan = NaivePlan(requests);

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());

  const auto dir = std::filesystem::temp_directory_path() /
                   ("gbmqo-resilience-corrupt2-" +
                    std::to_string(static_cast<uint64_t>(::getpid())));
  std::filesystem::create_directories(dir);
  FaultInjector inj(31);
  inj.ArmOneShot(FaultSite::kSpillCorrupt, 0);
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem");
  exec.set_max_task_retries(1);
  SpillOptions spill;
  spill.force = true;
  spill.directory = dir.string();
  spill.recover_corrupt = false;
  exec.set_spill(spill);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(inj.fires(FaultSite::kSpillCorrupt), 1u);
  EXPECT_EQ(r->counters.spill_corrupt_recoveries, 0u);
  EXPECT_GE(r->counters.tasks_retried, 1u);
  EXPECT_EQ(r->counters.tasks_degraded, 0u);
  EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "leaked spill files";
  std::filesystem::remove_all(dir);
}

TEST(DegradationLadderTest, TempRegistrationFaultRollsBackAndRecovers) {
  Fixture f;
  const auto requests = ChainRequests();
  const LogicalPlan plan = ChainPlan();

  PlanExecutor plain(&f.catalog, "lineitem");
  auto baseline = plain.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok());

  FaultInjector inj(13);
  inj.ArmOneShot(FaultSite::kTempRegister, 0);  // root's registration fails
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem");
  exec.set_max_task_retries(1);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->counters.tasks_retried, 1u);
  EXPECT_EQ(CanonicalResults(*baseline), CanonicalResults(*r));
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

// ---- temp-table cleanup on failure ------------------------------------------

TEST(TempCleanupTest, ExhaustedRetriesLeaveCatalogClean) {
  Fixture f;
  const auto requests = ChainRequests();
  const LogicalPlan plan = ChainPlan();

  FaultInjector inj(17);
  inj.ArmProbability(FaultSite::kTaskStart, 1.0);  // every attempt fails
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  exec.set_max_task_retries(2);
  auto r = exec.Execute(plan, requests);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(f.catalog.temp_bytes(), 0u) << "temp tables leaked on failure";
}

TEST(TempCleanupTest, CompositeSubtreeDropsTempsOnInjectedThrow) {
  // Regression for the temp-ref leak: a CUBE subtree registers lattice
  // temps as it goes; an exception thrown from a query mid-subtree
  // (injected bad_alloc while building a group table) must not strand
  // them in the Catalog. The subtree's RAII guard drops the leftovers on
  // the unwind path.
  Fixture f;
  std::vector<GroupByRequest> requests = {
      GroupByRequest::Count({kReturnflag}),
      GroupByRequest::Count({kLinestatus}),
      GroupByRequest::Count({kReturnflag, kLinestatus})};
  PlanNode cube;
  cube.columns = {kReturnflag, kLinestatus};
  cube.kind = NodeKind::kCube;
  cube.required = true;
  cube.children = {Leaf({kReturnflag}), Leaf({kLinestatus})};
  LogicalPlan plan;
  plan.subplans = {cube};
  ASSERT_TRUE(plan.Validate(requests).ok());

  FaultInjector inj(19);
  // Hit #2 is the third group-table allocation: mid-lattice, after at
  // least one lattice temp has been registered.
  inj.ArmOneShot(FaultSite::kAllocPressure, 2);
  ScopedFaultInjection scoped(&inj);
  PlanExecutor exec(&f.catalog, "lineitem");
  auto r = exec.Execute(plan, requests);  // fail-fast: no retries configured
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_EQ(inj.fires(FaultSite::kAllocPressure), 1u);
  EXPECT_EQ(f.catalog.temp_bytes(), 0u) << "composite subtree leaked temps";

  // With a retry budget the same fault recovers (the one-shot has fired).
  FaultInjector inj2(19);
  inj2.ArmOneShot(FaultSite::kAllocPressure, 2);
  ScopedFaultInjection scoped2(&inj2);
  PlanExecutor retrying(&f.catalog, "lineitem");
  retrying.set_max_task_retries(1);
  auto ok = retrying.Execute(plan, requests);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->counters.tasks_retried, 1u);
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

// ---- cancellation and deadlines ---------------------------------------------

TEST(CancellationTest, CancelDuringRetryBackoffReturnsPromptly) {
  // Regression: the retry loop used to sleep attempt * backoff_ms
  // unconditionally, so with a large backoff a Cancel() issued while the
  // executor sat in backoff was not observed until the full sleep elapsed.
  // The backoff wait must poll the token and unwind within a slice.
  Fixture f(1000);
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();
  FaultInjector inj(7);
  inj.ArmProbability(FaultSite::kTaskStart, 1.0);  // every attempt fails
  ScopedFaultInjection scoped(&inj);
  CancellationToken token;
  PlanExecutor exec(&f.catalog, "lineitem");
  exec.set_cancellation(&token);
  exec.set_max_task_retries(3);
  exec.set_retry_backoff_ms(60000);  // would stall ~minutes if unconditional

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto r = exec.Execute(plan, requests);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_LT(elapsed_s, 5.0) << "backoff ignored the cancellation token";
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(CancellationTest, RetryBackoffBoundedByDeadline) {
  // The backoff wait is capped by the remaining deadline: a 100ms deadline
  // must not sit out a 60s backoff before reporting DeadlineExceeded.
  Fixture f(1000);
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();
  FaultInjector inj(7);
  inj.ArmProbability(FaultSite::kTaskStart, 1.0);
  ScopedFaultInjection scoped(&inj);
  CancellationToken token;
  token.SetDeadlineAfterMs(100);
  PlanExecutor exec(&f.catalog, "lineitem");
  exec.set_cancellation(&token);
  exec.set_max_task_retries(3);
  exec.set_retry_backoff_ms(60000);

  const auto start = std::chrono::steady_clock::now();
  auto r = exec.Execute(plan, requests);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_LT(elapsed_s, 5.0) << "backoff overslept the deadline";
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(CancellationTest, PreCancelledTokenStopsExecution) {
  Fixture f;
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();
  CancellationToken token;
  token.Cancel();
  PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  exec.set_cancellation(&token);
  exec.set_max_task_retries(5);  // cancellation must not be retried
  auto r = exec.Execute(plan, requests);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(CancellationTest, DeadlineExpiresDuringExecution) {
  Fixture f(200000);  // large enough that 1ms always expires mid-plan
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();
  CancellationToken token;
  token.SetDeadlineAfterMs(1);
  PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, 2);
  exec.set_cancellation(&token);
  exec.set_max_task_retries(5);
  auto r = exec.Execute(plan, requests);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);

  // Reset re-arms the token for a fault-free run.
  token.Reset();
  auto ok = exec.Execute(plan, requests);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->results.size(), requests.size());
}

TEST(SessionResilienceTest, OptionsPlumbRetriesDeadlineAndCancellation) {
  SessionOptions options;
  options.max_task_retries = 2;
  options.exec_deadline_ms = 60000;
  Session session(GenerateLineitem({.rows = 4000, .seed = 5}), options);

  auto r = session.Execute("SINGLE(l_returnflag, l_shipmode)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->results.size(), 2u);

  // An explicit Cancel persists across calls (the per-call deadline re-arm
  // must not clear it) until the caller resets the token.
  session.cancellation()->Cancel();
  auto cancelled = session.Execute("SINGLE(l_returnflag, l_shipmode)");
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();

  session.cancellation()->Reset();
  auto again = session.Execute("SINGLE(l_returnflag, l_shipmode)");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(session.catalog()->temp_bytes(), 0u);
}

}  // namespace
}  // namespace gbmqo
