#include "api/session.h"

#include <gtest/gtest.h>

#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

TEST(SessionTest, ParseOptimizeExecuteSpec) {
  Session session(GenerateLineitem({.rows = 5000}));
  auto exec = session.Execute("SINGLE(l_returnflag, l_linestatus, l_shipmode)");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->results.size(), 3u);
  EXPECT_EQ(exec->results.at(ColumnSet{kReturnflag})->num_rows(), 3u);
  EXPECT_EQ(exec->results.at(ColumnSet{kLinestatus})->num_rows(), 2u);
  EXPECT_EQ(exec->results.at(ColumnSet{kShipmode})->num_rows(), 7u);
}

TEST(SessionTest, OptimizeNeverWorseThanNaive) {
  Session session(GenerateLineitem({.rows = 5000}));
  auto opt = session.Optimize("PAIRS(l_returnflag, l_linestatus, l_shipmode)");
  ASSERT_TRUE(opt.ok());
  EXPECT_LE(opt->cost, opt->naive_cost);
}

TEST(SessionTest, ExplainMentionsColumns) {
  Session session(GenerateLineitem({.rows = 3000}));
  auto out = session.Explain("SINGLE(l_returnflag, l_shipmode)");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("l_returnflag"), std::string::npos);
  EXPECT_NE(out->find("total-cost"), std::string::npos);
}

TEST(SessionTest, GenerateSqlEmitsScript) {
  Session session(GenerateLineitem({.rows = 3000}));
  auto stmts = session.GenerateSql(
      "(l_shipdate), (l_commitdate), (l_shipdate, l_commitdate)");
  ASSERT_TRUE(stmts.ok());
  EXPECT_GE(stmts->size(), 3u);
  EXPECT_NE((*stmts)[0].text.find("FROM lineitem"), std::string::npos);
}

TEST(SessionTest, ExecutePlanRunsBaselines) {
  Session session(GenerateLineitem({.rows = 4000}));
  auto requests = session.Parse("SINGLE(l_returnflag, l_shipmode)");
  ASSERT_TRUE(requests.ok());
  auto naive = session.ExecutePlan(NaivePlan(*requests), *requests);
  ASSERT_TRUE(naive.ok());
  auto optimized = session.Execute(*requests);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(naive->results.size(), optimized->results.size());
}

TEST(SessionTest, SampledStatsMode) {
  SessionOptions options;
  options.stats_mode = DistinctMode::kSampled;
  options.sample_size = 1000;
  Session session(GenerateLineitem({.rows = 20000}), options);
  auto exec = session.Execute("SINGLE(l_returnflag, l_shipdate, l_comment)");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_GT(session.stats()->statistics_created(), 0u);
}

TEST(SessionTest, BadSpecSurfacesParseError) {
  Session session(GenerateLineitem({.rows = 100}));
  EXPECT_FALSE(session.Execute("SINGLE(not_a_column)").ok());
  EXPECT_FALSE(session.Execute("garbage").ok());
  EXPECT_FALSE(session.Explain("").ok());
}

TEST(SessionTest, OptionsPropagateToOptimizer) {
  SessionOptions options;
  options.optimizer.only_type_b = true;
  Session session(GenerateLineitem({.rows = 3000}), options);
  auto opt = session.Optimize("SINGLE(l_returnflag, l_linestatus, l_shipmode)");
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt->plan.Validate(*session.Parse(
      "SINGLE(l_returnflag, l_linestatus, l_shipmode)")).ok());
}

}  // namespace
}  // namespace gbmqo
